"""Extended metric family: canberra, braycurtis, correlation, minkowski."""

import numpy as np
import pytest
from scipy.spatial import distance as sd

from repro.distances import dense
from repro.distances.registry import Metric, get_metric, register_metric

rng = np.random.default_rng(3)
A = rng.random(12)
B = rng.random(12)


class TestAgainstScipy:
    def test_canberra(self):
        assert dense.canberra(A, B) == pytest.approx(sd.canberra(A, B))

    def test_braycurtis(self):
        assert dense.braycurtis(A, B) == pytest.approx(sd.braycurtis(A, B))

    def test_correlation(self):
        assert dense.correlation(A, B) == pytest.approx(sd.correlation(A, B))

    def test_minkowski_p3(self):
        m = dense.make_minkowski(3)
        assert m(A, B) == pytest.approx(sd.minkowski(A, B, p=3))

    def test_minkowski_p1_is_manhattan(self):
        m = dense.make_minkowski(1)
        assert m(A, B) == pytest.approx(dense.manhattan(A, B))

    def test_minkowski_p2_is_euclidean(self):
        m = dense.make_minkowski(2)
        assert m(A, B) == pytest.approx(dense.euclidean(A, B))


class TestEdgeCases:
    def test_canberra_zero_terms(self):
        assert dense.canberra([0, 1], [0, 1]) == 0.0
        assert dense.canberra([0, 0], [0, 0]) == 0.0

    def test_braycurtis_zero_denominator(self):
        assert dense.braycurtis([0, 0], [0, 0]) == 0.0

    def test_braycurtis_cancelling(self):
        # a + b = 0 elementwise but a != b.
        assert dense.braycurtis([1, -1], [-1, 1]) == 0.0

    def test_correlation_constant_vector(self):
        # Centered constant vector is zero -> distance 1 by convention.
        assert dense.correlation([2, 2, 2], [1, 5, 9]) == 1.0

    def test_minkowski_invalid_p(self):
        with pytest.raises(ValueError):
            dense.make_minkowski(0.5)


class TestBatchedForms:
    X = rng.random((15, 12))

    @pytest.mark.parametrize("scalar,batch", [
        (dense.canberra, dense.canberra_one_to_many),
        (dense.braycurtis, dense.braycurtis_one_to_many),
        (dense.correlation, dense.correlation_one_to_many),
    ])
    def test_matches_scalar(self, scalar, batch):
        got = batch(A, self.X)
        want = [scalar(A, self.X[i]) for i in range(15)]
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)


class TestRegistry:
    @pytest.mark.parametrize("name", ["canberra", "braycurtis", "correlation"])
    def test_registered(self, name):
        assert get_metric(name).name == name

    def test_minkowski_registration_flow(self):
        register_metric(
            Metric("test_minkowski4", dense.make_minkowski(4)), overwrite=True)
        m = get_metric("test_minkowski4")
        assert m(A, B) == pytest.approx(sd.minkowski(A, B, p=4))

    def test_new_metrics_work_in_nndescent(self):
        from repro import build_knn_graph, brute_force_knn_graph, graph_recall
        data = rng.random((150, 8)).astype(np.float32)
        for name in ("canberra", "braycurtis"):
            res = build_knn_graph(data, k=5, metric=name, seed=0)
            truth = brute_force_knn_graph(data, k=5, metric=name)
            assert graph_recall(res.graph, truth) > 0.8, name
