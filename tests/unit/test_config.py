"""Unit tests for configuration dataclasses and validation."""

import pytest

from repro.config import ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig
from repro.errors import ConfigError


class TestNNDescentConfig:
    def test_defaults_match_paper(self):
        cfg = NNDescentConfig()
        assert cfg.rho == 0.8
        assert cfg.delta == 0.001

    def test_sample_size_rounds(self):
        assert NNDescentConfig(k=10, rho=0.8).sample_size == 8
        assert NNDescentConfig(k=10, rho=0.05).sample_size == 1
        assert NNDescentConfig(k=3, rho=0.5).sample_size == 2

    def test_sample_size_never_zero(self):
        assert NNDescentConfig(k=1, rho=0.01).sample_size == 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_bad_k(self, bad):
        with pytest.raises(ConfigError):
            NNDescentConfig(k=bad)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_rejects_bad_rho(self, bad):
        with pytest.raises(ConfigError):
            NNDescentConfig(rho=bad)

    def test_rejects_negative_delta(self):
        with pytest.raises(ConfigError):
            NNDescentConfig(delta=-0.01)

    def test_rejects_bad_max_iters(self):
        with pytest.raises(ConfigError):
            NNDescentConfig(max_iters=0)

    def test_with_replaces_fields(self):
        cfg = NNDescentConfig(k=10).with_(k=20, rho=0.5)
        assert cfg.k == 20 and cfg.rho == 0.5
        # original untouched (frozen)
        assert NNDescentConfig(k=10).k == 10

    def test_frozen(self):
        cfg = NNDescentConfig()
        with pytest.raises(AttributeError):
            cfg.k = 5


class TestCommOptConfig:
    def test_default_is_fully_optimized(self):
        cfg = CommOptConfig()
        assert cfg.one_sided and cfg.redundancy_check and cfg.distance_pruning

    def test_unoptimized_factory(self):
        cfg = CommOptConfig.unoptimized()
        assert not (cfg.one_sided or cfg.redundancy_check or cfg.distance_pruning)

    def test_optimized_factory(self):
        assert CommOptConfig.optimized() == CommOptConfig()

    def test_refinements_require_one_sided(self):
        with pytest.raises(ConfigError):
            CommOptConfig(one_sided=False, redundancy_check=True)
        with pytest.raises(ConfigError):
            CommOptConfig(one_sided=False, distance_pruning=True)

    def test_one_sided_only_is_legal(self):
        cfg = CommOptConfig(one_sided=True, redundancy_check=False,
                            distance_pruning=False)
        assert cfg.one_sided


class TestDNNDConfig:
    def test_defaults_match_paper(self):
        cfg = DNNDConfig()
        assert cfg.pruning_factor == 1.5
        assert cfg.shuffle_reverse_destinations
        assert cfg.nnd.delta == 0.001

    def test_k_passthrough(self):
        assert DNNDConfig(nnd=NNDescentConfig(k=30)).k == 30

    def test_rejects_negative_batch(self):
        with pytest.raises(ConfigError):
            DNNDConfig(batch_size=-1)

    def test_zero_batch_disables(self):
        assert DNNDConfig(batch_size=0).batch_size == 0

    def test_rejects_small_pruning_factor(self):
        with pytest.raises(ConfigError):
            DNNDConfig(pruning_factor=0.9)

    def test_with_nested_keys(self):
        cfg = DNNDConfig().with_(**{"nnd.k": 25, "batch_size": 128})
        assert cfg.k == 25 and cfg.batch_size == 128

    def test_with_bare_nnd_field_names(self):
        cfg = DNNDConfig().with_(k=12, rho=0.5, pruning_factor=2.0)
        assert cfg.k == 12
        assert cfg.nnd.rho == 0.5
        assert cfg.pruning_factor == 2.0


class TestClusterConfig:
    def test_world_size(self):
        assert ClusterConfig(nodes=4, procs_per_node=128).world_size == 512

    def test_node_of_block_mapping(self):
        cfg = ClusterConfig(nodes=3, procs_per_node=4)
        assert cfg.node_of(0) == 0
        assert cfg.node_of(3) == 0
        assert cfg.node_of(4) == 1
        assert cfg.node_of(11) == 2

    def test_node_of_rejects_out_of_range(self):
        cfg = ClusterConfig(nodes=2, procs_per_node=2)
        with pytest.raises(ConfigError):
            cfg.node_of(4)
        with pytest.raises(ConfigError):
            cfg.node_of(-1)

    @pytest.mark.parametrize("nodes,ppn", [(0, 1), (1, 0), (-1, 4)])
    def test_rejects_bad_shape(self, nodes, ppn):
        with pytest.raises(ConfigError):
            ClusterConfig(nodes=nodes, procs_per_node=ppn)
