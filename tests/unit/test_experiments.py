"""Experiment registry completeness."""

import pathlib

import pytest

from repro.errors import ReproError
from repro.eval.experiments import EXPERIMENTS, get_experiment, list_experiments

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_every_paper_artifact_present(self):
        # One entry per evaluated table/figure plus ablations.
        for required in ("table1", "sec5.2", "table2", "fig2", "fig3", "fig4"):
            assert required in EXPERIMENTS

    def test_get_experiment(self):
        exp = get_experiment("fig4")
        assert exp.paper_ref.startswith("Figure 4")
        assert exp.paper_numbers["reduction"] == 0.5

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            get_experiment("fig99")

    def test_list_sorted(self):
        names = list_experiments()
        assert names == sorted(names)

    def test_bench_files_exist(self):
        for exp in EXPERIMENTS.values():
            assert exp.bench, exp.exp_id
            assert (REPO_ROOT / exp.bench).exists(), exp.bench

    def test_modules_importable(self):
        import importlib
        for exp in EXPERIMENTS.values():
            for mod in exp.modules:
                importlib.import_module(mod)

    def test_table3_numbers_recorded(self):
        exp = get_experiment("fig3")
        deep = exp.paper_numbers["deep"]
        assert deep["DNND k10"][16] == 1.84
        assert deep["Hnsw B"][1] == 22.60
