"""Sampling primitives (Algorithm 1's ``Sample``)."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.utils.sampling import (
    reservoir_sample,
    sample_items,
    sample_without_replacement,
)


@pytest.fixture()
def rng():
    return derive_rng(0, 1)


class TestSampleWithoutReplacement:
    def test_distinct(self, rng):
        out = sample_without_replacement(rng, 100, 30)
        assert len(np.unique(out)) == 30

    def test_range(self, rng):
        out = sample_without_replacement(rng, 50, 20)
        assert out.min() >= 0 and out.max() < 50

    def test_caps_at_population(self, rng):
        out = sample_without_replacement(rng, 5, 50)
        assert sorted(out.tolist()) == [0, 1, 2, 3, 4]

    def test_zero_requests(self, rng):
        assert sample_without_replacement(rng, 10, 0).size == 0

    def test_empty_population(self, rng):
        assert sample_without_replacement(rng, 0, 5).size == 0

    def test_negative_population(self, rng):
        assert sample_without_replacement(rng, -3, 5).size == 0

    def test_sparse_path(self, rng):
        # n * 4 < population exercises the rejection branch.
        out = sample_without_replacement(rng, 10_000, 5)
        assert len(np.unique(out)) == 5

    def test_dense_path(self, rng):
        out = sample_without_replacement(rng, 10, 9)
        assert len(np.unique(out)) == 9

    def test_roughly_uniform(self):
        # Each element of a population of 10 should appear ~30% of the
        # time when sampling 3; loose tolerance avoids flakiness.
        counts = np.zeros(10)
        for trial in range(400):
            rng = derive_rng(trial, 0)
            for i in sample_without_replacement(rng, 10, 3):
                counts[i] += 1
        freq = counts / 400
        assert freq.min() > 0.15 and freq.max() < 0.45


class TestSampleItems:
    def test_returns_subset(self, rng):
        items = ["a", "b", "c", "d", "e"]
        out = sample_items(rng, items, 3)
        assert len(out) == 3
        assert set(out) <= set(items)

    def test_all_when_n_exceeds(self, rng):
        items = [1, 2, 3]
        assert sorted(sample_items(rng, items, 10)) == items


class TestReservoirSample:
    def test_size(self, rng):
        out = reservoir_sample(rng, range(100), 10)
        assert len(out) == 10

    def test_short_stream_returns_all(self, rng):
        assert sorted(reservoir_sample(rng, range(4), 10)) == [0, 1, 2, 3]

    def test_elements_from_stream(self, rng):
        out = reservoir_sample(rng, range(1000), 5)
        assert all(0 <= x < 1000 for x in out)

    def test_uniformity(self):
        counts = np.zeros(20)
        for trial in range(600):
            rng = derive_rng(trial, 1)
            for x in reservoir_sample(rng, range(20), 5):
                counts[x] += 1
        freq = counts / 600
        # Expected 0.25 each.
        assert freq.min() > 0.12 and freq.max() < 0.40
