"""RPC contract rules (REP2xx) against the fixtures and the real repo
registration idioms."""

from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, run_analysis

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "lint_fixtures"
CONFIG = AnalysisConfig(exclude=(), sim_paths=("lint_fixtures",))

CASES = [
    ("REP201", 1),
    ("REP202", 1),
    ("REP203", 1),
    ("REP204", 1),
    ("REP205", 2),
]


def _lint(path: Path, rule: str):
    return run_analysis([str(path)], CONFIG, select=(rule,))


@pytest.mark.parametrize("rule,expected", CASES)
def test_bad_fixture_fires(rule, expected):
    findings = _lint(FIXTURES / f"{rule.lower()}_bad.py", rule)
    assert len(findings) == expected
    assert all(f.rule == rule for f in findings)


@pytest.mark.parametrize("rule,_expected", CASES)
def test_good_fixture_silent(rule, _expected):
    assert _lint(FIXTURES / f"{rule.lower()}_good.py", rule) == []


def test_rep203_kernel_bad_fixture_fires():
    """A kernel helper capturing a factory-body local (not a factory
    parameter) breaks the pure-batch-variant contract."""
    (finding,) = _lint(FIXTURES / "rep203_kernel_bad.py", "REP203")
    assert finding.rule == "REP203"
    assert finding.severity == "error"
    assert "kernel helper" in finding.message
    assert "'sqeuclidean.pairwise'" in finding.message
    assert "calls" in finding.message


def test_rep203_kernel_good_fixture_silent():
    """Closures over exactly the factory's parameters (attach-time
    kernel state) are the sanctioned register_kernel idiom."""
    assert _lint(FIXTURES / "rep203_kernel_good.py", "REP203") == []


def test_rep203_kernel_helpers_not_in_handler_registries(tmp_path):
    """register_kernel bindings must not leak into the handler/batch
    registries: REP202's arity model and the strict REP203 contract
    would both false-positive on them."""
    (tmp_path / "mod.py").write_text(
        "def make(ops, cache, stats, tile):\n"
        "    def pw(A, B):\n"
        "        return ops.pairwise(cache, stats, tile, A, B)\n"
        "    def rw(a, b):\n"
        "        return ops.rowwise(stats, a, b)\n"
        "    def otm(q, X):\n"
        "        return ops.one_to_many(cache, stats, q, X)\n"
        "    return register_kernel('m', ops=ops, cache=cache,\n"
        "                           stats=stats, pairwise=pw,\n"
        "                           rowwise=rw, one_to_many=otm)\n")
    findings = run_analysis([str(tmp_path)], CONFIG,
                            select=("REP202", "REP203"))
    assert findings == []


def test_rep204_is_a_warning_not_an_error():
    findings = _lint(FIXTURES / "rep204_bad.py", "REP204")
    assert findings and all(f.severity == "warning" for f in findings)


def test_rep202_reports_supplied_vs_accepted():
    (finding,) = _lint(FIXTURES / "rep202_bad.py", "REP202")
    assert "2 positional argument(s)" in finding.message
    assert "_h_update(3)" in finding.message


def test_registrations_resolve_across_files(tmp_path):
    """A handler registered in one module, defined in another, called
    from a third: the project-wide index connects all three."""
    (tmp_path / "impl.py").write_text(
        "def _h_store(ctx, key, value):\n"
        "    ctx.state[key] = value\n")
    (tmp_path / "wiring.py").write_text(
        "from impl import _h_store\n\n"
        "def setup(world):\n"
        "    world.register_handlers(store=_h_store)\n")
    (tmp_path / "driver.py").write_text(
        "def send(ctx):\n"
        "    ctx.async_call(0, 'store', 'a', 1)\n"       # fits: clean
        "    ctx.async_call(0, 'store', 'a')\n")         # REP202
    findings = run_analysis([str(tmp_path)], CONFIG,
                            select=("REP201", "REP202"))
    assert [f.rule for f in findings] == ["REP202"]
    assert findings[0].line == 3


def test_visitor_implicit_arity(tmp_path):
    """Visitors receive (ctx, state, key) before the payload."""
    (tmp_path / "mod.py").write_text(
        "def _v_bump(ctx, state, key, amount):\n"
        "    state[key] = state.get(key, 0) + amount\n\n"
        "def setup(dmap):\n"
        "    dmap.register_visitor('bump', _v_bump)\n\n"
        "def drive(dmap):\n"
        "    dmap.async_visit(0, 'k', 'bump', 5)\n"       # fits: clean
        "    dmap.async_visit(0, 'k', 'bump', 5, 6)\n")   # REP202
    findings = run_analysis([str(tmp_path)], CONFIG,
                            select=("REP201", "REP202"))
    assert [f.rule for f in findings] == ["REP202"]
    assert "visitor 'bump'" in findings[0].message


def test_starred_payload_not_flagged(tmp_path):
    """*args at the call site makes the payload count unknowable."""
    (tmp_path / "mod.py").write_text(
        "def _h_any(ctx, a, b):\n"
        "    pass\n\n"
        "def setup(world):\n"
        "    world.register_handler('any', _h_any)\n\n"
        "def drive(ctx, args):\n"
        "    ctx.async_call(0, 'any', *args)\n")
    findings = run_analysis([str(tmp_path)], CONFIG, select=("REP202",))
    assert findings == []


def test_dynamic_handler_name_not_flagged(tmp_path):
    """A variable handler name cannot be resolved statically — no REP201."""
    (tmp_path / "mod.py").write_text(
        "def drive(ctx, handler):\n"
        "    ctx.async_call(0, handler, 1, 2)\n")
    findings = run_analysis([str(tmp_path)], CONFIG, select=("REP201",))
    assert findings == []
