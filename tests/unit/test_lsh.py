"""LSH baseline."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_neighbors
from repro.baselines.lsh import LSHIndex
from repro.errors import ConfigError, SearchError
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def cosine_index(small_dense):
    return LSHIndex(small_dense, metric="cosine", n_tables=12, n_bits=8, seed=0)


@pytest.fixture(scope="module")
def l2_index(small_dense):
    return LSHIndex(small_dense, metric="sqeuclidean", n_tables=12,
                    n_bits=6, bucket_width=0.8, seed=0)


class TestConstruction:
    def test_table_count(self, cosine_index):
        assert len(cosine_index._tables) == 12

    def test_every_point_indexed(self, cosine_index, small_dense):
        for table in cosine_index._tables:
            members = np.concatenate(list(table.values()))
            assert sorted(members.tolist()) == list(range(len(small_dense)))

    def test_bucket_stats(self, cosine_index, small_dense):
        stats = cosine_index.bucket_stats()
        assert stats["n_buckets"] > 0
        assert 0 < stats["mean_size"] <= len(small_dense)

    def test_invalid_config(self, small_dense):
        with pytest.raises(ConfigError):
            LSHIndex(small_dense, n_tables=0)
        with pytest.raises(ConfigError):
            LSHIndex(small_dense, metric="jaccard")
        with pytest.raises(ConfigError):
            LSHIndex(small_dense, metric="sqeuclidean", bucket_width=0)
        with pytest.raises(ConfigError):
            LSHIndex(np.empty((0, 3)))


class TestLocality:
    def test_self_in_candidates(self, cosine_index, small_dense):
        # A point always hashes into its own buckets.
        for i in (0, 5, 17):
            assert i in cosine_index.candidates(small_dense[i])

    def test_candidates_fraction(self, cosine_index, small_dense):
        # Buckets must prune: far fewer candidates than the dataset.
        sizes = [cosine_index.candidates(small_dense[i]).size
                 for i in range(20)]
        assert np.mean(sizes) < len(small_dense)

    def test_multiprobe_adds_candidates(self, cosine_index, small_dense):
        base = cosine_index.candidates(small_dense[0], multiprobe=0).size
        probed = cosine_index.candidates(small_dense[0], multiprobe=3).size
        assert probed >= base


class TestQueries:
    def test_self_query_cosine(self, cosine_index, small_dense):
        res = cosine_index.query(small_dense[9], k=3)
        assert res.ids[0] == 9

    def test_self_query_l2(self, l2_index, small_dense):
        res = l2_index.query(small_dense[9], k=3)
        assert res.ids[0] == 9

    def test_reasonable_recall_cosine(self, cosine_index, small_dense):
        gt, _ = brute_force_neighbors(small_dense, small_dense[:40], k=5,
                                      metric="cosine")
        ids, _, _ = cosine_index.query_batch(small_dense[:40], k=5,
                                             multiprobe=2)
        assert recall_at_k(ids, gt) > 0.5

    def test_reasonable_recall_l2(self, l2_index, small_dense):
        gt, _ = brute_force_neighbors(small_dense, small_dense[:40], k=5)
        ids, _, _ = l2_index.query_batch(small_dense[:40], k=5)
        assert recall_at_k(ids, gt) > 0.5

    def test_more_tables_more_recall(self, small_dense):
        gt, _ = brute_force_neighbors(small_dense, small_dense[:30], k=5,
                                      metric="cosine")
        def recall(tables):
            idx = LSHIndex(small_dense, metric="cosine", n_tables=tables,
                           n_bits=10, seed=1)
            ids, _, _ = idx.query_batch(small_dense[:30], k=5)
            return recall_at_k(ids, gt)
        assert recall(16) >= recall(2) - 0.05

    def test_sorted_distinct_results(self, cosine_index, small_dense):
        res = cosine_index.query(small_dense[2], k=8)
        assert (np.diff(res.dists) >= 0).all()
        assert len(set(res.ids.tolist())) == len(res.ids)

    def test_empty_candidates_path(self, small_dense):
        # Very wide keys make a miss possible for an out-of-sample query.
        idx = LSHIndex(small_dense, metric="cosine", n_tables=1, n_bits=24,
                       seed=0)
        res = idx.query(-small_dense[0] * 100, k=3)
        assert len(res.ids) <= 3  # possibly empty, never crashes

    def test_query_validation(self, cosine_index, small_dense):
        with pytest.raises(SearchError):
            cosine_index.query(small_dense[0], k=0)
        with pytest.raises(SearchError):
            cosine_index.query(np.zeros(3), k=2)

    def test_batch_shapes(self, cosine_index, small_dense):
        ids, dists, stats = cosine_index.query_batch(small_dense[:7], k=4)
        assert ids.shape == (7, 4)
        assert stats["n_queries"] == 7
