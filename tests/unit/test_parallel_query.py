"""Thread-parallel batch query engine."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph, brute_force_neighbors
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ConfigError
from repro.eval.parallel_query import ParallelQueryEngine
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def setup():
    data = gaussian_mixture(300, 12, n_clusters=5, cluster_std=0.45, seed=41)
    adj = optimize_graph(brute_force_knn_graph(data, k=10), 1.5)
    searcher = KNNGraphSearcher(adj, data, seed=0)
    return data, searcher


class TestParallelEngine:
    def test_results_shape(self, setup):
        data, searcher = setup
        engine = ParallelQueryEngine(searcher, n_threads=4, chunk=16)
        ids, dists, stats = engine.query_batch(data[:50], l=8, epsilon=0.1)
        assert ids.shape == (50, 8)
        assert stats["n_threads"] == 4
        assert stats["mean_distance_evals"] > 0

    def test_recall_matches_serial(self, setup):
        data, searcher = setup
        gt_ids, _ = brute_force_neighbors(data, data[:60], k=8)
        serial_ids, _, _ = searcher.query_batch(data[:60], l=8, epsilon=0.2)
        engine = ParallelQueryEngine(searcher, n_threads=4, chunk=8)
        par_ids, _, _ = engine.query_batch(data[:60], l=8, epsilon=0.2)
        r_serial = recall_at_k(serial_ids, gt_ids)
        r_par = recall_at_k(par_ids, gt_ids)
        # Different entry-point RNG streams, same quality band.
        assert abs(r_serial - r_par) < 0.1

    def test_single_thread_path(self, setup):
        data, searcher = setup
        engine = ParallelQueryEngine(searcher, n_threads=1)
        ids, _, stats = engine.query_batch(data[:10], l=5)
        assert stats["n_threads"] == 1
        assert (ids[:, 0] >= 0).all()

    def test_deterministic_per_chunk_layout(self, setup):
        # Same engine config -> same per-span seeds -> same results.
        data, searcher = setup
        engine = ParallelQueryEngine(searcher, n_threads=3, chunk=8)
        a, _, _ = engine.query_batch(data[:40], l=5, epsilon=0.1)
        b, _, _ = engine.query_batch(data[:40], l=5, epsilon=0.1)
        np.testing.assert_array_equal(a, b)

    def test_empty_batch(self, setup):
        data, searcher = setup
        engine = ParallelQueryEngine(searcher, n_threads=2)
        ids, dists, stats = engine.query_batch(data[:0], l=5)
        assert ids.shape == (0, 5)
        assert stats["mean_distance_evals"] == 0.0

    def test_worker_exception_propagates(self, setup):
        data, searcher = setup
        engine = ParallelQueryEngine(searcher, n_threads=2, chunk=4)
        bad = np.zeros((10, 5), dtype=np.float32)  # wrong dim
        with pytest.raises(Exception):
            engine.query_batch(bad, l=5)

    def test_invalid_config(self, setup):
        _, searcher = setup
        with pytest.raises(ConfigError):
            ParallelQueryEngine(searcher, n_threads=0)
        with pytest.raises(ConfigError):
            ParallelQueryEngine(searcher, chunk=0)


class TestSearcherClone:
    def test_clone_shares_graph(self, setup):
        _, searcher = setup
        clone = searcher.clone(seed=7)
        assert clone.graph is searcher.graph
        assert clone.data is searcher.data
        assert clone.metric.name == searcher.metric.name

    def test_clone_rng_independent(self, setup):
        data, searcher = setup
        clone = searcher.clone(seed=7)
        a = clone._rng.random(4)
        b = searcher._rng.random(4)
        assert not np.array_equal(a, b)
