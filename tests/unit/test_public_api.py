"""Public API surface: everything advertised imports and is exported."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_and_paper(self):
        assert repro.__version__
        assert "Massive-Scale" in repro.PAPER

    def test_core_classes_reachable(self):
        for name in ("DNND", "NNDescent", "HNSW", "KNNGraphSearcher",
                     "MetallStore", "IncrementalIndex"):
            assert hasattr(repro, name)


class TestSubpackageExports:
    @pytest.mark.parametrize("module", [
        "repro.core", "repro.runtime", "repro.baselines",
        "repro.distances", "repro.datasets", "repro.io", "repro.eval",
        "repro.utils",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_eval_exports_new_harness(self):
        from repro.eval import (
            AnnBenchmarkRunner,
            ConvergenceTrace,
            ParallelQueryEngine,
            ascii_plot,
        )
        assert callable(ascii_plot)
        assert AnnBenchmarkRunner and ConvergenceTrace and ParallelQueryEngine

    def test_baselines_cover_the_taxonomy(self):
        from repro.baselines import HNSW, KDTree, LSHIndex, PQIndex
        from repro.baselines.pq import IVFPQIndex
        assert all((HNSW, KDTree, LSHIndex, PQIndex, IVFPQIndex))

    def test_cli_entry_point(self):
        from repro.cli import main
        assert callable(main)


class TestDocstrings:
    @pytest.mark.parametrize("module", [
        "repro", "repro.core.dnnd", "repro.core.nndescent",
        "repro.core.search", "repro.runtime.ygm", "repro.runtime.metall",
        "repro.runtime.simmpi", "repro.runtime.netmodel",
        "repro.baselines.hnsw", "repro.baselines.pq",
        "repro.eval.ann_benchmark",
    ])
    def test_modules_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 80, module

    def test_public_classes_documented(self):
        for cls in (repro.DNND, repro.NNDescent, repro.HNSW,
                    repro.KNNGraphSearcher, repro.MetallStore,
                    repro.NeighborHeap, repro.KNNGraph):
            assert cls.__doc__ and len(cls.__doc__) > 40, cls
