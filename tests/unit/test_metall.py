"""MetallStore lifecycle — the Section 4.6 persistence substitute."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.runtime.metall import MetallStore


class TestLifecycle:
    def test_create_open_roundtrip(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["arr"] = np.arange(10)
        with MetallStore.open(path) as store:
            np.testing.assert_array_equal(store["arr"], np.arange(10))

    def test_create_twice_rejected(self, tmp_path):
        path = tmp_path / "ds"
        MetallStore.create(path).close()
        with pytest.raises(StoreError):
            MetallStore.create(path)

    def test_create_on_nonempty_dir_rejected(self, tmp_path):
        path = tmp_path / "ds"
        path.mkdir()
        (path / "junk.txt").write_text("not a store")
        with pytest.raises(StoreError):
            MetallStore.create(path)

    def test_create_on_file_rejected(self, tmp_path):
        f = tmp_path / "plainfile"
        f.write_text("x")
        with pytest.raises(StoreError):
            MetallStore.create(f)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            MetallStore.open(tmp_path / "nope")

    def test_exists(self, tmp_path):
        path = tmp_path / "ds"
        assert not MetallStore.exists(path)
        MetallStore.create(path).close()
        assert MetallStore.exists(path)

    def test_remove(self, tmp_path):
        path = tmp_path / "ds"
        MetallStore.create(path).close()
        MetallStore.remove(path)
        assert not MetallStore.exists(path)

    def test_remove_missing_is_noop(self, tmp_path):
        MetallStore.remove(tmp_path / "nothing")

    def test_closed_store_rejects_access(self, tmp_path):
        store = MetallStore.create(tmp_path / "ds")
        store["x"] = np.ones(3)
        store.close()
        with pytest.raises(StoreError):
            store["x"]

    def test_double_close_is_noop(self, tmp_path):
        store = MetallStore.create(tmp_path / "ds")
        store.close()
        store.close()


class TestObjects:
    def test_ndarray_mmap_on_open(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["big"] = np.arange(100, dtype=np.float32)
        with MetallStore.open(path) as store:
            arr = store["big"]
            assert isinstance(arr, np.memmap)

    def test_dict_of_arrays(self, tmp_path):
        path = tmp_path / "ds"
        graph = {"ids": np.arange(6).reshape(2, 3), "dists": np.ones((2, 3))}
        with MetallStore.create(path) as store:
            store["graph"] = graph
        with MetallStore.open(path) as store:
            out = store["graph"]
            np.testing.assert_array_equal(out["ids"], graph["ids"])
            np.testing.assert_array_equal(out["dists"], graph["dists"])

    def test_pickle_fallback(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["meta"] = {"k": 10, "metric": "cosine"}
        with MetallStore.open(path) as store:
            assert store["meta"] == {"k": 10, "metric": "cosine"}

    def test_missing_object(self, tmp_path):
        with MetallStore.create(tmp_path / "ds") as store:
            with pytest.raises(StoreError):
                store["ghost"]

    def test_contains_and_keys(self, tmp_path):
        with MetallStore.create(tmp_path / "ds") as store:
            store["a"] = np.ones(2)
            store["b"] = {"x": 1}
            assert "a" in store and "b" in store and "c" not in store
            assert store.keys() == ["a", "b"]
            assert len(store) == 2
            assert list(iter(store)) == ["a", "b"]

    def test_delete_object(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["a"] = np.ones(2)
            store.snapshot()
            del store["a"]
            assert "a" not in store
        with MetallStore.open(path) as store:
            assert "a" not in store

    def test_update_object_across_sessions(self, tmp_path):
        # The paper's rapid-graph-update future-work scenario: reopen,
        # mutate, persist again.
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["v"] = np.zeros(4)
        with MetallStore.open(path) as store:
            arr = np.asarray(store["v"]).copy()
            arr += 1
            store["v"] = arr
        with MetallStore.open(path) as store:
            np.testing.assert_array_equal(np.asarray(store["v"]), np.ones(4))

    def test_invalid_names(self, tmp_path):
        with MetallStore.create(tmp_path / "ds") as store:
            for bad in ("", "a/b", ".hidden", "a\\b"):
                with pytest.raises(StoreError):
                    store[bad] = np.ones(1)


class TestReadOnly:
    def test_read_only_rejects_writes(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["x"] = np.ones(2)
        ro = MetallStore.open_read_only(path)
        with pytest.raises(StoreError):
            ro["y"] = np.ones(2)
        with pytest.raises(StoreError):
            del ro["x"]
        np.testing.assert_array_equal(ro["x"], np.ones(2))
        ro.close()

    def test_read_only_close_does_not_snapshot(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["x"] = np.ones(2)
        ro = MetallStore.open_read_only(path)
        ro.close()  # must not raise

    def test_writable_flag(self, tmp_path):
        path = tmp_path / "ds"
        st = MetallStore.create(path)
        assert st.writable
        st.close()
        assert not MetallStore.open_read_only(path).writable


class TestDurability:
    def test_snapshot_midway(self, tmp_path):
        path = tmp_path / "ds"
        store = MetallStore.create(path)
        store["x"] = np.arange(3)
        store.snapshot()
        # A second handle opened before close sees the snapshot.
        other = MetallStore.open_read_only(path)
        np.testing.assert_array_equal(other["x"], np.arange(3))
        other.close()
        store.close()

    def test_unsnapshotted_objects_not_visible(self, tmp_path):
        path = tmp_path / "ds"
        store = MetallStore.create(path)
        store["x"] = np.arange(3)
        other = MetallStore.open_read_only(path)
        assert "x" not in other
        other.close()
        store.close()

    def test_path_property(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            assert store.path == path
