"""MetallStore lifecycle — the Section 4.6 persistence substitute."""

import numpy as np
import pytest

from repro.errors import StoreCorruptError, StoreError
from repro.runtime.metall import MetallStore


class TestLifecycle:
    def test_create_open_roundtrip(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["arr"] = np.arange(10)
        with MetallStore.open(path) as store:
            np.testing.assert_array_equal(store["arr"], np.arange(10))

    def test_create_twice_rejected(self, tmp_path):
        path = tmp_path / "ds"
        MetallStore.create(path).close()
        with pytest.raises(StoreError):
            MetallStore.create(path)

    def test_create_on_nonempty_dir_rejected(self, tmp_path):
        path = tmp_path / "ds"
        path.mkdir()
        (path / "junk.txt").write_text("not a store")
        with pytest.raises(StoreError):
            MetallStore.create(path)

    def test_create_on_file_rejected(self, tmp_path):
        f = tmp_path / "plainfile"
        f.write_text("x")
        with pytest.raises(StoreError):
            MetallStore.create(f)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            MetallStore.open(tmp_path / "nope")

    def test_exists(self, tmp_path):
        path = tmp_path / "ds"
        assert not MetallStore.exists(path)
        MetallStore.create(path).close()
        assert MetallStore.exists(path)

    def test_remove(self, tmp_path):
        path = tmp_path / "ds"
        MetallStore.create(path).close()
        MetallStore.remove(path)
        assert not MetallStore.exists(path)

    def test_remove_missing_is_noop(self, tmp_path):
        MetallStore.remove(tmp_path / "nothing")

    def test_closed_store_rejects_access(self, tmp_path):
        store = MetallStore.create(tmp_path / "ds")
        store["x"] = np.ones(3)
        store.close()
        with pytest.raises(StoreError):
            store["x"]

    def test_double_close_is_noop(self, tmp_path):
        store = MetallStore.create(tmp_path / "ds")
        store.close()
        store.close()


class TestObjects:
    def test_ndarray_mmap_on_open(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["big"] = np.arange(100, dtype=np.float32)
        with MetallStore.open(path) as store:
            arr = store["big"]
            assert isinstance(arr, np.memmap)

    def test_dict_of_arrays(self, tmp_path):
        path = tmp_path / "ds"
        graph = {"ids": np.arange(6).reshape(2, 3), "dists": np.ones((2, 3))}
        with MetallStore.create(path) as store:
            store["graph"] = graph
        with MetallStore.open(path) as store:
            out = store["graph"]
            np.testing.assert_array_equal(out["ids"], graph["ids"])
            np.testing.assert_array_equal(out["dists"], graph["dists"])

    def test_pickle_fallback(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["meta"] = {"k": 10, "metric": "cosine"}
        with MetallStore.open(path) as store:
            assert store["meta"] == {"k": 10, "metric": "cosine"}

    def test_missing_object(self, tmp_path):
        with MetallStore.create(tmp_path / "ds") as store:
            with pytest.raises(StoreError):
                store["ghost"]

    def test_contains_and_keys(self, tmp_path):
        with MetallStore.create(tmp_path / "ds") as store:
            store["a"] = np.ones(2)
            store["b"] = {"x": 1}
            assert "a" in store and "b" in store and "c" not in store
            assert store.keys() == ["a", "b"]
            assert len(store) == 2
            assert list(iter(store)) == ["a", "b"]

    def test_delete_object(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["a"] = np.ones(2)
            store.snapshot()
            del store["a"]
            assert "a" not in store
        with MetallStore.open(path) as store:
            assert "a" not in store

    def test_update_object_across_sessions(self, tmp_path):
        # The paper's rapid-graph-update future-work scenario: reopen,
        # mutate, persist again.
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["v"] = np.zeros(4)
        with MetallStore.open(path) as store:
            arr = np.asarray(store["v"]).copy()
            arr += 1
            store["v"] = arr
        with MetallStore.open(path) as store:
            np.testing.assert_array_equal(np.asarray(store["v"]), np.ones(4))

    def test_invalid_names(self, tmp_path):
        with MetallStore.create(tmp_path / "ds") as store:
            for bad in ("", "a/b", ".hidden", "a\\b"):
                with pytest.raises(StoreError):
                    store[bad] = np.ones(1)


class TestReadOnly:
    def test_read_only_rejects_writes(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["x"] = np.ones(2)
        ro = MetallStore.open_read_only(path)
        with pytest.raises(StoreError):
            ro["y"] = np.ones(2)
        with pytest.raises(StoreError):
            del ro["x"]
        np.testing.assert_array_equal(ro["x"], np.ones(2))
        ro.close()

    def test_read_only_close_does_not_snapshot(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["x"] = np.ones(2)
        ro = MetallStore.open_read_only(path)
        ro.close()  # must not raise

    def test_writable_flag(self, tmp_path):
        path = tmp_path / "ds"
        st = MetallStore.create(path)
        assert st.writable
        st.close()
        assert not MetallStore.open_read_only(path).writable


class TestDurability:
    def test_snapshot_midway(self, tmp_path):
        path = tmp_path / "ds"
        store = MetallStore.create(path)
        store["x"] = np.arange(3)
        store.snapshot()
        # A second handle opened before close sees the snapshot.
        other = MetallStore.open_read_only(path)
        np.testing.assert_array_equal(other["x"], np.arange(3))
        other.close()
        store.close()

    def test_unsnapshotted_objects_not_visible(self, tmp_path):
        path = tmp_path / "ds"
        store = MetallStore.create(path)
        store["x"] = np.arange(3)
        other = MetallStore.open_read_only(path)
        assert "x" not in other
        other.close()
        store.close()

    def test_path_property(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            assert store.path == path


class TestCorruptionDetection:
    """Checksummed, atomically-replaced object files: truncation and
    bit-rot must surface as StoreCorruptError, never a parse crash."""

    @staticmethod
    def _create(tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["arr"] = np.arange(64, dtype=np.int64)
            store["meta"] = {"k": np.ones(4)}
        return path

    def test_no_temp_files_after_snapshot(self, tmp_path):
        path = self._create(tmp_path)
        assert not list(path.glob("*.tmp"))

    def test_truncation_detected_on_load(self, tmp_path):
        path = self._create(tmp_path)
        f = path / "arr.npy"
        f.write_bytes(f.read_bytes()[:-16])
        with MetallStore.open_read_only(path) as store:
            with pytest.raises(StoreCorruptError, match="truncated"):
                store["arr"]

    def test_bitrot_detected_under_verify(self, tmp_path):
        path = self._create(tmp_path)
        f = path / "arr.npy"
        raw = bytearray(f.read_bytes())
        raw[-1] ^= 0xFF  # same size, different content
        f.write_bytes(bytes(raw))
        with MetallStore.open_read_only(path, verify=True) as store:
            with pytest.raises(StoreCorruptError, match="SHA-256"):
                store["arr"]

    def test_bitrot_passes_size_check_without_verify(self, tmp_path):
        """The cheap always-on check is size-only; the flipped tail byte
        still *parses* — verify=True is what catches it (above)."""
        path = self._create(tmp_path)
        f = path / "arr.npy"
        raw = bytearray(f.read_bytes())
        raw[-1] ^= 0xFF
        f.write_bytes(bytes(raw))
        with MetallStore.open_read_only(path) as store:
            store["arr"]  # no exception

    def test_unparseable_pickle_detected(self, tmp_path):
        path = tmp_path / "ds"
        with MetallStore.create(path) as store:
            store["obj"] = {"a": 1, "b": [2, 3]}
        f = path / "obj.pkl"
        f.write_bytes(b"\x80" + b"\x00" * (f.stat().st_size - 1))
        with MetallStore.open_read_only(path) as store:
            with pytest.raises(StoreCorruptError, match="cannot parse"):
                store["obj"]

    def test_garbage_manifest_detected(self, tmp_path):
        path = self._create(tmp_path)
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(StoreCorruptError, match="manifest"):
            MetallStore.open_read_only(path)

    def test_corrupt_is_a_store_error(self):
        """Recovery code catching StoreError still sees corruption."""
        assert issubclass(StoreCorruptError, StoreError)
