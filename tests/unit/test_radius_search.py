"""Approximate radius (range) queries on the k-NN graph."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.distances.dense import sqeuclidean
from repro.errors import SearchError


@pytest.fixture(scope="module")
def searcher():
    from repro.datasets.synthetic import gaussian_mixture
    data = gaussian_mixture(300, 10, n_clusters=5, cluster_std=0.45, seed=71)
    adj = optimize_graph(brute_force_knn_graph(data, k=10), 1.5)
    assert adj.connected_fraction() == 1.0
    return data, KNNGraphSearcher(adj, data, seed=0)


def true_hits(data, q, radius):
    d = ((data.astype(np.float64) - q) ** 2).sum(axis=1)
    return set(np.flatnonzero(d <= radius).tolist())


class TestRadiusQuery:
    def test_all_hits_within_radius(self, searcher):
        data, s = searcher
        q = data[5]
        res = s.query_radius(q, radius=0.5, epsilon=0.3)
        for vid, d in zip(res.ids, res.dists):
            assert d <= 0.5
            assert d == pytest.approx(sqeuclidean(q, data[int(vid)]), rel=1e-6)

    def test_high_recall_of_true_range(self, searcher):
        data, s = searcher
        q = data[17]
        want = true_hits(data, q, 0.8)
        res = s.query_radius(q, radius=0.8, epsilon=0.3, l=20)
        got = set(res.ids.tolist())
        assert len(got & want) / len(want) > 0.9

    def test_sorted_and_distinct(self, searcher):
        data, s = searcher
        res = s.query_radius(data[0], radius=1.0, epsilon=0.2)
        assert (np.diff(res.dists) >= 0).all()
        assert len(set(res.ids.tolist())) == len(res.ids)

    def test_zero_radius_self_only(self, searcher):
        data, s = searcher
        res = s.query_radius(data[3], radius=0.0, epsilon=0.2, l=30)
        # Only exact duplicates qualify; point 3 itself should be found
        # whenever the traversal reaches it.
        assert set(res.ids.tolist()) <= true_hits(data, data[3], 0.0)

    def test_bigger_radius_more_hits(self, searcher):
        data, s = searcher
        small = s.query_radius(data[8], radius=0.3, epsilon=0.3, l=20)
        big = s.query_radius(data[8], radius=1.2, epsilon=0.3, l=20)
        assert len(big.ids) >= len(small.ids)

    def test_max_results_caps(self, searcher):
        data, s = searcher
        res = s.query_radius(data[0], radius=100.0, epsilon=0.1,
                             max_results=7)
        assert len(res.ids) <= 7

    def test_validation(self, searcher):
        data, s = searcher
        with pytest.raises(SearchError):
            s.query_radius(data[0], radius=-1.0)
        with pytest.raises(SearchError):
            s.query_radius(data[0], radius=1.0, max_results=0)

    def test_work_bounded(self, searcher):
        data, s = searcher
        res = s.query_radius(data[2], radius=0.4, epsilon=0.2)
        assert res.n_distance_evals <= len(data)
        assert res.n_visited <= len(data)
