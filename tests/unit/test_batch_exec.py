"""Unit tests for the batch execution engine's building blocks:

- ``NeighborHeap.checked_push_batch`` — must be semantically identical
  to per-element ``checked_push`` (duplicates, ties, partial fill,
  mid-batch evict/re-push),
- YGM run coalescing — contiguous same-``(dest, handler)`` runs are
  delivered as ONE batch-handler invocation, split by handler changes
  and never merged across destinations, while ``MessageStats`` stays
  exactly what the scalar engine records.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.heap import NeighborHeap
from repro.errors import RuntimeStateError
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


class TestCheckedPushBatch:
    def test_partial_fill(self):
        h = NeighborHeap(5)
        assert h.checked_push_batch([1, 2], [0.5, 0.2]) == 2
        assert len(h) == 2 and not h.full
        assert h.worst_distance() == np.inf

    def test_duplicates_within_batch_rejected(self):
        h = NeighborHeap(4)
        assert h.checked_push_batch([7, 7, 7], [0.3, 0.1, 0.2]) == 1
        assert len(h) == 1
        # First occurrence wins, exactly like sequential checked_push.
        assert dict((i, d) for i, d, _ in h.entries())[7] == 0.3

    def test_tie_with_worst_rejected(self):
        h = NeighborHeap(2)
        h.checked_push(1, 1.0)
        h.checked_push(2, 2.0)
        # d == worst is a rejection (strict <), also in batch form.
        assert h.checked_push_batch([3], [2.0]) == 0
        assert 3 not in h

    def test_evicted_id_can_repush_later_in_batch(self):
        h = NeighborHeap(2)
        h.checked_push(1, 1.0)
        h.checked_push(2, 2.0)
        # 3 evicts 2; then 2 re-enters closer, evicting 1.
        assert h.checked_push_batch([3, 2], [0.5, 0.2]) == 2
        assert sorted(h._members) == [2, 3]

    def test_flag_propagates(self):
        h = NeighborHeap(3)
        h.checked_push_batch([1, 2], [0.1, 0.2], flag=False)
        assert all(not f for _, _, f in h.entries())

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_sequential_checked_push(self, seed):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, 40, size=200)
        dists = np.round(rng.random(200), 2)  # rounding forces ties
        a, b = NeighborHeap(8), NeighborHeap(8)
        total = sum(a.checked_push(int(i), float(d)) for i, d in zip(ids, dists))
        assert b.checked_push_batch(ids, dists) == total
        assert np.array_equal(a.ids, b.ids)
        assert a.dists.tobytes() == b.dists.tobytes()
        assert np.array_equal(a.flags, b.flags)
        assert a._members == b._members


def make_world(nodes=2, ppn=2, flush=1024):
    cluster = SimCluster(ClusterConfig(nodes=nodes, procs_per_node=ppn))
    return YGMWorld(cluster, flush_threshold=flush)


class TestCoalescing:
    def _instrument(self, world):
        """Register scalar handlers h/g plus a recording batch variant
        of h; returns (batch_runs, delivered) logs."""
        batch_runs, delivered = [], []

        def h(ctx, x):
            delivered.append(("h", ctx.rank, x))

        def g(ctx, x):
            delivered.append(("g", ctx.rank, x))

        def h_batch(ctx, args_list):
            batch_runs.append((ctx.rank, [a[0] for a in args_list]))
            for (x,) in args_list:
                h(ctx, x)

        world.register_handlers(h=h, g=g)
        world.register_batch_handler("h", h_batch)
        return batch_runs, delivered

    def test_contiguous_run_is_one_batch_invocation(self):
        world = make_world()
        batch_runs, delivered = self._instrument(world)
        for i in range(5):
            world.async_call(0, 1, "h", i)
        world.barrier()
        assert batch_runs == [(1, [0, 1, 2, 3, 4])]
        assert delivered == [("h", 1, i) for i in range(5)]

    def test_handler_change_splits_the_run(self):
        world = make_world()
        batch_runs, delivered = self._instrument(world)
        for i in range(3):
            world.async_call(0, 1, "h", i)
        world.async_call(0, 1, "g", 99)
        for i in range(3, 5):
            world.async_call(0, 1, "h", i)
        world.barrier()
        assert batch_runs == [(1, [0, 1, 2]), (1, [3, 4])]
        # Delivery order is untouched by coalescing.
        assert delivered == [("h", 1, 0), ("h", 1, 1), ("h", 1, 2),
                             ("g", 1, 99), ("h", 1, 3), ("h", 1, 4)]

    def test_runs_never_merge_across_destinations(self):
        world = make_world()
        batch_runs, _ = self._instrument(world)
        for i in range(4):
            world.async_call(0, 1 + (i % 2), "h", i)
        world.barrier()
        by_dest = sorted(batch_runs)
        assert by_dest == [(1, [0, 2]), (2, [1, 3])]

    def test_stats_match_scalar_world_per_type(self):
        def drive(world):
            for i in range(6):
                world.async_call(0, 1, "h", i, msg_type="type1")
            world.async_call(0, 1, "g", 7, msg_type="type2")
            for i in range(3):
                world.async_call(0, 2, "h", i, msg_type="type1")
            world.barrier()
            return world.cluster.stats.snapshot()

        scalar = make_world()
        scalar.register_handlers(h=lambda ctx, x: None, g=lambda ctx, x: None)
        batched = make_world()
        self._instrument(batched)
        assert drive(scalar) == drive(batched)
        assert scalar.handler_invocations == batched.handler_invocations

    def test_duplicate_batch_registration_rejected(self):
        world = make_world()
        world.register_handler("h", lambda ctx, x: None)
        world.register_batch_handler("h", lambda ctx, args_list: None)
        with pytest.raises(RuntimeStateError):
            world.register_batch_handler("h", lambda ctx, args_list: None)
