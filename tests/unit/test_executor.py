"""Executor layer: backend resolution and rank-section scheduling."""

import pytest

from repro.core.executor import (
    Executor,
    ParallelExecutor,
    SimExecutor,
    make_executor,
    resolve_backend,
    resolve_workers,
)
from repro.errors import ConfigError


class TestResolveBackend:
    def test_default_is_sim(self):
        assert resolve_backend(None, env={}) == "sim"

    def test_explicit_wins_over_env(self):
        assert resolve_backend("sim", env={"REPRO_BACKEND": "parallel"}) == "sim"

    def test_env_fallback(self):
        assert resolve_backend(None, env={"REPRO_BACKEND": "parallel"}) == "parallel"
        assert resolve_backend(None, env={"REPRO_BACKEND": " Sim "}) == "sim"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError):
            resolve_backend("threads", env={})
        with pytest.raises(ConfigError):
            resolve_backend(None, env={"REPRO_BACKEND": "mpi"})


class TestResolveWorkers:
    def test_explicit_capped_at_world_size(self):
        assert resolve_workers(16, 4, env={}) == 4
        assert resolve_workers(2, 4, env={}) == 2

    def test_zero_means_auto(self):
        assert resolve_workers(0, 64, env={"REPRO_WORKERS": "3"}) == 3
        # Without the env var, auto resolves to the core count (>= 1).
        assert resolve_workers(0, 64, env={}) >= 1

    def test_invalid_values_raise(self):
        with pytest.raises(ConfigError):
            resolve_workers(-1, 4, env={})
        with pytest.raises(ConfigError):
            resolve_workers(0, 4, env={"REPRO_WORKERS": "many"})
        with pytest.raises(ConfigError):
            resolve_workers(0, 4, env={"REPRO_WORKERS": "0"})


class TestMakeExecutor:
    def test_sim(self):
        ex = make_executor("sim", 0, 4, env={})
        assert isinstance(ex, SimExecutor)
        assert not ex.parallel
        ex.shutdown()

    def test_parallel(self):
        ex = make_executor("parallel", 2, 4, env={})
        assert isinstance(ex, ParallelExecutor)
        assert ex.parallel
        assert ex.workers == 2
        ex.shutdown()

    def test_parallel_workers_must_be_positive(self):
        with pytest.raises(ConfigError):
            ParallelExecutor(0)


@pytest.fixture(params=["sim", "parallel"])
def executor(request):
    ex = (SimExecutor() if request.param == "sim"
          else ParallelExecutor(workers=2))
    yield ex
    ex.shutdown()


class TestMapRanks:
    def test_repeat_until_stable(self, executor):
        """map_ranks loops full passes until one makes no progress and
        returns the summed per-rank progress counts."""
        remaining = [3, 1, 0, 2]
        total_expected = sum(remaining)

        def fn(rank):
            if remaining[rank] > 0:
                remaining[rank] -= 1
                return 1
            return 0

        assert executor.map_ranks(fn, 4) == total_expected
        assert remaining == [0, 0, 0, 0]

    def test_exceptions_propagate(self, executor):
        def fn(rank):
            if rank == 2:
                raise ValueError("boom")
            return 0

        with pytest.raises(ValueError, match="boom"):
            executor.map_ranks(fn, 4)


class _Ctx:
    def __init__(self, rank):
        self.rank = rank


class TestRunRanks:
    def test_runs_every_ctx_once(self, executor):
        seen = [0] * 6
        executor.run_ranks(lambda ctx: seen.__setitem__(ctx.rank, 1),
                           [_Ctx(r) for r in range(6)])
        assert seen == [1] * 6

    def test_empty_ctxs(self, executor):
        executor.run_ranks(lambda ctx: (_ for _ in ()).throw(AssertionError),
                           [])

    def test_exceptions_propagate(self, executor):
        def fn(ctx):
            if ctx.rank == 1:
                raise RuntimeError("section failed")

        with pytest.raises(RuntimeError, match="section failed"):
            executor.run_ranks(fn, [_Ctx(r) for r in range(4)])


class TestBaseExecutorDucktype:
    def test_interface(self):
        """The comm layer duck-types executors: these five members are
        the contract."""
        for ex in (SimExecutor(), ParallelExecutor(workers=1)):
            assert hasattr(ex, "parallel")
            assert hasattr(ex, "workers")
            assert callable(ex.map_ranks)
            assert callable(ex.run_ranks)
            assert callable(ex.shutdown)
            ex.shutdown()
            ex.shutdown()  # idempotent

    def test_base_is_inline(self):
        order = []
        Executor().run_ranks(lambda ctx: order.append(ctx.rank),
                             [_Ctx(r) for r in range(4)])
        assert order == [0, 1, 2, 3]
