"""Graph serialization."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.core.optimization import optimize_graph
from repro.errors import DatasetError
from repro.io.graph_io import load_adjacency, load_graph, save_adjacency, save_graph


class TestKNNGraphIO:
    def test_roundtrip(self, tmp_path, tiny_dense):
        g = brute_force_knn_graph(tiny_dense, k=4)
        path = tmp_path / "g.npz"
        save_graph(path, g)
        g2 = load_graph(path)
        np.testing.assert_array_equal(g.ids, g2.ids)
        np.testing.assert_allclose(g.dists, g2.dists)

    def test_wrong_kind_rejected(self, tmp_path, tiny_dense):
        g = brute_force_knn_graph(tiny_dense, k=4)
        adj = optimize_graph(g)
        path = tmp_path / "a.npz"
        save_adjacency(path, adj)
        with pytest.raises(DatasetError):
            load_graph(path)


class TestAdjacencyIO:
    def test_roundtrip(self, tmp_path, tiny_dense):
        adj = optimize_graph(brute_force_knn_graph(tiny_dense, k=4))
        path = tmp_path / "a.npz"
        save_adjacency(path, adj)
        adj2 = load_adjacency(path)
        np.testing.assert_array_equal(adj.indptr, adj2.indptr)
        np.testing.assert_array_equal(adj.indices, adj2.indices)
        np.testing.assert_allclose(adj.dists, adj2.dists)

    def test_wrong_kind_rejected(self, tmp_path, tiny_dense):
        g = brute_force_knn_graph(tiny_dense, k=4)
        path = tmp_path / "g.npz"
        save_graph(path, g)
        with pytest.raises(DatasetError):
            load_adjacency(path)

    def test_loaded_graph_usable_for_search(self, tmp_path, tiny_dense):
        from repro.core.search import KNNGraphSearcher
        adj = optimize_graph(brute_force_knn_graph(tiny_dense, k=4))
        path = tmp_path / "a.npz"
        save_adjacency(path, adj)
        s = KNNGraphSearcher(load_adjacency(path), tiny_dense, seed=0)
        res = s.query(tiny_dense[0], l=3, epsilon=0.3)
        assert len(res.ids) == 3
