"""Convergence diagnostics."""

import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.config import NNDescentConfig
from repro.core.nndescent import NNDescent
from repro.eval.convergence import ConvergenceTrace, trace_convergence


@pytest.fixture(scope="module")
def traced(small_dense):
    truth = brute_force_knn_graph(small_dense, k=6)
    builder = NNDescent(small_dense, NNDescentConfig(k=6, seed=71, delta=0.0001))
    result, trace = trace_convergence(builder, truth=truth)
    return result, trace, truth


class TestTrace:
    def test_one_record_per_iteration(self, traced):
        result, trace, _ = traced
        assert trace.iterations == result.iterations
        assert trace.update_counts == result.update_counts

    def test_recall_climbs(self, traced):
        _, trace, _ = traced
        assert trace.recalls[-1] >= trace.recalls[0]
        assert trace.recalls[-1] > 0.9

    def test_update_rate(self, traced):
        _, trace, _ = traced
        rate = trace.update_rate(0)
        assert rate == pytest.approx(trace.update_counts[0] / (6 * trace.n))

    def test_iterations_for_delta(self, traced):
        _, trace, _ = traced
        # A huge delta stops after the first iteration...
        assert trace.iterations_for_delta(10.0) == 1
        # ...and delta=0 never triggers inside the recorded window.
        assert trace.iterations_for_delta(0.0) == trace.iterations

    def test_monotone_decay(self, traced):
        _, trace, _ = traced
        assert trace.monotone_decay()

    def test_report_renders(self, traced):
        _, trace, _ = traced
        text = trace.report()
        assert "NN-Descent convergence" in text
        assert "graph recall" in text

    def test_trace_without_truth(self, small_dense):
        builder = NNDescent(small_dense, NNDescentConfig(k=5, seed=72))
        result, trace = trace_convergence(builder)
        assert all(r is None for r in trace.recalls)
        assert trace.iterations == result.iterations
        assert "-" in trace.report()

    def test_callback_contract(self, small_dense):
        snapshots = []
        builder = NNDescent(small_dense, NNDescentConfig(k=5, seed=73))
        builder.build(iteration_callback=lambda it, c, g: snapshots.append((it, c, g.n)))
        assert [s[0] for s in snapshots] == list(range(len(snapshots)))
        assert all(s[2] == len(small_dense) for s in snapshots)


class TestEmptyTrace:
    def test_zero_state(self):
        trace = ConvergenceTrace()
        assert trace.iterations == 0
        assert trace.update_rate(0) == 0.0 if trace.update_counts else True
        assert trace.monotone_decay()
