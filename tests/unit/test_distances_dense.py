"""Dense metric correctness: scalar, one-to-many, and pairwise forms."""

import numpy as np
import pytest

from repro.distances import dense


A = np.array([1.0, 2.0, 3.0])
B = np.array([4.0, 6.0, 3.0])


class TestScalar:
    def test_sqeuclidean(self):
        assert dense.sqeuclidean(A, B) == pytest.approx(9 + 16)

    def test_euclidean(self):
        assert dense.euclidean(A, B) == pytest.approx(5.0)

    def test_manhattan(self):
        assert dense.manhattan(A, B) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert dense.chebyshev(A, B) == pytest.approx(4.0)

    def test_cosine_identical_is_zero(self):
        assert dense.cosine(A, A) == pytest.approx(0.0, abs=1e-12)

    def test_cosine_orthogonal_is_one(self):
        assert dense.cosine([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_cosine_zero_vector(self):
        assert dense.cosine([0, 0], [1, 2]) == 1.0
        assert dense.cosine([1, 2], [0, 0]) == 1.0

    def test_inner_product(self):
        assert dense.inner_product([1, 2], [3, 4]) == pytest.approx(1 - 11)

    def test_hamming(self):
        assert dense.hamming([1, 2, 3, 4], [1, 0, 3, 0]) == pytest.approx(0.5)

    def test_hamming_identical(self):
        assert dense.hamming([1, 2], [1, 2]) == 0.0

    def test_identity_of_indiscernibles_l2(self):
        assert dense.euclidean(A, A) == 0.0

    def test_uint8_inputs(self):
        a = np.array([250, 3], dtype=np.uint8)
        b = np.array([1, 255], dtype=np.uint8)
        # Must not overflow uint8 arithmetic.
        assert dense.sqeuclidean(a, b) == pytest.approx(249**2 + 252**2)


ONE_TO_MANY = [
    (dense.sqeuclidean, dense.sqeuclidean_one_to_many),
    (dense.euclidean, dense.euclidean_one_to_many),
    (dense.manhattan, dense.manhattan_one_to_many),
    (dense.chebyshev, dense.chebyshev_one_to_many),
    (dense.cosine, dense.cosine_one_to_many),
    (dense.inner_product, dense.inner_product_one_to_many),
]


class TestOneToMany:
    @pytest.mark.parametrize("scalar,batch", ONE_TO_MANY)
    def test_matches_scalar(self, scalar, batch):
        rng = np.random.default_rng(0)
        q = rng.normal(size=7)
        X = rng.normal(size=(20, 7))
        got = batch(q, X)
        want = np.array([scalar(q, X[i]) for i in range(20)])
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)

    def test_hamming_one_to_many(self):
        q = np.array([1, 2, 3])
        X = np.array([[1, 2, 3], [0, 0, 0], [1, 0, 3]])
        np.testing.assert_allclose(
            dense.hamming_one_to_many(q, X), [0.0, 1.0, 1 / 3]
        )

    def test_cosine_zero_rows(self):
        q = np.array([1.0, 0.0])
        X = np.array([[0.0, 0.0], [1.0, 0.0]])
        out = dense.cosine_one_to_many(q, X)
        assert out[0] == 1.0 and out[1] == pytest.approx(0.0, abs=1e-12)


PAIRWISE = [
    (dense.sqeuclidean, dense.sqeuclidean_pairwise),
    (dense.euclidean, dense.euclidean_pairwise),
    (dense.manhattan, dense.manhattan_pairwise),
    (dense.chebyshev, dense.chebyshev_pairwise),
    (dense.cosine, dense.cosine_pairwise),
    (dense.inner_product, dense.inner_product_pairwise),
]


class TestPairwise:
    @pytest.mark.parametrize("scalar,pairwise", PAIRWISE)
    def test_matches_scalar(self, scalar, pairwise):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(6, 5))
        Y = rng.normal(size=(4, 5))
        got = pairwise(X, Y)
        want = np.array([[scalar(X[i], Y[j]) for j in range(4)] for i in range(6)])
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)

    def test_sqeuclidean_nonnegative_after_cancellation(self):
        # Near-identical rows stress the expanded-form cancellation.
        X = np.full((3, 4), 1e6)
        out = dense.sqeuclidean_pairwise(X, X)
        assert (out >= 0).all()

    def test_hamming_pairwise(self):
        X = np.array([[1, 2], [3, 4]])
        out = dense.hamming_pairwise(X, X)
        np.testing.assert_allclose(out, [[0, 1], [1, 0]])

    def test_cosine_pairwise_zero_rows(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = dense.cosine_pairwise(X, X)
        assert out[0, 0] == 1.0  # zero vs zero
        assert out[0, 1] == 1.0
        assert out[1, 1] == pytest.approx(0.0, abs=1e-12)
