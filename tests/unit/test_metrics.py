"""Metrics registry: thread safety, no-op mode, exporter schemas."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.core.executor import ParallelExecutor
from repro.runtime.metrics import (
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    SNAPSHOT_SCHEMA,
    SpanRecord,
    deterministic_projection,
)


class TestCounters:
    def test_inc_and_read(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("missing") == 0
        assert m.counter("missing", default=-1) == -1

    def test_set_counter_is_absolute_and_idempotent(self):
        m = MetricsRegistry()
        m.inc("x", 100)
        m.set_counter("x", 7)
        m.set_counter("x", 7)
        assert m.counter("x") == 7

    def test_counters_with_prefix(self):
        m = MetricsRegistry()
        m.inc("messages.sent.type1", 3)
        m.inc("messages.sent.type3", 1)
        m.inc("messages.bytes.type1", 24)
        assert m.counters_with_prefix("messages.sent.") == {
            "type1": 3, "type3": 1}

    def test_gauges_last_write_wins(self):
        m = MetricsRegistry()
        m.set_gauge("sim.seconds", 1.5)
        m.set_gauge("sim.seconds", 2.5)
        assert m.snapshot()["gauges"]["sim.seconds"] == 2.5

    def test_reset_clears_everything(self):
        m = MetricsRegistry()
        m.inc("a")
        m.set_gauge("g", 1.0)
        with m.span("p"):
            pass
        m.reset()
        snap = m.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["timers"] == {}
        assert snap["spans"] == []


class TestThreadSafety:
    """Satellite: concurrent increments must sum exactly (no lost
    updates), exercised through the same ParallelExecutor that schedules
    the parallel backend's rank sections."""

    def test_concurrent_inc_under_parallel_executor_sums_exactly(self):
        m = MetricsRegistry()
        world_size, per_rank = 16, 500
        done = [False] * world_size

        def section(rank: int) -> int:
            if done[rank]:
                return 0
            done[rank] = True
            for _ in range(per_rank):
                m.inc("hammer")
                m.inc(f"rank.{rank}")
            return 1

        ex = ParallelExecutor(workers=8)
        try:
            ex.map_ranks(section, world_size)
        finally:
            ex.shutdown()
        assert m.counter("hammer") == world_size * per_rank
        for rank in range(world_size):
            assert m.counter(f"rank.{rank}") == per_rank

    def test_concurrent_spans_and_observations(self):
        m = MetricsRegistry()
        n_threads, per_thread = 8, 200

        def work():
            for i in range(per_thread):
                with m.span("work", cat="test", i=i):
                    pass
                m.observe("lat", 1e-6 * (i + 1))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = m.snapshot()
        assert snap["timers"]["work"]["count"] == n_threads * per_thread
        assert len(snap["spans"]) == n_threads * per_thread
        assert snap["histograms"]["lat"]["count"] == n_threads * per_thread
        # Dense per-registry thread ids, one per participating thread.
        tids = {s["tid"] for s in snap["spans"]}
        assert tids == set(range(len(tids)))
        assert len(tids) <= n_threads


class TestNullRegistry:
    """Satellite: the disabled mode allocates nothing and stays empty."""

    def test_singleton_disabled(self):
        assert NULL_METRICS.enabled is False
        assert isinstance(NULL_METRICS, NullMetricsRegistry)

    def test_span_returns_shared_object(self):
        # Zero allocation per use: every call hands back the same
        # reusable no-op context manager.
        s1 = NULL_METRICS.span("a", cat="phase", x=1)
        s2 = NULL_METRICS.span("b", cat="io")
        assert s1 is s2
        with s1:
            pass

    def test_all_writers_are_noops(self):
        NULL_METRICS.inc("a", 5)
        NULL_METRICS.set_counter("b", 9)
        NULL_METRICS.set_gauge("g", 1.0)
        NULL_METRICS.observe("h", 0.5)
        with NULL_METRICS.span("p"):
            pass
        snap = NULL_METRICS.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}
        assert snap["spans"] == []
        assert NULL_METRICS.counter("a") == 0
        assert NULL_METRICS.to_chrome_trace()["traceEvents"] == []


class TestHistogram:
    def test_bucket_index_monotone(self):
        m = MetricsRegistry()
        idx = [m._bucket_index(s) for s in
               (0.0, 1e-7, 1e-6, 1e-3, 1.0, 63.9, 65.0, float("inf"))]
        assert idx == sorted(idx)
        assert idx[0] == 0
        assert idx[-1] == len(HISTOGRAM_BUCKETS)

    def test_bucket_bound_covers_observation(self):
        m = MetricsRegistry()
        for s in (3e-6, 0.02, 1.7, 42.0):
            i = m._bucket_index(s)
            assert s <= HISTOGRAM_BUCKETS[i]
            if i > 0:
                assert s > HISTOGRAM_BUCKETS[i - 1]

    def test_observe_accumulates(self):
        m = MetricsRegistry()
        m.observe("x", 0.5)
        m.observe("x", 0.25)
        h = m.snapshot()["histograms"]["x"]
        assert h["count"] == 2
        assert h["sum_seconds"] == pytest.approx(0.75)
        assert sum(h["buckets"].values()) == 2


class TestSpans:
    def test_span_records_and_timer(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 0.25
            return clock_value[0]

        m = MetricsRegistry(clock=clock)
        with m.span("phase.init", iteration=0):
            pass
        assert m.timer_seconds("phase.init") == pytest.approx(0.25)
        (rec,) = m.spans
        assert isinstance(rec, SpanRecord)
        assert rec.name == "phase.init"
        assert rec.cat == "phase"
        assert rec.args == {"iteration": 0}
        assert rec.duration == pytest.approx(0.25)
        assert rec.start >= 0.0

    def test_phase_names_first_seen_order(self):
        m = MetricsRegistry()
        for name in ("init", "sample", "init", "gather"):
            with m.span(name):
                pass
        with m.span("checkpoint.write", cat="io"):
            pass
        assert m.phase_names() == ["init", "sample", "gather"]


class TestExporterSchemas:
    """Satellite: snapshot and Chrome-trace exports validate against
    their documented shapes and survive a JSON round trip."""

    @staticmethod
    def _populated() -> MetricsRegistry:
        m = MetricsRegistry()
        m.inc("messages.sent.type1", 10)
        m.set_counter("bytes.sent", 640)
        m.set_gauge("sim.seconds", 0.125)
        m.observe("lat", 0.001)
        with m.span("phase.init"):
            with m.span("checkpoint.write", cat="io", iteration=1):
                pass
        return m

    def test_snapshot_schema(self):
        snap = self._populated().snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["enabled"] is True
        assert set(snap) == {"schema", "enabled", "counters", "gauges",
                             "timers", "histograms", "spans"}
        assert all(isinstance(v, int) for v in snap["counters"].values())
        assert all(isinstance(v, float) for v in snap["gauges"].values())
        for t in snap["timers"].values():
            assert set(t) == {"count", "seconds"}
        for h in snap["histograms"].values():
            assert set(h) == {"buckets", "count", "sum_seconds"}
            assert sum(h["buckets"].values()) == h["count"]
        for s in snap["spans"]:
            assert set(s) == {"name", "cat", "start", "end", "tid", "args"}
            assert s["end"] >= s["start"] >= 0.0
        # Round trip: everything is plain JSON.
        assert json.loads(json.dumps(snap)) == snap

    def test_chrome_trace_schema(self):
        trace = self._populated().to_chrome_trace(process_name="unit")
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "M", "C"}
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "unit"
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            if e["ph"] == "C":
                assert isinstance(e["args"]["value"], int)
        assert json.loads(json.dumps(trace)) == trace

    def test_deterministic_projection_drops_wall_clock(self):
        snap = self._populated().snapshot()
        proj = deterministic_projection(snap)
        assert set(proj) == {"schema", "counters", "span_names",
                             "timer_counts", "sim_gauges"}
        assert proj["span_names"] == ["checkpoint.write", "phase.init"]
        assert proj["timer_counts"] == {"checkpoint.write": 1,
                                        "phase.init": 1}
        assert proj["sim_gauges"] == {"sim.seconds": 0.125}
        flat = json.dumps(proj)
        assert "seconds\":" not in flat.replace("sim.seconds", "")

    def test_bucket_labels_are_powers_of_two(self):
        m = MetricsRegistry()
        m.observe("x", 0.02)
        labels = list(m.snapshot()["histograms"]["x"]["buckets"])
        for label in labels:
            if label != "+Inf":
                assert math.log2(float(label)) == int(math.log2(float(label)))
