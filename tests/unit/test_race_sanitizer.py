"""Barrier-epoch race sanitizer (``REPRO_SANITIZE=race``)."""

import os
import threading

import numpy as np
import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.analysis.race import RaceSanitizer, TrackedLock, race_requested
from repro.config import ClusterConfig as CC
from repro.core.executor import Executor, ParallelExecutor
from repro.errors import RaceConditionError
from repro.runtime.metrics import NULL_METRICS, MetricsRegistry
from repro.runtime.transports.base import Transport
from repro.runtime.transports.local import LocalTransport
from repro.runtime.ygm import YGMWorld


def _from_thread(fn):
    """Run ``fn`` on a fresh thread, re-raising anything it raised."""
    box = {}

    def runner():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["exc"] = exc

    t = threading.Thread(target=runner)
    t.start()
    t.join()
    if "exc" in box:
        raise box["exc"]


class TestRaceRequested:
    def test_race_value(self):
        assert race_requested({"REPRO_SANITIZE": "race"})
        assert race_requested({"REPRO_SANITIZE": " RACE "})

    def test_other_values_do_not_enable(self):
        # "1" is the *ownership* sanitizer; the modes are independent.
        assert not race_requested({"REPRO_SANITIZE": "1"})
        assert not race_requested({"REPRO_SANITIZE": "true"})
        assert not race_requested({})
        assert not race_requested({"REPRO_SANITIZE": ""})


class TestConflictDetection:
    def test_same_thread_is_never_a_race(self):
        san = RaceSanitizer()
        for _ in range(5):
            san.access(("cell",), write=True)
        assert san.races == []

    def test_cross_thread_same_epoch_write_write(self):
        """Detection is epoch-based: no wall-clock overlap is needed."""
        san = RaceSanitizer(raise_on_race=False)
        san.access(("cell",), write=True)
        _from_thread(lambda: san.access(("cell",), write=True))
        assert len(san.races) == 1
        report = san.races[0]
        assert report.first.thread != report.second.thread
        assert report.first.epoch == report.second.epoch
        assert "race on cell" in report.format()

    def test_write_read_conflicts_too(self):
        san = RaceSanitizer(raise_on_race=False)
        san.access(("cell",), write=True)
        _from_thread(lambda: san.access(("cell",), write=False))
        assert len(san.races) == 1

    def test_read_read_is_clean(self):
        san = RaceSanitizer()
        san.access(("cell",), write=False)
        _from_thread(lambda: san.access(("cell",), write=False))
        assert san.races == []

    def test_distinct_cells_are_independent(self):
        san = RaceSanitizer()
        san.access(("cell", 0), write=True)
        _from_thread(lambda: san.access(("cell", 1), write=True))
        assert san.races == []

    def test_dispatch_edges_separate_epochs(self):
        """Driver code between dispatches never shares an epoch with
        task code: the epoch advances at both edges."""
        san = RaceSanitizer()
        san.begin_dispatch()
        _from_thread(lambda: san.access(("cell",), write=True))
        san.end_dispatch()
        san.access(("cell",), write=True)  # driver side, next epoch
        assert san.races == []

    def test_duplicate_accesses_report_once(self):
        san = RaceSanitizer(raise_on_race=False)
        san.access(("cell",), write=True)
        san.access(("cell",), write=True)

        def other():
            san.access(("cell",), write=True)
            san.access(("cell",), write=True)

        _from_thread(other)
        assert len(san.races) == 1

    def test_raise_mode_carries_both_sides(self):
        san = RaceSanitizer()
        san.access(("counter",), write=True)
        with pytest.raises(RaceConditionError) as info:
            _from_thread(lambda: san.access(("counter",), write=True))
        assert info.value.cell == ("counter",)
        assert info.value.first is not None
        assert info.value.second is not None


class TestLocksets:
    def test_common_tracked_lock_suppresses(self):
        san = RaceSanitizer()
        lock = san.tracked_lock("shared")

        def touch():
            with lock:
                san.access(("cell",), write=True)

        touch()
        _from_thread(touch)
        assert san.races == []

    def test_disjoint_locks_still_conflict(self):
        san = RaceSanitizer(raise_on_race=False)
        a, b = san.tracked_lock("a"), san.tracked_lock("b")
        with a:
            san.access(("cell",), write=True)

        def other():
            with b:
                san.access(("cell",), write=True)

        _from_thread(other)
        assert len(san.races) == 1

    def test_tracked_lock_wraps_existing_lock(self):
        san = RaceSanitizer()
        raw = threading.Lock()
        tracked = san.tracked_lock("wrapped", raw)
        assert isinstance(tracked, TrackedLock)
        with tracked:
            assert raw.locked()
            assert "wrapped" in san.lockset()
        assert not raw.locked()
        assert san.lockset() == frozenset()


class TestParallelExecutorIntegration:
    @pytest.fixture()
    def wide_executor(self, monkeypatch):
        """Chunk width is capped at the core count; force 4 lanes so the
        seeded race has real cross-thread sharing."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        ex = ParallelExecutor(workers=4)
        yield ex
        ex.shutdown()

    def test_seeded_unsynchronized_counter_is_caught(self, wide_executor):
        """The seeded true positive: every rank bumps one shared counter
        with no lock.  The sanitizer must flag it."""
        san = RaceSanitizer(raise_on_race=False)
        wide_executor.race = san
        counter = [0]

        def bump(rank):
            san.access(("counter",), write=True)
            counter[0] += 1
            return 0

        wide_executor.map_ranks(bump, 8)
        assert len(san.races) >= 1
        assert all(r.cell == ("counter",) for r in san.races)

    def test_seeded_race_raises_in_raise_mode(self, wide_executor):
        san = RaceSanitizer()
        wide_executor.race = san

        def bump(rank):
            san.access(("counter",), write=True)
            return 0

        with pytest.raises(RaceConditionError):
            wide_executor.map_ranks(bump, 8)

    def test_per_rank_cells_are_clean(self, wide_executor):
        """The sanctioned pattern — rank-owned cells — stays silent."""
        san = RaceSanitizer()
        wide_executor.race = san

        def bump(rank):
            san.access(("cell", rank), write=True)
            return 0

        wide_executor.map_ranks(bump, 8)
        wide_executor.run_ranks(
            lambda ctx: san.access(("cell", ctx), write=True), range(8))
        assert san.races == []
        assert san.epoch == 4  # two dispatches, both edges advance

    def test_off_mode_is_unhooked(self):
        assert Executor.race is None
        assert Transport.race is None
        assert MetricsRegistry.race is None


class TestWorldAttachment:
    def _world(self, **kw):
        cluster = LocalTransport(CC(nodes=2, procs_per_node=2))
        ex = ParallelExecutor(workers=2)
        return YGMWorld(cluster, executor=ex, **kw), cluster, ex

    def test_race_true_attaches_everywhere(self):
        metrics = MetricsRegistry()
        world, cluster, ex = self._world(race=True, metrics=metrics)
        assert isinstance(world.race, RaceSanitizer)
        assert cluster.race is world.race
        assert ex.race is world.race
        assert metrics.race is world.race
        assert isinstance(cluster._fault_lock, TrackedLock)

    def test_explicit_instance_is_used(self):
        san = RaceSanitizer(raise_on_race=False)
        world, cluster, ex = self._world(race=san)
        assert world.race is san
        assert cluster.race is san

    def test_null_metrics_never_carries_a_sanitizer(self):
        world, _, _ = self._world(race=True)
        assert world.metrics is NULL_METRICS
        assert NULL_METRICS.race is None

    def test_env_enables_and_false_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "race")
        world, _, _ = self._world()
        assert isinstance(world.race, RaceSanitizer)
        world_off, cluster_off, _ = self._world(race=False)
        assert world_off.race is None
        assert cluster_off.race is None

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        world, cluster, ex = self._world()
        assert world.race is None
        assert cluster.race is None
        assert ex.race is None


def _build(data, **kw):
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=6, rho=0.8, delta=0.0, max_iters=4, seed=3),
        backend="parallel",
        workers=2,
    )
    return DNND(data, cfg,
                cluster=ClusterConfig(nodes=2, procs_per_node=2), **kw)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(11)
        return rng.standard_normal((48, 8)).astype(np.float32)

    def test_parallel_build_reports_no_races(self, data, monkeypatch):
        """The shipped runtime must be race-clean under the sanitizer."""
        monkeypatch.setenv("REPRO_SANITIZE", "race")
        dnnd = _build(data)
        result = dnnd.build()
        san = dnnd.world.race
        assert isinstance(san, RaceSanitizer)
        assert san.races == []
        assert san.epoch > 0  # the instrumentation actually ran
        assert result.graph.ids.shape[1] == 6

    def test_sanitizer_does_not_change_the_graph(self, data, monkeypatch):
        """Race mode only observes: the built graph is bit-identical to
        an uninstrumented parallel build."""
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = _build(data).build()
        monkeypatch.setenv("REPRO_SANITIZE", "race")
        checked = _build(data).build()
        np.testing.assert_array_equal(plain.graph.ids, checked.graph.ids)
        np.testing.assert_array_equal(plain.graph.dists, checked.graph.dists)
