"""Engine, suppression, CLI exit codes, and the repo-wide self-lint."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import AnalysisConfig, RULES, load_config, run_analysis
from repro.analysis.__main__ import main as analysis_main

REPO = Path(__file__).resolve().parents[2]
FIXTURES = REPO / "tests" / "data" / "lint_fixtures"
CONFIG = AnalysisConfig(exclude=(), sim_paths=("lint_fixtures",))


# -- self-lint: the acceptance gate ------------------------------------------

def test_src_lints_clean():
    """`python -m repro.analysis src` exits 0 — every rule passes on the
    repo's own source (the CI `analysis` job runs exactly this)."""
    findings = run_analysis([str(REPO / "src")], load_config(REPO))
    assert findings == [], "\n".join(f.format() for f in findings)


def test_fixtures_do_not_lint_clean():
    """The bad fixtures must make the linter exit non-zero."""
    findings = run_analysis([str(FIXTURES)], CONFIG)
    assert findings, "bad fixtures produced no findings"


# -- suppression -------------------------------------------------------------

def test_suppressed_file_is_clean():
    assert run_analysis([str(FIXTURES / "suppressed.py")], CONFIG) == []


def test_suppression_is_rule_specific(tmp_path):
    """ignore[REP104] does not silence a REP101 on the same line."""
    f = tmp_path / "mod.py"
    f.write_text("import random\n\n\n"
                 "def f(xs):\n"
                 "    random.shuffle(xs)  # repro: ignore[REP104]\n")
    findings = run_analysis([str(f)], CONFIG, select=("REP101",))
    assert [x.rule for x in findings] == ["REP101"]


# -- syntax errors ------------------------------------------------------------

def test_syntax_error_becomes_rep000(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def f(:\n")
    findings = run_analysis([str(f)], CONFIG)
    assert [x.rule for x in findings] == ["REP000"]
    assert findings[0].severity == "error"


# -- CLI ----------------------------------------------------------------------

def test_cli_exit_codes_and_json(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    assert analysis_main(["src"]) == 0
    capsys.readouterr()
    # Directories honour the configured excludes (the fixture tree is
    # excluded repo-wide), but a file named explicitly is always linted.
    assert analysis_main([str(FIXTURES)]) == 0
    capsys.readouterr()
    rc = analysis_main([str(FIXTURES / "rep101_bad.py"), "--format", "json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload and {"path", "line", "col", "rule", "severity",
                        "message"} <= set(payload[0])
    assert analysis_main(["--select", "REP999", "src"]) == 2


def test_cli_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_as_module():
    """The documented invocation: python -m repro.analysis src."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


# -- config -------------------------------------------------------------------

def test_load_config_reads_pyproject():
    config = load_config(REPO)
    assert config.root == REPO
    assert "src" in config.paths
    assert any("lint_fixtures" in pat for pat in config.exclude)
    assert any("repro/runtime" in p for p in config.sim_paths)


def test_exclude_patterns_respected(tmp_path):
    (tmp_path / "skipme").mkdir()
    (tmp_path / "skipme" / "bad.py").write_text(
        "import random\nrandom.random()\n")
    config = AnalysisConfig(exclude=("*/skipme/*",))
    assert run_analysis([str(tmp_path)], config) == []
