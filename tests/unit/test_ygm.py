"""YGMWorld: async RPC semantics, buffering, barrier, instrumentation."""

import pytest

from repro.config import ClusterConfig
from repro.errors import RuntimeStateError
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


def make_world(nodes=2, ppn=2, flush=1024):
    cluster = SimCluster(ClusterConfig(nodes=nodes, procs_per_node=ppn))
    return YGMWorld(cluster, flush_threshold=flush)


class TestHandlerRegistry:
    def test_register_and_call(self):
        world = make_world()
        seen = []
        world.register_handler("ping", lambda ctx, x: seen.append((ctx.rank, x)))
        world.async_call(0, 1, "ping", 42)
        world.barrier()
        assert seen == [(1, 42)]

    def test_duplicate_name_rejected(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        with pytest.raises(RuntimeStateError):
            world.register_handler("h", lambda ctx: None)

    def test_unknown_handler_rejected(self):
        world = make_world()
        with pytest.raises(RuntimeStateError):
            world.async_call(0, 1, "nope")

    def test_bad_destination(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        with pytest.raises(RuntimeStateError):
            world.async_call(0, 99, "h")


class TestFireAndForget:
    def test_messages_deferred_until_barrier(self):
        world = make_world()
        seen = []
        world.register_handler("h", lambda ctx: seen.append(ctx.rank))
        world.async_call(0, 1, "h")
        assert seen == []  # not yet delivered
        world.barrier()
        assert seen == [1]

    def test_self_message_also_deferred(self):
        world = make_world()
        seen = []
        world.register_handler("h", lambda ctx: seen.append(ctx.rank))
        world.async_call(2, 2, "h")
        assert seen == []
        world.barrier()
        assert seen == [2]

    def test_handlers_can_send_more(self):
        # A handler chain a -> b -> c must fully drain within one barrier.
        world = make_world()
        log = []

        def a(ctx):
            log.append("a")
            ctx.async_call(2, "b")

        def b(ctx):
            log.append("b")
            ctx.async_call(3, "c")

        def c(ctx):
            log.append("c")

        world.register_handlers(a=a, b=b, c=c)
        world.async_call(0, 1, "a")
        world.barrier()
        assert log == ["a", "b", "c"]

    def test_deep_chain_drains(self):
        world = make_world()
        count = [0]

        def bounce(ctx, hops):
            count[0] += 1
            if hops > 0:
                ctx.async_call((ctx.rank + 1) % ctx.world_size, "bounce", hops - 1)

        world.register_handler("bounce", bounce)
        world.async_call(0, 1, "bounce", 50)
        world.barrier()
        assert count[0] == 51

    def test_deterministic_delivery_order(self):
        def run():
            world = make_world()
            log = []
            world.register_handler("h", lambda ctx, tag: log.append((ctx.rank, tag)))
            for i in range(20):
                world.async_call(i % 4, (i * 7) % 4, "h", i)
            world.barrier()
            return log
        assert run() == run()


class TestInstrumentation:
    def test_message_stats_recorded(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        world.async_call(0, 1, "h", nbytes=100, msg_type="type1")
        world.async_call(0, 2, "h", nbytes=50, msg_type="type1")
        assert world.stats.get("type1").count == 2
        assert world.stats.get("type1").bytes == 150
        # 0 -> 1 is intra-node, 0 -> 2 crosses nodes.
        assert world.stats.get("type1").offnode_count == 1

    def test_self_messages_not_counted(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        world.async_call(1, 1, "h", nbytes=10, msg_type="x")
        assert world.stats.total_count() == 0

    def test_phase_scoping(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        world.set_phase("alpha")
        world.async_call(0, 1, "h", nbytes=1, msg_type="m")
        world.barrier()
        world.set_phase("beta")
        world.async_call(0, 1, "h", nbytes=1, msg_type="m")
        world.barrier()
        assert world.stats_for("alpha").get("m").count == 1
        assert world.stats_for("beta").get("m").count == 1
        assert world.stats.get("m").count == 2

    def test_handler_invocations_counted(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        for _ in range(5):
            world.async_call(0, 1, "h")
        world.barrier()
        assert world.handler_invocations == 5


class TestBufferingAndCosts:
    def test_flush_threshold_triggers_early_delivery_to_mailbox(self):
        world = make_world(flush=2)
        world.register_handler("h", lambda ctx: None)
        world.async_call(0, 1, "h")
        assert world.cluster.pending_total() == 0  # buffered
        world.async_call(0, 1, "h")
        assert world.cluster.pending_total() == 2  # flushed at threshold

    def test_flush_count_depends_on_threshold(self):
        def flush_count(threshold):
            world = make_world(flush=threshold)
            world.register_handler("h", lambda ctx: None)
            for _ in range(64):
                world.async_call(0, 1, "h", nbytes=8)
            world.barrier()
            return world.flush_count
        assert flush_count(1) > flush_count(64)

    def test_sender_charged_for_traffic(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        world.async_call(0, 2, "h", nbytes=10_000)
        world.flush_all()
        assert world.cluster.ledger.clocks[0] > 0
        assert world.cluster.ledger.clocks[2] == 0

    def test_invalid_flush_threshold(self):
        cluster = SimCluster(ClusterConfig(nodes=1, procs_per_node=2))
        with pytest.raises(RuntimeStateError):
            YGMWorld(cluster, flush_threshold=0)


class TestBarrier:
    def test_returns_superstep_seconds(self):
        world = make_world()
        world.register_handler("h", lambda ctx: ctx.charge_compute(0.5))
        world.async_call(0, 1, "h")
        step = world.barrier()
        assert step >= 0.5

    def test_async_counter_resets(self):
        world = make_world()
        world.register_handler("h", lambda ctx: None)
        world.async_call(0, 1, "h")
        assert world.async_count_since_barrier == 1
        world.barrier()
        assert world.async_count_since_barrier == 0

    def test_nested_barrier_rejected(self):
        world = make_world()

        def bad(ctx):
            ctx.world.barrier()

        world.register_handler("bad", bad)
        world.async_call(0, 1, "bad")
        with pytest.raises(RuntimeStateError):
            world.barrier()

    def test_empty_barrier_ok(self):
        world = make_world()
        assert world.barrier() >= 0.0


class TestRankContext:
    def test_state_is_rank_local(self):
        world = make_world()
        world.ranks[0].state["x"] = 1
        assert "x" not in world.ranks[1].state

    def test_rngs_differ_per_rank(self):
        world = make_world()
        a = world.ranks[0].rng.random(4)
        b = world.ranks[1].rng.random(4)
        assert not (a == b).all()

    def test_charge_helpers(self):
        world = make_world()
        ctx = world.ranks[0]
        ctx.charge_distance(96, count=10)
        ctx.charge_update(5)
        net = world.cluster.net
        expected = 10 * net.distance_cost(96) + 5 * net.compute_per_update
        assert world.cluster.ledger.clocks[0] == pytest.approx(expected)

    def test_run_on_all(self):
        world = make_world()
        visits = []
        world.run_on_all(lambda ctx: visits.append(ctx.rank))
        assert visits == [0, 1, 2, 3]

    def test_allreduce_sum_helper(self):
        world = make_world()
        assert world.allreduce_sum(lambda ctx: ctx.rank) == 6
