"""Determinism rules (REP1xx) against the known-bad/known-good fixtures."""

from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, run_analysis

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "lint_fixtures"

#: Fixture paths are outside the repo's sim paths, so REP102 fixtures
#: opt in by configuring the fixture directory as simulation code.
CONFIG = AnalysisConfig(exclude=(), sim_paths=("lint_fixtures",))

CASES = [
    ("REP101", 4),
    ("REP102", 3),
    ("REP103", 2),
    ("REP104", 2),
]


def _lint(path: Path, rule: str):
    return run_analysis([str(path)], CONFIG, select=(rule,))


@pytest.mark.parametrize("rule,expected", CASES)
def test_bad_fixture_fires(rule, expected):
    findings = _lint(FIXTURES / f"{rule.lower()}_bad.py", rule)
    assert len(findings) == expected
    assert all(f.rule == rule for f in findings)
    assert all(f.severity == "error" for f in findings)


@pytest.mark.parametrize("rule,_expected", CASES)
def test_good_fixture_silent(rule, _expected):
    assert _lint(FIXTURES / f"{rule.lower()}_good.py", rule) == []


def test_rep101_names_the_offending_api():
    findings = _lint(FIXTURES / "rep101_bad.py", "REP101")
    messages = "\n".join(f.message for f in findings)
    assert "random.shuffle" in messages
    assert "numpy.random.rand" in messages
    assert "derive_rng" in messages  # points at the sanctioned idiom


def test_rep102_off_outside_sim_paths():
    """The same file is clean when it does not lie on a sim path."""
    config = AnalysisConfig(exclude=(), sim_paths=("repro/runtime",))
    findings = run_analysis([str(FIXTURES / "rep102_bad.py")], config,
                            select=("REP102",))
    assert findings == []


def test_findings_are_positioned_and_sorted():
    findings = _lint(FIXTURES / "rep101_bad.py", "REP101")
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    assert all(f.line >= 1 and f.col >= 1 for f in findings)
    text = findings[0].format()
    assert "rep101_bad.py" in text and "REP101" in text
