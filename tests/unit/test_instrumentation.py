"""MessageStats / TypeStats — the Figure 4 accounting."""

from repro.runtime.instrumentation import MessageStats, TypeStats


class TestTypeStats:
    def test_record(self):
        s = TypeStats()
        s.record(100, offnode=True)
        s.record(50, offnode=False)
        assert s.count == 2 and s.bytes == 150
        assert s.offnode_count == 1 and s.offnode_bytes == 100

    def test_merged(self):
        a = TypeStats(1, 10, 1, 10)
        b = TypeStats(2, 20, 0, 0)
        m = a.merged(b)
        assert (m.count, m.bytes, m.offnode_count, m.offnode_bytes) == (3, 30, 1, 10)


class TestMessageStats:
    def test_record_by_type(self):
        ms = MessageStats()
        ms.record("type1", 8, True)
        ms.record("type2+", 400, True)
        ms.record("type1", 8, False)
        assert ms.get("type1").count == 2
        assert ms.get("type2+").bytes == 400

    def test_totals(self):
        ms = MessageStats()
        ms.record("a", 10, True)
        ms.record("b", 20, False)
        assert ms.total_count() == 2
        assert ms.total_bytes() == 30
        assert ms.offnode_count() == 1
        assert ms.offnode_bytes() == 10

    def test_totals_filtered_by_type(self):
        ms = MessageStats()
        ms.record("type1", 10, True)
        ms.record("type2", 100, True)
        ms.record("type3", 5, True)
        assert ms.total_count(["type1", "type3"]) == 2
        assert ms.total_bytes(["type2"]) == 100

    def test_unknown_type_empty(self):
        assert MessageStats().get("nope").count == 0

    def test_merged(self):
        a = MessageStats()
        a.record("x", 5, True)
        b = MessageStats()
        b.record("x", 5, False)
        b.record("y", 1, True)
        m = a.merged(b)
        assert m.get("x").count == 2
        assert m.get("y").count == 1
        # inputs untouched
        assert a.get("y").count == 0

    def test_snapshot(self):
        ms = MessageStats()
        ms.record("b", 2, True)
        ms.record("a", 1, False)
        assert ms.snapshot() == {"a": (1, 1), "b": (1, 2)}

    def test_reset(self):
        ms = MessageStats()
        ms.record("x", 1, True)
        ms.reset()
        assert ms.total_count() == 0

    def test_format_table_contains_total(self):
        ms = MessageStats()
        ms.record("type1", 8, True)
        text = ms.format_table("check")
        assert "check" in text and "TOTAL" in text and "type1" in text
