"""Figure 3 calibration helpers."""

import pytest

from repro.errors import ReproError
from repro.eval.calibration import (
    Calibration,
    calibrate,
    compare_with_paper,
    efficiency,
    scaling_factor,
)

TIMES = {
    ("DNND k10", 4): 0.008,
    ("DNND k10", 8): 0.005,
    ("DNND k10", 16): 0.003,
    ("DNND k20", 8): 0.016,
}


class TestCalibrate:
    def test_anchor_maps_exactly(self):
        cal = calibrate(TIMES)
        assert cal.hours(TIMES[("DNND k10", 4)]) == pytest.approx(6.96)

    def test_ratios_preserved(self):
        cal = calibrate(TIMES)
        out = cal.apply(TIMES)
        assert (out[("DNND k10", 4)] / out[("DNND k10", 16)]
                == pytest.approx(TIMES[("DNND k10", 4)] / TIMES[("DNND k10", 16)]))

    def test_missing_anchor(self):
        with pytest.raises(ReproError):
            calibrate({("DNND k20", 8): 1.0})

    def test_custom_anchor(self):
        cal = calibrate(TIMES, anchor=("DNND k20", 8, 10.62))
        assert cal.hours(0.016) == pytest.approx(10.62)

    def test_zero_anchor_rejected(self):
        with pytest.raises(ReproError):
            calibrate({("DNND k10", 4): 0.0})


class TestScaling:
    def test_scaling_factor(self):
        assert scaling_factor(TIMES, "DNND k10", 4, 16) == pytest.approx(8 / 3)

    def test_efficiency(self):
        # 2.67x speedup on 4x the nodes -> 2/3 efficiency.
        assert efficiency(TIMES, "DNND k10", 4, 16) == pytest.approx(2 / 3)

    def test_missing_config(self):
        with pytest.raises(ReproError):
            scaling_factor(TIMES, "DNND k30", 16, 32)


class TestCompare:
    def test_pairs_only_shared_configs(self):
        paper = {"DNND k10": {4: 6.96, 16: 1.84}, "DNND k30": {16: 10.29}}
        out = compare_with_paper(TIMES, paper)
        assert set(out) == {("DNND k10", 4), ("DNND k10", 16)}
        ours, theirs = out[("DNND k10", 4)]
        assert ours == pytest.approx(6.96)
        assert theirs == 6.96

    def test_explicit_calibration_object(self):
        cal = Calibration(factor=1000.0, anchor_series="x",
                          anchor_nodes=1, anchor_hours=1.0)
        out = compare_with_paper(TIMES, {"DNND k10": {8: 5.0}},
                                 calibration=cal)
        assert out[("DNND k10", 8)][0] == pytest.approx(5.0)
