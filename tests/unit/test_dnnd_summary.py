"""DNNDResult.summary() report rendering."""

import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig


@pytest.fixture(scope="module")
def result(tiny_dense):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=4, seed=81), backend="sim")
    dnnd = DNND(tiny_dense, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
    res = dnnd.build()
    dnnd.optimize()
    return res


class TestSummary:
    def test_contains_headline_fields(self, result, tiny_dense):
        text = result.summary()
        assert f"n={len(tiny_dense)}" in text
        assert "iterations:" in text
        assert "converged" in text
        assert "distance evaluations:" in text
        assert "simulated time:" in text

    def test_phase_breakdown_listed(self, result):
        text = result.summary()
        assert "phase breakdown:" in text
        assert "neighbor_check" in text

    def test_message_table_included(self, result):
        text = result.summary()
        assert "message totals" in text
        assert "type1" in text

    def test_optimized_graph_line(self, result):
        assert "optimized graph:" in result.summary()

    def test_update_counts_rendered(self, result):
        text = result.summary()
        assert "updates per iteration:" in text
