"""Blocked-kernel conformance (DESIGN.md section 17).

Pins the exactness contract of ``repro.distances.blocked`` against the
rowwise kernels and scipy references, per metric x dtype x shape:

- ``sqeuclidean`` pairwise is **bit-exact** against the dense float64
  pairwise form for *every* tile size (same expansion, same term order,
  and BLAS GEMM per-row results are M-invariant — asserted empirically
  here so a BLAS swap that breaks the assumption fails loudly).
- Everything else is held to documented ulp envelopes: float64 input
  within ``rtol=1e-9``, float32 input within ``rtol=2e-3 / atol=1e-4``
  (native-dtype arithmetic is the throughput win; the error budget is
  the float32 cancellation of ``-2xy`` against the norm terms).
- The float32 catastrophic-cancellation edge clamps at zero: duplicate
  rows must give exactly 0.0 and never NaN under ``sqrt``.
- Metrics without a blocked form (elementwise + sparse) fall back to
  the exact kernels, bit-for-bit.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.distances import (
    CountingMetric,
    NormCache,
    blocked,
    blocked_metrics,
    dense,
    get_metric,
    list_metrics,
    make_kernels,
    resolve_array_module,
    resolve_kernel,
    tile_size_for,
)
from repro.errors import ConfigError

scipy_distance = pytest.importorskip("scipy.spatial.distance")

#: scipy cdist metric names per registry metric (None = no scipy
#: equivalent; reference computed manually).
SCIPY_NAMES = {
    "euclidean": "euclidean",
    "sqeuclidean": "sqeuclidean",
    "cosine": "cosine",
    "inner_product": None,
    "manhattan": "cityblock",
    "chebyshev": "chebyshev",
    "hamming": "hamming",
    "canberra": "canberra",
    "braycurtis": "braycurtis",
    "correlation": "correlation",
}

DENSE_METRICS = [m for m in list_metrics() if not get_metric(m).sparse_input]
SPARSE_METRICS = [m for m in list_metrics() if get_metric(m).sparse_input]

#: (n, m, d) operand shapes: routine, empty, single-row, d=1, and n not
#: divisible by any power-of-two tile size.
SHAPES = [
    pytest.param((37, 29, 13), id="non-divisible"),
    pytest.param((0, 5, 4), id="empty-left"),
    pytest.param((5, 0, 4), id="empty-right"),
    pytest.param((1, 1, 6), id="single-row"),
    pytest.param((7, 9, 1), id="d-1"),
]

DTYPES = [np.float32, np.float64]


def _tolerance(dtype):
    """Documented ulp envelopes (module docstring)."""
    if np.dtype(dtype) == np.float64:
        return dict(rtol=1e-9, atol=1e-12)
    return dict(rtol=2e-3, atol=1e-4)


def _operands(metric: str, n: int, m: int, d: int, dtype, seed=0):
    """Random operands in the metric's natural domain."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, d))
    B = rng.standard_normal((m, d))
    if metric in ("canberra", "braycurtis"):
        A, B = np.abs(A) + 0.1, np.abs(B) + 0.1
    elif metric == "hamming":
        A, B = (A > 0).astype(np.float64), (B > 0).astype(np.float64)
    return A.astype(dtype), B.astype(dtype)


def _reference(metric: str, A, B) -> np.ndarray:
    """Float64 reference matrix: scipy where it has the metric."""
    Af, Bf = np.asarray(A, dtype=np.float64), np.asarray(B, dtype=np.float64)
    name = SCIPY_NAMES[metric]
    if name is None:  # inner_product
        return 1.0 - Af @ Bf.T
    if Af.shape[0] == 0 or Bf.shape[0] == 0:
        return np.zeros((Af.shape[0], Bf.shape[0]))
    out = scipy_distance.cdist(Af, Bf, name)
    if metric == "correlation":
        # Registry convention: zero-variance rows get distance 1 (the
        # cosine zero-norm rule); scipy leaves NaN.
        out[np.isnan(out)] = 1.0
    return out


class TestPairwiseConformance:
    @pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("metric", DENSE_METRICS)
    def test_blocked_vs_rowwise_vs_scipy(self, metric, shape, dtype):
        n, m, d = shape
        A, B = _operands(metric, n, m, d, dtype)
        got = CountingMetric(metric, kernel="blocked").block(A, B)
        exact = CountingMetric(metric, kernel="rowwise").block(A, B)
        ref = _reference(metric, A, B)
        assert got.shape == (n, m)
        assert got.dtype == np.float64
        tol = _tolerance(dtype)
        np.testing.assert_allclose(got, exact, **tol)
        np.testing.assert_allclose(got, ref, **tol)

    @pytest.mark.parametrize("metric", DENSE_METRICS)
    def test_counts_match_rowwise_kernel(self, metric):
        A, B = _operands(metric, 8, 6, 5, np.float64)
        cm_b = CountingMetric(metric, kernel="blocked")
        cm_r = CountingMetric(metric, kernel="rowwise")
        cm_b.block(A, B)
        cm_r.block(A, B)
        assert cm_b.count == cm_r.count == 48


class TestOneToManyAndRowwise:
    @pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
    @pytest.mark.parametrize("metric", DENSE_METRICS)
    def test_one_to_many(self, metric, dtype):
        A, B = _operands(metric, 1, 23, 9, dtype)
        got = CountingMetric(metric, kernel="blocked").distances_to(A[0], B)
        ref = _reference(metric, A, B)[0]
        np.testing.assert_allclose(got, ref, **_tolerance(dtype))

    @pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
    @pytest.mark.parametrize("metric", DENSE_METRICS)
    def test_paired_rows(self, metric, dtype):
        A, B = _operands(metric, 21, 21, 9, dtype)
        got = CountingMetric(metric, kernel="blocked").rowwise(A, B)
        full = _reference(metric, A, B)
        ref = np.array([full[i, i] for i in range(21)])
        np.testing.assert_allclose(got, ref, **_tolerance(dtype))

    @pytest.mark.parametrize("metric", blocked_metrics())
    def test_paired_rows_broadcast_side(self, metric):
        """A 1-D side broadcasts against the other's rows, matching the
        stacked form bit-for-bit (the backends ship both layouts)."""
        A, B = _operands(metric, 11, 11, 6, np.float64)
        cm = CountingMetric(metric, kernel="blocked")
        q = A[0]
        stacked = cm.rowwise(np.broadcast_to(q, B.shape).copy(), B)
        broadcast = cm.rowwise(q, B)
        np.testing.assert_array_equal(stacked, broadcast)


class TestSqeuclideanBitExact:
    """The bit-exactness domain is the *single-tile* f64 case: one tile
    covering the whole input issues the same single GEMM with the same
    term order as ``dense.sqeuclidean_pairwise``.  Smaller tiles change
    the GEMM operand extents, which legitimately changes low-order bits
    (BLAS gemv/gemm micro-kernels and N-dependent blocking), so the
    multi-tile guarantee is determinism + f64 ulp agreement."""

    def test_bit_exact_vs_dense_pairwise_single_tile(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((37, 13))
        B = rng.standard_normal((29, 13))
        ref = dense.sqeuclidean_pairwise(A, B)
        got = make_kernels("sqeuclidean", tile=4096).pairwise(A, B)
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("tile", [1, 5, 16, 37])
    def test_multi_tile_deterministic_and_ulp_close(self, tile):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((37, 13))
        B = rng.standard_normal((29, 13))
        ref = dense.sqeuclidean_pairwise(A, B)
        bundle = make_kernels("sqeuclidean", tile=tile)
        got = bundle.pairwise(A, B)
        np.testing.assert_array_equal(bundle.pairwise(A, B), got)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_euclidean_pairwise_bit_exact_f64(self):
        """sqrt of a bit-exact matrix stays bit-exact (the heuristic
        tile at d=8 covers all 19 rows, so this is the single-tile
        domain)."""
        rng = np.random.default_rng(4)
        A = rng.standard_normal((19, 8))
        got = CountingMetric("euclidean", kernel="blocked").block(A, A)
        ref = dense.euclidean_pairwise(A, A)
        np.testing.assert_array_equal(got, ref)


class TestFloat32Cancellation:
    """The ``-2xy`` expansion can go slightly negative for near-duplicate
    float32 points; every blocked form clamps at zero before any sqrt
    (the ROADMAP's duplicate-heavy scenario)."""

    @pytest.fixture()
    def duplicate_heavy(self):
        rng = np.random.default_rng(7)
        base = (rng.random((40, 12)) * 1000).astype(np.float32)
        jitter = base + rng.normal(
            scale=1e-4, size=base.shape).astype(np.float32)
        return np.vstack([base, base, jitter]).astype(np.float32)

    @pytest.mark.parametrize("metric", ["sqeuclidean", "euclidean"])
    def test_no_negatives_no_nans(self, metric, duplicate_heavy):
        X = duplicate_heavy
        cm = CountingMetric(metric, kernel="blocked")
        for out in (cm.block(X, X), cm.rowwise(X[:40], X[40:80]),
                    cm.distances_to(X[0], X)):
            assert np.isfinite(out).all()
            assert (out >= 0.0).all()

    def test_exact_duplicates_are_zero(self, duplicate_heavy):
        X = duplicate_heavy
        cm = CountingMetric("sqeuclidean", kernel="blocked")
        np.testing.assert_array_equal(cm.rowwise(X[:40], X[40:80]),
                                      np.zeros(40))


class TestFallbacks:
    @pytest.mark.parametrize("metric", SPARSE_METRICS)
    def test_sparse_metrics_keep_exact_kernels(self, metric):
        cm = CountingMetric(metric, kernel="blocked")
        assert cm._blocked is None
        assert cm.tile_flops == 0

    def test_metrics_without_blocked_form(self):
        for metric in set(DENSE_METRICS) - set(blocked_metrics()):
            assert make_kernels(metric) is None
            cm = CountingMetric(metric, kernel="blocked")
            A, B = _operands(metric, 6, 4, 5, np.float64)
            np.testing.assert_array_equal(
                cm.block(A, B),
                CountingMetric(metric, kernel="rowwise").block(A, B))


class TestResolveKernel:
    def test_config_value_wins_over_env(self):
        assert resolve_kernel("rowwise", env={"REPRO_KERNEL": "blocked"}) \
            == "rowwise"

    def test_env_fallback_then_default(self):
        assert resolve_kernel(None, env={"REPRO_KERNEL": "blocked"}) \
            == "blocked"
        assert resolve_kernel(None, env={}) == "rowwise"

    def test_unknown_kernel_raises(self):
        with pytest.raises(ConfigError, match="unknown distance kernel"):
            resolve_kernel("simd", env={})


class TestArrayModuleSeam:
    def test_numpy_default(self):
        assert resolve_array_module(env={}).name == "numpy"
        assert resolve_array_module("np", env={}).name == "numpy"

    @pytest.mark.parametrize("requested", ["cupy", "torch"])
    def test_missing_module_falls_back_and_counts(self, requested):
        pytest.importorskip_name = requested
        try:
            __import__(requested)
            pytest.skip(f"{requested} installed; fallback path not taken")
        except ImportError:
            pass
        before = blocked.kernel_fallbacks()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ops = resolve_array_module(requested, env={})
        assert ops.name == "numpy"
        assert blocked.kernel_fallbacks() == before + 1
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    def test_env_var_requests_module(self):
        ops = resolve_array_module(env={"REPRO_XP": "numpy"})
        assert ops.name == "numpy"

    def test_unknown_module_raises(self):
        with pytest.raises(ConfigError, match="unknown array module"):
            resolve_array_module("jax", env={})

    def test_fallback_counted_per_counting_metric(self):
        try:
            import cupy  # noqa: F401
            pytest.skip("cupy installed; fallback path not taken")
        except ImportError:
            pass
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cm = CountingMetric("sqeuclidean", kernel="blocked")
            cm._blocked = None  # rebuilt below through the env seam
            import os
            os.environ["REPRO_XP"] = "cupy"
            try:
                cm2 = CountingMetric("sqeuclidean", kernel="blocked")
            finally:
                del os.environ["REPRO_XP"]
        assert cm.kernel_fallbacks == 0
        assert cm2.kernel_fallbacks == 1


class TestTileHeuristic:
    def test_bounds_and_alignment(self):
        for dim in (1, 8, 32, 128, 1024, 10_000):
            for itemsize in (4, 8):
                t = tile_size_for(dim, itemsize)
                assert 16 <= t <= 1024
                assert t % 16 == 0

    def test_monotone_in_dim(self):
        tiles = [tile_size_for(d, 4) for d in (8, 64, 512, 4096)]
        assert tiles == sorted(tiles, reverse=True)


class TestNormCache:
    def test_hit_on_same_object(self):
        cache = NormCache()
        X = np.arange(12, dtype=np.float64).reshape(4, 3)
        n1 = cache.norms(X)
        n2 = cache.norms(X)
        assert n1 is n2
        assert (cache.hits, cache.misses) == (1, 1)
        np.testing.assert_array_equal(n1, np.einsum("ij,ij->i", X, X))

    def test_update_rows_after_mutation(self):
        cache = NormCache()
        X = np.ones((5, 3))
        cache.norms(X)
        X[2] = 7.0
        cache.update_rows(X, [2])
        np.testing.assert_array_equal(cache.norms(X),
                                      np.einsum("ij,ij->i", X, X))
        assert cache.hits == 1  # update refreshed in place, no re-miss

    def test_invalidate(self):
        cache = NormCache()
        X = np.ones((3, 2))
        cache.norms(X)
        cache.invalidate(X)
        assert len(cache) == 0
        cache.norms(X)
        assert cache.misses == 2

    def test_dead_entries_self_evict(self):
        cache = NormCache()
        X = np.ones((3, 2))
        cache.norms(X)
        assert len(cache) == 1
        del X
        import gc
        gc.collect()
        assert len(cache) == 0


class TestTileFlops:
    def test_pairwise_flops_charged_per_tile(self):
        A = np.ones((10, 4))
        B = np.ones((7, 4))
        cm = CountingMetric("sqeuclidean", kernel="blocked")
        cm.block(A, B)
        assert cm.tile_flops == 2 * 10 * 7 * 4

    def test_rowwise_kernel_reports_zero(self):
        cm = CountingMetric("sqeuclidean", kernel="rowwise")
        cm.block(np.ones((4, 3)), np.ones((4, 3)))
        assert cm.tile_flops == 0
