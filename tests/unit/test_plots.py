"""ASCII plot rendering."""

import pytest

from repro.errors import ReproError
from repro.eval.plots import ascii_plot, scaling_plot, tradeoff_plot
from repro.eval.qps import TradeoffPoint


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot({"a": ([1, 2, 3], [1, 4, 9])}, title="squares")
        assert "squares" in out
        assert "legend: o=a" in out
        assert out.count("o") >= 3

    def test_two_series_glyphs(self):
        out = ascii_plot({"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])})
        assert "o=a" in out and "x=b" in out

    def test_log_axes(self):
        out = ascii_plot({"s": ([1, 10, 100], [1, 10, 100])},
                         log_x=True, log_y=True)
        assert "[log x]" in out and "[log y]" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            ascii_plot({"s": ([0, 1], [1, 2])}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_plot({})
        with pytest.raises(ReproError):
            ascii_plot({"s": ([], [])})

    def test_mismatched_lengths(self):
        with pytest.raises(ReproError):
            ascii_plot({"s": ([1, 2], [1])})

    def test_too_small_grid(self):
        with pytest.raises(ReproError):
            ascii_plot({"s": ([1], [1])}, width=5, height=2)

    def test_constant_series_ok(self):
        out = ascii_plot({"s": ([1, 2, 3], [5, 5, 5])})
        assert "o" in out

    def test_axis_extremes_labelled(self):
        out = ascii_plot({"s": ([2, 8], [1, 3])}, x_label="nodes")
        assert "nodes: 2 .. 8" in out
        assert "top=3" in out


class TestFigureHelpers:
    def test_tradeoff_plot(self):
        pts = {
            "dnnd": [TradeoffPoint("dnnd", 0.1, 0.9, 100, 50),
                     TradeoffPoint("dnnd", 0.2, 0.99, 60, 150)],
            "hnsw": [TradeoffPoint("hnsw", 20, 0.95, 80, 90)],
        }
        out = tradeoff_plot(pts, title="fig2")
        assert "fig2" in out and "recall@k" in out
        assert "o=dnnd" in out and "x=hnsw" in out

    def test_scaling_plot(self):
        out = scaling_plot({"DNND k10": {4: 6.96, 8: 3.87, 16: 1.84}},
                           title="fig3")
        assert "fig3" in out
        assert "[log x]" in out and "[log y]" in out

    def test_empty_series_skipped(self):
        pts = {"empty": [], "real": [TradeoffPoint("r", 0, 0.5, 10, 5)]}
        out = tradeoff_plot(pts)
        assert "o=real" in out and "empty" not in out
