"""The exception hierarchy is catchable via the base class."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.MetricError,
    errors.RuntimeStateError,
    errors.PartitionError,
    errors.StoreError,
    errors.GraphError,
    errors.SearchError,
    errors.DatasetError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_errors_are_distinct(tmp_path):
    # Catching one subclass must not swallow another.
    with pytest.raises(errors.StoreError):
        try:
            raise errors.StoreError("x")
        except errors.GraphError:  # pragma: no cover
            pytest.fail("GraphError caught a StoreError")
