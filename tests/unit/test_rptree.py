"""Random-projection trees."""

import numpy as np
import pytest

from repro.core.rptree import RPTree, RPTreeForest, make_rp_forest
from repro.errors import ConfigError
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(200, 8)).astype(np.float32)


class TestRPTree:
    def test_leaves_partition_dataset(self, data):
        tree = RPTree(data, leaf_size=16, rng=derive_rng(1))
        members = np.concatenate(list(tree.leaves()))
        assert sorted(members.tolist()) == list(range(200))

    def test_leaf_size_respected(self, data):
        tree = RPTree(data, leaf_size=16, rng=derive_rng(1))
        for leaf in tree.leaves():
            assert len(leaf) <= 16

    def test_leaf_for_routes_to_existing_leaf(self, data):
        tree = RPTree(data, leaf_size=16, rng=derive_rng(2))
        leaf = tree.leaf_for(data[17])
        all_leaves = [frozenset(l.tolist()) for l in tree.leaves()]
        assert frozenset(leaf.tolist()) in all_leaves

    def test_duplicate_points_handled(self):
        dup = np.ones((50, 4), dtype=np.float32)
        tree = RPTree(dup, leaf_size=8, rng=derive_rng(3))
        members = np.concatenate(list(tree.leaves()))
        assert sorted(members.tolist()) == list(range(50))

    def test_small_dataset_single_leaf(self):
        small = np.random.default_rng(1).normal(size=(5, 3))
        tree = RPTree(small, leaf_size=8, rng=derive_rng(4))
        leaves = list(tree.leaves())
        assert len(leaves) == 1

    def test_bad_leaf_size(self, data):
        with pytest.raises(ConfigError):
            RPTree(data, leaf_size=1, rng=derive_rng(5))

    def test_depth_positive_for_split_tree(self, data):
        tree = RPTree(data, leaf_size=16, rng=derive_rng(6))
        assert tree.depth() >= 1

    def test_deterministic_given_rng(self, data):
        t1 = RPTree(data, leaf_size=16, rng=derive_rng(7))
        t2 = RPTree(data, leaf_size=16, rng=derive_rng(7))
        l1 = [l.tolist() for l in t1.leaves()]
        l2 = [l.tolist() for l in t2.leaves()]
        assert l1 == l2


class TestForest:
    def test_make_forest(self, data):
        forest = make_rp_forest(data, n_trees=3, leaf_size=20, seed=0)
        assert len(forest) == 3

    def test_candidates_union(self, data):
        forest = make_rp_forest(data, n_trees=3, leaf_size=20, seed=0)
        cand = forest.candidates_for(data[0])
        assert len(np.unique(cand)) == len(cand)
        # The query's own leaf should contain nearby points; at minimum
        # candidates exist.
        assert len(cand) >= 1

    def test_empty_forest_rejected(self):
        with pytest.raises(ConfigError):
            RPTreeForest([])

    def test_bad_n_trees(self, data):
        with pytest.raises(ConfigError):
            make_rp_forest(data, n_trees=0)

    def test_leaf_locality(self, data):
        # Points in the same leaf should on average be closer than random
        # pairs — the property that makes rp-init useful.
        forest = make_rp_forest(data, n_trees=1, leaf_size=20, seed=1)
        rng = np.random.default_rng(0)
        leaf_d, rand_d = [], []
        for leaf in forest.leaves():
            if len(leaf) < 2:
                continue
            a, b = leaf[0], leaf[1]
            leaf_d.append(np.linalg.norm(data[a] - data[b]))
            i, j = rng.integers(0, len(data), 2)
            rand_d.append(np.linalg.norm(data[i] - data[j]))
        assert np.mean(leaf_d) < np.mean(rand_d)
