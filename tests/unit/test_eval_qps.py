"""QPS / trade-off sweep harness (Figure 2 machinery)."""

import pytest

from repro.baselines.bruteforce import brute_force_knn_graph, brute_force_neighbors
from repro.baselines.hnsw import HNSW, HNSWConfig
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.eval.qps import (
    QueryBenchmark,
    TradeoffPoint,
    dominates_at_recall,
    pareto_front,
    sweep_ef,
    sweep_epsilon,
)


@pytest.fixture(scope="module")
def bench_setup():
    from repro.datasets.synthetic import gaussian_mixture
    data = gaussian_mixture(250, 10, n_clusters=5, cluster_std=0.4, seed=3)
    queries = data[:20]
    gt_ids, _ = brute_force_neighbors(data, queries, k=5)
    bench = QueryBenchmark(queries=queries, gt_ids=gt_ids, k=5)
    adj = optimize_graph(brute_force_knn_graph(data, k=8), pruning_factor=1.5)
    searcher = KNNGraphSearcher(adj, data, seed=0)
    return data, bench, searcher


class TestQueryBenchmark:
    def test_measure_fields(self, bench_setup):
        data, bench, searcher = bench_setup
        point = bench.measure(
            lambda q, k: searcher.query_batch(q, l=k, epsilon=0.1), "dnnd", 0.1)
        assert 0.0 <= point.recall <= 1.0
        assert point.qps > 0
        assert point.mean_distance_evals > 0
        assert point.label == "dnnd" and point.param == 0.1

    def test_as_row(self):
        p = TradeoffPoint("x", 0.1, 0.95, 1234.5, 100.0)
        row = p.as_row()
        assert row[0] == "x" and row[2] == 0.95


class TestSweeps:
    def test_epsilon_sweep_default_matches_paper(self, bench_setup):
        data, bench, searcher = bench_setup
        points = sweep_epsilon(searcher, bench, "k8", epsilons=[0.0, 0.2])
        assert [p.param for p in points] == [0.0, 0.2]
        # More epsilon -> more work.
        assert points[1].mean_distance_evals >= points[0].mean_distance_evals

    def test_epsilon_default_grid(self, bench_setup):
        data, bench, searcher = bench_setup
        points = sweep_epsilon(searcher, bench, "k8", epsilons=None)
        # 0 plus 0.1..0.4 step 0.025 -> 14 points (Section 5.3.1).
        assert len(points) == 14
        assert points[0].param == 0.0
        assert points[-1].param == pytest.approx(0.4)

    def test_ef_sweep(self, bench_setup):
        data, bench, _ = bench_setup
        index = HNSW(data, HNSWConfig(M=8, ef_construction=40, seed=0)).build()
        points = sweep_ef(index, bench, "hnsw", efs=[10, 80])
        assert points[1].mean_distance_evals > points[0].mean_distance_evals


class TestParetoAndDominance:
    def test_pareto_front(self):
        pts = [
            TradeoffPoint("a", 0, 0.8, 100, 10),
            TradeoffPoint("a", 0, 0.9, 50, 20),
            TradeoffPoint("a", 0, 0.7, 60, 30),   # dominated
            TradeoffPoint("a", 0, 0.95, 10, 40),
        ]
        front = pareto_front(pts)
        recalls = [p.recall for p in front]
        assert 0.7 not in recalls
        assert recalls == sorted(recalls)

    def test_dominates_at_recall(self):
        a = [TradeoffPoint("a", 0, 0.95, 0, 100)]
        b = [TradeoffPoint("b", 0, 0.95, 0, 200)]
        assert dominates_at_recall(a, b, 0.9)
        assert not dominates_at_recall(b, a, 0.9)

    def test_dominates_unreachable_recall(self):
        a = [TradeoffPoint("a", 0, 0.5, 0, 100)]
        b = [TradeoffPoint("b", 0, 0.95, 0, 200)]
        assert not dominates_at_recall(a, b, 0.9)
        assert dominates_at_recall(b, a, 0.9)
