"""fvecs/ivecs/bvecs round-trips and validation."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.io.vecs import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)


class TestRoundTrip:
    def test_fvecs(self, tmp_path):
        data = np.random.default_rng(0).random((7, 5)).astype(np.float32)
        path = tmp_path / "x.fvecs"
        write_fvecs(path, data)
        np.testing.assert_array_equal(read_fvecs(path), data)

    def test_ivecs(self, tmp_path):
        data = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = tmp_path / "x.ivecs"
        write_ivecs(path, data)
        np.testing.assert_array_equal(read_ivecs(path), data)

    def test_bvecs(self, tmp_path):
        data = np.random.default_rng(1).integers(0, 256, (4, 9)).astype(np.uint8)
        path = tmp_path / "x.bvecs"
        write_bvecs(path, data)
        np.testing.assert_array_equal(read_bvecs(path), data)

    def test_single_row(self, tmp_path):
        data = np.ones((1, 3), dtype=np.float32)
        path = tmp_path / "one.fvecs"
        write_fvecs(path, data)
        assert read_fvecs(path).shape == (1, 3)

    def test_negative_floats(self, tmp_path):
        data = np.array([[-1.5, 2.25]], dtype=np.float32)
        path = tmp_path / "neg.fvecs"
        write_fvecs(path, data)
        np.testing.assert_array_equal(read_fvecs(path), data)


class TestValidation:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        with pytest.raises(DatasetError):
            read_fvecs(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.fvecs"
        path.write_bytes(b"\x02")
        with pytest.raises(DatasetError):
            read_fvecs(path)

    def test_bad_dimension(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        path.write_bytes(np.array([-1], dtype="<i4").tobytes())
        with pytest.raises(DatasetError):
            read_fvecs(path)

    def test_size_not_multiple(self, tmp_path):
        path = tmp_path / "odd.fvecs"
        good = np.array([2], dtype="<i4").tobytes() + np.zeros(2, dtype="<f4").tobytes()
        path.write_bytes(good + b"\x00")
        with pytest.raises(DatasetError):
            read_fvecs(path)

    def test_inconsistent_dims(self, tmp_path):
        path = tmp_path / "mixed.fvecs"
        rec1 = np.array([2], dtype="<i4").tobytes() + np.zeros(2, dtype="<f4").tobytes()
        # Second record claims dim=1 but is padded to the same record
        # size, producing an inconsistent header.
        rec2 = np.array([1], dtype="<i4").tobytes() + np.zeros(2, dtype="<f4").tobytes()
        path.write_bytes(rec1 + rec2)
        with pytest.raises(DatasetError):
            read_fvecs(path)

    def test_writer_rejects_1d(self, tmp_path):
        with pytest.raises(DatasetError):
            write_fvecs(tmp_path / "x.fvecs", np.zeros(3))

    def test_writer_rejects_empty(self, tmp_path):
        with pytest.raises(DatasetError):
            write_fvecs(tmp_path / "x.fvecs", np.zeros((0, 3)))

    def test_bvecs_inconsistent_dims(self, tmp_path):
        path = tmp_path / "mixed.bvecs"
        rec1 = np.array([3], dtype="<i4").tobytes() + bytes(3)
        rec2 = np.array([2], dtype="<i4").tobytes() + bytes(3)
        path.write_bytes(rec1 + rec2)
        with pytest.raises(DatasetError):
            read_bvecs(path)
