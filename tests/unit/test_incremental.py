"""Incremental index maintenance (Section 7 scenario)."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.config import NNDescentConfig
from repro.core.incremental import IncrementalIndex
from repro.core.nndescent import NNDescent
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ConfigError, DatasetError
from repro.eval.recall import graph_recall


@pytest.fixture()
def base_data():
    return gaussian_mixture(300, 12, n_clusters=6, cluster_std=0.3, seed=21)


@pytest.fixture()
def index(base_data):
    return IncrementalIndex(base_data, NNDescentConfig(k=6, seed=21))


class TestConstruction:
    def test_initial_build_quality(self, index, base_data):
        truth = brute_force_knn_graph(base_data, k=6)
        assert graph_recall(index.graph, truth) > 0.9

    def test_len(self, index, base_data):
        assert len(index) == len(base_data)

    def test_rejects_bad_refinement_iters(self, base_data):
        with pytest.raises(ConfigError):
            IncrementalIndex(base_data, NNDescentConfig(k=6), refinement_iters=0)

    def test_rejects_non_matrix(self):
        with pytest.raises(DatasetError):
            IncrementalIndex(np.zeros(10), NNDescentConfig(k=3))


class TestAdd:
    def test_add_grows_index(self, index):
        new = gaussian_mixture(40, 12, n_clusters=6, cluster_std=0.3, seed=99)
        index.add(new)
        assert len(index) == 340
        assert index.graph.n == 340

    def test_add_single_vector(self, index):
        v = np.zeros(12, dtype=np.float32)
        index.add(v)
        assert len(index) == 301

    def test_added_points_get_good_neighbors(self, index):
        new = gaussian_mixture(40, 12, n_clusters=6, cluster_std=0.3, seed=99)
        index.add(new)
        truth = brute_force_knn_graph(index.data, k=6)
        assert graph_recall(index.graph, truth) > 0.9

    def test_add_dim_mismatch(self, index):
        with pytest.raises(DatasetError):
            index.add(np.zeros((3, 5)))

    def test_refinement_cheaper_than_rebuild(self, base_data):
        """The Section 7 claim: warm-started refinement beats a full
        rebuild in distance evaluations."""
        index = IncrementalIndex(base_data, NNDescentConfig(k=6, seed=21))
        new = gaussian_mixture(30, 12, n_clusters=6, cluster_std=0.3, seed=77)
        res_inc = index.add(new)
        rebuild = NNDescent(index.data, NNDescentConfig(k=6, seed=5)).build()
        assert res_inc.distance_evals < rebuild.distance_evals

    def test_graph_valid_after_adds(self, index):
        for seed in (1, 2):
            index.add(gaussian_mixture(20, 12, n_clusters=6,
                                       cluster_std=0.3, seed=seed))
        index.graph.validate()


class TestRemove:
    def test_remove_shrinks_index(self, index):
        index.remove([0, 5, 10])
        assert len(index) == 297
        assert index.graph.n == 297

    def test_removed_ids_absent_from_graph(self, index):
        # Remove the rows; the *new* ids are compacted, so validate the
        # graph structurally and check the data rows moved.
        before = index.data.copy()
        index.remove([2])
        index.graph.validate()
        np.testing.assert_array_equal(index.data[2], before[3])

    def test_quality_after_removal(self, index):
        index.remove(list(range(0, 60)))
        truth = brute_force_knn_graph(index.data, k=6)
        assert graph_recall(index.graph, truth) > 0.9

    def test_remove_out_of_range(self, index):
        with pytest.raises(DatasetError):
            index.remove([10_000])

    def test_remove_too_many(self, index):
        with pytest.raises(DatasetError):
            index.remove(list(range(297)))

    def test_add_then_remove_roundtrip(self, index, base_data):
        n0 = len(index)
        index.add(gaussian_mixture(10, 12, n_clusters=6,
                                   cluster_std=0.3, seed=3))
        index.remove(list(range(n0, n0 + 10)))
        assert len(index) == n0
        np.testing.assert_array_equal(index.data, base_data)


class TestWarmStart:
    def test_initial_graph_too_large_rejected(self, base_data):
        g = brute_force_knn_graph(base_data, k=4)
        with pytest.raises(ConfigError):
            NNDescent(base_data[:100], NNDescentConfig(k=4), initial_graph=g)

    def test_warm_start_from_exact_graph_converges_fast(self, base_data):
        exact = brute_force_knn_graph(base_data, k=6)
        res = NNDescent(base_data, NNDescentConfig(k=6, seed=0),
                        initial_graph=exact).build()
        # Already optimal: one or two check rounds, still recall 1.0.
        assert res.iterations <= 3
        assert graph_recall(res.graph, exact) == 1.0

    def test_warm_start_skips_stale_ids(self, base_data):
        exact = brute_force_knn_graph(base_data, k=6)
        # Use the full graph on a truncated dataset: rows >= 200 must be
        # skipped rather than crash.
        truncated = exact.ids[:200], exact.dists[:200]
        from repro.core.graph import KNNGraph
        res = NNDescent(base_data[:200], NNDescentConfig(k=6, seed=0),
                        initial_graph=KNNGraph(*truncated)).build()
        res.graph.validate()

    def test_total_refinement_counter(self, index):
        before = index.total_refinement_iterations
        index.add(np.zeros((5, 12), dtype=np.float32))
        assert index.total_refinement_iterations > before
