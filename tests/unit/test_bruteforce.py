"""Brute-force exact k-NN baseline."""

import numpy as np
import pytest

from repro.baselines.bruteforce import (
    brute_force_distance_evals,
    brute_force_knn_graph,
    brute_force_neighbors,
    counting_brute_force,
)
from repro.errors import DatasetError


class TestNeighbors:
    def test_exact_on_line(self):
        # Points on a line: neighbors are adjacent indices.
        data = np.arange(10, dtype=np.float32).reshape(-1, 1)
        ids, dists = brute_force_neighbors(data, data, k=2, exclude_self=True)
        assert set(ids[5].tolist()) == {4, 6}
        np.testing.assert_allclose(sorted(dists[5]), [1.0, 1.0])

    def test_self_included_when_not_excluded(self):
        data = np.arange(5, dtype=np.float32).reshape(-1, 1)
        ids, dists = brute_force_neighbors(data, data, k=1)
        np.testing.assert_array_equal(ids[:, 0], np.arange(5))
        np.testing.assert_allclose(dists[:, 0], 0.0)

    def test_sorted_ascending(self):
        rng = np.random.default_rng(0)
        data = rng.random((50, 4)).astype(np.float32)
        _, dists = brute_force_neighbors(data, data[:10], k=8)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_blocking_invariant(self):
        rng = np.random.default_rng(1)
        data = rng.random((37, 3)).astype(np.float32)
        a = brute_force_neighbors(data, data, k=5, block=7)
        b = brute_force_neighbors(data, data, k=5, block=1000)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_external_queries(self):
        data = np.array([[0.0], [1.0], [2.0]], dtype=np.float32)
        q = np.array([[0.9]], dtype=np.float32)
        ids, _ = brute_force_neighbors(data, q, k=2)
        assert set(ids[0].tolist()) == {0, 1}
        assert ids[0][0] == 1

    def test_k_too_large(self):
        data = np.zeros((3, 2), dtype=np.float32)
        with pytest.raises(DatasetError):
            brute_force_neighbors(data, data, k=3, exclude_self=True)
        with pytest.raises(DatasetError):
            brute_force_neighbors(data, data, k=4)

    def test_bad_k(self):
        data = np.zeros((3, 2), dtype=np.float32)
        with pytest.raises(DatasetError):
            brute_force_neighbors(data, data, k=0)

    def test_sparse_metric(self, sparse_sets):
        ids, dists = brute_force_neighbors(
            sparse_sets, sparse_sets, k=3, metric="jaccard", exclude_self=True)
        assert ids.shape == (len(sparse_sets), 3)
        assert (dists >= 0).all() and (dists <= 1).all()

    def test_tie_break_by_id(self):
        # Equidistant points resolve to the smaller id.
        data = np.array([[0.0], [1.0], [-1.0]], dtype=np.float32)
        ids, _ = brute_force_neighbors(data, data[:1], k=2, exclude_self=True)
        np.testing.assert_array_equal(ids[0], [1, 2])


class TestGraph:
    def test_graph_valid(self, small_dense):
        brute_force_knn_graph(small_dense, k=5).validate()

    def test_graph_matches_neighbors(self, tiny_dense):
        g = brute_force_knn_graph(tiny_dense, k=4)
        ids, dists = brute_force_neighbors(
            tiny_dense, tiny_dense, k=4, exclude_self=True)
        np.testing.assert_array_equal(g.ids, ids)

    def test_cosine_graph(self, tiny_dense):
        g = brute_force_knn_graph(tiny_dense, k=4, metric="cosine")
        g.validate()


class TestCounting:
    def test_eval_count_formula(self):
        assert brute_force_distance_evals(100) == 4950

    def test_counting_brute_force(self, tiny_dense):
        g, evals = counting_brute_force(tiny_dense, k=4)
        g.validate()
        n = len(tiny_dense)
        assert evals == n * n  # row-at-a-time counts all pairs incl. self

    def test_counting_matches_blocked(self, tiny_dense):
        g1, _ = counting_brute_force(tiny_dense, k=4)
        g2 = brute_force_knn_graph(tiny_dense, k=4)
        np.testing.assert_array_equal(g1.ids, g2.ids)
