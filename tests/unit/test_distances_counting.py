"""CountingMetric: the work-unit instrumentation."""

import numpy as np
import pytest

from repro.distances.counting import CountingMetric


class TestCounting:
    def test_scalar_counts(self):
        m = CountingMetric("euclidean")
        m(np.zeros(2), np.ones(2))
        m(np.zeros(2), np.ones(2))
        assert m.count == 2

    def test_batch_counts_batch_size(self):
        m = CountingMetric("sqeuclidean")
        m.distances_to(np.zeros(3), np.zeros((7, 3)))
        assert m.count == 7

    def test_block_counts_area(self):
        m = CountingMetric("sqeuclidean")
        m.block(np.zeros((3, 2)), np.zeros((5, 2)))
        assert m.count == 15

    def test_reset_returns_previous(self):
        m = CountingMetric("euclidean")
        m(np.zeros(1), np.ones(1))
        assert m.reset() == 1
        assert m.count == 0

    def test_name_and_sparse_flags(self):
        assert CountingMetric("jaccard").sparse_input
        assert CountingMetric("l2").name == "euclidean"

    def test_values_unchanged(self):
        m = CountingMetric("euclidean")
        assert m(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_inner_metric_accessible(self):
        m = CountingMetric("cosine")
        assert m.inner.name == "cosine"

    def test_accepts_metric_object(self):
        from repro.distances.registry import get_metric
        m = CountingMetric(get_metric("euclidean"))
        assert m.name == "euclidean"
