"""Recall metrics."""

import numpy as np
import pytest

from repro.core.graph import EMPTY, KNNGraph
from repro.errors import DatasetError
from repro.eval.recall import graph_recall, per_vertex_recall, recall_at_k


def graph_from(ids, dists=None):
    ids = np.asarray(ids)
    if dists is None:
        dists = np.where(ids == EMPTY, np.inf, 0.5).astype(np.float64)
    return KNNGraph(ids, dists)


class TestGraphRecall:
    def test_perfect(self):
        g = graph_from([[1, 2], [0, 2], [0, 1]])
        assert graph_recall(g, g) == 1.0

    def test_half(self):
        truth = graph_from([[1, 2], [0, 2], [0, 1]])
        got = graph_from([[1, 3], [0, 3], [0, 3]])
        # Row recalls: 1/2, 1/2, 1/2.
        assert graph_recall(got, truth) == pytest.approx(0.5)

    def test_order_irrelevant(self):
        truth = graph_from([[1, 2]])
        got = graph_from([[2, 1]])
        assert graph_recall(got, truth) == 1.0

    def test_per_vertex(self):
        truth = graph_from([[1, 2], [0, 2], [0, 1]])
        got = graph_from([[1, 2], [0, 3], [3, 4]])
        np.testing.assert_allclose(per_vertex_recall(got, truth), [1.0, 0.5, 0.0])

    def test_padding_in_truth(self):
        truth = graph_from([[1, EMPTY]])
        got = graph_from([[1, 5]])
        assert graph_recall(got, truth) == 1.0

    def test_empty_truth_row_counts_full(self):
        truth = graph_from([[EMPTY, EMPTY]])
        got = graph_from([[1, 2]])
        assert graph_recall(got, truth) == 1.0

    def test_size_mismatch(self):
        with pytest.raises(DatasetError):
            graph_recall(graph_from([[1]]), graph_from([[1], [0]]))


class TestRecallAtK:
    def test_perfect(self):
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(gt, gt) == 1.0

    def test_partial(self):
        found = np.array([[1, 9, 8]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(found, gt) == pytest.approx(1 / 3)

    def test_mean_over_queries(self):
        found = np.array([[1, 2], [9, 8]])
        gt = np.array([[1, 2], [1, 2]])
        assert recall_at_k(found, gt) == pytest.approx(0.5)

    def test_padding_ignored(self):
        found = np.array([[1, -1, -1]])
        gt = np.array([[1, 2, -1]])
        assert recall_at_k(found, gt) == pytest.approx(0.5)

    def test_query_count_mismatch(self):
        with pytest.raises(DatasetError):
            recall_at_k(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_empty_gt_row(self):
        found = np.array([[1, 2]])
        gt = np.array([[-1, -1]])
        assert recall_at_k(found, gt) == 1.0
