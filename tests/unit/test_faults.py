"""Fault injection: FaultPlan validation, FaultInjector behaviour, and
the YGMWorld reliable-delivery layer under injected faults."""

import pytest

from repro.config import ClusterConfig
from repro.errors import (ConfigError, FaultToleranceError,
                          RankFailureError, RuntimeStateError)
from repro.runtime.faults import FaultInjector, FaultPlan, make_injector
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


def make_world(plan=None, world_size=4, reliable=False, **kw):
    cfg = ClusterConfig(nodes=world_size // 2, procs_per_node=2)
    injector = make_injector(plan, cfg.world_size)
    cluster = SimCluster(cfg, injector=injector)
    world = YGMWorld(cluster, reliable=reliable, **kw)
    calls = []
    world.register_handler("note", lambda ctx, tag: calls.append((ctx.rank, tag)))
    return world, calls


class TestFaultPlan:
    def test_default_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan(seed=99).is_null

    def test_any_rate_is_not_null(self):
        assert not FaultPlan(drop_rate=0.1).is_null
        assert not FaultPlan(dup_rate=0.1).is_null
        assert not FaultPlan(reorder_rate=0.1).is_null
        assert not FaultPlan(delay_rate=0.1).is_null
        assert not FaultPlan(stall_rate=0.1).is_null
        assert not FaultPlan(crashes=((2, 1),)).is_null

    @pytest.mark.parametrize("field", [
        "drop_rate", "dup_rate", "reorder_rate", "delay_rate", "stall_rate"])
    def test_rates_validated(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ConfigError):
            FaultPlan(**{field: -0.1})

    def test_bad_delay_and_crash_iteration(self):
        with pytest.raises(ConfigError):
            FaultPlan(max_delay_ticks=0)
        with pytest.raises(ConfigError):
            FaultPlan(crashes=((-1, 0),))

    def test_crashes_sorted(self):
        plan = FaultPlan(crashes=((5, 1), (2, 0)))
        assert plan.crashes == ((2, 0), (5, 1))

    def test_with_crash(self):
        plan = FaultPlan(drop_rate=0.1).with_crash(rank=3, at_iteration=2)
        assert plan.crashes == ((2, 3),)
        assert plan.drop_rate == 0.1

    def test_signature_deterministic(self):
        a = FaultPlan(seed=7, drop_rate=0.5).signature()
        b = FaultPlan(seed=7, dup_rate=0.2).signature()
        c = FaultPlan(seed=8).signature()
        assert a == b          # signature depends only on the seed
        assert a != c

    def test_crash_rank_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(crashes=((1, 99),)), 4)

    def test_make_injector_null_returns_none(self):
        assert make_injector(None, 4) is None
        assert make_injector(FaultPlan(), 4) is None
        assert make_injector(FaultPlan(drop_rate=0.1), 4) is not None


class TestFaultInjector:
    def test_drop_everything(self):
        inj = FaultInjector(FaultPlan(drop_rate=1.0), 4)
        assert inj.on_deliver(0, 1) == []
        assert inj.stats.dropped == 1

    def test_duplicate_everything(self):
        inj = FaultInjector(FaultPlan(dup_rate=1.0), 4)
        assert inj.on_deliver(0, 1) == [0, 0]
        assert inj.stats.duplicated == 1

    def test_delay_everything(self):
        inj = FaultInjector(FaultPlan(delay_rate=1.0, max_delay_ticks=2), 4)
        delays = inj.on_deliver(0, 1)
        assert len(delays) == 1 and 1 <= delays[0] <= 2
        assert inj.stats.delayed == 1

    def test_hold_and_tick_release(self):
        inj = FaultInjector(FaultPlan(delay_rate=1.0), 4)
        inj.hold(2, 0, 1, "msg")
        assert inj.pending_delayed() == 1
        assert inj.tick() == []                       # clock 1 < release 2
        assert inj.tick() == [(0, 1, "msg")]          # clock 2 == release
        assert inj.pending_delayed() == 0

    def test_stall_charges(self):
        inj = FaultInjector(FaultPlan(stall_rate=1.0, stall_seconds=0.5), 4)
        assert inj.maybe_stall() == 0.5
        assert inj.stats.stalls == 1

    def test_reorder_is_permutation(self):
        inj = FaultInjector(FaultPlan(seed=3, reorder_rate=1.0), 4)
        order = inj.maybe_reorder(10)
        assert order is not None
        assert sorted(int(i) for i in order) == list(range(10))
        assert inj.maybe_reorder(1) is None           # nothing to permute

    def test_crash_schedule_fires_once(self):
        inj = FaultInjector(FaultPlan(crashes=((2, 1),)), 4)
        assert inj.advance_iteration(0) == []
        assert inj.advance_iteration(2) == [1]
        assert inj.is_crashed(1)
        inj.repair_all()
        assert not inj.is_crashed(1)
        assert inj.stats.recoveries == 1
        # Replaying the iteration after recovery must not re-crash.
        assert inj.advance_iteration(2) == []

    def test_decision_stream_replays_identically(self):
        plan = FaultPlan(seed=11, drop_rate=0.3, dup_rate=0.2, delay_rate=0.2)
        a = FaultInjector(plan, 4)
        b = FaultInjector(plan, 4)
        seq_a = [tuple(a.on_deliver(0, 1)) for _ in range(200)]
        seq_b = [tuple(b.on_deliver(0, 1)) for _ in range(200)]
        assert seq_a == seq_b


class TestClusterFaultPaths:
    def test_dropped_message_never_arrives(self):
        cluster = SimCluster(
            ClusterConfig(nodes=2, procs_per_node=2),
            injector=FaultInjector(FaultPlan(drop_rate=1.0), 4))
        cluster.deliver(0, 1, "x")
        assert cluster.mailbox_empty(1)

    def test_fault_exempt_bypasses_injector(self):
        cluster = SimCluster(
            ClusterConfig(nodes=2, procs_per_node=2),
            injector=FaultInjector(FaultPlan(drop_rate=1.0), 4))
        cluster.deliver(0, 1, "x", fault_exempt=True)
        assert not cluster.mailbox_empty(1)

    def test_local_delivery_never_faulted(self):
        cluster = SimCluster(
            ClusterConfig(nodes=2, procs_per_node=2),
            injector=FaultInjector(FaultPlan(drop_rate=1.0), 4))
        cluster.deliver(1, 1, "self")
        assert not cluster.mailbox_empty(1)

    def test_crashed_rank_traffic_dropped(self):
        inj = FaultInjector(FaultPlan(crashes=((0, 2),)), 4)
        cluster = SimCluster(ClusterConfig(nodes=2, procs_per_node=2),
                             injector=inj)
        inj.advance_iteration(0)
        cluster.deliver(0, 2, "to-dead")
        cluster.deliver(2, 0, "from-dead")
        assert cluster.mailbox_empty(2) and cluster.mailbox_empty(0)
        assert inj.stats.crash_dropped == 2


class TestReliableDelivery:
    def test_unreliable_drops_lose_messages(self):
        world, calls = make_world(FaultPlan(drop_rate=1.0))
        for i in range(10):
            world.async_call(0, 1, "note", i, nbytes=8)
        world.barrier()
        assert calls == []
        assert world.fault_stats.dropped >= 10

    def test_reliable_masks_heavy_drops(self):
        world, calls = make_world(FaultPlan(seed=5, drop_rate=0.4),
                                  reliable=True, retry_timeout=1)
        for i in range(50):
            world.async_call(0, 1, "note", i, nbytes=8)
        world.barrier()
        assert sorted(tag for _r, tag in calls) == list(range(50))
        assert world.fault_stats.retransmits > 0

    def test_reliable_dedups_duplicates(self):
        world, calls = make_world(FaultPlan(seed=5, dup_rate=1.0),
                                  reliable=True)
        for i in range(20):
            world.async_call(0, 1, "note", i, nbytes=8)
        world.barrier()
        assert sorted(tag for _r, tag in calls) == list(range(20))
        assert world.fault_stats.duplicates_suppressed >= 20

    def test_reliable_total_loss_exhausts_budget(self):
        world, _calls = make_world(FaultPlan(drop_rate=1.0), reliable=True,
                                   retry_timeout=1, max_retries=3)
        world.async_call(0, 1, "note", 0, nbytes=8)
        with pytest.raises(FaultToleranceError) as exc:
            world.barrier()
        assert exc.value.src == 0 and exc.value.dest == 1
        assert exc.value.attempts == 3

    def test_crashed_rank_fails_barrier(self):
        plan = FaultPlan(crashes=((0, 1),))
        world, _calls = make_world(plan)
        world.injector.advance_iteration(0)
        world.async_call(0, 2, "note", 0, nbytes=8)
        with pytest.raises(RankFailureError) as exc:
            world.barrier()
        assert exc.value.ranks == (1,)

    def test_reset_in_flight_clears_everything(self):
        world, calls = make_world(FaultPlan(seed=1, drop_rate=0.2),
                                  reliable=True)
        for i in range(30):
            world.async_call(0, 1, "note", i, nbytes=8)
        world.flush_all()
        world.reset_in_flight()
        world.barrier()
        assert calls == []
        assert not world._reliable_pending()

    def test_ack_traffic_recorded(self):
        world, _calls = make_world(FaultPlan(seed=2, drop_rate=0.01),
                                   reliable=True)
        for i in range(10):
            world.async_call(0, 1, "note", i, nbytes=8)
        world.barrier()
        assert world.stats.by_type["ack"].count >= 1
        assert world.fault_stats.acks_sent >= 1


class TestFailureDetection:
    """Heartbeat/last-progress failure detector in the comm layer."""

    def test_silent_rank_detected_by_timeout(self):
        """A rank that never acks and never sends counts as failed once
        the timeout elapses — well before the retransmit budget runs
        out (max_retries=32 with doubling backoff takes far longer)."""
        world, _calls = make_world(FaultPlan(drop_rate=1.0), reliable=True,
                                   retry_timeout=1, failure_timeout=8)
        world.async_call(0, 1, "note", 0, nbytes=8)
        with pytest.raises(RankFailureError) as exc:
            world.barrier()
        assert 1 in exc.value.ranks
        assert world.fault_stats.detected >= 1

    def test_timeout_none_leaves_budget_exhaustion(self):
        world, _calls = make_world(FaultPlan(drop_rate=1.0), reliable=True,
                                   retry_timeout=1, max_retries=3,
                                   failure_timeout=None)
        world.async_call(0, 1, "note", 0, nbytes=8)
        with pytest.raises(FaultToleranceError):
            world.barrier()

    def test_lossy_but_alive_link_not_declared_dead(self):
        """Heavy-but-recoverable loss must ride out retransmits: the
        timeout covers several backoff cycles, so a live rank that
        keeps acking (eventually) is never detected as failed."""
        world, calls = make_world(FaultPlan(seed=5, drop_rate=0.3),
                                  reliable=True, retry_timeout=1,
                                  failure_timeout=256)
        for i in range(20):
            world.async_call(0, 1, "note", i, nbytes=8)
        world.barrier()
        assert len(calls) == 20
        assert world.fault_stats.detected == 0

    def test_failure_timeout_validated(self):
        with pytest.raises(RuntimeStateError):
            make_world(reliable=True, failure_timeout=0)


class TestExcludeReadmit:
    """Degraded-mode comm surface: exclusion, then re-admission."""

    def _failed_world(self):
        plan = FaultPlan(crashes=((0, 1),))
        world, calls = make_world(plan)
        world.injector.advance_iteration(0)
        world.async_call(0, 1, "note", 0, nbytes=8)
        with pytest.raises(RankFailureError):
            world.barrier()
        return world, calls

    def test_excluded_rank_no_longer_fails_barriers(self):
        world, calls = self._failed_world()
        world.exclude_ranks({1})
        world.reset_in_flight()
        world.async_call(0, 2, "note", 7, nbytes=8)
        world.barrier()  # does not raise
        assert (2, 7) in calls
        assert world.excluded_ranks == {1}

    def test_run_on_all_skips_excluded(self):
        world, _calls = self._failed_world()
        world.exclude_ranks({1})
        world.reset_in_flight()
        visited = []
        world.run_on_all(lambda ctx: visited.append(ctx.rank))
        assert 1 not in visited
        assert sorted(visited) == [0, 2, 3]

    def test_readmit_restores_full_world(self):
        world, calls = self._failed_world()
        world.exclude_ranks({1})
        world.reset_in_flight()
        returned = world.readmit_ranks()
        assert returned == {1}
        assert world.excluded_ranks == set()
        world.async_call(0, 1, "note", 9, nbytes=8)
        world.barrier()
        assert (1, 9) in calls

    def test_detected_counter_counts_each_failure_once(self):
        world, _calls = self._failed_world()
        assert world.fault_stats.detected == 1
        world.exclude_ranks({1})
        world.reset_in_flight()
        world.barrier()
        assert world.fault_stats.detected == 1
