"""Graph diversification (occlusion pruning)."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph, brute_force_neighbors
from repro.core.diversify import (
    diversified_optimize_graph,
    diversify_neighbor_lists,
)
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ConfigError
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(300, 10, n_clusters=5, cluster_std=0.45, seed=31)


class TestDiversifyLists:
    def test_collinear_occlusion(self):
        # Points on a line: 0 -- 1 -- 2. From 0's perspective, 2 is
        # occluded by 1 (d(1,2)=1 < d(0,2)=2).
        pts = np.array([[0.0], [1.0], [2.0]])
        lists = [[(1, 1.0), (2, 4.0)], [], []]  # sqeuclidean distances
        out = diversify_neighbor_lists(lists, pts, metric="sqeuclidean")
        assert out[0] == [(1, 1.0)]

    def test_non_occluded_kept(self):
        # Symmetric points left and right: neither occludes the other.
        pts = np.array([[0.0], [1.0], [-1.0]])
        lists = [[(1, 1.0), (2, 1.0)], [], []]
        out = diversify_neighbor_lists(lists, pts, metric="sqeuclidean")
        assert out[0] == [(1, 1.0), (2, 1.0)]

    def test_closest_always_kept(self, data):
        g = brute_force_knn_graph(data, k=8)
        lists = [list(zip(*map(list, g.neighbors(v)))) for v in range(g.n)]
        lists = [[(int(u), float(d)) for u, d in lst] for lst in lists]
        out = diversify_neighbor_lists(lists, data)
        for v in range(g.n):
            if lists[v]:
                assert out[v][0] == lists[v][0]

    def test_prune_probability_zero_keeps_everything(self):
        pts = np.array([[0.0], [1.0], [2.0]])
        lists = [[(1, 1.0), (2, 4.0)], [], []]
        out = diversify_neighbor_lists(lists, pts, prune_probability=0.0)
        assert out[0] == lists[0]

    def test_bad_probability(self):
        with pytest.raises(ConfigError):
            diversify_neighbor_lists([[]], np.zeros((1, 1)),
                                     prune_probability=1.5)


class TestDiversifiedOptimize:
    def test_fewer_edges_than_plain_optimize(self, data):
        g = brute_force_knn_graph(data, k=10)
        plain = optimize_graph(g, pruning_factor=1.5)
        div = diversified_optimize_graph(g, data, pruning_factor=1.5)
        assert div.n_edges < plain.n_edges

    def test_valid_graph(self, data):
        g = brute_force_knn_graph(data, k=10)
        diversified_optimize_graph(g, data).validate()

    def test_queries_cheaper_with_similar_recall(self, data):
        """The point of diversification: fewer distance evaluations per
        query at (near) equal recall."""
        g = brute_force_knn_graph(data, k=10)
        plain = optimize_graph(g, pruning_factor=1.5)
        div = diversified_optimize_graph(g, data, pruning_factor=1.5)
        gt_ids, _ = brute_force_neighbors(data, data[:40], k=10)

        s_plain = KNNGraphSearcher(plain, data, seed=0)
        s_div = KNNGraphSearcher(div, data, seed=0)
        ids_p, _, st_p = s_plain.query_batch(data[:40], l=10, epsilon=0.2)
        ids_d, _, st_d = s_div.query_batch(data[:40], l=10, epsilon=0.2)
        r_plain = recall_at_k(ids_p, gt_ids)
        r_div = recall_at_k(ids_d, gt_ids)
        assert st_d["mean_distance_evals"] <= st_p["mean_distance_evals"]
        assert r_div > r_plain - 0.10

    def test_bad_pruning_factor(self, data):
        g = brute_force_knn_graph(data, k=5)
        with pytest.raises(ConfigError):
            diversified_optimize_graph(g, data, pruning_factor=0.5)

    def test_degree_cap_respected(self, data):
        g = brute_force_knn_graph(data, k=8)
        div = diversified_optimize_graph(g, data, pruning_factor=1.5)
        assert div.degrees().max() <= int(np.ceil(8 * 1.5))
