"""SARIF 2.1.0 export (``--format sarif``) for GitHub code scanning."""

import json
from pathlib import Path

from repro.analysis import Finding, to_sarif
from repro.analysis.__main__ import main
from repro.analysis.findings import SARIF_SCHEMA, SARIF_VERSION

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "lint_fixtures"

SAMPLE = [
    Finding(path="src/a.py", line=10, col=4, rule="REP401",
            severity="error", message="shared mutation"),
    Finding(path="src\\b.py", line=3, col=0, rule="REP102",
            severity="warning", message="wall clock"),
]
RULE_META = {
    "REP401": {"severity": "error", "summary": "shared-state mutation"},
    "REP102": {"severity": "warning", "summary": "wall-clock read"},
    "REP405": {"severity": "error", "summary": "metrics publication"},
}


def test_top_level_shape():
    doc = to_sarif(SAMPLE, rules=RULE_META)
    assert doc["$schema"] == SARIF_SCHEMA
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert len(doc["runs"]) == 1
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro.analysis"


def test_rules_catalogue_sorted_and_indexed():
    doc = to_sarif(SAMPLE, rules=RULE_META)
    driver = doc["runs"][0]["tool"]["driver"]
    ids = [r["id"] for r in driver["rules"]]
    assert ids == sorted(ids)
    assert "REP405" in ids  # catalogue includes rules with no findings
    for result in doc["runs"][0]["results"]:
        assert ids[result["ruleIndex"]] == result["ruleId"]


def test_result_shape_and_level_mapping():
    doc = to_sarif(SAMPLE, rules=RULE_META)
    by_rule = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    err = by_rule["REP401"]
    assert err["level"] == "error"
    assert err["message"]["text"] == "shared mutation"
    loc = err["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/a.py"
    assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
    assert loc["region"]["startLine"] == 10
    assert loc["region"]["startColumn"] == 5  # SARIF columns are 1-based
    assert by_rule["REP102"]["level"] == "warning"


def test_windows_paths_normalized_to_posix_uris():
    doc = to_sarif(SAMPLE)
    uris = {r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in doc["runs"][0]["results"]}
    assert "src/b.py" in uris


def test_findings_without_metadata_still_resolve():
    doc = to_sarif(SAMPLE, rules=None)
    driver = doc["runs"][0]["tool"]["driver"]
    assert [r["id"] for r in driver["rules"]] == ["REP102", "REP401"]
    assert all("defaultConfiguration" in r for r in driver["rules"])


def test_empty_run_is_valid():
    doc = to_sarif([], rules=RULE_META)
    assert doc["runs"][0]["results"] == []
    assert len(doc["runs"][0]["tool"]["driver"]["rules"]) == 3


def test_cli_format_sarif_round_trips(capsys):
    rc = main(["--format", "sarif", "--select", "REP401",
               str(FIXTURES / "rep401_bad.py")])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert len(results) == 3
    assert {r["ruleId"] for r in results} == {"REP401"}


def test_cli_format_sarif_clean_exit(capsys):
    rc = main(["--format", "sarif", "--select", "REP401",
               str(FIXTURES / "rep401_good.py")])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []
