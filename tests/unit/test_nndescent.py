"""Shared-memory NN-Descent (Algorithm 1)."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.config import NNDescentConfig
from repro.core.nndescent import NNDescent, _union_with_sample, build_knn_graph
from repro.errors import ConfigError
from repro.eval.recall import graph_recall
from repro.utils.rng import derive_rng


class TestBuild:
    def test_high_recall_on_clustered_data(self, small_dense):
        res = build_knn_graph(small_dense, k=8, seed=0)
        truth = brute_force_knn_graph(small_dense, k=8)
        assert graph_recall(res.graph, truth) > 0.95

    def test_graph_valid(self, small_dense):
        res = build_knn_graph(small_dense, k=6, seed=1)
        res.graph.validate()

    def test_converges(self, small_dense):
        res = build_knn_graph(small_dense, k=6, seed=2)
        assert res.converged
        assert res.iterations <= 30

    def test_update_counts_decrease(self, small_dense):
        res = build_knn_graph(small_dense, k=6, seed=3)
        # Updates should broadly shrink as the graph converges.
        assert res.update_counts[-1] < res.update_counts[0]

    def test_subquadratic_scaling(self):
        # Section 3.1: empirical cost ~O(n^1.14) vs brute force O(n^2).
        # At laptop scale the constant factors hide the asymptotics for a
        # single size, so check the *growth rate*: doubling n must grow
        # the eval count far slower than the 4x of brute force.
        from repro.datasets.synthetic import gaussian_mixture
        evals = {}
        for n in (250, 500):
            data = gaussian_mixture(n, 8, n_clusters=8, seed=4)
            evals[n] = build_knn_graph(data, k=6, seed=4).distance_evals
        growth = evals[500] / evals[250]
        assert growth < 3.0  # brute force would be ~4.0

    def test_planted_structure_recovered(self, planted):
        # k must exceed the group size: NN-Descent propagates through
        # neighbor-of-neighbor candidates, and with k == group-1 the
        # planted islands have no slack to bridge through.
        data, groups = planted
        res = build_knn_graph(data, k=6, seed=5)
        # Each point's 3 true NNs are its group mates.
        hits = 0
        total = 0
        for v in range(len(data)):
            ids, _ = res.graph.neighbors(v)
            mates = set(np.flatnonzero(groups == groups[v])) - {v}
            hits += len(mates & set(ids.tolist()))
            total += len(mates)
        assert hits / total > 0.95

    def test_cosine_metric(self, small_dense):
        res = build_knn_graph(small_dense, k=6, metric="cosine", seed=6)
        truth = brute_force_knn_graph(small_dense, k=6, metric="cosine")
        assert graph_recall(res.graph, truth) > 0.9

    def test_jaccard_sparse(self, sparse_sets):
        res = build_knn_graph(sparse_sets, k=5, metric="jaccard", seed=7)
        truth = brute_force_knn_graph(sparse_sets, k=5, metric="jaccard")
        assert graph_recall(res.graph, truth) > 0.8

    def test_seed_reproducibility(self, tiny_dense):
        a = build_knn_graph(tiny_dense, k=5, seed=11)
        b = build_knn_graph(tiny_dense, k=5, seed=11)
        np.testing.assert_array_equal(a.graph.ids, b.graph.ids)

    def test_different_seeds_differ(self, tiny_dense):
        a = build_knn_graph(tiny_dense, k=5, seed=1)
        b = build_knn_graph(tiny_dense, k=5, seed=2)
        assert not np.array_equal(a.graph.ids, b.graph.ids)

    def test_max_iters_respected(self, small_dense):
        cfg = NNDescentConfig(k=6, max_iters=1, delta=0.0, seed=0)
        res = NNDescent(small_dense, cfg).build()
        assert res.iterations == 1
        assert not res.converged

    def test_delta_zero_runs_to_max_iters(self, tiny_dense):
        cfg = NNDescentConfig(k=4, delta=0.0, max_iters=3, seed=0)
        res = NNDescent(tiny_dense, cfg).build()
        assert res.iterations == 3

    def test_high_delta_stops_early(self, small_dense):
        cfg = NNDescentConfig(k=6, delta=10.0, seed=0)
        res = NNDescent(small_dense, cfg).build()
        assert res.iterations == 1 and res.converged

    def test_k_too_large_rejected(self, tiny_dense):
        with pytest.raises(ConfigError):
            build_knn_graph(tiny_dense, k=len(tiny_dense))

    def test_rho_controls_sample(self, small_dense):
        low = NNDescent(small_dense, NNDescentConfig(k=8, rho=0.3, seed=0)).build()
        high = NNDescent(small_dense, NNDescentConfig(k=8, rho=1.0, seed=0)).build()
        # Higher rho does more work per iteration.
        assert high.distance_evals / high.iterations > low.distance_evals / low.iterations


class TestRPTreeInit:
    def test_rptree_init_works(self, small_dense):
        cfg = NNDescentConfig(k=6, seed=0)
        res = NNDescent(small_dense, cfg, init_method="rptree").build()
        truth = brute_force_knn_graph(small_dense, k=6)
        assert graph_recall(res.graph, truth) > 0.95

    def test_rptree_init_converges_in_fewer_or_equal_iters(self, small_dense):
        cfg = NNDescentConfig(k=6, seed=0)
        rand = NNDescent(small_dense, cfg, init_method="random").build()
        rp = NNDescent(small_dense, cfg, init_method="rptree").build()
        assert rp.iterations <= rand.iterations + 1

    def test_rptree_rejected_for_sparse(self, sparse_sets):
        cfg = NNDescentConfig(k=4, metric="jaccard", seed=0)
        with pytest.raises(ConfigError):
            NNDescent(sparse_sets, cfg, init_method="rptree")

    def test_unknown_init_rejected(self, small_dense):
        with pytest.raises(ConfigError):
            NNDescent(small_dense, NNDescentConfig(k=4), init_method="magic")


class TestUnionWithSample:
    def test_preserves_base(self):
        rng = derive_rng(0)
        out = _union_with_sample([1, 2], [3, 4, 5], 10, rng)
        assert out[:2] == [1, 2]
        assert set(out) == {1, 2, 3, 4, 5}

    def test_no_duplicates(self):
        rng = derive_rng(0)
        out = _union_with_sample([1, 2], [2, 2, 3], 10, rng)
        assert sorted(out) == [1, 2, 3]

    def test_samples_at_most_n(self):
        rng = derive_rng(0)
        out = _union_with_sample([], list(range(100)), 5, rng)
        assert len(out) == 5

    def test_empty_inputs(self):
        rng = derive_rng(0)
        assert _union_with_sample([], [], 5, rng) == []
