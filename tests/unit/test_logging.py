"""Per-rank logging helpers."""

import logging

from repro.utils.logging import configure, get_logger, rank_logger


def test_rank0_info_enabled():
    logger = rank_logger(0)
    assert logger.getEffectiveLevel() <= logging.INFO or logger.level == 0


def test_nonzero_rank_quiet():
    logger = rank_logger(3)
    assert logger.level == logging.WARNING


def test_verbose_all_ranks():
    logger = rank_logger(5, verbose_all_ranks=True)
    assert logger.level != logging.WARNING or logger.level == 0


def test_configure_idempotent():
    configure()
    root = get_logger()
    handlers_before = len(root.handlers)
    configure()
    assert len(get_logger().handlers) == handlers_before


def test_logger_naming():
    assert rank_logger(7).name == "repro.rank7"
    assert get_logger().name == "repro"
