"""Byte-based flushing (real YGM's buffer cap)."""

import pytest

from repro.config import ClusterConfig
from repro.errors import RuntimeStateError
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


def make_world(flush=10_000, flush_bytes=1 << 20):
    cluster = SimCluster(ClusterConfig(nodes=2, procs_per_node=1))
    world = YGMWorld(cluster, flush_threshold=flush,
                     flush_threshold_bytes=flush_bytes)
    world.register_handler("h", lambda ctx: None)
    return world


class TestByteThreshold:
    def test_big_messages_flush_early(self):
        world = make_world(flush=10_000, flush_bytes=1000)
        # Three 400-byte messages cross the byte cap before the count cap.
        for _ in range(3):
            world.async_call(0, 1, "h", nbytes=400)
        assert world.cluster.pending_total() == 3  # flushed by bytes

    def test_small_messages_stay_buffered(self):
        world = make_world(flush=10_000, flush_bytes=1000)
        for _ in range(3):
            world.async_call(0, 1, "h", nbytes=8)
        assert world.cluster.pending_total() == 0  # below both caps

    def test_count_threshold_still_applies(self):
        world = make_world(flush=2, flush_bytes=1 << 30)
        world.async_call(0, 1, "h", nbytes=1)
        world.async_call(0, 1, "h", nbytes=1)
        assert world.cluster.pending_total() == 2

    def test_feature_vs_reply_buffer_asymmetry(self):
        """The reason bytes matter: Type 2+-sized messages fill buffers
        ~30x faster than Type 3-sized ones at equal counts."""
        def flushes(nbytes):
            world = make_world(flush=10_000, flush_bytes=4096)
            for _ in range(64):
                world.async_call(0, 1, "h", nbytes=nbytes)
            world.barrier()
            return world.flush_count
        assert flushes(400) > flushes(12)

    def test_invalid_threshold(self):
        cluster = SimCluster(ClusterConfig(nodes=1, procs_per_node=2))
        with pytest.raises(RuntimeStateError):
            YGMWorld(cluster, flush_threshold_bytes=0)

    def test_semantics_unchanged(self):
        """Byte-flushing changes cost, never delivery."""
        logs = []
        for flush_bytes in (64, 1 << 20):
            world = make_world(flush=10_000, flush_bytes=flush_bytes)
            seen = []
            world.register_handler("log", lambda ctx, x: seen.append(x))
            for i in range(20):
                world.async_call(i % 2, (i + 1) % 2, "log", i, nbytes=100)
            world.barrier()
            logs.append(sorted(seen))
        assert logs[0] == logs[1]
