"""Runtime tracing (Section 7 profiling support)."""

import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.runtime.tracing import attach_tracer


@pytest.fixture(scope="module")
def traced_run(small_dense):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=6, seed=51), batch_size=1 << 11,
                     backend="sim")
    dnnd = DNND(small_dense, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
    tracer = attach_tracer(dnnd.world)
    result = dnnd.build()
    return tracer, result, dnnd


class TestTracer:
    def test_one_record_per_barrier(self, traced_run):
        tracer, _, dnnd = traced_run
        assert tracer.total_supersteps() == dnnd.cluster.ledger.barriers

    def test_durations_sum_to_elapsed(self, traced_run):
        tracer, result, _ = traced_run
        total = sum(r.duration for r in tracer.records)
        assert total == pytest.approx(result.sim_seconds, rel=1e-9)

    def test_phases_labelled(self, traced_run):
        tracer, _, _ = traced_run
        phases = {r.phase for r in tracer.records}
        assert {"init", "reverse", "neighbor_check"} <= phases

    def test_phase_durations_match_ledger(self, traced_run):
        tracer, result, _ = traced_run
        for phase, secs in tracer.phase_durations().items():
            assert secs == pytest.approx(result.phase_seconds[phase], rel=1e-9)

    def test_message_timeline_totals(self, traced_run):
        tracer, result, _ = traced_run
        timeline = tracer.message_timeline("type1")
        assert sum(timeline) == result.message_stats.get("type1").count

    def test_imbalance_recorded(self, traced_run):
        tracer, _, _ = traced_run
        assert tracer.peak_imbalance() >= 1.0

    def test_busiest_supersteps_sorted(self, traced_run):
        tracer, _, _ = traced_run
        busiest = tracer.busiest_supersteps(3)
        durations = [r.duration for r in busiest]
        assert durations == sorted(durations, reverse=True)

    def test_report_renders(self, traced_run):
        tracer, _, _ = traced_run
        text = tracer.report()
        assert "phase breakdown" in text
        assert "busiest supersteps" in text
        assert "neighbor_check" in text

    def test_barrier_semantics_preserved(self, small_dense):
        """A traced build produces the same graph as an untraced one."""
        import numpy as np

        def build(trace):
            cfg = DNNDConfig(nnd=NNDescentConfig(k=5, seed=52),
                             backend="sim")
            dnnd = DNND(small_dense, cfg,
                        cluster=ClusterConfig(nodes=2, procs_per_node=1))
            if trace:
                attach_tracer(dnnd.world)
            return dnnd.build().graph

        np.testing.assert_array_equal(build(True).ids, build(False).ids)


class TestDoubleAttach:
    """Regression: attaching a tracer twice used to wrap the (already
    wrapped) barrier again, firing ``_on_barrier`` twice per superstep
    and double-counting every record."""

    def test_second_attach_returns_existing_tracer(self, tiny_dense):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=5, seed=53), backend="sim")
        dnnd = DNND(tiny_dense, cfg,
                    cluster=ClusterConfig(nodes=2, procs_per_node=1))
        first = attach_tracer(dnnd.world)
        second = attach_tracer(dnnd.world)
        assert second is first

    def test_double_attach_does_not_double_count(self, tiny_dense):
        def build(attaches):
            cfg = DNNDConfig(nnd=NNDescentConfig(k=5, seed=53),
                             backend="sim")
            dnnd = DNND(tiny_dense, cfg,
                        cluster=ClusterConfig(nodes=2, procs_per_node=1))
            tracer = None
            for _ in range(attaches):
                tracer = attach_tracer(dnnd.world)
            result = dnnd.build()
            return tracer, result, dnnd

        once_tracer, once_result, once_dnnd = build(1)
        twice_tracer, twice_result, twice_dnnd = build(3)
        assert (twice_tracer.total_supersteps()
                == once_tracer.total_supersteps()
                == twice_dnnd.cluster.ledger.barriers)
        # Per-superstep deltas (not just totals) must match: a doubled
        # wrapper fired a second record with an empty delta window.
        assert (twice_tracer.message_timeline("type1")
                == once_tracer.message_timeline("type1"))
        import numpy as np
        np.testing.assert_array_equal(once_result.graph.ids,
                                      twice_result.graph.ids)

    def test_attach_installs_live_registry_when_disabled(self, tiny_dense):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=5, seed=53), backend="sim",
                         metrics=False)
        dnnd = DNND(tiny_dense, cfg,
                    cluster=ClusterConfig(nodes=2, procs_per_node=1))
        assert not dnnd.world.metrics.enabled
        tracer = attach_tracer(dnnd.world)
        assert dnnd.world.metrics.enabled
        dnnd.build()
        assert tracer.total_supersteps() > 0
        assert sum(tracer.message_timeline("type1")) > 0
