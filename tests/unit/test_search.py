"""Section 3.3 greedy search with epsilon."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph, brute_force_neighbors
from repro.core.optimization import optimize_graph
from repro.core.rptree import make_rp_forest
from repro.core.search import KNNGraphSearcher
from repro.errors import SearchError
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def searchable(request):
    # Overlapping clusters: the exact k-NN graph must be *connected* so
    # greedy search exactness is well-defined (tight separated clusters
    # give a disconnected graph where no graph search can cross).
    from repro.datasets.synthetic import gaussian_mixture
    data = gaussian_mixture(300, 12, n_clusters=6, cluster_std=0.45, seed=7)
    graph = brute_force_knn_graph(data, k=10)
    adj = optimize_graph(graph, pruning_factor=1.5)
    assert adj.connected_fraction() == 1.0
    return data, adj


class TestQueryBasics:
    def test_self_query_finds_self(self, searchable):
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        res = s.query(data[5], l=5)
        assert res.ids[0] == 5
        assert res.dists[0] == 0.0

    def test_result_sorted(self, searchable):
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        res = s.query(data[0], l=10)
        assert (np.diff(res.dists) >= 0).all()

    def test_result_size(self, searchable):
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        assert len(s.query(data[0], l=7).ids) == 7

    def test_l_larger_than_k_supported(self, searchable):
        # Section 3.3: l may exceed the graph's k.
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        res = s.query(data[0], l=25)
        assert len(res.ids) == 25

    def test_l_capped_at_n(self, searchable):
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        res = s.query(data[0], l=10_000)
        assert len(res.ids) == len(data)

    def test_external_query_point(self, searchable):
        # The query need not be in the dataset.
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        q = data[3] + 0.01
        res = s.query(q, l=5)
        assert 3 in res.ids

    def test_visits_fraction_of_graph(self, searchable):
        # The greedy search must touch far fewer than n points.
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        res = s.query(data[0], l=5)
        assert res.n_visited < len(data) * 0.5

    def test_accepts_raw_knn_graph(self, searchable):
        data, _ = searchable
        graph = brute_force_knn_graph(data, k=8)
        s = KNNGraphSearcher(graph, data, seed=0)
        res = s.query(data[1], l=5)
        assert res.ids[0] == 1

    def test_counts_are_positive(self, searchable):
        data, adj = searchable
        res = KNNGraphSearcher(adj, data, seed=0).query(data[0], l=5)
        assert res.n_distance_evals > 0
        assert res.n_visited >= len(res.ids)


class TestEpsilon:
    def test_epsilon_increases_work(self, searchable):
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        lo = s.query(data[10], l=10, epsilon=0.0)
        hi = s.query(data[10], l=10, epsilon=0.4)
        assert hi.n_distance_evals >= lo.n_distance_evals

    def test_epsilon_improves_or_preserves_recall(self, searchable):
        data, adj = searchable
        gt_ids, _ = brute_force_neighbors(data, data[:40], k=10)
        def recall(eps):
            s = KNNGraphSearcher(adj, data, seed=0)
            ids, _, _ = s.query_batch(data[:40], l=10, epsilon=eps)
            return recall_at_k(ids, gt_ids)
        assert recall(0.4) >= recall(0.0) - 0.02

    def test_negative_epsilon_rejected(self, searchable):
        data, adj = searchable
        with pytest.raises(SearchError):
            KNNGraphSearcher(adj, data).query(data[0], l=5, epsilon=-0.1)


class TestValidation:
    def test_dim_mismatch(self, searchable):
        data, adj = searchable
        s = KNNGraphSearcher(adj, data)
        with pytest.raises(SearchError):
            s.query(np.zeros(5), l=3)

    def test_bad_l(self, searchable):
        data, adj = searchable
        with pytest.raises(SearchError):
            KNNGraphSearcher(adj, data).query(data[0], l=0)

    def test_graph_data_mismatch(self, searchable):
        data, adj = searchable
        with pytest.raises(SearchError):
            KNNGraphSearcher(adj, data[:10])

    def test_2d_query_rejected(self, searchable):
        data, adj = searchable
        with pytest.raises(SearchError):
            KNNGraphSearcher(adj, data).query(data[:2], l=3)

    def test_unsupported_graph_type(self, searchable):
        data, _ = searchable
        with pytest.raises(SearchError):
            KNNGraphSearcher("not a graph", data)


class TestBatch:
    def test_batch_shapes(self, searchable):
        data, adj = searchable
        s = KNNGraphSearcher(adj, data, seed=0)
        ids, dists, stats = s.query_batch(data[:15], l=8)
        assert ids.shape == (15, 8) and dists.shape == (15, 8)
        assert stats["n_queries"] == 15
        assert stats["mean_distance_evals"] > 0

    def test_batch_recall_high_on_exact_graph(self, searchable):
        data, adj = searchable
        gt_ids, _ = brute_force_neighbors(data, data[:30], k=10)
        s = KNNGraphSearcher(adj, data, seed=0)
        ids, _, _ = s.query_batch(data[:30], l=10, epsilon=0.2)
        assert recall_at_k(ids, gt_ids) > 0.9


class TestEntryForest:
    def test_forest_entry_points(self, searchable):
        data, adj = searchable
        forest = make_rp_forest(np.asarray(data), n_trees=2, leaf_size=20, seed=0)
        s = KNNGraphSearcher(adj, data, entry_forest=forest, seed=0)
        res = s.query(data[0], l=5)
        assert res.ids[0] == 0

    def test_forest_reduces_work_on_average(self, searchable):
        data, adj = searchable
        forest = make_rp_forest(np.asarray(data), n_trees=2, leaf_size=20, seed=0)
        with_f = KNNGraphSearcher(adj, data, entry_forest=forest, seed=0)
        without = KNNGraphSearcher(adj, data, seed=0)
        evals_f = sum(with_f.query(data[i], l=5).n_distance_evals for i in range(20))
        evals_r = sum(without.query(data[i], l=5).n_distance_evals for i in range(20))
        # RP entry points should not be much worse than random ones.
        assert evals_f <= evals_r * 1.5
