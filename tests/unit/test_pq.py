"""Product-quantization baseline."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_neighbors
from repro.baselines.pq import PQIndex, kmeans
from repro.errors import ConfigError, SearchError
from repro.eval.recall import recall_at_k
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def pq_data():
    from repro.datasets.synthetic import gaussian_mixture
    return gaussian_mixture(400, 16, n_clusters=8, cluster_std=0.3, seed=51)


@pytest.fixture(scope="module")
def index(pq_data):
    return PQIndex(pq_data, m=4, n_centroids=32, seed=0)


class TestKMeans:
    def test_shapes(self):
        rng = derive_rng(0)
        X = rng.normal(size=(100, 4))
        cb = kmeans(X, 8, rng)
        assert cb.shape == (8, 4)

    def test_k_capped_at_n(self):
        rng = derive_rng(1)
        X = rng.normal(size=(5, 3))
        assert kmeans(X, 20, rng).shape == (5, 3)

    def test_recovers_separated_clusters(self):
        rng = derive_rng(2)
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 5.0]])
        X = np.concatenate([c + rng.normal(0, 0.1, size=(50, 2))
                            for c in centers])
        cb = kmeans(X, 3, rng)
        # Every true center has a centroid within 1 unit.
        for c in centers:
            assert np.linalg.norm(cb - c, axis=1).min() < 1.0

    def test_identical_points(self):
        rng = derive_rng(3)
        X = np.ones((30, 2))
        cb = kmeans(X, 4, rng)
        assert np.allclose(cb, 1.0)

    def test_bad_k(self):
        with pytest.raises(ConfigError):
            kmeans(np.ones((5, 2)), 0, derive_rng(0))


class TestConstruction:
    def test_codes_shape_and_dtype(self, index, pq_data):
        assert index.codes.shape == (len(pq_data), 4)
        assert index.codes.dtype == np.uint8

    def test_compression_ratio(self, index, pq_data):
        # 16 dims x 4B -> 4 code bytes = 16x.
        assert index.compression_ratio() == 16.0
        assert index.code_bytes == 4

    def test_dim_not_divisible_rejected(self, pq_data):
        with pytest.raises(ConfigError):
            PQIndex(pq_data, m=5)

    def test_metric_guard(self, pq_data):
        with pytest.raises(ConfigError):
            PQIndex(pq_data, m=4, metric="cosine")

    def test_centroid_bounds(self, pq_data):
        with pytest.raises(ConfigError):
            PQIndex(pq_data, m=4, n_centroids=300)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            PQIndex(np.empty((0, 8)), m=2)


class TestQueries:
    def test_self_query_with_rerank(self, index, pq_data):
        res = index.query(pq_data[7], k=3, rerank=30)
        assert res.ids[0] == 7
        assert res.dists[0] == pytest.approx(0.0, abs=1e-9)

    def test_rerank_recall(self, index, pq_data):
        gt, _ = brute_force_neighbors(pq_data, pq_data[:40], k=5)
        ids, _, _ = index.query_batch(pq_data[:40], k=5, rerank=60)
        assert recall_at_k(ids, gt) > 0.8

    def test_more_rerank_more_recall(self, index, pq_data):
        gt, _ = brute_force_neighbors(pq_data, pq_data[:30], k=5)
        def recall(r):
            ids, _, _ = index.query_batch(pq_data[:30], k=5, rerank=r)
            return recall_at_k(ids, gt)
        assert recall(100) >= recall(10) - 0.02

    def test_pure_adc_mode(self, index, pq_data):
        res = index.query(pq_data[3], k=5, rerank=0)
        assert len(res.ids) == 5
        # Quantized distances are approximations, not exact.
        assert res.n_distance_evals < len(pq_data)

    def test_work_accounting_scales_with_rerank(self, index, pq_data):
        lo = index.query(pq_data[0], k=5, rerank=10)
        hi = index.query(pq_data[0], k=5, rerank=200)
        assert hi.n_distance_evals > lo.n_distance_evals

    def test_cheaper_than_bruteforce(self, index, pq_data):
        res = index.query(pq_data[0], k=5, rerank=40)
        assert res.n_distance_evals < len(pq_data)

    def test_sorted_distinct(self, index, pq_data):
        res = index.query(pq_data[11], k=8, rerank=50)
        assert (np.diff(res.dists) >= 0).all()
        assert len(set(res.ids.tolist())) == len(res.ids)

    def test_euclidean_reporting(self, pq_data):
        idx = PQIndex(pq_data, m=4, n_centroids=16, metric="euclidean", seed=0)
        res = idx.query(pq_data[0], k=2, rerank=20)
        assert res.dists[0] == pytest.approx(0.0, abs=1e-6)

    def test_validation(self, index, pq_data):
        with pytest.raises(SearchError):
            index.query(np.zeros(3), k=2)
        with pytest.raises(SearchError):
            index.query(pq_data[0], k=0)
        with pytest.raises(SearchError):
            index.query(pq_data[0], k=2, rerank=-1)

    def test_batch_shapes(self, index, pq_data):
        ids, dists, stats = index.query_batch(pq_data[:6], k=4)
        assert ids.shape == (6, 4)
        assert stats["n_queries"] == 6

    def test_deterministic(self, pq_data):
        a = PQIndex(pq_data, m=4, n_centroids=16, seed=5)
        b = PQIndex(pq_data, m=4, n_centroids=16, seed=5)
        np.testing.assert_array_equal(a.codes, b.codes)
