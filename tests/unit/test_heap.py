"""NeighborHeap — Algorithm 1's Update semantics."""

import numpy as np
import pytest

from repro.core.heap import EMPTY, NeighborHeap
from repro.errors import GraphError


class TestConstruction:
    def test_empty_heap(self):
        h = NeighborHeap(4)
        assert len(h) == 0
        assert not h.full
        assert h.worst_distance() == np.inf

    def test_bad_capacity(self):
        with pytest.raises(GraphError):
            NeighborHeap(0)


class TestCheckedPush:
    def test_insert_returns_one(self):
        h = NeighborHeap(3)
        assert h.checked_push(5, 1.0) == 1
        assert 5 in h

    def test_duplicate_rejected(self):
        h = NeighborHeap(3)
        h.checked_push(5, 1.0)
        assert h.checked_push(5, 0.5) == 0
        assert len(h) == 1

    def test_fills_to_capacity(self):
        h = NeighborHeap(3)
        for i in range(3):
            assert h.checked_push(i, float(i)) == 1
        assert h.full
        assert h.worst_distance() == 2.0

    def test_worse_than_worst_rejected_when_full(self):
        h = NeighborHeap(2)
        h.checked_push(0, 1.0)
        h.checked_push(1, 2.0)
        assert h.checked_push(2, 3.0) == 0
        assert h.checked_push(3, 2.0) == 0  # ties rejected (strict <)

    def test_better_replaces_worst(self):
        h = NeighborHeap(2)
        h.checked_push(0, 1.0)
        h.checked_push(1, 2.0)
        assert h.checked_push(2, 1.5) == 1
        assert 1 not in h and 2 in h
        assert h.worst_distance() == 1.5

    def test_infinite_distance_rejected(self):
        h = NeighborHeap(2)
        assert h.checked_push(0, np.inf) == 0

    def test_eviction_keeps_k_closest(self):
        h = NeighborHeap(5)
        rng = np.random.default_rng(0)
        dists = rng.random(100)
        for i, d in enumerate(dists):
            h.checked_push(i, float(d))
        kept = sorted(d for _, d, _ in h.entries())
        want = sorted(dists)[:5]
        np.testing.assert_allclose(kept, want)

    def test_update_counter_semantics(self):
        # The sum of checked_push returns is the Algorithm 1 counter c.
        h = NeighborHeap(2)
        c = 0
        c += h.checked_push(0, 5.0)
        c += h.checked_push(1, 4.0)
        c += h.checked_push(0, 1.0)  # dup: no count
        c += h.checked_push(2, 9.0)  # too far: no count
        c += h.checked_push(3, 1.0)  # improves
        assert c == 3


class TestFlags:
    def test_new_flag_default(self):
        h = NeighborHeap(3)
        h.checked_push(1, 0.5, True)
        h.checked_push(2, 0.7, False)
        assert h.new_ids() == [1]
        assert h.old_ids() == [2]

    def test_mark_old(self):
        h = NeighborHeap(3)
        h.checked_push(1, 0.5, True)
        h.mark_old(1)
        assert h.new_ids() == []
        assert h.old_ids() == [1]

    def test_mark_old_missing_is_noop(self):
        h = NeighborHeap(3)
        h.checked_push(1, 0.5, True)
        h.mark_old(99)
        assert h.new_ids() == [1]

    def test_replacement_entry_is_new(self):
        h = NeighborHeap(1)
        h.checked_push(1, 5.0, True)
        h.mark_old(1)
        h.checked_push(2, 1.0, True)
        assert h.new_ids() == [2]


class TestExtraction:
    def test_sorted_entries_ascending(self):
        h = NeighborHeap(4)
        for i, d in enumerate([3.0, 1.0, 2.0, 0.5]):
            h.checked_push(i, d)
        dists = [d for _, d, _ in h.sorted_entries()]
        assert dists == sorted(dists)

    def test_sorted_arrays_padding(self):
        h = NeighborHeap(4)
        h.checked_push(7, 1.0)
        ids, dists, flags = h.sorted_arrays()
        assert ids[0] == 7 and dists[0] == 1.0
        assert (ids[1:] == EMPTY).all()
        assert np.isinf(dists[1:]).all()

    def test_sorted_entries_tie_break_by_id(self):
        h = NeighborHeap(3)
        h.checked_push(9, 1.0)
        h.checked_push(2, 1.0)
        ids = [i for i, _, _ in h.sorted_entries()]
        assert ids == [2, 9]

    def test_entries_iteration(self):
        h = NeighborHeap(3)
        h.checked_push(1, 0.1)
        h.checked_push(2, 0.2)
        got = {(i, d) for i, d, _ in h.entries()}
        assert got == {(1, 0.1), (2, 0.2)}


class TestInvariants:
    def test_check_invariants_on_random_workload(self):
        rng = np.random.default_rng(3)
        h = NeighborHeap(8)
        for _ in range(500):
            h.checked_push(int(rng.integers(0, 60)), float(rng.random()))
            h.check_invariants()

    def test_membership_tracks_evictions(self):
        h = NeighborHeap(2)
        h.checked_push(0, 2.0)
        h.checked_push(1, 1.0)
        h.checked_push(2, 0.5)  # evicts 0
        assert 0 not in h and 1 in h and 2 in h
        h.check_invariants()
