"""Section 4.5 graph optimizations."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.core.graph import KNNGraph
from repro.core.optimization import (
    merge_reverse_edges,
    optimize_graph,
    prune_neighborhoods,
)
from repro.errors import ConfigError


def asym_graph():
    """0 -> 1, 1 -> 2, 2 -> 0 (a directed triangle, nothing mutual)."""
    ids = np.array([[1], [2], [0]])
    dists = np.array([[0.1], [0.2], [0.3]])
    return KNNGraph(ids, dists)


class TestMergeReverse:
    def test_adds_reverse_direction(self):
        merged = merge_reverse_edges(asym_graph())
        # Vertex 1 now sees 0 (reverse of 0->1) and 2 (forward).
        assert {u for u, _ in merged[1]} == {0, 2}

    def test_symmetric_result(self):
        merged = merge_reverse_edges(asym_graph())
        edges = {(v, u) for v in range(3) for u, _ in merged[v]}
        for v, u in edges:
            assert (u, v) in edges

    def test_duplicates_removed(self):
        # Mutual edge 0 <-> 1 must appear once per side.
        ids = np.array([[1], [0]])
        dists = np.array([[0.5], [0.5]])
        merged = merge_reverse_edges(KNNGraph(ids, dists))
        assert len(merged[0]) == 1 and len(merged[1]) == 1

    def test_sorted_by_distance(self):
        g = brute_force_knn_graph(
            np.random.default_rng(0).random((40, 4)).astype(np.float32), k=5)
        merged = merge_reverse_edges(g)
        for lst in merged:
            d = [x for _, x in lst]
            assert d == sorted(d)

    def test_keeps_smaller_distance_on_conflict(self):
        # Same pair with two distances (defensive path): smaller wins.
        ids = np.array([[1], [0]])
        dists = np.array([[0.5], [0.4]])
        merged = merge_reverse_edges(KNNGraph(ids, dists))
        assert merged[0][0][1] == 0.4
        assert merged[1][0][1] == 0.4


class TestPrune:
    def test_caps_degree(self):
        lists = [[(i, float(i)) for i in range(10)]]
        out = prune_neighborhoods(lists, 4)
        assert len(out[0]) == 4

    def test_keeps_closest(self):
        lists = [[(1, 0.1), (2, 0.2), (3, 0.3)]]
        out = prune_neighborhoods(lists, 2)
        assert [u for u, _ in out[0]] == [1, 2]

    def test_bad_max_degree(self):
        with pytest.raises(ConfigError):
            prune_neighborhoods([[]], 0)


class TestOptimizeGraph:
    def test_degree_bounded_by_k_times_m(self, small_dense):
        g = brute_force_knn_graph(small_dense, k=6)
        adj = optimize_graph(g, pruning_factor=1.5)
        assert adj.degrees().max() <= int(np.ceil(6 * 1.5))

    def test_m_one_caps_at_k(self, small_dense):
        g = brute_force_knn_graph(small_dense, k=6)
        adj = optimize_graph(g, pruning_factor=1.0)
        assert adj.degrees().max() <= 6

    def test_bad_m_rejected(self, small_dense):
        g = brute_force_knn_graph(small_dense, k=4)
        with pytest.raises(ConfigError):
            optimize_graph(g, pruning_factor=0.5)

    def test_valid_output(self, small_dense):
        g = brute_force_knn_graph(small_dense, k=6)
        optimize_graph(g).validate()

    def test_improves_connectivity(self):
        # The stated purpose: a reverse-merged graph is more densely
        # connected than the raw directed k-NNG.
        adj_raw = asym_graph().to_adjacency()
        adj_opt = optimize_graph(asym_graph(), pruning_factor=2.0)
        assert adj_opt.n_edges > adj_raw.n_edges

    def test_original_edges_retained_when_m_large(self, tiny_dense):
        g = brute_force_knn_graph(tiny_dense, k=4)
        adj = optimize_graph(g, pruning_factor=10.0)
        assert g.edge_set() <= adj.edge_set()
