"""Thread-safety rules (REP4xx) against the fixtures and inline snippets."""

from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, run_analysis

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "lint_fixtures"
CONFIG = AnalysisConfig(exclude=(), sim_paths=("lint_fixtures",))

ALL_RULES = ("REP401", "REP402", "REP403", "REP404", "REP405")


def _lint(path, rule, config=CONFIG):
    return run_analysis([str(path)], config, select=(rule,))


@pytest.mark.parametrize("rule", ALL_RULES)
def test_bad_fixture_fires(rule):
    findings = _lint(FIXTURES / f"{rule.lower()}_bad.py", rule)
    assert len(findings) == 3
    assert all(f.rule == rule for f in findings)
    assert all(f.severity == "error" for f in findings)


@pytest.mark.parametrize("rule", ALL_RULES)
def test_good_fixture_silent(rule):
    assert _lint(FIXTURES / f"{rule.lower()}_good.py", rule) == []


def test_rep401_message_names_the_fold():
    (first, *_) = _lint(FIXTURES / "rep401_bad.py", "REP401")
    assert "absolute" in first.message
    assert "barrier" in first.message


def test_rep402_message_points_at_the_mutation_line():
    findings = _lint(FIXTURES / "rep402_bad.py", "REP402")
    assert "not atomic" in findings[0].message
    assert "setdefault" in findings[0].message


def test_rep403_message_suggests_argument_binding():
    findings = _lint(FIXTURES / "rep403_bad.py", "REP403")
    reasons = {f.message.split("(")[1].split(" in the")[0] for f in findings}
    assert reasons == {"loop variable", "reassigned", "augmented"}
    assert all("argument" in f.message for f in findings)


def test_rep404_names_the_declared_hierarchy():
    findings = _lint(FIXTURES / "rep404_bad.py", "REP404")
    assert any("_fault_lock -> _lock" in f.message for f in findings)
    assert any("re-acquired" in f.message for f in findings)


def test_rep405_task_and_handler_scope_both_flagged():
    findings = _lint(FIXTURES / "rep405_bad.py", "REP405")
    kinds = {f.message.split(" from ")[1].split(" scope")[0] for f in findings}
    assert kinds == {"handler", "task"}


def test_suppression_silences_rep401(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "PENDING = []\n\n\n"
        "def _h(ctx, x):\n"
        "    PENDING.append(x)  # repro: ignore[REP401]\n\n\n"
        "def setup(world):\n"
        "    world.register_handler('h', _h)\n")
    assert _lint(f, "REP401") == []


def test_alias_of_shared_state_is_tracked(tmp_path):
    """``table = TABLE`` makes the local an alias of shared state."""
    f = tmp_path / "mod.py"
    f.write_text(
        "TABLE = {}\n\n\n"
        "def _h(ctx, k, v):\n"
        "    table = TABLE\n"
        "    table.update({k: v})\n\n\n"
        "def setup(world):\n"
        "    world.register_handler('h', _h)\n")
    findings = _lint(f, "REP401")
    assert [x.rule for x in findings] == ["REP401"]
    assert "table" in findings[0].message


def test_lock_context_exempts_mutation(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "import threading\n"
        "TABLE = {}\n"
        "_LOCK = threading.Lock()\n\n\n"
        "def _h(ctx, k):\n"
        "    with _LOCK:\n"
        "        TABLE.pop(k, None)\n\n\n"
        "def setup(world):\n"
        "    world.register_handler('h', _h)\n")
    assert _lint(f, "REP401") == []


def test_class_state_counts_as_shared(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "class Worker:\n"
        "    seen = 0\n\n"
        "    @classmethod\n"
        "    def _h(cls, ctx, x):\n"
        "        cls.seen += 1\n\n"
        "    def setup(self, world):\n"
        "        world.register_handler('h', self._h)\n\n\n"
        "def wire(world, worker):\n"
        "    world.register_handler('h2', worker._h)\n")
    # Attribute registrations resolve by name to the method def.
    findings = _lint(f, "REP401")
    assert len(findings) == 1
    assert "cls.seen" in findings[0].message


def test_map_ranks_argument_is_concurrent_scope(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "DEPTHS = []\n\n\n"
        "def _bump(rank):\n"
        "    DEPTHS.append(rank)\n\n\n"
        "def run(executor, ranks):\n"
        "    executor.map_ranks(_bump, ranks)\n")
    findings = _lint(f, "REP401")
    assert [x.rule for x in findings] == ["REP401"]
    assert "task scope" in findings[0].message


def test_thread_target_is_concurrent_scope(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "import threading\n"
        "EVENTS = []\n\n\n"
        "def _pump():\n"
        "    EVENTS.append(1)\n\n\n"
        "def run():\n"
        "    threading.Thread(target=_pump).start()\n")
    assert [x.rule for x in _lint(f, "REP401")] == ["REP401"]


def test_process_target_is_not_concurrent_scope(tmp_path):
    """A ``Process`` target runs in its own address space — module
    state it mutates is the worker's private copy, so the REP4xx
    thread rules must stay silent (process-worker scope, not thread
    scope)."""
    f = tmp_path / "mod.py"
    f.write_text(
        "import multiprocessing\n"
        "FRAMES = []\n\n\n"
        "def _worker_main(w):\n"
        "    FRAMES.append(w)\n\n\n"
        "def spawn(ctx):\n"
        "    ctx.Process(target=_worker_main, args=(0,)).start()\n")
    assert _lint(f, "REP401") == []


def test_process_target_metrics_publication_allowed(tmp_path):
    """Worker-local metrics shadows are not the driver's registry;
    REP405 applies to thread scope only."""
    f = tmp_path / "mod.py"
    f.write_text(
        "import multiprocessing\n\n\n"
        "def _worker_main(metrics):\n"
        "    metrics.set_counter('x', 1)\n\n\n"
        "def spawn():\n"
        "    multiprocessing.Process(target=_worker_main).start()\n")
    assert _lint(f, "REP405") == []


def test_thread_and_process_target_still_checked(tmp_path):
    """Registration under ``Thread`` keeps a dual-use function in
    concurrent scope even when it is also a process target."""
    f = tmp_path / "mod.py"
    f.write_text(
        "import multiprocessing\n"
        "import threading\n"
        "EVENTS = []\n\n\n"
        "def _pump():\n"
        "    EVENTS.append(1)\n\n\n"
        "def run():\n"
        "    multiprocessing.Process(target=_pump).start()\n"
        "    threading.Thread(target=_pump).start()\n")
    assert [x.rule for x in _lint(f, "REP401")] == ["REP401"]


def test_unregistered_function_is_driver_scope(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "PENDING = []\n\n\n"
        "def driver_only(x):\n"
        "    PENDING.append(x)\n")
    assert _lint(f, "REP401") == []


def test_rep402_not_in_unary_form(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "SLOTS = {}\n\n\n"
        "def _h(ctx, k):\n"
        "    if not (k in SLOTS):\n"
        "        SLOTS[k] = 0\n\n\n"
        "def setup(world):\n"
        "    world.register_handler('h', _h)\n")
    assert [x.rule for x in _lint(f, "REP402")] == ["REP402"]


def test_rep404_lock_order_config_override(tmp_path):
    """A custom ``lock-order`` hierarchy drives the inversion check."""
    f = tmp_path / "mod.py"
    f.write_text(
        "class S:\n"
        "    def f(self):\n"
        "        with self.b_lock:\n"
        "            with self.a_lock:\n"
        "                return 1\n")
    default = _lint(f, "REP404")
    assert default == []  # a_lock/b_lock are not in the default hierarchy
    custom = AnalysisConfig(exclude=(), sim_paths=("lint_fixtures",),
                            lock_order=("a_lock", "b_lock"))
    findings = _lint(f, "REP404", config=custom)
    assert [x.rule for x in findings] == ["REP404"]
    assert "a_lock" in findings[0].message


def test_rep404_applies_outside_concurrent_scope(tmp_path):
    """Lock ordering is a whole-program property: driver code included."""
    f = tmp_path / "mod.py"
    f.write_text(
        "def driver(transport):\n"
        "    with transport._lock:\n"
        "        with transport._fault_lock:\n"
        "            return transport.pending\n")
    assert [x.rule for x in _lint(f, "REP404")] == ["REP404"]
