"""The chain arrangement keeps search datasets connected at any size.

Regression guard for the Figure 2 / query experiments: a disconnected
graph silently caps greedy-search recall, so the search stand-ins must
produce connected k-NN graphs as they grow.
"""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.core.optimization import optimize_graph
from repro.datasets.ann_benchmarks import PAPER_DATASETS, load_dataset
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import DatasetError

SEARCH_DATASETS = ["glove-25", "nytimes", "lastfm", "deep1b", "bigann"]


class TestChainGenerator:
    def test_shapes_and_dtype(self):
        data = gaussian_mixture(100, 8, arrangement="chain", seed=0)
        assert data.shape == (100, 8)
        assert data.dtype == np.float32

    def test_rejects_unknown_arrangement(self):
        with pytest.raises(DatasetError):
            gaussian_mixture(50, 4, arrangement="spiral")

    def test_rejects_bad_step(self):
        with pytest.raises(DatasetError):
            gaussian_mixture(50, 4, arrangement="chain", chain_step=0.0)

    def test_deterministic(self):
        a = gaussian_mixture(60, 6, arrangement="chain", seed=5)
        b = gaussian_mixture(60, 6, arrangement="chain", seed=5)
        np.testing.assert_array_equal(a, b)

    def test_chain_differs_from_uniform(self):
        a = gaussian_mixture(60, 6, arrangement="chain", seed=5)
        b = gaussian_mixture(60, 6, arrangement="uniform", seed=5)
        assert not np.array_equal(a, b)

    def test_smaller_step_means_better_connectivity(self):
        # The chain_step knob's purpose: tighter chains keep the k-NN
        # graph connected where wide steps let it fall apart.
        def connectivity(step):
            d = gaussian_mixture(400, 32, n_clusters=20, cluster_std=0.3,
                                 arrangement="chain", chain_step=step, seed=3)
            adj = optimize_graph(brute_force_knn_graph(d, k=8), 1.5)
            return adj.connected_fraction()

        assert connectivity(0.4) >= connectivity(5.0)
        assert connectivity(0.4) > 0.95


class TestSearchDatasetConnectivity:
    @pytest.mark.parametrize("name", SEARCH_DATASETS)
    def test_spec_uses_chain(self, name):
        assert PAPER_DATASETS[name].arrangement == "chain"

    @pytest.mark.parametrize("name", ["deep1b", "lastfm"])
    @pytest.mark.parametrize("n", [300, 900])
    def test_connected_at_multiple_sizes(self, name, n):
        data, spec = load_dataset(name, n=n, seed=2)
        graph = brute_force_knn_graph(data, k=10, metric=spec.metric)
        adj = optimize_graph(graph, pruning_factor=1.5)
        assert adj.connected_fraction() > 0.98, (name, n)
