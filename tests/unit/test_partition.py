"""Hash/block partitioners — Section 4's vertex distribution."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.runtime.partition import (
    BlockPartitioner,
    HashPartitioner,
    splitmix64,
    splitmix64_array,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_vectorized_matches_scalar(self):
        ids = np.arange(200, dtype=np.int64)
        vec = splitmix64_array(ids)
        for i in range(200):
            assert int(vec[i]) == splitmix64(i)

    def test_avalanche(self):
        # Nearby inputs should differ in many bits.
        x = splitmix64(1) ^ splitmix64(2)
        assert bin(x).count("1") > 16


class TestHashPartitioner:
    def test_owner_in_range(self):
        p = HashPartitioner(1000, 7)
        owners = p.owner_array(np.arange(1000))
        assert owners.min() >= 0 and owners.max() < 7

    def test_owner_array_matches_scalar(self):
        p = HashPartitioner(300, 5)
        vec = p.owner_array(np.arange(300))
        for v in range(300):
            assert p.owner(v) == vec[v]

    def test_local_ids_partition_everything(self):
        p = HashPartitioner(500, 6)
        union = np.concatenate([p.local_ids(r) for r in range(6)])
        assert sorted(union.tolist()) == list(range(500))

    def test_local_ids_disjoint(self):
        p = HashPartitioner(200, 4)
        seen = set()
        for r in range(4):
            ids = set(p.local_ids(r).tolist())
            assert not (seen & ids)
            seen |= ids

    def test_balance(self):
        # Hash partitioning keeps the imbalance small (the reason the
        # paper uses it).
        p = HashPartitioner(10_000, 16)
        assert p.max_imbalance() < 1.15

    def test_local_index_map_roundtrip(self):
        p = HashPartitioner(100, 3)
        for r in range(3):
            idx = p.local_index_map(r)
            ids = p.local_ids(r)
            for i, g in enumerate(ids):
                assert idx[int(g)] == i

    def test_out_of_range_vertex(self):
        p = HashPartitioner(10, 2)
        with pytest.raises(PartitionError):
            p.owner(10)
        with pytest.raises(PartitionError):
            p.owner_array(np.array([11]))

    def test_out_of_range_rank(self):
        p = HashPartitioner(10, 2)
        with pytest.raises(PartitionError):
            p.local_ids(2)

    def test_invalid_construction(self):
        with pytest.raises(PartitionError):
            HashPartitioner(0, 2)
        with pytest.raises(PartitionError):
            HashPartitioner(10, 0)

    def test_single_rank(self):
        p = HashPartitioner(20, 1)
        assert len(p.local_ids(0)) == 20


class TestBlockPartitioner:
    def test_contiguous_blocks(self):
        p = BlockPartitioner(10, 3)
        assert p.owner(0) == 0
        assert p.owner(3) == 0
        assert p.owner(4) == 1
        assert p.owner(9) == 2

    def test_owner_array_matches_scalar(self):
        p = BlockPartitioner(97, 5)
        vec = p.owner_array(np.arange(97))
        for v in range(97):
            assert p.owner(v) == vec[v]

    def test_covers_all(self):
        p = BlockPartitioner(101, 7)
        union = np.concatenate([p.local_ids(r) for r in range(7)])
        assert sorted(union.tolist()) == list(range(101))

    def test_last_rank_gets_remainder(self):
        p = BlockPartitioner(10, 4)  # block=3: 3,3,3,1
        assert p.counts() == [3, 3, 3, 1]

    def test_out_of_range(self):
        p = BlockPartitioner(10, 2)
        with pytest.raises(PartitionError):
            p.owner(-1)
