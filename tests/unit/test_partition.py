"""Partitioners — Section 4's vertex distribution plus locality placement."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.runtime.partition import (
    PARTITIONER_NAMES,
    BlockPartitioner,
    ExplicitPartitioner,
    HashPartitioner,
    RPTreePartitioner,
    edge_cut_fraction,
    graph_locality_assignment,
    make_partitioner,
    partitioner_from_spec,
    partitioner_spec,
    spec_matches,
    splitmix64,
    splitmix64_array,
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_vectorized_matches_scalar(self):
        ids = np.arange(200, dtype=np.int64)
        vec = splitmix64_array(ids)
        for i in range(200):
            assert int(vec[i]) == splitmix64(i)

    def test_avalanche(self):
        # Nearby inputs should differ in many bits.
        x = splitmix64(1) ^ splitmix64(2)
        assert bin(x).count("1") > 16


class TestHashPartitioner:
    def test_owner_in_range(self):
        p = HashPartitioner(1000, 7)
        owners = p.owner_array(np.arange(1000))
        assert owners.min() >= 0 and owners.max() < 7

    def test_owner_array_matches_scalar(self):
        p = HashPartitioner(300, 5)
        vec = p.owner_array(np.arange(300))
        for v in range(300):
            assert p.owner(v) == vec[v]

    def test_local_ids_partition_everything(self):
        p = HashPartitioner(500, 6)
        union = np.concatenate([p.local_ids(r) for r in range(6)])
        assert sorted(union.tolist()) == list(range(500))

    def test_local_ids_disjoint(self):
        p = HashPartitioner(200, 4)
        seen = set()
        for r in range(4):
            ids = set(p.local_ids(r).tolist())
            assert not (seen & ids)
            seen |= ids

    def test_balance(self):
        # Hash partitioning keeps the imbalance small (the reason the
        # paper uses it).
        p = HashPartitioner(10_000, 16)
        assert p.max_imbalance() < 1.15

    def test_local_index_map_roundtrip(self):
        p = HashPartitioner(100, 3)
        for r in range(3):
            idx = p.local_index_map(r)
            ids = p.local_ids(r)
            for i, g in enumerate(ids):
                assert idx[int(g)] == i

    def test_out_of_range_vertex(self):
        p = HashPartitioner(10, 2)
        with pytest.raises(PartitionError):
            p.owner(10)
        with pytest.raises(PartitionError):
            p.owner_array(np.array([11]))

    def test_out_of_range_rank(self):
        p = HashPartitioner(10, 2)
        with pytest.raises(PartitionError):
            p.local_ids(2)

    def test_invalid_construction(self):
        with pytest.raises(PartitionError):
            HashPartitioner(0, 2)
        with pytest.raises(PartitionError):
            HashPartitioner(10, 0)

    def test_single_rank(self):
        p = HashPartitioner(20, 1)
        assert len(p.local_ids(0)) == 20


class TestBlockPartitioner:
    def test_contiguous_blocks(self):
        p = BlockPartitioner(10, 3)
        assert p.owner(0) == 0
        assert p.owner(3) == 0
        assert p.owner(4) == 1
        assert p.owner(9) == 2

    def test_owner_array_matches_scalar(self):
        p = BlockPartitioner(97, 5)
        vec = p.owner_array(np.arange(97))
        for v in range(97):
            assert p.owner(v) == vec[v]

    def test_covers_all(self):
        p = BlockPartitioner(101, 7)
        union = np.concatenate([p.local_ids(r) for r in range(7)])
        assert sorted(union.tolist()) == list(range(101))

    def test_last_rank_gets_remainder(self):
        p = BlockPartitioner(10, 4)  # block=3: 3,3,3,1
        assert p.counts() == [3, 3, 3, 1]

    def test_out_of_range(self):
        p = BlockPartitioner(10, 2)
        with pytest.raises(PartitionError):
            p.owner(-1)

    @pytest.mark.parametrize("n,ws", [(7, 4), (9, 4), (10, 3), (13, 5),
                                      (100, 7), (5, 4)])
    def test_skewed_counts_cover_everything(self, n, ws):
        # ceil-division blocks: every rank gets block or fewer, the sum
        # is exactly n, and nothing is lost when n % ws != 0.
        p = BlockPartitioner(n, ws)
        counts = p.counts()
        assert sum(counts) == n
        block = -(-n // ws)
        assert max(counts) <= block
        union = np.concatenate([p.local_ids(r) for r in range(ws)])
        assert sorted(union.tolist()) == list(range(n))

    @pytest.mark.parametrize("n,ws", [(7, 4), (9, 4), (13, 5), (5, 4)])
    def test_skewed_max_imbalance(self, n, ws):
        p = BlockPartitioner(n, ws)
        counts = p.counts()
        expected = max(counts) / (n / ws)
        assert p.max_imbalance() == pytest.approx(expected)

    def test_empty_tail_ranks(self):
        # n=5, ws=4 -> blocks of 2: counts 2,2,1,0. The empty rank must
        # still answer local_ids without error.
        p = BlockPartitioner(5, 4)
        assert p.counts() == [2, 2, 1, 0]
        assert len(p.local_ids(3)) == 0


class TestExplicitPartitioner:
    def test_owner_follows_table(self):
        table = np.array([2, 0, 1, 1, 0, 2])
        p = ExplicitPartitioner(table, 3)
        for v, r in enumerate(table):
            assert p.owner(v) == r
        np.testing.assert_array_equal(p.owner_array(np.arange(6)), table)

    def test_counts_and_local_ids(self):
        p = ExplicitPartitioner(np.array([1, 1, 1, 0]), 2)
        assert p.counts() == [1, 3]
        assert p.local_ids(0).tolist() == [3]
        assert p.local_ids(1).tolist() == [0, 1, 2]

    def test_rejects_out_of_range_ranks(self):
        with pytest.raises(PartitionError):
            ExplicitPartitioner(np.array([0, 3]), 3)
        with pytest.raises(PartitionError):
            ExplicitPartitioner(np.array([-1, 0]), 3)

    def test_rejects_non_1d(self):
        with pytest.raises(PartitionError):
            ExplicitPartitioner(np.zeros((2, 2), dtype=np.int64), 2)

    def test_out_of_range_vertex(self):
        p = ExplicitPartitioner(np.array([0, 1]), 2)
        with pytest.raises(PartitionError):
            p.owner(2)
        with pytest.raises(PartitionError):
            p.owner_array(np.array([5]))

    def test_source_tag(self):
        p = ExplicitPartitioner(np.array([0]), 1, source="repartition")
        assert p.source == "repartition"
        assert p.kind == "explicit"


class TestRPTreePartitioner:
    def _clustered(self, n=240, seed=0):
        rng = np.random.default_rng(seed)
        centers = rng.standard_normal((6, 8)) * 10
        return (centers[np.arange(n) % 6]
                + 0.1 * rng.standard_normal((n, 8)))

    def test_is_a_partition(self):
        p = RPTreePartitioner(self._clustered(), 4, seed=3)
        union = np.concatenate([p.local_ids(r) for r in range(4)])
        assert sorted(union.tolist()) == list(range(240))

    def test_balance_bound(self):
        data = self._clustered(n=500)
        p = RPTreePartitioner(data, 4, seed=1)
        bound = 1 + (p.leaf_size - 1) * 4 / 500
        assert p.max_imbalance() <= bound + 1e-9

    def test_deterministic(self):
        data = self._clustered()
        a = RPTreePartitioner(data, 4, seed=5)
        b = RPTreePartitioner(data, 4, seed=5)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_beats_hash_on_clustered_edge_cut(self):
        # The reason the partitioner exists: co-located clusters mean a
        # much lower cut than uniform hashing on the true-neighbor graph.
        data = self._clustered(n=300, seed=2)
        diffs = ((data[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
        np.fill_diagonal(diffs, np.inf)
        knn = np.argsort(diffs, axis=1)[:, :6]
        rp = RPTreePartitioner(data, 4, seed=2)
        hp = HashPartitioner(300, 4)
        assert (edge_cut_fraction(rp, knn)
                < 0.5 * edge_cut_fraction(hp, knn))

    def test_rejects_sparse_like_data(self):
        with pytest.raises(PartitionError):
            RPTreePartitioner(np.zeros(8), 2)


class TestMakePartitioner:
    def test_names(self):
        assert PARTITIONER_NAMES == ("hash", "block", "rptree")

    def test_factory_kinds(self):
        data = np.random.default_rng(0).standard_normal((40, 4))
        for name in PARTITIONER_NAMES:
            p = make_partitioner(name, 40, 2, data=data, seed=1)
            assert p.kind == name

    def test_rptree_requires_data(self):
        with pytest.raises(PartitionError):
            make_partitioner("rptree", 10, 2)

    def test_unknown_name(self):
        with pytest.raises(PartitionError):
            make_partitioner("metis", 10, 2)


class TestPartitionerSpec:
    def test_hash_block_compact(self):
        for cls, kind in ((HashPartitioner, "hash"),
                          (BlockPartitioner, "block")):
            spec = partitioner_spec(cls(100, 4))
            assert spec == {"type": kind, "n": 100, "world_size": 4}

    def test_round_trip_preserves_ownership(self):
        data = np.random.default_rng(1).standard_normal((60, 4))
        for name in PARTITIONER_NAMES:
            p = make_partitioner(name, 60, 3, data=data, seed=2)
            q = partitioner_from_spec(partitioner_spec(p))
            np.testing.assert_array_equal(q.owner_array(np.arange(60)),
                                          p.owner_array(np.arange(60)))

    def test_explicit_spec_json_serializable(self):
        import json

        p = ExplicitPartitioner(np.array([0, 1, 1, 0]), 2, source="rptree")
        spec = json.loads(json.dumps(partitioner_spec(p)))
        q = partitioner_from_spec(spec)
        assert isinstance(q, ExplicitPartitioner)
        assert q.source == "rptree"
        np.testing.assert_array_equal(q.assignment, p.assignment)

    def test_spec_matches_name_and_source(self):
        data = np.random.default_rng(2).standard_normal((40, 4))
        spec = partitioner_spec(RPTreePartitioner(data, 2, seed=0))
        assert spec_matches(spec, "rptree")       # provenance
        assert spec_matches(spec, "explicit")     # stored type
        assert not spec_matches(spec, "hash")
        hash_spec = partitioner_spec(HashPartitioner(40, 2))
        assert spec_matches(hash_spec, "hash")
        assert not spec_matches(hash_spec, "block")

    def test_spec_matches_instance(self):
        p = HashPartitioner(50, 2)
        assert spec_matches(partitioner_spec(p), HashPartitioner(50, 2))
        assert not spec_matches(partitioner_spec(p), HashPartitioner(50, 4))
        assert not spec_matches(partitioner_spec(p), BlockPartitioner(50, 2))

    def test_unknown_spec_type(self):
        with pytest.raises(PartitionError):
            partitioner_from_spec({"type": "metis", "n": 10, "world_size": 2})


class TestEdgeCutFraction:
    def test_all_local(self):
        # Blocks of 2 on a ring of mutual pairs that never cross blocks.
        knn = np.array([[1], [0], [3], [2]])
        p = BlockPartitioner(4, 2)
        assert edge_cut_fraction(p, knn) == 0.0

    def test_all_remote(self):
        knn = np.array([[2], [3], [0], [1]])  # every edge crosses
        p = BlockPartitioner(4, 2)
        assert edge_cut_fraction(p, knn) == 1.0

    def test_padding_skipped(self):
        knn = np.array([[1, -1], [0, -1], [3, -1], [2, -1]])
        p = BlockPartitioner(4, 2)
        assert edge_cut_fraction(p, knn) == 0.0

    def test_all_padding(self):
        knn = np.full((3, 2), -1)
        p = BlockPartitioner(3, 1)
        assert edge_cut_fraction(p, knn) == 0.0

    def test_rejects_1d(self):
        with pytest.raises(PartitionError):
            edge_cut_fraction(BlockPartitioner(3, 1), np.array([0, 1, 2]))


class TestGraphLocalityAssignment:
    def test_is_balanced_partition(self):
        rng = np.random.default_rng(0)
        knn = rng.integers(0, 100, size=(100, 5))
        a = graph_locality_assignment(knn, 4)
        assert a.shape == (100,)
        assert a.min() >= 0 and a.max() < 4
        counts = np.bincount(a, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        knn = rng.integers(0, 80, size=(80, 4))
        np.testing.assert_array_equal(graph_locality_assignment(knn, 3),
                                      graph_locality_assignment(knn, 3))

    def test_two_components_split_cleanly(self):
        # Two disjoint 4-cliques on 2 ranks: BFS regions follow the
        # components, so the cut is exactly zero.
        knn = np.array([
            [1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2],
            [5, 6, 7], [4, 6, 7], [4, 5, 7], [4, 5, 6],
        ])
        a = graph_locality_assignment(knn, 2)
        p = ExplicitPartitioner(a, 2)
        assert edge_cut_fraction(p, knn) == 0.0

    def test_improves_on_hash(self):
        # Clustered k-NN graph: the BFS assignment must beat hashing.
        rng = np.random.default_rng(3)
        n, c = 120, 6
        knn = np.empty((n, 4), dtype=np.int64)
        for v in range(n):
            members = np.flatnonzero(np.arange(n) % c == v % c)
            knn[v] = rng.choice(members[members != v], size=4, replace=False)
        better = ExplicitPartitioner(graph_locality_assignment(knn, 3), 3)
        assert (edge_cut_fraction(better, knn)
                < edge_cut_fraction(HashPartitioner(n, 3), knn))

    def test_padding_tolerated(self):
        knn = np.array([[1, -1], [0, -1], [-1, -1]])
        a = graph_locality_assignment(knn, 2)
        assert a.min() >= 0 and a.max() < 2

    def test_single_rank(self):
        knn = np.array([[1], [0]])
        assert graph_locality_assignment(knn, 1).tolist() == [0, 0]
