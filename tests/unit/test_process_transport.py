"""Process-transport unit surface: shared-memory segment lifecycle,
worker/rank ownership, and the executor/backend seam.

The heavyweight end-to-end behaviour (graph conformance, crash
recovery, checkpoint round-trips) lives in the integration suites;
these tests pin the local contracts — most importantly that a shared
dataset segment can never outlive its build, even a failed one."""

import os
import warnings

import numpy as np
import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.config import CommOptConfig
from repro.core.executor import ProcessExecutor, make_executor, resolve_backend
from repro.errors import ConfigError, RankFailureError, RuntimeStateError
from repro.runtime.faults import FaultPlan
from repro.runtime.transports import (ProcessTransport, SharedArrayOwner,
                                      attach_shared_array)
from repro.runtime.transports.process import _start_method


def _segments() -> set:
    """Names of live shared-memory segments (POSIX shm is a tmpfs)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available")
    return set(os.listdir("/dev/shm"))


class TestSharedArrayOwner:
    def test_round_trip_and_attach(self):
        arr = np.arange(24, dtype=np.float64).reshape(6, 4)
        with SharedArrayOwner(arr) as owner:
            assert owner.spec.shape == (6, 4)
            assert np.array_equal(owner.view, arr)
            shm, view = attach_shared_array(owner.spec)
            try:
                assert np.array_equal(view, arr)
                # The segment is genuinely shared, not a copy.
                owner.view[0, 0] = -1.0
                assert view[0, 0] == -1.0
            finally:
                del view
                shm.close()

    def test_close_unlinks_and_is_idempotent(self):
        owner = SharedArrayOwner(np.ones(8))
        name = owner.spec.name.lstrip("/")
        assert name in _segments()
        owner.close()
        assert name not in _segments()
        owner.close()  # idempotent
        with pytest.raises(RuntimeStateError):
            _ = owner.view

    def test_context_manager_owns_cleanup(self):
        with SharedArrayOwner(np.zeros((3, 3))) as owner:
            name = owner.spec.name.lstrip("/")
            assert name in _segments()
        assert name not in _segments()


class TestNoSegmentLeakAfterFailedBuild:
    def test_crash_without_recovery_leaves_no_segment(self, tiny_dense):
        """Regression: a build that dies mid-flight (worker SIGKILLed,
        supervisor disabled) must still unlink its dataset segment on
        close — /dev/shm is a machine-wide resource."""
        before = _segments()
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4, seed=2),
                         backend="process", workers=4)
        dnnd = DNND(tiny_dense, cfg,
                    cluster=ClusterConfig(nodes=2, procs_per_node=2),
                    fault_plan=FaultPlan(crashes=((1, 1),)))
        with pytest.raises(RankFailureError):
            dnnd.build(recover_on_crash=False)
        dnnd.close()
        assert _segments() <= before

    def test_garbage_collected_build_releases_segment(self, tiny_dense):
        """Dropping the last reference must tear down workers + segment
        through the executor's GC finalizer (no explicit close)."""
        before = _segments()
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4, seed=2),
                         backend="process", workers=2)
        dnnd = DNND(tiny_dense, cfg,
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        del dnnd
        import gc
        gc.collect()
        assert _segments() <= before


class TestOwnershipMapping:
    CFG = ClusterConfig(nodes=2, procs_per_node=2)

    def test_round_robin_ownership(self):
        t = ProcessTransport(self.CFG, workers=2)
        assert t.nworkers == 2
        assert [t.worker_of[r] for r in range(4)] == [0, 1, 0, 1]
        assert list(t.owned_by[0]) == [0, 2]
        assert list(t.owned_by[1]) == [1, 3]

    def test_worker_count_clamped_to_world_size(self):
        t = ProcessTransport(self.CFG, workers=16)
        assert t.nworkers == 4

    def test_start_method_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_START", "not-a-method")
        with pytest.raises(ConfigError, match="start method"):
            _start_method()
        monkeypatch.delenv("REPRO_PROCESS_START")
        assert _start_method() in ("fork", "spawn")


class TestExecutorSeam:
    def test_resolve_backend_accepts_process(self):
        assert resolve_backend("process") == "process"
        assert resolve_backend(None, {"REPRO_BACKEND": "process"}) == "process"

    def test_make_executor_builds_process_executor(self):
        ex = make_executor("process", workers=3, world_size=8)
        assert isinstance(ex, ProcessExecutor)
        assert ex.parallel and ex.backend == "process"
        assert ex.workers == 3
        ex.shutdown()  # unbound: must be a no-op

    def test_shutdown_runs_bound_teardown_once(self):
        ex = ProcessExecutor(workers=1)
        calls = []
        ex.bind(lambda: calls.append(1))
        ex.shutdown()
        ex.shutdown()
        assert calls == [1]
