"""DNND message handlers in isolation (Section 4.3 protocol)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig
from repro.core.dnnd_phases import (
    LocalShard,
    register_dnnd_handlers,
    shard_of,
)
from repro.core.heap import NeighborHeap
from repro.distances.counting import CountingMetric
from repro.errors import PartitionError, RuntimeStateError
from repro.runtime.partition import BlockPartitioner
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


def make_world_with_shards(n=8, k=3, comm_opts=None):
    """2-rank world, block partition (ranks own [0,4) and [4,8)),
    1-D features equal to the vertex id."""
    cluster = SimCluster(ClusterConfig(nodes=2, procs_per_node=1))
    world = YGMWorld(cluster, flush_threshold=64)
    register_dnnd_handlers(world)
    part = BlockPartitioner(n, 2)
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=k, metric="sqeuclidean"),
        comm_opts=comm_opts or CommOptConfig.optimized(),
    )
    data = np.arange(n, dtype=np.float32).reshape(-1, 1)
    for ctx in world.ranks:
        gids = part.local_ids(ctx.rank)
        shard = LocalShard(
            rank=ctx.rank,
            partitioner=part,
            global_ids=gids,
            local_index={int(g): i for i, g in enumerate(gids)},
            features=data[gids],
            heaps=[NeighborHeap(k) for _ in gids],
            metric=CountingMetric("sqeuclidean"),
            config=cfg,
            feature_nbytes_dense=4,
        )
        shard.reset_iteration_scratch()
        ctx.state["shard"] = shard
    return world, part


class TestLocalShard:
    def test_local_index(self):
        world, part = make_world_with_shards()
        shard = shard_of(world.ranks[1])
        assert shard.local(4) == 0
        assert shard.local(7) == 3

    def test_wrong_rank_dereference(self):
        world, part = make_world_with_shards()
        shard = shard_of(world.ranks[0])
        with pytest.raises(PartitionError):
            shard.local(7)

    def test_feature_lookup(self):
        world, _ = make_world_with_shards()
        shard = shard_of(world.ranks[1])
        assert shard.feature(5)[0] == 5.0

    def test_feature_nbytes_dense(self):
        world, _ = make_world_with_shards()
        assert shard_of(world.ranks[0]).feature_nbytes(1) == 4

    def test_owner(self):
        world, _ = make_world_with_shards()
        shard = shard_of(world.ranks[0])
        assert shard.owner(6) == 1


class TestInitProtocol:
    def test_init_request_response(self):
        world, _ = make_world_with_shards()
        shard0 = shard_of(world.ranks[0])
        # Rank 0 asks owner(6)=rank1 for theta(v=1, u=6).
        world.ranks[0].async_call(1, "init_req", 1, 6, shard0.feature(1),
                                  nbytes=12, msg_type="init_req")
        world.barrier()
        heap = shard0.heap(1)
        assert 6 in heap
        entries = dict((i, d) for i, d, _ in heap.entries())
        assert entries[6] == pytest.approx(25.0)  # (6-1)^2

    def test_init_entry_flagged_new(self):
        world, _ = make_world_with_shards()
        shard0 = shard_of(world.ranks[0])
        world.ranks[0].async_call(1, "init_req", 1, 6, shard0.feature(1),
                                  nbytes=12, msg_type="init_req")
        world.barrier()
        assert shard0.heap(1).new_ids() == [6]


class TestReverseProtocol:
    def test_reverse_entries_land_at_owner(self):
        world, _ = make_world_with_shards()
        world.ranks[0].async_call(1, "rev_new", 5, 2, nbytes=8, msg_type="reverse")
        world.ranks[0].async_call(1, "rev_old", 6, 3, nbytes=8, msg_type="reverse")
        world.barrier()
        shard1 = shard_of(world.ranks[1])
        assert shard1.rev_new[shard1.local(5)] == [2]
        assert shard1.rev_old[shard1.local(6)] == [3]


class TestOptimizedCheckProtocol:
    def test_full_chain_updates_both_heaps(self):
        world, _ = make_world_with_shards()
        shard0 = shard_of(world.ranks[0])
        shard1 = shard_of(world.ranks[1])
        # Center (anyone) asks u1=2 (rank0) to check against u2=5 (rank1).
        world.ranks[1].async_call(0, "check_opt", 2, 5, nbytes=8, msg_type="type1")
        world.barrier()
        assert 5 in shard0.heap(2)   # via Type 3 reply
        assert 2 in shard1.heap(5)   # local update at u2
        assert shard0.update_count == 1
        assert shard1.update_count == 1

    def test_redundancy_check_suppresses_type2(self):
        world, _ = make_world_with_shards()
        shard0 = shard_of(world.ranks[0])
        # Pre-install 5 in heap(2): the exchange must be skipped.
        shard0.heap(2).checked_push(5, 9.0, True)
        world.ranks[1].async_call(0, "check_opt", 2, 5, nbytes=8, msg_type="type1")
        world.barrier()
        assert world.stats.get("type2+").count == 0
        assert world.stats.get("type3").count == 0

    def test_redundancy_check_on_u2_side_suppresses_type3(self):
        world, _ = make_world_with_shards()
        shard1 = shard_of(world.ranks[1])
        shard1.heap(5).checked_push(2, 9.0, True)
        world.ranks[1].async_call(0, "check_opt", 2, 5, nbytes=8, msg_type="type1")
        world.barrier()
        assert world.stats.get("type2+").count == 1
        assert world.stats.get("type3").count == 0

    def test_distance_pruning_suppresses_type3(self):
        world, _ = make_world_with_shards()
        shard0 = shard_of(world.ranks[0])
        # Fill heap(2) with close neighbors so its bound is tight.
        for vid, d in ((1, 1.0), (3, 1.0), (0, 4.0)):
            shard0.heap(2).checked_push(vid, d, True)
        assert shard0.heap(2).worst_distance() == 4.0
        # theta(2, 7) = 25 >= 4 -> no Type 3.
        world.ranks[1].async_call(0, "check_opt", 2, 7, nbytes=8, msg_type="type1")
        world.barrier()
        assert world.stats.get("type3").count == 0
        # But u2's own heap still learned about u1.
        shard1 = shard_of(world.ranks[1])
        assert 2 in shard1.heap(7)

    def test_pruning_disabled_always_replies(self):
        opts = CommOptConfig(one_sided=True, redundancy_check=False,
                             distance_pruning=False)
        world, _ = make_world_with_shards(comm_opts=opts)
        shard0 = shard_of(world.ranks[0])
        for vid, d in ((1, 1.0), (3, 1.0), (0, 4.0)):
            shard0.heap(2).checked_push(vid, d, True)
        world.ranks[1].async_call(0, "check_opt", 2, 7, nbytes=8, msg_type="type1")
        world.barrier()
        assert world.stats.get("type3").count == 1
        # Message typed plain type2 without the bound attachment.
        assert world.stats.get("type2").count == 1
        assert world.stats.get("type2+").count == 0


class TestUnoptimizedCheckProtocol:
    def test_feature_exchange_both_directions(self):
        opts = CommOptConfig.unoptimized()
        world, _ = make_world_with_shards(comm_opts=opts)
        shard0 = shard_of(world.ranks[0])
        shard1 = shard_of(world.ranks[1])
        # The unoptimized pattern: Type 1 to each endpoint.
        world.ranks[1].async_call(0, "check_unopt", 2, 5, nbytes=8, msg_type="type1")
        world.ranks[1].async_call(1, "check_unopt", 5, 2, nbytes=8, msg_type="type1")
        world.barrier()
        assert 5 in shard0.heap(2)
        assert 2 in shard1.heap(5)
        # Each endpoint shipped its feature: type2 in both directions.
        assert world.stats.get("type2").count == 2
        assert world.stats.get("type3").count == 0

    def test_distance_computed_twice(self):
        opts = CommOptConfig.unoptimized()
        world, _ = make_world_with_shards(comm_opts=opts)
        world.ranks[1].async_call(0, "check_unopt", 2, 5, nbytes=8, msg_type="type1")
        world.ranks[1].async_call(1, "check_unopt", 5, 2, nbytes=8, msg_type="type1")
        world.barrier()
        total = (shard_of(world.ranks[0]).metric.count
                 + shard_of(world.ranks[1]).metric.count)
        assert total == 2  # the redundant compute the one-sided pattern saves


class TestOptimizePhaseHandler:
    def test_reverse_edge_merge(self):
        world, _ = make_world_with_shards()
        shard1 = shard_of(world.ranks[1])
        shard1.merged = [dict() for _ in range(shard1.n_local)]
        world.ranks[0].async_call(1, "opt_rev_edge", 5, 1, 0.25,
                                  nbytes=12, msg_type="opt_rev")
        world.ranks[0].async_call(1, "opt_rev_edge", 5, 1, 0.75,
                                  nbytes=12, msg_type="opt_rev")
        world.barrier()
        assert shard1.merged[shard1.local(5)] == {1: 0.25}

    def test_register_twice_rejected(self):
        world, _ = make_world_with_shards()
        with pytest.raises(RuntimeStateError):
            register_dnnd_handlers(world)
