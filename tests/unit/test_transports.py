"""The Transport protocol — the seam under the YGM comm layer.

Both transports must satisfy the same point-to-point + collectives
contract; SimCluster adds cost modeling and fault injection on top,
LocalTransport adds thread-safe concurrent producers.
"""

import threading

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError, RuntimeStateError
from repro.runtime.netmodel import NetworkModel, NullLedger
from repro.runtime.transports import LocalTransport, SimCluster

CFG = ClusterConfig(nodes=2, procs_per_node=2)


def make_transports():
    return [SimCluster(CFG), LocalTransport(CFG)]


class TestPointToPoint:
    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_fifo_per_mailbox(self, t):
        for i in range(5):
            t.deliver(0, 2, ("msg", i))
        assert t.mailbox_len(2) == 5
        assert not t.all_quiescent()
        got = [t.drain_one(2) for _ in range(5)]
        assert got == [(0, ("msg", i)) for i in range(5)]
        assert t.drain_one(2) is None
        assert t.all_quiescent()

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_self_append_is_local_fast_path(self, t):
        append = t.self_append(1)
        append((1, "payload"))
        assert t.drain_one(1) == (1, "payload")

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_clear_mailboxes(self, t):
        t.deliver(0, 1, "a")
        t.deliver(2, 3, "b")
        assert t.pending_total() == 2
        t.clear_mailboxes()
        assert t.pending_total() == 0
        assert t.all_quiescent()

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_destination_range_checked(self, t):
        with pytest.raises(RuntimeStateError):
            t.deliver(0, CFG.world_size, "x")

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_shutdown_refuses_traffic(self, t):
        t.shutdown()
        with pytest.raises(RuntimeStateError):
            t.deliver(0, 1, "x")

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_offnode_topology(self, t):
        # 2 nodes x 2 procs: ranks {0,1} on node 0, {2,3} on node 1.
        assert not t.is_offnode(0, 1)
        assert t.is_offnode(1, 2)


class TestCollectives:
    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_allreduce_sum(self, t):
        assert t.allreduce_sum([1, 2, 3, 4]) == 10
        assert t.allreduce([1, 2, 3, 4]) == [10] * 4

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_allreduce_custom_op(self, t):
        assert t.allreduce([3, 1, 4, 1], op=max) == [4] * 4

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_gather_root_only(self, t):
        out = t.gather(["a", "b", "c", "d"], root=2)
        assert out[2] == ["a", "b", "c", "d"]
        assert out[0] is None and out[1] is None and out[3] is None

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_allgather_and_bcast(self, t):
        assert t.allgather([1, 2, 3, 4]) == [[1, 2, 3, 4]] * 4
        assert t.bcast("v", root=1) == ["v"] * 4

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_alltoallv_routing(self, t):
        send = [[[s * 10 + d] for d in range(4)] for s in range(4)]
        recv = t.alltoallv(send)
        for dest in range(4):
            assert recv[dest] == [s * 10 + dest for s in range(4)]

    @pytest.mark.parametrize("t", make_transports(),
                             ids=["sim", "local"])
    def test_collectives_require_full_contribution(self, t):
        with pytest.raises(RuntimeStateError):
            t.allreduce([1, 2])
        with pytest.raises(RuntimeStateError):
            t.alltoallv([[[]] * 3] * 4)


class TestLocalTransport:
    def test_rejects_cost_model(self):
        with pytest.raises(ConfigError):
            LocalTransport(CFG, net=NetworkModel())

    def test_null_ledger(self):
        t = LocalTransport(CFG)
        assert isinstance(t.ledger, NullLedger)
        assert not t.ledger.enabled
        assert t.injector is None

    def test_concurrent_producers_single_consumer(self):
        """The load-bearing deque property: any thread may append to a
        mailbox while the owner drains it, without locking."""
        t = LocalTransport(CFG)
        n_per_producer = 2000

        def produce(src):
            for i in range(n_per_producer):
                t.deliver(src, 3, (src, i))

        threads = [threading.Thread(target=produce, args=(s,))
                   for s in range(3)]
        for th in threads:
            th.start()
        drained = []
        while (any(th.is_alive() for th in threads)
               or not t.mailbox_empty(3)):
            item = t.drain_one(3)
            if item is not None:
                drained.append(item[1])
        for th in threads:
            th.join()
        assert len(drained) == 3 * n_per_producer
        # Per-producer FIFO survives the interleaving.
        for s in range(3):
            seq = [i for (src, i) in drained if src == s]
            assert seq == sorted(seq)


class TestSimClusterExtras:
    def test_cost_model_attached(self):
        t = SimCluster(CFG)
        assert t.ledger.enabled
        assert t.net is not None
