"""Runtime ownership sanitizer: detection, gating, zero overhead."""

import pytest

from repro.analysis.sanitizer import (
    OwnedState,
    Sanitizer,
    sanitizer_requested,
    tag_heap,
)
from repro.config import ClusterConfig
from repro.core.heap import NeighborHeap
from repro.errors import (
    HandlerReentrancyError,
    MutationDuringIterationError,
    OwnershipViolationError,
)
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


def _world(sanitize):
    return YGMWorld(SimCluster(ClusterConfig(nodes=2, procs_per_node=2)),
                    sanitize=sanitize)


# -- env gating ----------------------------------------------------------------

@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("YES", True), (" on ", True),
    ("0", False), ("", False), ("off", False), ("no", False),
])
def test_sanitizer_requested(value, expected):
    assert sanitizer_requested({"REPRO_SANITIZE": value}) is expected


def test_sanitizer_requested_unset():
    assert sanitizer_requested({}) is False


def test_world_env_gating(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert _world(None).sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert _world(None).sanitizer is None
    # Explicit argument beats the environment.
    assert _world(False).sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert _world(True).sanitizer is not None


# -- zero overhead when off ---------------------------------------------------

def test_off_means_plain_everything():
    world = _world(False)
    assert world.sanitizer is None
    assert type(world.ranks[0].state) is dict
    fn = lambda ctx: None  # noqa: E731
    world.register_handler("noop", fn)
    assert world._handlers["noop"] is fn  # not wrapped
    heap = NeighborHeap(4)
    assert heap._san is None


# -- ownership ----------------------------------------------------------------

def test_owned_state_cross_rank_access_raises():
    world = _world(True)
    san = world.sanitizer
    world.ranks[1].state["x"] = 1  # driver context: allowed
    with san.rank_scope(0):
        world.ranks[0].state["y"] = 2  # own state: allowed
        with pytest.raises(OwnershipViolationError) as exc:
            world.ranks[1].state["x"]
        with pytest.raises(OwnershipViolationError):
            world.ranks[1].state.get("x")
        with pytest.raises(OwnershipViolationError):
            world.ranks[1].state.setdefault("z", 0)
        with pytest.raises(OwnershipViolationError):
            world.ranks[1].state.pop("x")
    assert exc.value.owner == 1 and exc.value.accessor == 0
    assert san.violations >= 1
    assert world.ranks[1].state["x"] == 1  # back in driver context


def test_handler_injected_cross_rank_mutation_raises():
    """A handler that reaches into another rank's state must be caught —
    the bug class the sanitizer exists for."""
    world = _world(True)

    def evil(ctx, victim):
        ctx.world.ranks[victim].state["stolen"] = True

    def good(ctx, value):
        ctx.state["kept"] = value

    world.register_handlers(evil=evil, good=good)
    world.async_call(0, 1, "good", 7)
    world.barrier()
    assert world.ranks[1].state["kept"] == 7

    world.async_call(0, 1, "evil", 3)  # delivered at rank 1, touches rank 3
    with pytest.raises(OwnershipViolationError):
        world.barrier()


def test_heap_ownership_and_iteration():
    san = Sanitizer()
    heap = NeighborHeap(4)
    tag_heap(heap, san, owner=2)
    heap.checked_push(1, 0.5)  # driver context: allowed
    with san.rank_scope(2):
        heap.checked_push(2, 0.4)  # owner: allowed
    with san.rank_scope(0):
        with pytest.raises(OwnershipViolationError):
            heap.checked_push(3, 0.3)
        with pytest.raises(OwnershipViolationError):
            heap.mark_old(1)
        with pytest.raises(OwnershipViolationError):
            list(heap.entries())
    # Mutation while an entries() iterator is live.
    it = heap.entries()
    next(it)
    with pytest.raises(MutationDuringIterationError):
        heap.checked_push(9, 0.1)
    it.close()
    assert heap.checked_push(9, 0.1) == 1  # iterator closed: allowed


def test_untagged_heap_unaffected():
    heap = NeighborHeap(4)
    heap.checked_push(1, 0.5)
    for _ in heap.entries():
        heap.checked_push(2, 0.4)  # no sanitizer: silently permitted


# -- re-entrancy --------------------------------------------------------------

def test_handler_reentrancy_detected():
    world = _world(True)
    handlers = {}

    def outer(ctx, x):
        handlers["inner"](ctx, x)  # direct call instead of async_call

    def inner(ctx, x):
        ctx.state["x"] = x

    world.register_handlers(outer=outer, inner=inner)
    handlers["inner"] = world._handlers["inner"]
    world.async_call(0, 1, "outer", 5)
    with pytest.raises(HandlerReentrancyError):
        world.barrier()
    assert world.sanitizer.reentrancy_detected == 1
    # The failed delivery must not leave the sanitizer wedged.
    assert world.sanitizer.handler_depth == 0
    assert world.sanitizer.active_rank is None


def test_rank_scope_nesting_restores():
    san = Sanitizer()
    with san.rank_scope(0):
        with san.rank_scope(1):
            assert san.active_rank == 1
        assert san.active_rank == 0
    assert san.active_rank is None


def test_owned_state_is_still_a_dict():
    """Code paths that type-check or iterate state keep working."""
    state = OwnedState(Sanitizer(), owner=0)
    state["a"] = 1
    assert isinstance(state, dict)
    assert list(state) == ["a"]
    assert len(state) == 1
