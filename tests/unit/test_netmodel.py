"""Network/compute cost model and the BSP ledger."""

import pytest

from repro.runtime.netmodel import CostLedger, NetworkModel


class TestNetworkModel:
    def test_offnode_costs_more(self):
        net = NetworkModel()
        assert net.message_cost(1000, offnode=True) > net.message_cost(1000, offnode=False)
        assert net.flush_cost(True) > net.flush_cost(False)

    def test_message_cost_linear_in_bytes(self):
        net = NetworkModel()
        assert net.message_cost(2000, True) == pytest.approx(2 * net.message_cost(1000, True))

    def test_distance_cost_scales_with_dim(self):
        net = NetworkModel()
        assert net.distance_cost(net.reference_dim) == pytest.approx(net.compute_per_distance)
        assert net.distance_cost(2 * net.reference_dim) == pytest.approx(
            2 * net.compute_per_distance)

    def test_distance_cost_min_dim(self):
        net = NetworkModel()
        assert net.distance_cost(0) > 0


class TestCostLedger:
    def test_barrier_takes_max(self):
        led = CostLedger(world_size=4)
        led.charge(0, 1.0)
        led.charge(1, 3.0)
        net = NetworkModel(barrier_alpha=0.0)
        step = led.barrier(net)
        assert step == pytest.approx(3.0)
        assert led.elapsed == pytest.approx(3.0)
        assert led.clocks == [0.0] * 4

    def test_barrier_adds_latency_depth(self):
        led = CostLedger(world_size=8)
        net = NetworkModel(barrier_alpha=1e-6)
        step = led.barrier(net)
        # log2(7) ceil = 3 levels.
        assert step == pytest.approx(3e-6)

    def test_elapsed_accumulates(self):
        led = CostLedger(world_size=2)
        net = NetworkModel(barrier_alpha=0.0)
        led.charge(0, 1.0)
        led.barrier(net)
        led.charge(1, 2.0)
        led.barrier(net)
        assert led.elapsed == pytest.approx(3.0)
        assert led.barriers == 2

    def test_phase_accounting(self):
        led = CostLedger(world_size=2)
        net = NetworkModel(barrier_alpha=0.0)
        led.charge(0, 1.0)
        led.barrier(net, phase="init")
        led.charge(0, 2.0)
        led.barrier(net, phase="init")
        led.charge(1, 5.0)
        led.barrier(net, phase="check")
        assert led.phase_elapsed["init"] == pytest.approx(3.0)
        assert led.phase_elapsed["check"] == pytest.approx(5.0)

    def test_imbalance(self):
        led = CostLedger(world_size=2)
        led.charge(0, 3.0)
        led.charge(1, 1.0)
        assert led.imbalance() == pytest.approx(1.5)

    def test_imbalance_idle_is_one(self):
        assert CostLedger(world_size=3).imbalance() == 1.0

    def test_reset(self):
        led = CostLedger(world_size=2)
        led.charge(0, 1.0)
        led.barrier(NetworkModel())
        led.reset()
        assert led.elapsed == 0.0 and led.barriers == 0
        assert led.clocks == [0.0, 0.0]

    def test_load_imbalance_slows_superstep(self):
        # The mechanism behind Figure 3's scaling roll-off: the same total
        # work spread unevenly takes longer than spread evenly.
        net = NetworkModel(barrier_alpha=0.0)
        even = CostLedger(world_size=4)
        for r in range(4):
            even.charge(r, 1.0)
        uneven = CostLedger(world_size=4)
        uneven.charge(0, 4.0)
        assert uneven.barrier(net) > even.barrier(net)
