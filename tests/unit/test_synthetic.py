"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.errors import DatasetError


class TestGaussianMixture:
    def test_shape_and_dtype(self):
        data = synthetic.gaussian_mixture(100, 16, seed=0)
        assert data.shape == (100, 16)
        assert data.dtype == np.float32

    def test_uint8_dtype(self):
        data = synthetic.gaussian_mixture(100, 8, dtype=np.uint8, seed=0)
        assert data.dtype == np.uint8
        assert data.min() >= 0

    def test_deterministic(self):
        a = synthetic.gaussian_mixture(50, 4, seed=1)
        b = synthetic.gaussian_mixture(50, 4, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_data(self):
        a = synthetic.gaussian_mixture(50, 4, seed=1)
        b = synthetic.gaussian_mixture(50, 4, seed=2)
        assert not np.array_equal(a, b)

    def test_clustered_structure(self):
        # Tighter clusters -> smaller mean NN distance.
        tight = synthetic.gaussian_mixture(200, 8, cluster_std=0.02, seed=0)
        loose = synthetic.gaussian_mixture(200, 8, cluster_std=0.50, seed=0)
        from repro.baselines.bruteforce import brute_force_neighbors
        _, d_tight = brute_force_neighbors(tight, tight, k=1, exclude_self=True)
        _, d_loose = brute_force_neighbors(loose, loose, k=1, exclude_self=True)
        assert d_tight.mean() < d_loose.mean()

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            synthetic.gaussian_mixture(0, 4)
        with pytest.raises(DatasetError):
            synthetic.gaussian_mixture(10, 0)
        with pytest.raises(DatasetError):
            synthetic.gaussian_mixture(10, 4, n_clusters=0)


class TestUniform:
    def test_range(self):
        data = synthetic.uniform_hypercube(100, 6, seed=0)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_invalid(self):
        with pytest.raises(DatasetError):
            synthetic.uniform_hypercube(0, 3)


class TestPlantedNeighbors:
    def test_groups_are_near_duplicates(self):
        data, groups = synthetic.planted_neighbors(40, 6, group=4, seed=0)
        for g in np.unique(groups):
            members = data[groups == g]
            spread = np.linalg.norm(members - members.mean(0), axis=1).max()
            assert spread < 0.01

    def test_group_ids_shape(self):
        data, groups = synthetic.planted_neighbors(43, 5, group=4, seed=0)
        assert len(groups) == 43 and len(data) == 43

    def test_bad_group(self):
        with pytest.raises(DatasetError):
            synthetic.planted_neighbors(10, 3, group=1)


class TestPowerLawSets:
    def test_basic(self):
        ds = synthetic.power_law_sets(80, universe=300, mean_size=10, seed=0)
        assert len(ds) == 80
        for i in range(80):
            rec = ds[i]
            assert rec.size >= 1
            assert (rec >= 0).all() and (rec < 300).all()

    def test_records_sorted_unique(self):
        ds = synthetic.power_law_sets(40, universe=200, seed=1)
        for i in range(40):
            rec = ds[i]
            assert (np.diff(rec) > 0).all() or rec.size <= 1

    def test_popularity_skew(self):
        # Power-law item weights: low item ids appear much more often.
        ds = synthetic.power_law_sets(300, universe=1000, mean_size=20, seed=2)
        counts = np.zeros(1000)
        for i in range(300):
            counts[ds[i]] += 1
        assert counts[:100].sum() > counts[500:600].sum()

    def test_invalid(self):
        with pytest.raises(DatasetError):
            synthetic.power_law_sets(0)
        with pytest.raises(DatasetError):
            synthetic.power_law_sets(10, universe=2)


class TestSplits:
    def test_train_query_split_dense(self):
        data = synthetic.uniform_hypercube(50, 4, seed=0)
        train, queries = synthetic.train_query_split(data, 10, seed=0)
        assert len(train) == 40 and len(queries) == 10

    def test_split_disjoint_and_complete(self):
        data = np.arange(20, dtype=np.float32).reshape(-1, 1)
        train, queries = synthetic.train_query_split(data, 5, seed=1)
        merged = sorted(np.concatenate([train, queries]).ravel().tolist())
        assert merged == list(range(20))

    def test_split_list_input(self):
        records = [np.array([i]) for i in range(10)]
        train, queries = synthetic.train_query_split(records, 3, seed=0)
        assert len(train) == 7 and len(queries) == 3

    def test_invalid_n_queries(self):
        data = synthetic.uniform_hypercube(10, 2, seed=0)
        with pytest.raises(DatasetError):
            synthetic.train_query_split(data, 0)
        with pytest.raises(DatasetError):
            synthetic.train_query_split(data, 10)

    def test_add_query_noise(self):
        data = synthetic.uniform_hypercube(20, 4, seed=0)
        noisy = synthetic.add_query_noise(data, scale=0.01, seed=0)
        assert noisy.shape == data.shape
        assert not np.array_equal(noisy, data)
        assert np.abs(noisy.astype(np.float64) - data).mean() < 0.05
