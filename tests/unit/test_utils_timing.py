"""Timer / Stopwatch / duration formatting."""

import time

from repro.utils.timing import Stopwatch, Timer, format_duration


class TestFormatDuration:
    def test_hours(self):
        assert format_duration(6.96 * 3600) == "6.96 h"

    def test_minutes(self):
        assert format_duration(90) == "1.5 min"

    def test_seconds(self):
        assert format_duration(2.5) == "2.50 s"

    def test_millis(self):
        assert format_duration(0.045) == "45 ms"

    def test_boundaries(self):
        assert format_duration(3600).endswith("h")
        assert format_duration(60).endswith("min")
        assert format_duration(1).endswith("s")


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t.measure("a"):
            pass
        with t.measure("a"):
            pass
        assert t.counts["a"] == 2
        assert t.total("a") >= 0

    def test_unknown_name_is_zero(self):
        assert Timer().total("missing") == 0.0

    def test_measures_elapsed(self):
        t = Timer()
        with t.measure("sleep"):
            time.sleep(0.01)
        assert t.total("sleep") >= 0.009

    def test_exception_still_recorded(self):
        t = Timer()
        try:
            with t.measure("x"):
                raise ValueError
        except ValueError:
            pass
        assert t.counts["x"] == 1

    def test_report_contains_names(self):
        t = Timer()
        with t.measure("phase_one"):
            pass
        assert "phase_one" in t.report()


class TestStopwatch:
    def test_autostart(self):
        sw = Stopwatch()
        time.sleep(0.005)
        assert sw.elapsed > 0

    def test_stop_freezes(self):
        sw = Stopwatch()
        total = sw.stop()
        time.sleep(0.005)
        assert sw.elapsed == total

    def test_restart_accumulates(self):
        sw = Stopwatch(autostart=False)
        assert sw.elapsed == 0.0
        sw.start()
        time.sleep(0.003)
        first = sw.stop()
        sw.start()
        time.sleep(0.003)
        assert sw.stop() > first

    def test_double_start_is_noop(self):
        sw = Stopwatch()
        sw.start()  # already running
        assert sw.elapsed >= 0
