"""Table 1 dataset stand-ins."""

import numpy as np
import pytest

from repro.datasets.ann_benchmarks import (
    BILLION_DATASETS,
    PAPER_DATASETS,
    SMALL_DATASETS,
    load_dataset,
    make_benchmark_dataset,
)
from repro.errors import DatasetError


class TestInventory:
    def test_eight_datasets(self):
        assert len(PAPER_DATASETS) == 8
        assert set(SMALL_DATASETS) | set(BILLION_DATASETS) == set(PAPER_DATASETS)

    def test_table1_metadata(self):
        # Exact Table 1 values.
        spec = PAPER_DATASETS["glove-25"]
        assert spec.dim == 25 and spec.paper_entries == 1_183_514
        assert spec.metric == "cosine"
        spec = PAPER_DATASETS["kosarak"]
        assert spec.dim == 27_983 and spec.metric == "jaccard"
        spec = PAPER_DATASETS["deep1b"]
        assert spec.dim == 96 and spec.paper_entries == 10**9
        spec = PAPER_DATASETS["bigann"]
        assert spec.dim == 128 and spec.dtype == "uint8"

    def test_scaled_n(self):
        spec = PAPER_DATASETS["mnist"]
        assert spec.scaled_n() == spec.default_n
        assert spec.scaled_n(0.5) == spec.default_n // 2
        assert spec.scaled_n(0.0001) == 64  # floor


class TestLoad:
    @pytest.mark.parametrize("name", ["fashion-mnist", "glove-25", "nytimes",
                                      "lastfm", "deep1b"])
    def test_dense_stand_in_properties(self, name):
        data, spec = load_dataset(name, n=128, seed=0)
        assert data.shape == (128, spec.dim)
        assert data.dtype == np.float32

    def test_bigann_is_uint8(self):
        data, spec = load_dataset("bigann", n=128, seed=0)
        assert data.dtype == np.uint8
        assert data.shape == (128, 128)

    def test_kosarak_is_sparse(self):
        data, spec = load_dataset("kosarak", n=100, seed=0)
        assert spec.sparse
        assert len(data) == 100
        assert hasattr(data, "nbytes_of")

    def test_case_insensitive(self):
        data, spec = load_dataset("MNIST", n=64)
        assert spec.name == "mnist"

    def test_unknown_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("sift-999")

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("mnist", n=10)

    def test_deterministic(self):
        a, _ = load_dataset("deep1b", n=64, seed=3)
        b, _ = load_dataset("deep1b", n=64, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_difficulty_ordering(self):
        # NYTimes stand-in must be harder (more spread) than MNIST's.
        assert (PAPER_DATASETS["nytimes"].cluster_std
                > PAPER_DATASETS["mnist"].cluster_std)


class TestBenchmarkBundle:
    def test_dense_bundle(self):
        train, queries, gt_ids, spec = make_benchmark_dataset(
            "deep1b", n=200, n_queries=20, k_gt=5, seed=0)
        assert len(train) == 200
        assert len(queries) == 20
        assert gt_ids.shape == (20, 5)
        assert gt_ids.max() < 200

    def test_sparse_bundle(self):
        train, queries, gt_ids, spec = make_benchmark_dataset(
            "kosarak", n=80, n_queries=10, k_gt=3, seed=0)
        assert len(train) == 80 and len(queries) == 10
        assert gt_ids.shape == (10, 3)

    def test_ground_truth_is_exact(self):
        train, queries, gt_ids, spec = make_benchmark_dataset(
            "glove-25", n=150, n_queries=10, k_gt=4, seed=1)
        from repro.baselines.bruteforce import brute_force_neighbors
        want, _ = brute_force_neighbors(train, queries, k=4, metric=spec.metric)
        np.testing.assert_array_equal(gt_ids, want)
