"""k-d tree baseline."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_neighbors
from repro.baselines.kdtree import KDTree
from repro.errors import ConfigError, SearchError
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def tree(small_dense):
    return KDTree(small_dense, leaf_size=12)


class TestConstruction:
    def test_leaves_partition(self, tree, small_dense):
        members = np.concatenate([leaf.members
                                  for leaf in tree._leaves(tree._root)])
        assert sorted(members.tolist()) == list(range(len(small_dense)))

    def test_leaf_size_respected(self, tree):
        for leaf in tree._leaves(tree._root):
            assert len(leaf.members) <= 12

    def test_depth_logarithmic(self, tree, small_dense):
        import math
        assert tree.depth() <= 4 * math.ceil(math.log2(len(small_dense)))

    def test_duplicate_points(self):
        data = np.ones((60, 4), dtype=np.float32)
        tree = KDTree(data, leaf_size=8)
        res = tree.query(np.ones(4), k=3)
        assert len(res.ids) == 3

    def test_invalid_inputs(self, small_dense):
        with pytest.raises(ConfigError):
            KDTree(small_dense, leaf_size=0)
        with pytest.raises(ConfigError):
            KDTree(small_dense, metric="cosine")
        with pytest.raises(ConfigError):
            KDTree(np.empty((0, 3)))


class TestExactSearch:
    def test_matches_brute_force(self, tree, small_dense):
        """Exact mode must be exact — the k-d tree can serve as ground
        truth."""
        want, want_d = brute_force_neighbors(small_dense, small_dense[:25], k=8)
        for i in range(25):
            res = tree.query(small_dense[i], k=8)
            np.testing.assert_array_equal(np.sort(res.ids), np.sort(want[i]))
            # atol covers float32-vs-float64 rounding of self-distances
            # (brute force computes in mixed precision).
            np.testing.assert_allclose(np.sort(res.dists), np.sort(want_d[i]),
                                       rtol=1e-6, atol=1e-9)

    def test_prunes_branches(self, tree, small_dense):
        res = tree.query(small_dense[0], k=5)
        # Exactness without inspecting every point is the tree's reason
        # to exist (at this dimensionality pruning still works a bit).
        assert res.n_distance_evals <= len(small_dense)

    def test_sorted_output(self, tree, small_dense):
        res = tree.query(small_dense[3], k=10)
        assert (np.diff(res.dists) >= 0).all()

    def test_k_capped_at_n(self, tree, small_dense):
        res = tree.query(small_dense[0], k=10_000)
        assert len(res.ids) == len(small_dense)

    def test_euclidean_metric_reporting(self, small_dense):
        t2 = KDTree(small_dense, metric="euclidean")
        res = t2.query(small_dense[0], k=2)
        assert res.dists[0] == pytest.approx(0.0, abs=1e-6)

    def test_query_validation(self, tree):
        with pytest.raises(SearchError):
            tree.query(np.zeros(3), k=2)
        with pytest.raises(SearchError):
            tree.query(np.zeros(12), k=0)


class TestApproximateMode:
    def test_max_leaves_bounds_work(self, tree, small_dense):
        exact = tree.query(small_dense[7], k=5)
        fast = tree.query(small_dense[7], k=5, max_leaves=2)
        assert fast.n_distance_evals <= exact.n_distance_evals
        assert fast.n_visited <= 2

    def test_recall_grows_with_leaves(self, tree, small_dense):
        gt, _ = brute_force_neighbors(small_dense, small_dense[:30], k=5)
        def recall(leaves):
            ids, _, _ = tree.query_batch(small_dense[:30], k=5,
                                         max_leaves=leaves)
            return recall_at_k(ids, gt)
        assert recall(8) >= recall(1) - 0.05
        assert recall(None) == 1.0

    def test_batch_interface(self, tree, small_dense):
        ids, dists, stats = tree.query_batch(small_dense[:10], k=4,
                                             max_leaves=4)
        assert ids.shape == (10, 4)
        assert stats["mean_distance_evals"] > 0
