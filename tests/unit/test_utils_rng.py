"""Deterministic RNG-stream derivation."""

import numpy as np

from repro.utils.rng import SeedSequenceFactory, derive_rng, permutation_of, spawn_rngs


def test_derive_rng_reproducible():
    a = derive_rng(42, 1, 2).random(8)
    b = derive_rng(42, 1, 2).random(8)
    np.testing.assert_array_equal(a, b)


def test_derive_rng_keys_matter():
    a = derive_rng(42, 1).random(8)
    b = derive_rng(42, 2).random(8)
    assert not np.array_equal(a, b)


def test_derive_rng_seed_matters():
    a = derive_rng(1, 7).random(8)
    b = derive_rng(2, 7).random(8)
    assert not np.array_equal(a, b)


def test_spawn_rngs_independent_and_reproducible():
    first = [g.random(4) for g in spawn_rngs(5, 3)]
    second = [g.random(4) for g in spawn_rngs(5, 3)]
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)
    assert not np.array_equal(first[0], first[1])


def test_factory_counter_advances():
    fac = SeedSequenceFactory(99)
    g1 = fac.next_rng()
    g2 = fac.next_rng()
    assert fac.issued == 2
    assert not np.array_equal(g1.random(4), g2.random(4))


def test_factory_sequence_reproducible():
    a = [SeedSequenceFactory(7).next_rng().random(3) for _ in range(1)]
    b = [SeedSequenceFactory(7).next_rng().random(3) for _ in range(1)]
    np.testing.assert_array_equal(a[0], b[0])


def test_factory_keyed_rng_stateless():
    fac = SeedSequenceFactory(3)
    a = fac.rng_for(1, 2).random(4)
    b = fac.rng_for(1, 2).random(4)
    np.testing.assert_array_equal(a, b)
    assert fac.issued == 0


def test_permutation_of_deterministic():
    items = list(range(10))
    p1 = permutation_of(items, 5, 1)
    p2 = permutation_of(items, 5, 1)
    assert p1 == p2
    assert sorted(p1) == items


def test_permutation_of_key_changes_order():
    items = list(range(50))
    assert permutation_of(items, 5, 1) != permutation_of(items, 5, 2)
