"""YGM-style distributed containers."""

import pytest

from repro.config import ClusterConfig
from repro.errors import RuntimeStateError
from repro.runtime.containers import (
    DistributedBag,
    DistributedCounter,
    DistributedMap,
    register_visitor,
)
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


@pytest.fixture()
def world():
    return YGMWorld(SimCluster(ClusterConfig(nodes=2, procs_per_node=2)))


class TestDistributedBag:
    def test_insert_and_gather(self, world):
        bag = DistributedBag(world, "b")
        for i in range(40):
            bag.async_insert(i % 4, i)
        world.barrier()
        assert sorted(bag.gather()) == list(range(40))
        assert bag.size() == 40

    def test_load_balanced(self, world):
        bag = DistributedBag(world, "b")
        for i in range(400):
            bag.async_insert(0, i)
        world.barrier()
        assert bag.balance_factor() < 1.05

    def test_reads_before_barrier_see_nothing(self, world):
        bag = DistributedBag(world, "b")
        bag.async_insert(0, "x")
        assert bag.size() == 0  # fire-and-forget: not yet delivered
        world.barrier()
        assert bag.size() == 1

    def test_two_bags_independent(self, world):
        a = DistributedBag(world, "a")
        b = DistributedBag(world, "b")
        a.async_insert(0, 1)
        world.barrier()
        assert a.size() == 1 and b.size() == 0


class TestDistributedCounter:
    def test_counts_by_key(self, world):
        counter = DistributedCounter(world, "c")
        for rank in range(4):
            for _ in range(rank + 1):
                counter.async_add(rank, f"key{rank}")
        world.barrier()
        for rank in range(4):
            assert counter.count_of(f"key{rank}") == rank + 1
        assert counter.total() == 10

    def test_amounts(self, world):
        counter = DistributedCounter(world, "c")
        counter.async_add(0, "k", amount=5)
        counter.async_add(1, "k", amount=7)
        world.barrier()
        assert counter.count_of("k") == 12

    def test_top_k(self, world):
        counter = DistributedCounter(world, "c")
        weights = {"a": 5, "b": 9, "c": 2}
        for key, w in weights.items():
            for src in range(w):
                counter.async_add(src % 4, key)
        world.barrier()
        assert counter.top_k(2) == [("b", 9), ("a", 5)]

    def test_missing_key_zero(self, world):
        counter = DistributedCounter(world, "c")
        assert counter.count_of("ghost") == 0


class TestDistributedMap:
    def test_insert_get(self, world):
        dmap = DistributedMap(world, "m")
        for i in range(20):
            dmap.async_insert(i % 4, f"k{i}", i * i)
        world.barrier()
        assert dmap.get("k7") == 49
        assert dmap.size() == 20
        assert dict(dmap.items())["k3"] == 9

    def test_last_writer_wins(self, world):
        dmap = DistributedMap(world, "m")
        dmap.async_insert(0, "k", "first")
        dmap.async_insert(1, "k", "second")
        world.barrier()
        assert dmap.get("k") == "second"

    def test_missing_key_default(self, world):
        dmap = DistributedMap(world, "m")
        assert dmap.get("nope", default=-1) == -1

    def test_async_visit_mutates_at_owner(self, world):
        def bump(ctx, local_map, key, amount):
            local_map[key] = local_map.get(key, 0) + amount

        try:
            register_visitor("bump_test", bump)
        except RuntimeStateError:
            pass  # registered by an earlier test run in this process
        dmap = DistributedMap(world, "m")
        for src in range(4):
            dmap.async_visit(src, "counter", "bump_test", 10)
        world.barrier()
        assert dmap.get("counter") == 40

    def test_unknown_visitor_raises_at_delivery(self, world):
        dmap = DistributedMap(world, "m")
        dmap.async_visit(0, "k", "no_such_visitor")
        with pytest.raises(RuntimeStateError):
            world.barrier()

    def test_duplicate_visitor_name_rejected(self):
        register_visitor("dup_visitor_test", lambda *a: None)
        with pytest.raises(RuntimeStateError):
            register_visitor("dup_visitor_test", lambda *a: None)


class TestInterop:
    def test_containers_share_world_with_plain_handlers(self, world):
        world.register_handler("plain", lambda ctx, x: None)
        bag = DistributedBag(world, "b")
        bag.async_insert(0, 1)
        world.async_call(0, 1, "plain", 99)
        world.barrier()
        assert bag.size() == 1

    def test_messages_instrumented(self, world):
        counter = DistributedCounter(world, "c")
        for i in range(50):
            counter.async_add(0, i)
        world.barrier()
        # Remote adds show up under the 'counter' message type.
        assert world.stats.get("counter").count > 0


class TestOwnerInjection:
    """Satellite of the partitioning layer: containers accept an owner
    policy (callable or Partitioner) instead of hardwired splitmix64."""

    def test_default_placement_unchanged(self, world):
        # The historical expression, byte-for-byte: injecting nothing
        # must keep every key on its pre-refactor rank.
        from repro.runtime.partition import splitmix64

        dmap = DistributedMap(world, "m")
        for key in ["a", "b", 7, (1, 2)]:
            expected = int(splitmix64(hash(key) & ((1 << 63) - 1))
                           % world.world_size)
            assert dmap._owner_of(key) == expected

    def test_callable_owner_routes_all_keys(self, world):
        dmap = DistributedMap(world, "m", owner=lambda key: 2)
        for i in range(20):
            dmap.async_insert(0, i, i * 10)
        world.barrier()
        assert len(dmap._local(2)) == 20
        for r in (0, 1, 3):
            assert len(dmap._local(r)) == 0

    def test_partitioner_owner_on_map(self, world):
        from repro.runtime.partition import BlockPartitioner

        part = BlockPartitioner(40, world.world_size)
        dmap = DistributedMap(world, "m", owner=part)
        for i in range(40):
            dmap.async_insert(0, i, str(i))
        world.barrier()
        for r in range(world.world_size):
            assert sorted(dmap._local(r)) == sorted(
                int(g) for g in part.local_ids(r))

    def test_partitioner_owner_on_counter(self, world):
        from repro.runtime.partition import BlockPartitioner

        part = BlockPartitioner(12, world.world_size)
        counter = DistributedCounter(world, "c", owner=part)
        for i in range(12):
            counter.async_add(0, i)
        world.barrier()
        for i in range(12):
            assert counter.count_of(i) == 1

    def test_out_of_range_owner_rejected(self, world):
        dmap = DistributedMap(world, "m", owner=lambda key: 99)
        with pytest.raises(RuntimeStateError):
            dmap.async_insert(0, "k", 1)
