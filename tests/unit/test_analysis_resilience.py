"""Resilience rules (REP3xx) against the fixtures and inline snippets."""

from pathlib import Path

from repro.analysis import AnalysisConfig, run_analysis

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "lint_fixtures"
CONFIG = AnalysisConfig(exclude=(), sim_paths=("lint_fixtures",))


def _lint(path, rule="REP301"):
    return run_analysis([str(path)], CONFIG, select=(rule,))


def test_bad_fixture_fires():
    findings = _lint(FIXTURES / "rep301_bad.py")
    assert len(findings) == 3
    assert all(f.rule == "REP301" for f in findings)
    assert all(f.severity == "error" for f in findings)


def test_good_fixture_silent():
    assert _lint(FIXTURES / "rep301_good.py") == []


def test_message_names_the_contract():
    (first, *_) = _lint(FIXTURES / "rep301_bad.py")
    assert "RankFailureError" in first.message
    assert "recover" in first.message


def test_tuple_clause_is_caught(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def f(world):\n"
        "    try:\n"
        "        world.barrier()\n"
        "    except (OSError, RankFailureError):\n"
        "        return -1\n")
    findings = _lint(f)
    assert [x.rule for x in findings] == ["REP301"]
    assert findings[0].line == 4


def test_attribute_reference_is_caught(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "from repro import errors\n\n\n"
        "def f(world):\n"
        "    try:\n"
        "        world.barrier()\n"
        "    except errors.RankFailureError:\n"
        "        pass\n")
    assert [x.rule for x in _lint(f)] == ["REP301"]


def test_nested_recovery_call_passes(tmp_path):
    """A recovery call inside a conditional still counts as handling."""
    f = tmp_path / "mod.py"
    f.write_text(
        "def f(world, retry):\n"
        "    try:\n"
        "        world.barrier()\n"
        "    except RankFailureError as exc:\n"
        "        if retry:\n"
        "            world.exclude_ranks(exc.ranks)\n")
    assert _lint(f) == []


def test_bare_except_not_flagged(tmp_path):
    """REP301 targets the named contract, not generic except hygiene."""
    f = tmp_path / "mod.py"
    f.write_text(
        "def f(world):\n"
        "    try:\n"
        "        world.barrier()\n"
        "    except Exception:\n"
        "        pass\n")
    assert _lint(f) == []


def test_suppression_works(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "def f(world):\n"
        "    try:\n"
        "        world.barrier()\n"
        "    except RankFailureError:  # repro: ignore[REP301]\n"
        "        pass\n")
    assert _lint(f) == []
