"""Big-ANN .fbin/.u8bin and ground-truth formats."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.io.bigann import (
    read_bin,
    read_ground_truth,
    write_bin,
    write_ground_truth,
)


class TestBinRoundTrip:
    def test_fbin(self, tmp_path):
        data = np.random.default_rng(0).random((6, 4)).astype(np.float32)
        path = tmp_path / "v.fbin"
        write_bin(path, data)
        np.testing.assert_array_equal(read_bin(path), data)

    def test_u8bin(self, tmp_path):
        data = np.random.default_rng(1).integers(0, 256, (5, 8)).astype(np.uint8)
        path = tmp_path / "v.u8bin"
        write_bin(path, data)
        np.testing.assert_array_equal(read_bin(path), data)

    def test_i8bin(self, tmp_path):
        data = np.random.default_rng(2).integers(-128, 128, (3, 2)).astype(np.int8)
        path = tmp_path / "v.i8bin"
        write_bin(path, data)
        np.testing.assert_array_equal(read_bin(path), data)

    def test_explicit_dtype_overrides_suffix(self, tmp_path):
        data = np.ones((2, 3), dtype=np.float32)
        path = tmp_path / "v.dat"
        write_bin(path, data)
        np.testing.assert_array_equal(read_bin(path, dtype=np.float32), data)

    def test_unknown_suffix_without_dtype(self, tmp_path):
        path = tmp_path / "v.dat"
        write_bin(path, np.ones((1, 1), dtype=np.float32))
        with pytest.raises(DatasetError):
            read_bin(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "v.fbin"
        path.write_bytes(b"\x00\x00")
        with pytest.raises(DatasetError):
            read_bin(path)

    def test_size_mismatch(self, tmp_path):
        path = tmp_path / "v.fbin"
        path.write_bytes(np.array([10, 10], dtype="<u4").tobytes() + b"\x00" * 8)
        with pytest.raises(DatasetError):
            read_bin(path)

    def test_writer_rejects_1d(self, tmp_path):
        with pytest.raises(DatasetError):
            write_bin(tmp_path / "v.fbin", np.zeros(4))


class TestGroundTruth:
    def test_roundtrip(self, tmp_path):
        ids = np.arange(12, dtype=np.int32).reshape(3, 4)
        dists = np.random.default_rng(0).random((3, 4)).astype(np.float32)
        path = tmp_path / "gt.bin"
        write_ground_truth(path, ids, dists)
        got_ids, got_dists = read_ground_truth(path)
        np.testing.assert_array_equal(got_ids, ids)
        np.testing.assert_array_equal(got_dists, dists)

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_ground_truth(tmp_path / "gt.bin",
                               np.zeros((2, 3), dtype=np.int32),
                               np.zeros((2, 4), dtype=np.float32))

    def test_truncated(self, tmp_path):
        path = tmp_path / "gt.bin"
        path.write_bytes(b"\x01")
        with pytest.raises(DatasetError):
            read_ground_truth(path)

    def test_size_mismatch(self, tmp_path):
        path = tmp_path / "gt.bin"
        path.write_bytes(np.array([5, 5], dtype="<u4").tobytes() + b"\x00" * 4)
        with pytest.raises(DatasetError):
            read_ground_truth(path)

    def test_mirrors_paper_query_bundle(self, tmp_path):
        # Section 5.3.3: 10,000 queries x 10 ground-truth neighbors;
        # scaled-down shape check of the same layout.
        ids = np.zeros((100, 10), dtype=np.int32)
        dists = np.zeros((100, 10), dtype=np.float32)
        path = tmp_path / "gt.bin"
        write_ground_truth(path, ids, dists)
        got_ids, _ = read_ground_truth(path)
        assert got_ids.shape == (100, 10)
