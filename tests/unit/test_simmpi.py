"""SimCluster: mailboxes and collectives."""

import pytest

from repro.config import ClusterConfig
from repro.errors import RuntimeStateError
from repro.runtime.simmpi import SimCluster


@pytest.fixture()
def cluster():
    return SimCluster(ClusterConfig(nodes=2, procs_per_node=2))


class TestTopology:
    def test_world_size(self, cluster):
        assert cluster.world_size == 4

    def test_offnode_detection(self, cluster):
        assert not cluster.is_offnode(0, 1)  # same node
        assert cluster.is_offnode(0, 2)      # different nodes
        assert not cluster.is_offnode(2, 3)


class TestMailboxes:
    def test_deliver_and_drain(self, cluster):
        cluster.deliver(0, 1, "hello")
        assert not cluster.mailbox_empty(1)
        src, item = cluster.drain_one(1)
        assert src == 0 and item == "hello"
        assert cluster.mailbox_empty(1)

    def test_fifo_order(self, cluster):
        cluster.deliver(0, 1, "a")
        cluster.deliver(2, 1, "b")
        assert cluster.drain_one(1)[1] == "a"
        assert cluster.drain_one(1)[1] == "b"

    def test_drain_empty_returns_none(self, cluster):
        assert cluster.drain_one(0) is None

    def test_quiescence(self, cluster):
        assert cluster.all_quiescent()
        cluster.deliver(0, 3, 1)
        assert not cluster.all_quiescent()
        assert cluster.pending_total() == 1

    def test_bad_destination(self, cluster):
        with pytest.raises(RuntimeStateError):
            cluster.deliver(0, 9, "x")

    def test_shutdown_blocks_traffic(self, cluster):
        cluster.shutdown()
        with pytest.raises(RuntimeStateError):
            cluster.deliver(0, 1, "x")


class TestCollectives:
    def test_allreduce_sum(self, cluster):
        out = cluster.allreduce([1, 2, 3, 4])
        assert out == [10, 10, 10, 10]

    def test_allreduce_sum_convenience(self, cluster):
        assert cluster.allreduce_sum([1.5, 2.5, 0, 0]) == 4.0

    def test_allreduce_custom_op(self, cluster):
        out = cluster.allreduce([3, 9, 1, 7], op=max)
        assert out == [9, 9, 9, 9]

    def test_allreduce_wrong_arity(self, cluster):
        with pytest.raises(RuntimeStateError):
            cluster.allreduce([1, 2])

    def test_gather(self, cluster):
        out = cluster.gather(["a", "b", "c", "d"], root=0)
        assert out == [["a", "b", "c", "d"], None, None, None]

    def test_gather_nonzero_root(self, cluster):
        out = cluster.gather(["a", "b", "c", "d"], root=2)
        assert out[2] == ["a", "b", "c", "d"]
        assert [out[r] for r in (0, 1, 3)] == [None, None, None]

    def test_gather_bad_root(self, cluster):
        with pytest.raises(RuntimeStateError):
            cluster.gather(["a", "b", "c", "d"], root=4)

    def test_allgather(self, cluster):
        out = cluster.allgather([10, 20, 30, 40])
        assert len(out) == 4
        assert all(row == [10, 20, 30, 40] for row in out)

    def test_bcast(self, cluster):
        assert cluster.bcast("v", root=2) == ["v"] * 4

    def test_bcast_bad_root(self, cluster):
        with pytest.raises(RuntimeStateError):
            cluster.bcast("v", root=4)

    def test_alltoallv_routes(self, cluster):
        sends = [[[f"{s}->{d}"] for d in range(4)] for s in range(4)]
        recv = cluster.alltoallv(sends)
        for d in range(4):
            assert recv[d] == [f"{s}->{d}" for s in range(4)]

    def test_alltoallv_wrong_row_length(self, cluster):
        with pytest.raises(RuntimeStateError):
            cluster.alltoallv([[[]] * 3] * 4)

    def test_collectives_charge_time(self, cluster):
        before = sum(cluster.ledger.clocks)
        cluster.allreduce([0, 0, 0, 0])
        assert sum(cluster.ledger.clocks) > before

    def test_alltoallv_charges_senders_only_offdiagonal(self):
        c = SimCluster(ClusterConfig(nodes=1, procs_per_node=2))
        # Only diagonal traffic: no charges.
        c.alltoallv([[["x"], []], [[], ["y"]]])
        assert sum(c.ledger.clocks) == 0.0
