"""Sparse (set) metric correctness."""

import numpy as np
import pytest

from repro.distances import sparse
from repro.errors import MetricError


class TestAsSortedSet:
    def test_sorts_and_dedupes(self):
        out = sparse.as_sorted_set([5, 1, 5, 3, 1])
        np.testing.assert_array_equal(out, [1, 3, 5])

    def test_empty(self):
        assert sparse.as_sorted_set([]).size == 0


class TestValidateRecord:
    def test_accepts_sorted(self):
        rec = np.array([1, 4, 9])
        np.testing.assert_array_equal(sparse.validate_record(rec), rec)

    def test_rejects_unsorted(self):
        with pytest.raises(MetricError):
            sparse.validate_record(np.array([3, 1]))

    def test_rejects_duplicates(self):
        with pytest.raises(MetricError):
            sparse.validate_record(np.array([1, 1, 2]))

    def test_rejects_2d(self):
        with pytest.raises(MetricError):
            sparse.validate_record(np.array([[1, 2]]))


class TestJaccard:
    def test_known_value(self):
        a = sparse.as_sorted_set([1, 2, 3])
        b = sparse.as_sorted_set([2, 3, 4, 5])
        # |inter| = 2, |union| = 5.
        assert sparse.jaccard(a, b) == pytest.approx(1 - 2 / 5)

    def test_identical(self):
        a = sparse.as_sorted_set([1, 2, 3])
        assert sparse.jaccard(a, a) == 0.0

    def test_disjoint(self):
        assert sparse.jaccard(np.array([1]), np.array([2])) == 1.0

    def test_empty_vs_empty(self):
        e = np.array([], dtype=np.int64)
        assert sparse.jaccard(e, e) == 0.0

    def test_empty_vs_nonempty(self):
        e = np.array([], dtype=np.int64)
        assert sparse.jaccard(e, np.array([1, 2])) == 1.0

    def test_symmetric(self):
        a = sparse.as_sorted_set([1, 5, 9])
        b = sparse.as_sorted_set([5, 9, 11, 13])
        assert sparse.jaccard(a, b) == sparse.jaccard(b, a)


class TestDiceOverlap:
    def test_dice_known(self):
        a = np.array([1, 2, 3])
        b = np.array([2, 3, 4, 5])
        assert sparse.dice(a, b) == pytest.approx(1 - 4 / 7)

    def test_dice_identical(self):
        a = np.array([1, 2])
        assert sparse.dice(a, a) == 0.0

    def test_overlap_subset_is_zero(self):
        a = np.array([1, 2])
        b = np.array([1, 2, 3, 4])
        assert sparse.overlap(a, b) == 0.0

    def test_overlap_empty_cases(self):
        e = np.array([], dtype=np.int64)
        assert sparse.overlap(e, e) == 0.0
        assert sparse.overlap(e, np.array([1])) == 1.0


class TestJaccardOneToMany:
    def test_matches_scalar(self):
        q = sparse.as_sorted_set([1, 2, 3])
        records = [sparse.as_sorted_set(r) for r in ([1, 2], [4, 5], [1, 2, 3])]
        out = sparse.jaccard_one_to_many(q, records)
        want = [sparse.jaccard(q, r) for r in records]
        np.testing.assert_allclose(out, want)


class TestSparseDataset:
    def test_basic_shape(self):
        ds = sparse.SparseDataset([[3, 1], [2], [9, 9, 4]])
        assert len(ds) == 3
        assert ds.dim == 10  # max item 9 -> universe 10
        assert ds.shape == (3, 10)

    def test_records_canonicalized(self):
        ds = sparse.SparseDataset([[5, 1, 5]])
        np.testing.assert_array_equal(ds[0], [1, 5])

    def test_nbytes_of(self):
        ds = sparse.SparseDataset([[1, 2, 3]])
        assert ds.nbytes_of(0) == 3 * 8  # int64 items

    def test_mean_record_size(self):
        ds = sparse.SparseDataset([[1, 2], [3, 4, 5, 6]])
        assert ds.mean_record_size() == 3.0

    def test_empty_dataset_mean(self):
        assert sparse.SparseDataset([]).mean_record_size() == 0.0

    def test_dtype(self):
        ds = sparse.SparseDataset([[1]])
        assert ds.dtype == np.int64
