"""DNND driver internals: interleaving, fingerprinting, gather."""

import numpy as np
import pytest

from repro import ClusterConfig, DNND, DNNDConfig, NNDescentConfig
from repro.core.dnnd import _fingerprint
from repro.core.dnnd_phases import shard_of
from repro.core.executor import resolve_backend


@pytest.fixture()
def dnnd(tiny_dense):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=4, seed=99))
    if resolve_backend(cfg.backend) == "process":
        pytest.skip("white-box shard introspection needs driver-resident "
                    "rank state; the process backend keeps it in workers")
    d = DNND(tiny_dense, cfg,
             cluster=ClusterConfig(nodes=2, procs_per_node=2))
    yield d
    d.close()


class TestInterleaving:
    def test_covers_every_vertex_once(self, dnnd, tiny_dense):
        seen = []
        for ctx, li in dnnd._interleaved_vertices():
            shard = shard_of(ctx)
            seen.append(int(shard.global_ids[li]))
        assert sorted(seen) == list(range(len(tiny_dense)))

    def test_round_robin_order(self, dnnd):
        """Ranks progress together: local index never jumps ahead by
        more than one relative to other ranks (SPMD modeling)."""
        last_li = -1
        for ctx, li in dnnd._interleaved_vertices():
            assert li in (last_li, last_li + 1)
            last_li = li


class TestFingerprint:
    def test_deterministic(self, tiny_dense):
        assert _fingerprint(tiny_dense) == _fingerprint(tiny_dense)

    def test_sensitive_to_values(self, tiny_dense):
        other = tiny_dense.copy()
        other[0, 0] += 1.0
        assert _fingerprint(other) != _fingerprint(tiny_dense)

    def test_sensitive_to_row_order(self, tiny_dense):
        permuted = tiny_dense[::-1].copy()
        assert _fingerprint(permuted) != _fingerprint(tiny_dense)

    def test_sparse_records_supported(self, sparse_sets):
        assert _fingerprint(sparse_sets) == _fingerprint(sparse_sets)


class TestDistribution:
    def test_shards_partition_dataset(self, dnnd, tiny_dense):
        gids = np.concatenate([shard_of(ctx).global_ids
                               for ctx in dnnd.world.ranks])
        assert sorted(gids.tolist()) == list(range(len(tiny_dense)))

    def test_features_colocated_with_ids(self, dnnd, tiny_dense):
        for ctx in dnnd.world.ranks:
            shard = shard_of(ctx)
            for li, gid in enumerate(shard.global_ids):
                np.testing.assert_array_equal(shard.features[li],
                                              tiny_dense[int(gid)])

    def test_heap_per_vertex(self, dnnd):
        for ctx in dnnd.world.ranks:
            shard = shard_of(ctx)
            assert len(shard.heaps) == shard.n_local
            assert all(h.k == 4 for h in shard.heaps)


class TestGather:
    def test_gathered_graph_matches_shards(self, dnnd, tiny_dense):
        result = dnnd.build()
        for ctx in dnnd.world.ranks:
            shard = shard_of(ctx)
            for li, gid in enumerate(shard.global_ids):
                ids, dists, _ = shard.heaps[li].sorted_arrays()
                np.testing.assert_array_equal(result.graph.ids[int(gid)], ids)
