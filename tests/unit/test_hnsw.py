"""HNSW baseline."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_neighbors
from repro.baselines.hnsw import HNSW, HNSWConfig
from repro.errors import ConfigError, SearchError
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def built_index():
    from repro.datasets.synthetic import gaussian_mixture
    data = gaussian_mixture(300, 12, n_clusters=6, cluster_std=0.12, seed=7)
    index = HNSW(data, HNSWConfig(M=8, ef_construction=60, seed=0))
    index.build()
    return data, index


class TestConfig:
    def test_m_max0_is_double(self):
        assert HNSWConfig(M=16).M_max0 == 32

    def test_mL(self):
        assert HNSWConfig(M=16).mL == pytest.approx(1 / np.log(16))

    def test_bad_m(self):
        with pytest.raises(ConfigError):
            HNSWConfig(M=1)

    def test_bad_efc(self):
        with pytest.raises(ConfigError):
            HNSWConfig(ef_construction=0)


class TestBuild:
    def test_levels_exponential(self, built_index):
        _, index = built_index
        hist = index.level_histogram()
        # Level 0 must hold the most nodes; counts decay upward.
        assert hist[0] == max(hist)
        assert sum(hist) == 300

    def test_degree_caps_respected(self, built_index):
        _, index = built_index
        cfg = index.config
        for node, links in enumerate(index._links):
            for layer, nbrs in enumerate(links):
                cap = cfg.M_max0 if layer == 0 else cfg.M
                assert len(nbrs) <= cap, (node, layer)

    def test_links_bidirectional_enough_for_search(self, built_index):
        # Not strictly bidirectional after shrinking, but no dangling ids.
        _, index = built_index
        n = index.n
        for links in index._links:
            for nbrs in links:
                assert all(0 <= e < n for e in nbrs)

    def test_entry_point_has_max_level(self, built_index):
        _, index = built_index
        assert index._levels[index._entry] == index._max_level

    def test_distance_evals_counted(self, built_index):
        _, index = built_index
        assert index.distance_evals > 0

    def test_sparse_rejected(self, sparse_sets):
        with pytest.raises(ConfigError):
            HNSW(sparse_sets, metric="jaccard")

    def test_single_point(self):
        index = HNSW(np.zeros((1, 3), dtype=np.float32)).build()
        res = index.query(np.zeros(3), k=1)
        assert res.ids.tolist() == [0]


class TestQuery:
    def test_self_query(self, built_index):
        data, index = built_index
        res = index.query(data[42], k=1, ef=30)
        assert res.ids[0] == 42

    def test_high_recall_with_large_ef(self, built_index):
        data, index = built_index
        gt_ids, _ = brute_force_neighbors(data, data[:40], k=10)
        ids, _, _ = index.query_batch(data[:40], k=10, ef=120)
        assert recall_at_k(ids, gt_ids) > 0.9

    def test_ef_trade_off(self, built_index):
        # Larger ef -> more distance evals and >= recall (the Table 2 knob).
        data, index = built_index
        gt_ids, _ = brute_force_neighbors(data, data[:30], k=10)
        ids_lo, _, st_lo = index.query_batch(data[:30], k=10, ef=10)
        ids_hi, _, st_hi = index.query_batch(data[:30], k=10, ef=200)
        assert st_hi["mean_distance_evals"] > st_lo["mean_distance_evals"]
        assert recall_at_k(ids_hi, gt_ids) >= recall_at_k(ids_lo, gt_ids) - 0.02

    def test_ef_clamped_to_k(self, built_index):
        data, index = built_index
        res = index.query(data[0], k=10, ef=1)
        assert len(res.ids) == 10

    def test_sorted_results(self, built_index):
        data, index = built_index
        res = index.query(data[0], k=10, ef=50)
        assert (np.diff(res.dists) >= 0).all()

    def test_query_before_build_rejected(self, small_dense):
        index = HNSW(small_dense)
        with pytest.raises(SearchError):
            index.query(small_dense[0], k=3)

    def test_bad_k(self, built_index):
        data, index = built_index
        with pytest.raises(SearchError):
            index.query(data[0], k=0)

    def test_batch_shapes(self, built_index):
        data, index = built_index
        ids, dists, stats = index.query_batch(data[:7], k=5, ef=20)
        assert ids.shape == (7, 5)
        assert stats["n_queries"] == 7


class TestConstructionCost:
    def test_efc_increases_cost(self, small_dense):
        lo = HNSW(small_dense, HNSWConfig(M=8, ef_construction=10, seed=0)).build()
        hi = HNSW(small_dense, HNSWConfig(M=8, ef_construction=120, seed=0)).build()
        assert hi.distance_evals > lo.distance_evals

    def test_degree_stats(self, built_index):
        _, index = built_index
        stats = index.degree_stats(0)
        assert 0 < stats["mean"] <= index.config.M_max0
