"""IVF-PQ (the Faiss IVFADC architecture)."""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_neighbors
from repro.baselines.pq import IVFPQIndex
from repro.errors import ConfigError, SearchError
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def data():
    from repro.datasets.synthetic import gaussian_mixture
    return gaussian_mixture(500, 16, n_clusters=10, cluster_std=0.25, seed=61)


@pytest.fixture(scope="module")
def index(data):
    return IVFPQIndex(data, n_lists=12, m=4, n_centroids=32, seed=0)


class TestConstruction:
    def test_lists_partition_dataset(self, index, data):
        members = np.concatenate(index.lists)
        assert sorted(members.tolist()) == list(range(len(data)))

    def test_lists_capped_at_n(self, data):
        idx = IVFPQIndex(data[:6], n_lists=40, m=4, n_centroids=4, seed=0)
        assert idx.n_lists <= 6

    def test_validation(self, data):
        with pytest.raises(ConfigError):
            IVFPQIndex(data, n_lists=0)
        with pytest.raises(ConfigError):
            IVFPQIndex(data, m=5)
        with pytest.raises(ConfigError):
            IVFPQIndex(data, metric="cosine")
        with pytest.raises(ConfigError):
            IVFPQIndex(np.empty((0, 4)))

    def test_assignment_is_nearest_cell(self, index, data):
        for i in (0, 100, 250):
            d = ((index.coarse - data[i]) ** 2).sum(axis=1)
            assert index._assign[i] == d.argmin()


class TestQueries:
    def test_self_query(self, index, data):
        res = index.query(data[42], k=3, n_probe=2, rerank=30)
        assert res.ids[0] == 42
        assert res.dists[0] == pytest.approx(0.0, abs=1e-9)

    def test_recall_grows_with_probes(self, index, data):
        gt, _ = brute_force_neighbors(data, data[:40], k=5)
        def recall(p):
            ids, _, _ = index.query_batch(data[:40], k=5, n_probe=p, rerank=60)
            return recall_at_k(ids, gt)
        r_all = recall(index.n_lists)
        assert r_all >= recall(1) - 0.02
        assert r_all > 0.85

    def test_fewer_probes_less_work(self, index, data):
        lo = index.query(data[0], k=5, n_probe=1)
        hi = index.query(data[0], k=5, n_probe=index.n_lists)
        assert lo.n_visited <= hi.n_visited
        assert lo.n_distance_evals <= hi.n_distance_evals

    def test_probing_scans_fraction(self, index, data):
        res = index.query(data[0], k=5, n_probe=2)
        assert res.n_visited < len(data)

    def test_sorted_distinct(self, index, data):
        res = index.query(data[3], k=8, n_probe=3)
        assert (np.diff(res.dists) >= 0).all()
        assert len(set(res.ids.tolist())) == len(res.ids)

    def test_validation(self, index, data):
        with pytest.raises(SearchError):
            index.query(np.zeros(3), k=2)
        with pytest.raises(SearchError):
            index.query(data[0], k=0)
        with pytest.raises(SearchError):
            index.query(data[0], k=2, n_probe=0)

    def test_batch(self, index, data):
        ids, dists, stats = index.query_batch(data[:8], k=4, n_probe=2)
        assert ids.shape == (8, 4)
        assert stats["mean_distance_evals"] > 0

    def test_deterministic(self, data):
        a = IVFPQIndex(data, n_lists=8, m=4, n_centroids=16, seed=3)
        b = IVFPQIndex(data, n_lists=8, m=4, n_centroids=16, seed=3)
        np.testing.assert_array_equal(a._assign, b._assign)
        ra = a.query(data[0], k=5)
        rb = b.query(data[0], k=5)
        np.testing.assert_array_equal(ra.ids, rb.ids)
