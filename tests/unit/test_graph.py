"""KNNGraph / AdjacencyGraph containers."""

import numpy as np
import pytest

from repro.core.graph import EMPTY, AdjacencyGraph, KNNGraph
from repro.errors import GraphError


def small_graph():
    ids = np.array([[1, 2], [0, 2], [0, 1]])
    dists = np.array([[0.1, 0.2], [0.1, 0.3], [0.2, 0.3]])
    return KNNGraph(ids, dists)


class TestKNNGraph:
    def test_shape(self):
        g = small_graph()
        assert g.n == 3 and g.k == 2 and len(g) == 3

    def test_neighbors(self):
        g = small_graph()
        ids, dists = g.neighbors(0)
        np.testing.assert_array_equal(ids, [1, 2])
        np.testing.assert_allclose(dists, [0.1, 0.2])

    def test_degree_with_padding(self):
        ids = np.array([[1, EMPTY]])
        dists = np.array([[0.5, np.inf]])
        g = KNNGraph(ids, dists)
        assert g.degree(0) == 1
        got_ids, got_d = g.neighbors(0)
        np.testing.assert_array_equal(got_ids, [1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            KNNGraph(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_validate_passes_on_good_graph(self):
        small_graph().validate()

    def test_validate_rejects_out_of_range(self):
        g = KNNGraph(np.array([[5, EMPTY]]), np.array([[0.1, np.inf]]))
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_rejects_self_loop(self):
        g = KNNGraph(np.array([[0, EMPTY]]), np.array([[0.1, np.inf]]))
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_rejects_duplicates(self):
        g = KNNGraph(np.array([[1, 1], [0, EMPTY]]),
                     np.array([[0.1, 0.2], [0.1, np.inf]]))
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_rejects_unsorted_rows(self):
        g = KNNGraph(np.array([[1, 2], [0, 2], [0, 1]]),
                     np.array([[0.5, 0.2], [0.1, 0.3], [0.2, 0.3]]))
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_rejects_nonfinite_occupied(self):
        g = KNNGraph(np.array([[1, EMPTY]]), np.array([[np.nan, np.inf]]))
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_rejects_finite_empty_slot(self):
        g = KNNGraph(np.array([[1, EMPTY]]), np.array([[0.1, 0.5]]))
        with pytest.raises(GraphError):
            g.validate()

    def test_sort_rows(self):
        g = KNNGraph(np.array([[2, 1]]), np.array([[0.9, 0.1]]))
        s = g.sort_rows()
        np.testing.assert_array_equal(s.ids[0], [1, 2])
        np.testing.assert_allclose(s.dists[0], [0.1, 0.9])

    def test_arrays_roundtrip(self):
        g = small_graph()
        g2 = KNNGraph.from_arrays(g.to_arrays())
        np.testing.assert_array_equal(g.ids, g2.ids)

    def test_edge_set(self):
        assert small_graph().edge_set() == {
            (0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)
        }

    def test_reverse_edge_multiset(self):
        rev = small_graph().reverse_edge_multiset()
        assert (1, 0, 0.1) in rev
        assert len(rev) == 6

    def test_to_adjacency(self):
        adj = small_graph().to_adjacency()
        assert adj.n == 3 and adj.n_edges == 6
        ids, dists = adj.neighbors(0)
        np.testing.assert_array_equal(ids, [1, 2])

    def test_to_adjacency_skips_padding(self):
        g = KNNGraph(np.array([[1, EMPTY], [0, EMPTY]]),
                     np.array([[0.1, np.inf], [0.1, np.inf]]))
        adj = g.to_adjacency()
        assert adj.n_edges == 2
        assert adj.degree(0) == 1


class TestAdjacencyGraph:
    def make(self):
        return AdjacencyGraph.from_edge_lists([
            [(1, 0.1), (2, 0.2)],
            [(0, 0.1)],
            [(0, 0.2), (1, 0.3)],
        ])

    def test_from_edge_lists(self):
        adj = self.make()
        assert adj.n == 3
        assert adj.n_edges == 5
        np.testing.assert_array_equal(adj.degrees(), [2, 1, 2])

    def test_neighbors(self):
        adj = self.make()
        ids, dists = adj.neighbors(2)
        np.testing.assert_array_equal(ids, [0, 1])
        np.testing.assert_allclose(dists, [0.2, 0.3])

    def test_validate_good(self):
        self.make().validate()

    def test_validate_self_loop(self):
        adj = AdjacencyGraph.from_edge_lists([[(0, 0.1)]])
        with pytest.raises(GraphError):
            adj.validate()

    def test_validate_duplicate(self):
        adj = AdjacencyGraph.from_edge_lists([[(1, 0.1), (1, 0.2)], []])
        with pytest.raises(GraphError):
            adj.validate()

    def test_validate_out_of_range(self):
        adj = AdjacencyGraph.from_edge_lists([[(5, 0.1)]])
        with pytest.raises(GraphError):
            adj.validate()

    def test_csr_invariants_enforced(self):
        with pytest.raises(GraphError):
            AdjacencyGraph(np.array([1, 2]), np.array([0]), np.array([0.1]))
        with pytest.raises(GraphError):
            AdjacencyGraph(np.array([0, 2]), np.array([0]), np.array([0.1]))
        with pytest.raises(GraphError):
            AdjacencyGraph(np.array([0, 1]), np.array([0]), np.array([0.1, 0.2]))
        with pytest.raises(GraphError):
            AdjacencyGraph(np.array([0, 2, 1]), np.array([0, 1]), np.array([0.1, 0.2]))

    def test_arrays_roundtrip(self):
        adj = self.make()
        adj2 = AdjacencyGraph.from_arrays(adj.to_arrays())
        np.testing.assert_array_equal(adj.indices, adj2.indices)

    def test_edge_set(self):
        assert self.make().edge_set() == {(0, 1), (0, 2), (1, 0), (2, 0), (2, 1)}

    def test_connected_fraction_full(self):
        assert self.make().connected_fraction() == 1.0

    def test_connected_fraction_disconnected(self):
        adj = AdjacencyGraph.from_edge_lists([[(1, 0.1)], [(0, 0.1)], [(3, 0.1)], [(2, 0.1)]])
        assert adj.connected_fraction() == 0.5

    def test_empty_vertex_allowed(self):
        adj = AdjacencyGraph.from_edge_lists([[], [(0, 0.5)]])
        assert adj.degree(0) == 0
        adj.validate()
