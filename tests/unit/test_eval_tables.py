"""ASCII table rendering."""

from repro.eval.tables import ascii_table, format_series


class TestAsciiTable:
    def test_basic(self):
        out = ascii_table(["a", "bb"], [[1, 2.5], [30, "x"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = ascii_table(["c"], [[1]], title="Table 3")
        assert out.splitlines()[0] == "Table 3"

    def test_column_width_adapts(self):
        out = ascii_table(["x"], [["longvalue"]])
        header = out.splitlines()[0]
        assert len(header) >= len("longvalue")

    def test_float_formatting(self):
        out = ascii_table(["v"], [[0.123456]])
        assert "0.123" in out

    def test_large_ints_commas(self):
        out = ascii_table(["v"], [[1_000_000]])
        assert "1,000,000" in out

    def test_nan(self):
        out = ascii_table(["v"], [[float("nan")]])
        assert "nan" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("DNND k10", [4, 8], [6.96, 3.87],
                            x_label="nodes", y_label="hours")
        assert "DNND k10" in out
        assert "(4, 6.96)" in out
        assert "nodes -> hours" in out
