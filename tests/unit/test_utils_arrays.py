"""Array helpers."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.utils.arrays import as_float32_matrix, chunk_ranges, ensure_2d


class TestEnsure2D:
    def test_vector_promoted(self):
        out = ensure_2d(np.arange(5))
        assert out.shape == (1, 5)

    def test_matrix_passthrough(self):
        x = np.zeros((3, 4))
        assert ensure_2d(x).shape == (3, 4)

    def test_rejects_3d(self):
        with pytest.raises(DatasetError):
            ensure_2d(np.zeros((2, 2, 2)))


class TestAsFloat32Matrix:
    def test_converts_uint8(self):
        out = as_float32_matrix(np.ones((2, 3), dtype=np.uint8))
        assert out.dtype == np.float32

    def test_float32_no_copy_dtype(self):
        x = np.ones((2, 3), dtype=np.float32)
        assert as_float32_matrix(x).dtype == np.float32

    def test_downcasts_float64(self):
        assert as_float32_matrix(np.ones((2, 2))).dtype == np.float32

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            as_float32_matrix(np.empty((0, 4)))

    def test_rejects_non_numeric(self):
        with pytest.raises(DatasetError):
            as_float32_matrix(np.array([["a", "b"]]))

    def test_contiguous(self):
        x = np.ones((4, 6), dtype=np.float32)[:, ::2]
        assert as_float32_matrix(x).flags["C_CONTIGUOUS"]


class TestPadColumns:
    def test_pads_to_multiple(self):
        from repro.utils.arrays import pad_columns
        out = pad_columns(np.ones((3, 5)), 4)
        assert out.shape == (3, 8)
        assert (out[:, 5:] == 0).all()

    def test_aligned_passthrough(self):
        from repro.utils.arrays import pad_columns
        x = np.ones((2, 8))
        assert pad_columns(x, 4) is x

    def test_preserves_l2_distances(self):
        from repro.utils.arrays import pad_columns
        from repro.distances.dense import sqeuclidean
        rng = np.random.default_rng(0)
        a, b = rng.random((2, 5))
        pa, pb = pad_columns(np.stack([a, b]), 4)
        assert sqeuclidean(pa, pb) == pytest.approx(sqeuclidean(a, b))

    def test_enables_pq_on_awkward_dims(self):
        from repro.baselines.pq import PQIndex
        from repro.utils.arrays import pad_columns
        rng = np.random.default_rng(1)
        data = rng.random((80, 10)).astype(np.float32)  # 10 % 4 != 0
        padded = pad_columns(data, 4)
        idx = PQIndex(padded, m=4, n_centroids=16, seed=0)
        res = idx.query(padded[0], k=3, rerank=20)
        assert res.ids[0] == 0

    def test_bad_multiple(self):
        from repro.utils.arrays import pad_columns
        with pytest.raises(ValueError):
            pad_columns(np.ones((2, 3)), 0)


class TestChunkRanges:
    def test_covers_exactly(self):
        spans = list(chunk_ranges(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_chunk(self):
        assert list(chunk_ranges(5, 100)) == [(0, 5)]

    def test_empty(self):
        assert list(chunk_ranges(0, 4)) == []

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            list(chunk_ranges(10, 0))

    def test_exact_multiple(self):
        assert list(chunk_ranges(6, 3)) == [(0, 3), (3, 6)]
