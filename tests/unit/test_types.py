"""Unit tests for the Section 2 size-accounting helpers."""

import numpy as np

from repro.types import (
    DIST_BYTES,
    ID_BYTES,
    dataset_bytes,
    feature_bytes,
    graph_bytes,
)


def test_id_bytes_match_paper_uint32():
    assert ID_BYTES == 4
    assert DIST_BYTES == 4


def test_feature_bytes_float32():
    # Section 2: dim x E, E = 4 for float32.
    assert feature_bytes(96, np.float32) == 384


def test_feature_bytes_uint8():
    # BigANN uses uint8 vectors (Section 5.3): E = 1.
    assert feature_bytes(128, np.uint8) == 128


def test_dataset_bytes_deep1b():
    # DEEP 1B: 1e9 x 96 x 4 bytes = 384 GB.
    assert dataset_bytes(10**9, 96, np.float32) == 384 * 10**9


def test_graph_bytes():
    # k x N x T with T = 4 (uint32 ids).
    assert graph_bytes(10**9, 10) == 40 * 10**9


def test_feature_bytes_accepts_dtype_objects_and_strings():
    assert feature_bytes(10, "float64") == 80
    assert feature_bytes(10, np.dtype(np.int16)) == 20
