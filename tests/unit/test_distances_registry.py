"""Metric registry: lookups, aliases, custom registration."""

import numpy as np
import pytest

from repro.distances.registry import (
    Metric,
    get_metric,
    list_metrics,
    register_metric,
)
from repro.errors import MetricError


class TestGetMetric:
    def test_builtin_names(self):
        for name in ("euclidean", "sqeuclidean", "cosine", "jaccard",
                     "manhattan", "chebyshev", "hamming", "inner_product"):
            assert get_metric(name).name == name

    def test_case_insensitive(self):
        assert get_metric("Cosine").name == "cosine"

    def test_aliases(self):
        assert get_metric("l2").name == "euclidean"
        assert get_metric("angular").name == "cosine"
        assert get_metric("ip").name == "inner_product"
        assert get_metric("l1").name == "manhattan"

    def test_metric_passthrough(self):
        m = get_metric("cosine")
        assert get_metric(m) is m

    def test_unknown_raises_with_available_list(self):
        with pytest.raises(MetricError, match="euclidean"):
            get_metric("nope")

    def test_list_metrics_sorted(self):
        names = list_metrics()
        assert names == sorted(names)
        assert "jaccard" in names


class TestMetricObject:
    def test_call_is_scalar(self):
        m = get_metric("euclidean")
        assert m(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_distances_to_vectorized(self):
        m = get_metric("sqeuclidean")
        q = np.zeros(3)
        X = np.eye(3)
        np.testing.assert_allclose(m.distances_to(q, X), [1, 1, 1])

    def test_distances_to_sparse_fallback(self):
        m = get_metric("jaccard")
        q = np.array([1, 2])
        records = [np.array([1, 2]), np.array([3, 4])]
        np.testing.assert_allclose(m.distances_to(q, records), [0.0, 1.0])

    def test_block_vectorized(self):
        m = get_metric("euclidean")
        X = np.zeros((2, 2))
        Y = np.array([[3.0, 4.0]])
        np.testing.assert_allclose(m.block(X, Y), [[5.0], [5.0]])

    def test_block_scalar_fallback(self):
        m = get_metric("jaccard")
        recs = [np.array([1]), np.array([2])]
        out = m.block(recs, recs)
        np.testing.assert_allclose(out, [[0, 1], [1, 0]])

    def test_sparse_flag(self):
        assert get_metric("jaccard").sparse_input
        assert not get_metric("euclidean").sparse_input


class TestRegisterMetric:
    def test_register_and_lookup(self):
        m = Metric("test_canberra_xyz", lambda a, b: 0.5)
        register_metric(m)
        assert get_metric("test_canberra_xyz") is m

    def test_duplicate_rejected(self):
        m = Metric("test_dup_xyz", lambda a, b: 0.0)
        register_metric(m)
        with pytest.raises(MetricError):
            register_metric(Metric("test_dup_xyz", lambda a, b: 1.0))

    def test_overwrite_allowed(self):
        register_metric(Metric("test_ow_xyz", lambda a, b: 0.0))
        replacement = Metric("test_ow_xyz", lambda a, b: 1.0)
        register_metric(replacement, overwrite=True)
        assert get_metric("test_ow_xyz") is replacement

    def test_custom_metric_usable_by_algorithms(self):
        # A genuinely custom metric must flow through NN-Descent.
        def canberra(a, b):
            a = np.asarray(a, dtype=np.float64)
            b = np.asarray(b, dtype=np.float64)
            denom = np.abs(a) + np.abs(b)
            mask = denom > 0
            return float((np.abs(a - b)[mask] / denom[mask]).sum())

        register_metric(Metric("test_canberra_algo", canberra), overwrite=True)
        from repro import build_knn_graph
        rng = np.random.default_rng(0)
        data = rng.random((60, 5)).astype(np.float32)
        res = build_knn_graph(data, k=4, metric="test_canberra_algo", seed=0)
        res.graph.validate()
