"""Fixture: stats read with messages still in flight (REP204 1x)."""


def measure(world, ctx, dest):
    ctx.async_call(dest, "touch", 1)
    return world.stats()  # no barrier since the emit
