"""Fixture: barrier before the stats read (clean for REP204)."""


def measure(world, ctx, dest):
    ctx.async_call(dest, "touch", 1)
    world.barrier()
    return world.stats()
