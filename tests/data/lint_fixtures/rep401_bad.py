"""Fixture: unlocked shared-state mutation from concurrent scope (REP401 3x)."""

PENDING = []
TOTALS = {"built": 0}
CACHE = {}


def _h_record(ctx, key):
    TOTALS[key] += 1  # read-modify-write on a module-level dict


def _h_enqueue(ctx, item):
    PENDING.append(item)  # mutating call on a module-level list


def _task_evict(key):
    del CACHE[key]  # del on shared state from executor-task scope


def setup(world, pool):
    world.register_handler("record", _h_record)
    world.register_handler("enqueue", _h_enqueue)
    pool.submit(_task_evict)
