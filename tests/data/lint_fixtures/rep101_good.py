"""Fixture: keyed-stream RNG discipline (clean for REP101)."""
import random

import numpy as np


def pick(items, seed, vertex):
    rng = np.random.default_rng((seed, vertex))
    order = rng.permutation(len(items))
    coin = random.Random(seed)
    return [items[int(i)] for i in order], coin.random()
