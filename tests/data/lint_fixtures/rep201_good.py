"""Fixture: every named handler resolves (clean for REP201)."""


def setup(world):
    world.register_handler("pong", _h_pong)


def _h_pong(ctx, token):
    ctx.state["token"] = token


def send(ctx, dest):
    ctx.async_call(dest, "pong", 1)
