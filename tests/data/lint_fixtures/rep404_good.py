"""Fixture: lock nesting that follows the declared hierarchy (REP404 0x)."""


class Transport:
    def ordered(self):
        with self._fault_lock:
            with self._lock:  # outermost-first, as declared
                return self.pending

    def ordered_multi_item(self):
        with self._fault_lock, self._lock:
            return self.pending

    def sequential(self):
        with self._lock:
            first = self.pending
        with self._fault_lock:  # not nested: no ordering constraint
            return first

    def nested_def_is_independent(self):
        with self._lock:
            def later():
                # Runs after `sequential`'s with-block exits, not under
                # the enclosing stack.
                with self._fault_lock:
                    return self.pending
            return later
