"""Fixture: closures capturing driver-mutable locals (REP403 3x)."""


def register_shards(world):
    for shard in range(4):
        def _h_shard(ctx, key):
            return (shard, key)  # reads the cell at run time: last shard

        world.register_handler("shard", _h_shard)


def submit_emitter(world, pool):
    mode = "optimized"

    def _task_emit():
        return mode  # driver flips mode below before the task runs

    pool.submit(_task_emit)
    mode = "fallback"


def register_total(world):
    total = 0

    def _h_total(ctx, n):
        return total  # races the driver's accumulation

    world.register_handler("total", _h_total)
    total += 1
    return total
