"""Fixture: handler state lives in ctx.state (clean for REP203)."""


def _h_count(ctx, key):
    counts = ctx.state.setdefault("counts", {})
    counts[key] = counts.get(key, 0) + 1


def setup(world):
    world.register_handler("count", _h_count)


def send(ctx, dest):
    ctx.async_call(dest, "count", 7)
