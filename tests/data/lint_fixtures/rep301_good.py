"""Fixture: rank failures routed to recovery or re-raised (REP301 0x)."""

import logging

from repro import errors

log = logging.getLogger(__name__)


def reraise(world):
    try:
        world.barrier()
    except errors.RankFailureError:
        log.warning("rank failure, propagating to the supervisor")
        raise


def recover(world, supervisor):
    try:
        world.barrier()
    except errors.RankFailureError as exc:
        supervisor.recover_from_checkpoint(exc.ranks)


def degrade(world):
    try:
        world.barrier()
    except errors.RankFailureError as exc:
        world.exclude_ranks(exc.ranks)


def wrap(world):
    try:
        world.barrier()
    except errors.RankFailureError as exc:
        raise RuntimeError("build aborted by rank failure") from exc
