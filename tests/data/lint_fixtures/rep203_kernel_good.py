"""Fixture: kernel helpers bind only factory parameters (clean REP203)."""


def make_sq_kernels(ops, cache, stats, tile):
    def sq_pairwise(A, B):
        return ops.pairwise(cache, stats, tile, A, B)

    def sq_rowwise(a, b):
        return ops.rowwise(stats, a, b)

    def sq_one_to_many(q, X):
        return ops.one_to_many(cache, stats, q, X)

    return register_kernel(
        "sqeuclidean", ops=ops, cache=cache, stats=stats,
        pairwise=sq_pairwise, rowwise=sq_rowwise,
        one_to_many=sq_one_to_many)


def register_kernel(name, *, pairwise, rowwise, one_to_many,
                    ops, cache, stats):
    return (name, pairwise, rowwise, one_to_many, ops, cache, stats)
