"""Fixture: non-atomic check-then-act on shared mappings (REP402 3x)."""

SEEN = {}
HEAPS = {}
SLOTS = {}


def _h_count(ctx, key):
    if key in SEEN:
        SEEN[key] += 1  # another thread can del between check and act


def _h_init(ctx, rank):
    if rank not in HEAPS:
        HEAPS[rank] = []  # two threads can both pass the test


def _h_drop(ctx, key):
    if key in SLOTS:
        SLOTS.pop(key)  # .pop after the membership test is still racy


def setup(world):
    world.register_handler("count", _h_count)
    world.register_handler("init", _h_init)
    world.register_handler("drop", _h_drop)
