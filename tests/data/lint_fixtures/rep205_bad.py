"""Fixture: unserializable RPC payload (REP205 must fire 2x)."""


def send(ctx, dest, items):
    ctx.async_call(dest, "apply", lambda x: x + 1)
    ctx.async_call(dest, "apply", (i * 2 for i in items))
