"""Fixture: payload matches the handler signature (clean for REP202)."""


def setup(world):
    world.register_handler("update", _h_update)


def _h_update(ctx, key, value):
    ctx.state[key] = value


def send(ctx, dest):
    ctx.async_call(dest, "update", 1, 2)
