"""Fixture: lock-order inversions and re-acquisition (REP404 3x).

The declared hierarchy (pyproject ``lock-order``) is ``_fault_lock``
before ``_lock``, outermost first.
"""


class Transport:
    def inverted(self):
        with self._lock:
            with self._fault_lock:  # inner lock held, outer acquired
                return self.pending

    def reentrant(self):
        with self._fault_lock:
            with self._fault_lock:  # threading.Lock is not reentrant
                return self.pending

    def inverted_multi_item(self):
        with self._lock, self._fault_lock:  # same inversion, one with
            return self.pending
