"""Fixture: simulated time comes from the cost ledger (clean for
REP102 even when configured as a sim path)."""


def stamp_events(events, ledger):
    events.append(ledger.elapsed)
    return events
