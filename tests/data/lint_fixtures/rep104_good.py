"""Fixture: ordering keyed on stable fields (clean for REP104)."""


def order_nodes(nodes):
    nodes.sort(key=lambda n: n.vertex_id)
    return sorted(nodes, key=lambda n: (n.dist, n.vertex_id))
