"""Fixture: bad code silenced line-by-line; must lint clean."""
import random


def pick(items):
    random.shuffle(items)  # repro: ignore[REP101]
    return items


def order(nodes):
    return sorted(nodes, key=id)  # repro: ignore


def broadcast(ctx, members):
    for t in set(members):  # repro: ignore[REP103,REP104]
        ctx.async_call(t, "touch", t)  # repro: ignore[REP201]
