"""Fixture: wall-clock reads in simulation code (REP102 must fire 3x
when this path is configured as a sim path)."""
import time
from datetime import datetime


def stamp_events(events):
    events.append(time.time())
    events.append(time.perf_counter())
    events.append(datetime.now())
    return events
