"""Fixture: value-bound and stable captures (REP403 0x)."""


def register_shards(world):
    for shard in range(4):
        def _h_shard(ctx, key, shard=shard):  # bound at def time
            return (shard, key)

        world.register_handler("shard", _h_shard)


def submit_emitter(world, pool):
    mode = "optimized" if world.rank == 0 else "fallback"

    def _task_emit():
        return mode  # assigned once, before the def: stable by run time

    pool.submit(_task_emit)


def register_total(world, start):
    base = start + 1  # init-then-capture, never touched again

    def _h_total(ctx, n):
        return base + n

    world.register_handler("total", _h_total)
