"""Fixture: sets are sorted before emitting (clean for REP103)."""


def broadcast(ctx, members):
    targets = set(members)
    for t in sorted(targets):
        ctx.async_call(t, "touch", t)
