"""Fixture: atomic alternatives to check-then-act (REP402 0x)."""

import threading

SEEN = {}
HEAPS = {}
_LOCK = threading.Lock()


def _h_count(ctx, key):
    # setdefault is one dict operation: no window between check and act.
    SEEN.setdefault(key, 0)


def _h_init(ctx, rank):
    with _LOCK:
        if rank not in HEAPS:  # check and act under one lock
            HEAPS[rank] = []


def _h_local(ctx, keys):
    local = {}  # rank-owned mapping: no other thread can interleave
    for key in keys:
        if key in local:
            local[key] += 1


def _h_read_only(ctx, key):
    if key in SEEN:
        return SEEN[key]  # membership test guarding a *read* is fine
    return 0


def setup(world):
    world.register_handler("count", _h_count)
    world.register_handler("init", _h_init)
    world.register_handler("local", _h_local)
    world.register_handler("read", _h_read_only)
