"""Fixture: unseeded global-state RNG calls (REP101 must fire 4x)."""
import random

import numpy as np


def pick(items):
    random.shuffle(items)            # global random-module state
    noise = np.random.rand(3)        # legacy numpy global state
    rng = np.random.default_rng()    # OS entropy: no seed
    coin = random.Random()           # OS entropy: no seed
    return items, noise, rng, coin
