"""Fixture: handler capturing rank-local closure state (REP203 1x)."""


def setup(world):
    counts = {}

    def _h_count(ctx, key):
        counts[key] = counts.get(key, 0) + 1

    world.register_handler("count", _h_count)


def send(ctx, dest):
    ctx.async_call(dest, "count", 7)
