"""Fixture: swallowed rank failures (REP301 3x)."""

import logging

from repro.errors import RankFailureError, RuntimeStateError

log = logging.getLogger(__name__)


def swallow_pass(world):
    try:
        world.barrier()
    except RankFailureError:
        pass  # dead rank ignored: the build continues with holes


def swallow_log_only(world):
    try:
        world.barrier()
    except RankFailureError as exc:
        log.warning("rank died: %s", exc)  # logged, never handled


def swallow_in_tuple(world):
    try:
        world.barrier()
    except (RuntimeStateError, RankFailureError):
        return None
