"""Fixture: plain-data RPC payload (clean for REP205)."""


def send(ctx, dest, items):
    ctx.async_call(dest, "apply", [i * 2 for i in items])
