"""Fixture: async_call naming an unregistered handler (REP201 1x)."""


def setup(world):
    world.register_handler("pong", _h_pong)


def _h_pong(ctx, token):
    ctx.state["token"] = token


def send(ctx, dest):
    ctx.async_call(dest, "ping", 1)  # only "pong" is registered
