"""Fixture: set iteration in message-emitting code (REP103 must fire 2x)."""


def broadcast(ctx, members):
    targets = set(members)
    for t in targets:
        ctx.async_call(t, "touch", t)


def broadcast_comprehension(ctx, members: set):
    payloads = [m * 2 for m in members]
    for p in payloads:
        ctx.async_call(0, "touch", p)
