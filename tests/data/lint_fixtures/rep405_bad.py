"""Fixture: metrics publication from concurrent scope (REP405 3x)."""


def _h_count(ctx, key):
    ctx.world.metrics.inc("handler_calls")  # handler-side publication


def _h_gauge(ctx, depth):
    ctx.world.metrics.set_gauge("queue_depth", depth)


def _task_flush(registry):
    registry.set_counter("flushed", 1)  # executor task publishing


def setup(world, pool):
    world.register_handler("count", _h_count)
    world.register_handler("gauge", _h_gauge)
    pool.submit(_task_flush)
