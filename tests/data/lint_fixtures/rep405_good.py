"""Fixture: rank-owned folding with driver-side publication (REP405 0x)."""

COUNTS = {}


def _h_count(ctx, key):
    # Fold into rank-owned state; the driver mirrors it at the barrier.
    cell = COUNTS.setdefault(ctx.rank, [0])
    cell[0] = cell[0] + 1


def _h_pop(ctx, queue, key):
    # `.pop` on a non-metrics receiver must not trip the writer check.
    return queue.pop(key, None)


def setup(world):
    world.register_handler("count", _h_count)
    world.register_handler("pop", _h_pop)


def publish(world):
    # Driver scope, at the barrier: sanctioned publication point.
    total = sum(cell[0] for cell in COUNTS.values())
    world.metrics.set_counter("handled", total)
