"""Fixture: sanctioned shared-state access patterns (REP401 0x).

Plain assignment is the absolute-assignment fold; mutations under a
lock are synchronized; locals are rank-owned, not shared.
"""

import threading

TOTALS = {"built": 0}
SNAPSHOT = None
_LOCK = threading.Lock()


def _h_fold(ctx, key, value):
    TOTALS[key] = value  # absolute assignment: last-writer-safe


def _h_locked(ctx, item):
    with _LOCK:
        TOTALS["built"] += 1  # read-modify-write, but under the lock


def _h_local(ctx, items):
    batch = []  # rank-local: each handler invocation owns it
    batch.append(items)
    counts = {}
    counts["n"] = len(batch)


def setup(world):
    world.register_handler("fold", _h_fold)
    world.register_handler("locked", _h_locked)
    world.register_handler("local", _h_local)


def driver_side(key):
    # Not registered anywhere: driver scope may mutate freely.
    del TOTALS[key]
