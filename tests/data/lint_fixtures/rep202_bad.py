"""Fixture: call-site payload does not fit the handler (REP202 1x)."""


def setup(world):
    world.register_handler("update", _h_update)


def _h_update(ctx, key, value):
    ctx.state[key] = value


def send(ctx, dest):
    ctx.async_call(dest, "update", 1)  # handler wants (key, value)
