"""Fixture: ordering keyed on id() addresses (REP104 must fire 2x)."""


def order_nodes(nodes):
    nodes.sort(key=id)
    return sorted(nodes, key=lambda n: (id(n), 0))
