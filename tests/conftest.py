"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.config import ClusterConfig, DNNDConfig, NNDescentConfig
from repro.datasets.synthetic import (
    gaussian_mixture,
    planted_neighbors,
    power_law_sets,
    uniform_hypercube,
)

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def pytest_configure(config):
    """Refuse to run against stale bytecode.

    When a module is moved or deleted (e.g. the runtime/ ->
    runtime/transports/ split), its orphaned ``.pyc`` keeps the old
    import path importable and the suite silently tests dead code.
    Fail fast with the exact files to remove.
    """
    stale = []
    for pyc in _SRC.rglob("__pycache__/*.pyc"):
        source = pyc.parent.parent / (pyc.name.split(".")[0] + ".py")
        if not source.exists():
            stale.append(pyc)
    if stale:
        listing = "\n  ".join(str(p) for p in stale)
        raise pytest.UsageError(
            "stale bytecode shadows deleted/moved modules — remove it "
            "(e.g. find src -name __pycache__ -exec rm -rf {} +):\n  "
            + listing)


@pytest.fixture(scope="session")
def small_dense():
    """300 x 12 clustered float32 points — the workhorse dataset."""
    return gaussian_mixture(300, 12, n_clusters=6, cluster_std=0.12, seed=7)


@pytest.fixture(scope="session")
def tiny_dense():
    """80 x 8 points for the fastest structural tests."""
    return gaussian_mixture(80, 8, n_clusters=4, cluster_std=0.10, seed=11)


@pytest.fixture(scope="session")
def uniform_dense():
    """Structure-free uniform data (hard case)."""
    return uniform_hypercube(200, 10, seed=3)


@pytest.fixture(scope="session")
def planted():
    """(data, group_ids) with near-duplicate groups of 4."""
    return planted_neighbors(160, 10, group=4, seed=5)


@pytest.fixture(scope="session")
def sparse_sets():
    """Kosarak-style Jaccard records."""
    return power_law_sets(150, universe=500, mean_size=12, seed=9)


@pytest.fixture()
def nnd_config():
    return NNDescentConfig(k=6, rho=0.8, delta=0.001, metric="sqeuclidean", seed=13)


@pytest.fixture()
def dnnd_config(nnd_config):
    return DNNDConfig(nnd=nnd_config, batch_size=1 << 12)


@pytest.fixture()
def cluster_2x2():
    return ClusterConfig(nodes=2, procs_per_node=2)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
