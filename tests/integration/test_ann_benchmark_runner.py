"""The ANN-Benchmarks-style comparison harness."""

import pytest

from repro.datasets.ann_benchmarks import load_dataset
from repro.datasets.synthetic import train_query_split
from repro.errors import ConfigError
from repro.eval.ann_benchmark import AnnBenchmarkRunner


@pytest.fixture(scope="module")
def report():
    data, spec = load_dataset("deep1b", n=440, seed=23)
    train, queries = train_query_split(data, n_queries=40, seed=23)
    runner = AnnBenchmarkRunner(train, queries, k=5, metric=spec.metric,
                                dataset_name="deep1b", seed=23)
    runner.run_nndescent(graph_k=8, epsilons=(0.0, 0.3))
    runner.run_dnnd(graph_k=8, nodes=2, epsilons=(0.0, 0.3))
    runner.run_hnsw(M=8, ef_construction=40, efs=(20, 80))
    runner.run_kdtree(leaf_size=16, max_leaves_sweep=(2, None))
    runner.run_lsh(n_tables=8, n_bits=4)
    runner.run_pq(m=8, n_centroids=32, rerank_sweep=(10, 80))
    runner.run_bruteforce()
    return runner.report


class TestRunner:
    def test_all_algorithms_present(self, report):
        assert set(report.results) == {
            "dnnd", "nndescent", "hnsw", "kdtree", "lsh", "pq", "bruteforce"}

    def test_kdtree_exact_mode_in_sweep(self, report):
        assert report.results["kdtree"].best_recall() == 1.0

    def test_lsh_produces_candidates(self, report):
        assert report.results["lsh"].best_recall() > 0.3

    def test_pq_rerank_recall(self, report):
        assert report.results["pq"].best_recall() > 0.7

    def test_metric_guards(self):
        from repro.datasets.synthetic import gaussian_mixture, train_query_split
        data = gaussian_mixture(200, 8, seed=0)
        train, queries = train_query_split(data, 20, seed=0)
        runner = AnnBenchmarkRunner(train, queries, k=3, metric="cosine")
        with pytest.raises(ConfigError):
            runner.run_kdtree()  # cosine not supported by the k-d tree

    def test_bruteforce_is_exact(self, report):
        assert report.results["bruteforce"].best_recall() == 1.0

    def test_graph_algorithms_reach_high_recall(self, report):
        assert report.results["nndescent"].best_recall() > 0.85
        assert report.results["dnnd"].best_recall() > 0.85
        assert report.results["hnsw"].best_recall() > 0.85

    def test_graph_search_cheaper_than_bruteforce(self, report):
        bf = report.results["bruteforce"].points[0].mean_distance_evals
        for name in ("dnnd", "nndescent", "hnsw"):
            cheapest = min(p.mean_distance_evals
                           for p in report.results[name].points)
            assert cheapest < bf, name

    def test_winner_at_recall(self, report):
        # Everyone reaches 0.5; the winner must be a graph algorithm.
        winner = report.winner_at_recall(0.5)
        assert winner in ("dnnd", "nndescent", "hnsw")

    def test_winner_unreachable_recall(self, report):
        assert report.winner_at_recall(1.01) is None

    def test_cost_at_recall_semantics(self, report):
        res = report.results["bruteforce"]
        assert res.cost_at_recall(0.99) is not None
        assert res.cost_at_recall(1.01) is None

    def test_format_renders(self, report):
        text = report.format()
        assert "build" in text and "query trade-off" in text
        assert "dnnd" in text and "hnsw" in text

    def test_invalid_k(self):
        data, spec = load_dataset("deep1b", n=128, seed=1)
        with pytest.raises(ConfigError):
            AnnBenchmarkRunner(data[:100], data[100:], k=0)

    def test_build_cost_recorded(self, report):
        for name in ("dnnd", "nndescent", "hnsw"):
            assert report.results[name].build_distance_evals > 0
            assert report.results[name].build_seconds > 0
