"""DNND end-to-end builds on the simulated cluster."""

import numpy as np
import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)
from repro.errors import ConfigError, RuntimeStateError
from repro.runtime.partition import BlockPartitioner


def build(data, k=6, nodes=2, ppn=2, seed=13, **cfg_kw):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=k, seed=seed), **cfg_kw)
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=nodes, procs_per_node=ppn))
    return dnnd, dnnd.build()


class TestBuildQuality:
    def test_high_recall(self, small_dense):
        _, res = build(small_dense)
        truth = brute_force_knn_graph(small_dense, k=6)
        assert graph_recall(res.graph, truth) > 0.9

    def test_graph_valid(self, small_dense):
        _, res = build(small_dense)
        res.graph.validate()

    def test_converges(self, small_dense):
        _, res = build(small_dense)
        assert res.converged

    def test_all_rows_full(self, small_dense):
        _, res = build(small_dense)
        from repro.core.graph import EMPTY
        assert (res.graph.ids != EMPTY).all()

    def test_graph_identical_across_rank_counts(self, small_dense):
        # Section 5.3.3: "DNND was able to produce the same quality
        # graphs regardless of the number of compute nodes used."
        # Our vertex-keyed RNG streams strengthen that to bit-identity.
        graphs = []
        for nodes, ppn in ((1, 2), (2, 2), (4, 2)):
            _, res = build(small_dense, nodes=nodes, ppn=ppn)
            graphs.append(res.graph)
        for other in graphs[1:]:
            np.testing.assert_array_equal(graphs[0].ids, other.ids)
        truth = brute_force_knn_graph(small_dense, k=6)
        assert graph_recall(graphs[0], truth) > 0.9

    def test_single_rank_cluster(self, tiny_dense):
        _, res = build(tiny_dense, k=4, nodes=1, ppn=1)
        res.graph.validate()
        # A single rank sends no remote messages.
        assert res.message_stats.total_count() == 0

    def test_cosine_metric(self, small_dense):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=6, metric="cosine", seed=13))
        dnnd = DNND(small_dense, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
        res = dnnd.build()
        truth = brute_force_knn_graph(small_dense, k=6, metric="cosine")
        assert graph_recall(res.graph, truth) > 0.85

    def test_jaccard_sparse(self, sparse_sets):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=5, metric="jaccard", seed=13))
        dnnd = DNND(sparse_sets, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
        res = dnnd.build()
        truth = brute_force_knn_graph(sparse_sets, k=5, metric="jaccard")
        assert graph_recall(res.graph, truth) > 0.7

    def test_uint8_features(self):
        from repro.datasets.ann_benchmarks import load_dataset
        data, _ = load_dataset("bigann", n=200, seed=0)
        cfg = DNNDConfig(nnd=NNDescentConfig(k=5, seed=0))
        dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
        res = dnnd.build()
        res.graph.validate()
        # uint8 feature payloads: 128 bytes each, not 512.
        t2 = res.message_stats.get("type2+")
        if t2.count:
            assert t2.bytes / t2.count < 200


class TestDeterminism:
    def test_same_seed_same_graph(self, tiny_dense):
        _, a = build(tiny_dense, k=4, seed=7)
        _, b = build(tiny_dense, k=4, seed=7)
        np.testing.assert_array_equal(a.graph.ids, b.graph.ids)
        assert a.message_stats.snapshot() == b.message_stats.snapshot()

    def test_different_seed_different_graph(self, tiny_dense):
        _, a = build(tiny_dense, k=4, seed=1)
        _, b = build(tiny_dense, k=4, seed=2)
        assert not np.array_equal(a.graph.ids, b.graph.ids)

    def test_sim_time_deterministic(self, tiny_dense):
        _, a = build(tiny_dense, k=4, seed=7)
        _, b = build(tiny_dense, k=4, seed=7)
        assert a.sim_seconds == pytest.approx(b.sim_seconds)


class TestResultMetadata:
    def test_update_counts_per_iteration(self, small_dense):
        _, res = build(small_dense)
        assert len(res.update_counts) == res.iterations
        assert res.update_counts[0] > res.update_counts[-1]

    def test_phase_stats_present(self, small_dense):
        _, res = build(small_dense)
        for phase in ("init", "reverse", "neighbor_check"):
            assert phase in res.phase_stats

    def test_phase_seconds_present(self, small_dense):
        _, res = build(small_dense)
        assert res.phase_seconds
        assert res.sim_seconds > 0

    def test_distance_evals_positive(self, small_dense):
        _, res = build(small_dense)
        n = len(small_dense)
        assert res.distance_evals > n  # at least the init comparisons

    def test_per_iteration_messages(self, small_dense):
        _, res = build(small_dense)
        assert len(res.per_iteration_messages) == res.iterations
        first = res.per_iteration_messages[0]
        assert first.get("type1", (0, 0))[0] > 0

    def test_world_size_recorded(self, small_dense):
        _, res = build(small_dense, nodes=2, ppn=2)
        assert res.world_size == 4


class TestLifecycleErrors:
    def test_double_build_rejected(self, tiny_dense):
        dnnd, _ = build(tiny_dense, k=4)
        with pytest.raises(RuntimeStateError):
            dnnd.build()

    def test_optimize_before_build_rejected(self, tiny_dense):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4))
        dnnd = DNND(tiny_dense, cfg, cluster=ClusterConfig(nodes=1, procs_per_node=2))
        with pytest.raises(RuntimeStateError):
            dnnd.optimize()

    def test_k_too_large(self, tiny_dense):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=len(tiny_dense)))
        with pytest.raises(ConfigError):
            DNND(tiny_dense, cfg)


class TestPartitionerOverride:
    def test_block_partitioner(self, small_dense):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=6, seed=13))
        part = BlockPartitioner(len(small_dense), 4)
        dnnd = DNND(small_dense, cfg,
                    cluster=ClusterConfig(nodes=2, procs_per_node=2),
                    partitioner=part)
        res = dnnd.build()
        truth = brute_force_knn_graph(small_dense, k=6)
        assert graph_recall(res.graph, truth) > 0.9
