"""Smoke the full pipeline on every Table 1 stand-in.

Build (DNND) -> optimize -> (dense only) search, at tiny sizes: every
dataset's dtype/metric/raggedness must flow through the whole stack.
"""

import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    KNNGraphSearcher,
    NNDescentConfig,
)
from repro.datasets.ann_benchmarks import PAPER_DATASETS, load_dataset


@pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
def test_pipeline(name):
    data, spec = load_dataset(name, n=150, seed=3)
    cfg = DNNDConfig(nnd=NNDescentConfig(k=5, metric=spec.metric, seed=3))
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
    result = dnnd.build()
    result.graph.validate()
    adjacency = dnnd.optimize()
    adjacency.validate()
    searcher = KNNGraphSearcher(adjacency, data, metric=spec.metric, seed=0)
    q = data[0]
    res = searcher.query(q, l=5, epsilon=0.2)
    assert len(res.ids) == 5
    # Self-distance zero for every metric on its own representation.
    assert 0 in res.ids or res.dists[0] >= 0.0
    # Messages were priced (non-zero traffic on a 4-rank cluster).
    assert result.message_stats.total_count() > 0
