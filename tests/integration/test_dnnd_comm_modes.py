"""Communication-saving techniques (Section 4.3) and batching (4.4)."""

import pytest

from repro import (
    DNND,
    ClusterConfig,
    CommOptConfig,
    DNNDConfig,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)

CHECK_TYPES = ("type1", "type2", "type2+", "type3")


def build(data, comm_opts, k=6, seed=21, batch_size=1 << 12, **kw):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=k, seed=seed),
                     comm_opts=comm_opts, batch_size=batch_size, **kw)
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=1))
    return dnnd.build()


@pytest.fixture(scope="module")
def runs(small_dense):
    return {
        "unopt": build(small_dense, CommOptConfig.unoptimized()),
        "opt": build(small_dense, CommOptConfig.optimized()),
        "one_sided": build(small_dense, CommOptConfig(
            one_sided=True, redundancy_check=False, distance_pruning=False)),
        "no_prune": build(small_dense, CommOptConfig(
            one_sided=True, redundancy_check=True, distance_pruning=False)),
    }


class TestFigure4Shape:
    def test_message_count_halved(self, runs):
        """The paper's Figure 4a claim: ~50% fewer messages."""
        unopt = runs["unopt"].phase_stats["neighbor_check"].total_count(CHECK_TYPES)
        opt = runs["opt"].phase_stats["neighbor_check"].total_count(CHECK_TYPES)
        assert opt / unopt < 0.65
        assert opt / unopt > 0.3

    def test_message_bytes_halved(self, runs):
        """Figure 4b: ~50% less volume."""
        unopt = runs["unopt"].phase_stats["neighbor_check"].total_bytes(CHECK_TYPES)
        opt = runs["opt"].phase_stats["neighbor_check"].total_bytes(CHECK_TYPES)
        assert opt / unopt < 0.65

    def test_unopt_sends_only_t1_t2(self, runs):
        stats = runs["unopt"].phase_stats["neighbor_check"]
        assert stats.get("type1").count > 0
        assert stats.get("type2").count > 0
        assert stats.get("type2+").count == 0
        assert stats.get("type3").count == 0

    def test_opt_sends_t1_t2plus_t3(self, runs):
        stats = runs["opt"].phase_stats["neighbor_check"]
        assert stats.get("type1").count > 0
        assert stats.get("type2+").count > 0
        assert stats.get("type3").count > 0
        assert stats.get("type2").count == 0

    def test_one_sided_halves_type1(self, runs):
        t1_u = runs["unopt"].phase_stats["neighbor_check"].get("type1").count
        t1_o = runs["one_sided"].phase_stats["neighbor_check"].get("type1").count
        # Same pair generation, but one Type 1 per pair instead of two.
        # Seeds match so pair counts are comparable across modes; allow
        # slack for convergence differences.
        assert t1_o < t1_u * 0.7

    def test_redundancy_check_reduces_type2(self, runs):
        t2_base = runs["one_sided"].phase_stats["neighbor_check"].get("type2").count
        t2_red = runs["no_prune"].phase_stats["neighbor_check"].get("type2").count
        assert t2_red < t2_base

    def test_distance_pruning_reduces_type3(self, runs):
        t3_no_prune = runs["no_prune"].phase_stats["neighbor_check"].get("type3").count
        t3_full = runs["opt"].phase_stats["neighbor_check"].get("type3").count
        assert t3_full < t3_no_prune

    def test_quality_preserved_across_modes(self, runs, small_dense):
        truth = brute_force_knn_graph(small_dense, k=6)
        for name, res in runs.items():
            assert graph_recall(res.graph, truth) > 0.88, name

    def test_one_sided_saves_compute_too(self, runs):
        # Unoptimized computes every pair's distance twice.
        assert runs["opt"].distance_evals < runs["unopt"].distance_evals


class TestBatching:
    def test_batch_size_zero_disables_mid_phase_barriers(self, small_dense):
        res_nobatch = build(small_dense, CommOptConfig.optimized(), batch_size=0)
        res_batch = build(small_dense, CommOptConfig.optimized(), batch_size=256)
        # Same final quality...
        truth = brute_force_knn_graph(small_dense, k=6)
        assert graph_recall(res_nobatch.graph, truth) > 0.88
        assert graph_recall(res_batch.graph, truth) > 0.88

    def test_smaller_batch_means_more_barriers(self, small_dense):
        def barriers(batch):
            cfg = DNNDConfig(nnd=NNDescentConfig(k=6, seed=3), batch_size=batch)
            dnnd = DNND(small_dense, cfg,
                        cluster=ClusterConfig(nodes=2, procs_per_node=2))
            dnnd.build()
            return dnnd.cluster.ledger.barriers
        assert barriers(256) > barriers(1 << 14)


class TestReverseShuffle:
    def test_shuffle_off_still_correct(self, small_dense):
        res = build(small_dense, CommOptConfig.optimized(),
                    shuffle_reverse_destinations=False)
        truth = brute_force_knn_graph(small_dense, k=6)
        assert graph_recall(res.graph, truth) > 0.88

    def test_shuffle_changes_send_order_not_results(self, tiny_dense):
        a = build(tiny_dense, CommOptConfig.optimized(), k=4,
                  shuffle_reverse_destinations=True)
        b = build(tiny_dense, CommOptConfig.optimized(), k=4,
                  shuffle_reverse_destinations=False)
        # Reverse-message *count* is identical; only ordering differs.
        assert (a.phase_stats["reverse"].get("reverse").count
                == b.phase_stats["reverse"].get("reverse").count)
