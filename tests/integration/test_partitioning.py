"""Partitioning as a first-class layer.

Placement is orthogonal to result *quality*: whichever partitioner
placed the rows, the built graph recovers the same neighborhoods
(recall parity — heap tie-breaks may arrive in a different message
order, so bit-identity is only pinned for the default hash layout, by
the golden trace).  What placement changes is traffic — and the
repartition pass exists to cut it.
"""

import numpy as np
import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.core.dist_search import DistributedKNNGraphSearcher
from repro.errors import ConfigError, RuntimeStateError
from repro.runtime.partition import (
    BlockPartitioner,
    ExplicitPartitioner,
    HashPartitioner,
    edge_cut_fraction,
    make_partitioner,
)

BACKENDS = ("sim", "parallel", "process")


def config(backend="sim", max_iters=8, k=6):
    return DNNDConfig(
        nnd=NNDescentConfig(k=k, rho=0.8, delta=0.001, max_iters=max_iters,
                            seed=1),
        batch_size=1 << 12, backend=backend,
        workers=2 if backend != "sim" else 0)


@pytest.fixture(scope="module")
def hash_reference(small_dense):
    dnnd = DNND(small_dense, config(),
                cluster=ClusterConfig(nodes=2, procs_per_node=2))
    return dnnd.build()


def _recall(graph_ids, exact_ids):
    hits = sum(len(set(row) & set(truth))
               for row, truth in zip(graph_ids, exact_ids))
    return hits / exact_ids.size


@pytest.fixture(scope="module")
def exact_knn(small_dense):
    d2 = ((small_dense[:, None, :].astype(np.float64)
           - small_dense[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    return np.argsort(d2, axis=1, kind="stable")[:, :6]


class TestPlacementIndependence:
    @pytest.mark.parametrize("name", ("block", "rptree"))
    def test_recall_parity_under_any_partitioner(self, small_dense,
                                                 hash_reference, exact_knn,
                                                 name):
        part = make_partitioner(name, len(small_dense), 4,
                                data=small_dense, seed=1)
        result = DNND(small_dense, config(),
                      cluster=ClusterConfig(nodes=2, procs_per_node=2),
                      partitioner=part).build()
        got = _recall(result.graph.ids, exact_knn)
        ref = _recall(hash_reference.graph.ids, exact_knn)
        assert abs(got - ref) <= 0.005

    def test_partitioner_gauges_published(self, small_dense):
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        gauges = dnnd.metrics.snapshot()["gauges"]
        assert gauges["partition.imbalance"] >= 1.0
        assert 0.0 <= gauges["partition.edge_cut"] <= 1.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delivery_counters_on_every_backend(self, small_dense, backend):
        dnnd = DNND(small_dense, config(backend=backend),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        counters = dnnd.metrics.snapshot()["counters"]
        assert counters["comm.local_deliveries"] > 0
        assert counters["comm.remote_deliveries"] > 0

    def test_rptree_cuts_traffic_on_clustered_data(self, small_dense):
        """The tentpole claim: locality-aware placement means fewer
        remote deliveries and a lower edge cut than hashing."""
        cluster = ClusterConfig(nodes=2, procs_per_node=2)
        stats = {}
        for name in ("hash", "rptree"):
            part = make_partitioner(name, len(small_dense), 4,
                                    data=small_dense, seed=1)
            dnnd = DNND(small_dense, config(), cluster=cluster,
                        partitioner=part)
            dnnd.build()
            snap = dnnd.metrics.snapshot()
            stats[name] = (snap["counters"]["comm.remote_deliveries"],
                           snap["gauges"]["partition.edge_cut"])
        assert stats["rptree"][0] < stats["hash"][0]
        assert stats["rptree"][1] < stats["hash"][1]


class TestRepartition:
    @pytest.mark.parametrize("backend", ("sim", "process"))
    def test_repartition_reduces_edge_cut(self, small_dense, backend):
        dnnd = DNND(small_dense, config(backend=backend),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        result = dnnd.build()
        before = dnnd.metrics.snapshot()["gauges"]["partition.edge_cut"]
        graph = dnnd.repartition()
        after = dnnd.metrics.snapshot()["gauges"]["partition.edge_cut"]
        assert after < before
        # Re-homing moves rows, not edges: the graph itself is unchanged.
        np.testing.assert_array_equal(graph.ids, result.graph.ids)
        assert dnnd.partitioner.kind == "explicit"
        assert dnnd.partitioner.source == "repartition"

    def test_repartition_with_explicit_override(self, tiny_dense):
        dnnd = DNND(tiny_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        override = ExplicitPartitioner(
            np.arange(len(tiny_dense)) % 4, 4, source="custom")
        dnnd.repartition(override)
        assert dnnd.partitioner is override

    def test_repartition_rejects_mismatched_override(self, tiny_dense):
        dnnd = DNND(tiny_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        with pytest.raises(ConfigError):
            dnnd.repartition(HashPartitioner(len(tiny_dense) + 1, 4))
        with pytest.raises(ConfigError):
            dnnd.repartition(HashPartitioner(len(tiny_dense), 8))

    def test_repartition_requires_built(self, tiny_dense):
        dnnd = DNND(tiny_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        with pytest.raises(RuntimeStateError):
            dnnd.repartition()

    def test_optimize_after_repartition(self, tiny_dense):
        """The instance stays fully usable after re-homing."""
        dnnd = DNND(tiny_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        dnnd.repartition()
        adjacency = dnnd.optimize()
        adjacency.validate()


class TestCheckpointPartitionerRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip(self, small_dense, tmp_path, backend):
        """A checkpoint written under any partitioner resumes under the
        same ownership — on every backend."""
        ckpt = tmp_path / f"ckpt_{backend}"
        part = make_partitioner("block", len(small_dense), 4,
                                data=small_dense, seed=1)
        partial = DNND(small_dense, config(backend=backend, max_iters=2),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2),
                       partitioner=part)
        partial.build(checkpoint_path=ckpt, checkpoint_every=1)

        resumed = DNND.resume(
            small_dense, ckpt,
            cluster=ClusterConfig(nodes=2, procs_per_node=2),
            backend=backend, workers=2 if backend != "sim" else 0,
            partitioner="block")
        assert resumed.dnnd.partitioner.kind == "block"

    def test_rptree_persists_as_explicit(self, small_dense, tmp_path):
        """rptree serializes to its explicit table: the resumed run
        reuses the *same assignment* without rebuilding the tree."""
        ckpt = tmp_path / "ckpt_rptree"
        part = make_partitioner("rptree", len(small_dense), 4,
                                data=small_dense, seed=1)
        partial = DNND(small_dense, config(max_iters=2),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2),
                       partitioner=part)
        partial.build(checkpoint_path=ckpt, checkpoint_every=1)

        resumed = DNND.resume(small_dense, ckpt,
                              cluster=ClusterConfig(nodes=2, procs_per_node=2),
                              partitioner="rptree")
        restored = resumed.dnnd.partitioner
        assert restored.kind == "explicit"
        assert restored.source == "rptree"
        np.testing.assert_array_equal(
            restored.owner_array(np.arange(len(small_dense))),
            part.owner_array(np.arange(len(small_dense))))

    def test_resume_conflicting_partitioner_rejected(self, small_dense,
                                                     tmp_path):
        ckpt = tmp_path / "ckpt_conflict"
        partial = DNND(small_dense, config(max_iters=2),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2),
                       partitioner=BlockPartitioner(len(small_dense), 4))
        partial.build(checkpoint_path=ckpt, checkpoint_every=1)
        with pytest.raises(ConfigError, match="partitioner"):
            DNND.resume(small_dense, ckpt,
                        cluster=ClusterConfig(nodes=2, procs_per_node=2),
                        partitioner="rptree")

    def test_legacy_checkpoint_assumed_hash(self, small_dense, tmp_path):
        """Checkpoints from before the partitioner spec resume as hash;
        asserting anything else is a conflict."""
        from repro.runtime.metall import MetallStore

        ckpt = tmp_path / "ckpt_legacy"
        partial = DNND(small_dense, config(max_iters=2),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2))
        partial.build(checkpoint_path=ckpt, checkpoint_every=1)
        with MetallStore.open(ckpt) as store:
            meta = dict(store["ckpt_meta"])
            del meta["partitioner"]
            store["ckpt_meta"] = meta

        resumed = DNND.resume(small_dense, ckpt,
                              cluster=ClusterConfig(nodes=2, procs_per_node=2),
                              partitioner="hash")
        assert resumed.dnnd.partitioner.kind == "hash"
        with pytest.raises(ConfigError, match="partitioner"):
            DNND.resume(small_dense, ckpt,
                        cluster=ClusterConfig(nodes=2, procs_per_node=2),
                        partitioner="block")

    def test_explicit_checkpoint_pins_world_size(self, small_dense,
                                                 tmp_path):
        """Parametric partitioners reshape with the cluster; explicit
        tables cannot, so resuming on a new shape must fail loudly."""
        ckpt = tmp_path / "ckpt_pinned"
        part = make_partitioner("rptree", len(small_dense), 4,
                                data=small_dense, seed=1)
        partial = DNND(small_dense, config(max_iters=2),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2),
                       partitioner=part)
        partial.build(checkpoint_path=ckpt, checkpoint_every=1)
        with pytest.raises(ConfigError, match="ranks"):
            DNND.resume(small_dense, ckpt,
                        cluster=ClusterConfig(nodes=4, procs_per_node=2))


class TestSearcherIntegration:
    def test_searcher_accepts_repartitioned_ownership(self, small_dense):
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        dnnd.repartition()
        adjacency = dnnd.optimize()
        searcher = DistributedKNNGraphSearcher(
            adjacency, small_dense, metric="sqeuclidean",
            cluster=ClusterConfig(nodes=2, procs_per_node=2),
            partitioner=dnnd.partitioner)
        ids, _dists, _stats = searcher.query_batch(small_dense[:4], l=10)
        assert ids.shape[0] == 4
        searcher.close()

    def test_searcher_rejects_mismatched_partitioner(self, small_dense):
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build()
        adjacency = dnnd.optimize()
        with pytest.raises(ConfigError):
            DistributedKNNGraphSearcher(
                adjacency, small_dense, metric="sqeuclidean",
                cluster=ClusterConfig(nodes=2, procs_per_node=2),
                partitioner=HashPartitioner(len(small_dense), 8))


class TestEdgeCutAccounting:
    def test_edge_cut_matches_gauge(self, small_dense):
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        result = dnnd.build()
        gauge = dnnd.metrics.snapshot()["gauges"]["partition.edge_cut"]
        direct = edge_cut_fraction(dnnd.partitioner, result.graph.ids)
        assert gauge == pytest.approx(direct)
