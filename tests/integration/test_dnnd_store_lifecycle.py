"""The paper's two-executable lifecycle through the Metall store
(Sections 4.6 / 5.1.3): build+persist, then reopen+optimize+query."""

import numpy as np
import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    KNNGraph,
    KNNGraphSearcher,
    MetallStore,
    NNDescentConfig,
    optimize_from_store,
)
from repro.core.graph import AdjacencyGraph


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "dnnd_store"


def build_into_store(data, store_path, k=5, seed=3):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=k, seed=seed))
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
    return dnnd.build(store_path=store_path)


class TestConstructionExecutable:
    def test_store_created_with_graph_and_dataset(self, small_dense, store_path):
        res = build_into_store(small_dense, store_path)
        assert MetallStore.exists(store_path)
        with MetallStore.open_read_only(store_path) as store:
            assert "graph" in store and "dataset" in store and "meta" in store
            graph = KNNGraph.from_arrays(store["graph"])
            np.testing.assert_array_equal(graph.ids, res.graph.ids)
            assert store["meta"]["k"] == 5
            assert store["meta"]["n"] == len(small_dense)

    def test_dataset_roundtrip(self, small_dense, store_path):
        build_into_store(small_dense, store_path)
        with MetallStore.open_read_only(store_path) as store:
            np.testing.assert_array_equal(np.asarray(store["dataset"]), small_dense)

    def test_sparse_dataset_persisted(self, sparse_sets, store_path):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4, metric="jaccard", seed=3))
        dnnd = DNND(sparse_sets, cfg, cluster=ClusterConfig(nodes=1, procs_per_node=2))
        dnnd.build(store_path=store_path)
        with MetallStore.open_read_only(store_path) as store:
            records = store["dataset"]
            assert len(records) == len(sparse_sets)
            np.testing.assert_array_equal(records[0], sparse_sets[0])


class TestOptimizationExecutable:
    def test_optimize_from_store(self, small_dense, store_path):
        build_into_store(small_dense, store_path)
        adjacency = optimize_from_store(store_path)
        assert isinstance(adjacency, AdjacencyGraph)
        adjacency.validate()
        assert adjacency.degrees().max() <= int(np.ceil(5 * 1.5))

    def test_optimized_graph_persisted_back(self, small_dense, store_path):
        build_into_store(small_dense, store_path)
        optimize_from_store(store_path)
        with MetallStore.open_read_only(store_path) as store:
            assert "optimized_graph" in store
            assert store["meta"]["optimized"] is True

    def test_custom_pruning_factor(self, small_dense, store_path):
        build_into_store(small_dense, store_path)
        adjacency = optimize_from_store(store_path, pruning_factor=1.0)
        assert adjacency.degrees().max() <= 5

    def test_missing_store_raises(self, tmp_path):
        from repro.errors import StoreError
        with pytest.raises(StoreError):
            optimize_from_store(tmp_path / "ghost")


class TestQueryAfterReopen:
    def test_full_pipeline(self, small_dense, store_path):
        """Construct -> persist -> reopen -> optimize -> query: the full
        workflow of Section 5.1.3's two executables plus the query
        program."""
        build_into_store(small_dense, store_path)
        optimize_from_store(store_path)
        with MetallStore.open_read_only(store_path) as store:
            adjacency = AdjacencyGraph.from_arrays(store["optimized_graph"])
            dataset = np.asarray(store["dataset"])
            metric = store["meta"]["metric"]
        searcher = KNNGraphSearcher(adjacency, dataset, metric=metric, seed=0)
        # The clustered fixture's exact graph is disconnected across
        # clusters, so use enough entry points to land in the query's
        # component (Section 3.3 starts from l random points).
        res = searcher.query(dataset[7], l=20, epsilon=0.2)
        assert 7 in res.ids
