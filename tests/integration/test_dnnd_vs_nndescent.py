"""Distributed vs shared-memory NN-Descent agreement.

The two implementations use different RNG streams so graphs are not
bit-identical, but both must converge to near-exact graphs of the same
quality on the same data — the core correctness claim for the
distributed port.
"""

import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    NNDescent,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
    optimize_graph,
)
from repro.core.optimization import optimize_graph as shared_optimize


@pytest.fixture(scope="module")
def results(small_dense):
    nnd_cfg = NNDescentConfig(k=6, seed=17)
    shared = NNDescent(small_dense, nnd_cfg).build()
    dnnd = DNND(small_dense, DNNDConfig(nnd=nnd_cfg),
                cluster=ClusterConfig(nodes=2, procs_per_node=2))
    dist = dnnd.build()
    truth = brute_force_knn_graph(small_dense, k=6)
    return shared, dist, truth, dnnd


class TestQualityAgreement:
    def test_both_high_recall(self, results):
        shared, dist, truth, _ = results
        r_shared = graph_recall(shared.graph, truth)
        r_dist = graph_recall(dist.graph, truth)
        assert r_shared > 0.93
        assert r_dist > 0.93

    def test_recall_gap_small(self, results):
        shared, dist, truth, _ = results
        gap = abs(graph_recall(shared.graph, truth) - graph_recall(dist.graph, truth))
        assert gap < 0.05

    def test_iteration_counts_similar(self, results):
        shared, dist, _, _ = results
        assert abs(shared.iterations - dist.iterations) <= 3

    def test_edge_overlap_substantial(self, results):
        shared, dist, _, _ = results
        e_shared = shared.graph.edge_set()
        e_dist = dist.graph.edge_set()
        overlap = len(e_shared & e_dist) / len(e_shared)
        assert overlap > 0.85


class TestOptimizeAgreement:
    def test_distributed_optimize_matches_shared_reference(self, results):
        """The distributed reverse-merge + prune must produce exactly the
        same adjacency as the shared-memory reference applied to the same
        input graph."""
        _, dist, _, dnnd = results
        distributed_adj = dnnd.optimize()
        reference_adj = shared_optimize(dist.graph, pruning_factor=1.5)
        assert distributed_adj.edge_set() == reference_adj.edge_set()
        import numpy as np
        np.testing.assert_array_equal(distributed_adj.indptr, reference_adj.indptr)
        np.testing.assert_array_equal(distributed_adj.indices, reference_adj.indices)
        np.testing.assert_allclose(distributed_adj.dists, reference_adj.dists)

    def test_optimized_degree_cap(self, results):
        _, _, _, dnnd = results
        adj = dnnd._last_result.adjacency
        assert adj is not None
        assert adj.degrees().max() <= int(6 * 1.5)
