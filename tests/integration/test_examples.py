"""The shipped examples stay importable and expose a main().

Full example runs take minutes (they are demos, not tests); importing
them catches API drift — every symbol an example uses must still exist
with compatible signatures.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_module(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_at_least_four_examples():
    # Deliverable: quickstart plus >= 3 scenario examples.
    assert len(EXAMPLES) >= 4
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_importable_with_main(name):
    module = load_module(name)
    assert callable(getattr(module, "main", None)), f"{name} lacks main()"


def test_examples_have_docstrings():
    for name in EXAMPLES:
        module = load_module(name)
        assert module.__doc__ and len(module.__doc__) > 40, name
