"""Execution-backend contract: sim vs parallel.

The sim backend is the deterministic cost-modeled default; the parallel
backend must build graphs of equivalent quality (recall@k within ±0.01).
Fault injection, reliable delivery, and recovery work on *both*
backends; only the network cost model remains sim-only and must fail
loudly — not silently no-op — when requested under parallel.
"""

import warnings

import numpy as np
import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.baselines.bruteforce import brute_force_neighbors
from repro.config import CommOptConfig
from repro.core.graph import KNNGraph
from repro.errors import ConfigError
from repro.eval.recall import graph_recall
from repro.runtime.faults import FaultPlan
from repro.runtime.netmodel import NetworkModel

CLUSTER = ClusterConfig(nodes=2, procs_per_node=2)
K = 6


def build(data, backend, workers=0, **dnnd_kwargs):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=K, seed=29),
                     backend=backend, workers=workers)
    dnnd = DNND(data, cfg, cluster=CLUSTER, **dnnd_kwargs)
    try:
        return dnnd.build()
    finally:
        dnnd.close()


class TestRecallParity:
    def test_recall_within_tolerance(self, small_dense):
        ids, dists = brute_force_neighbors(small_dense, small_dense, K,
                                           exclude_self=True)
        truth = KNNGraph(ids, dists)
        r_sim = graph_recall(build(small_dense, "sim").graph, truth)
        r_par = graph_recall(build(small_dense, "parallel", workers=2).graph,
                             truth)
        assert r_sim > 0.85  # sanity: the build worked at all
        assert abs(r_sim - r_par) <= 0.01

    def test_backend_attribute(self, tiny_dense):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4, seed=1), backend="parallel",
                         workers=2)
        dnnd = DNND(tiny_dense, cfg, cluster=CLUSTER)
        assert dnnd.backend == "parallel"
        dnnd.close()


class TestFaultsWorkOnParallel:
    """Fault injection and reliable delivery moved into the transport
    seam: requesting them under the parallel backend builds a real
    graph instead of raising ConfigError."""

    def test_fault_plan_accepted(self, tiny_dense):
        result = build(tiny_dense, "parallel", workers=2, reliable=True,
                       fault_plan=FaultPlan(drop_rate=0.1, seed=1))
        assert result.graph.ids.shape == (len(tiny_dense), K)
        assert result.fault_stats.dropped > 0

    def test_reliable_accepted(self, tiny_dense):
        result = build(tiny_dense, "parallel", workers=2, reliable=True)
        assert result.graph.ids.shape == (len(tiny_dense), K)


class TestSimOnlyNetModel:
    """The network cost model is the one remaining sim-only feature:
    it needs the deterministic cost ledger the thread pool cannot keep."""

    def test_net_model_rejected(self, tiny_dense):
        with pytest.raises(ConfigError, match="sim"):
            build(tiny_dense, "parallel", net=NetworkModel())

    def test_env_parallel_with_net_falls_back(self, tiny_dense,
                                              monkeypatch):
        """When parallel comes from REPRO_BACKEND (not explicit config),
        the cost model wins: the build runs on sim, warns audibly, and
        records the downgrade in the metrics."""
        monkeypatch.setenv("REPRO_BACKEND", "parallel")
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4, seed=1))
        with pytest.warns(RuntimeWarning, match="downgraded"):
            dnnd = DNND(tiny_dense, cfg, cluster=CLUSTER,
                        net=NetworkModel())
        assert dnnd.backend == "sim"
        snap = dnnd.metrics.snapshot()
        assert snap["counters"]["backend.fallbacks"] == 1
        dnnd.close()

    def test_no_warning_without_fallback(self, tiny_dense):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dnnd = DNND(tiny_dense,
                        DNNDConfig(nnd=NNDescentConfig(k=4, seed=1)),
                        cluster=CLUSTER)
        assert dnnd.metrics.snapshot()["counters"]["backend.fallbacks"] == 0
        dnnd.close()


class TestSimOnlyFeaturesOnProcess:
    """Sim-only features under the process backend: explicit requests
    fail loudly, environment-selected requests fall back to sim with a
    warning and a ``backend.fallbacks`` record — the same contract the
    parallel backend keeps for the cost model.  Crash plans are *not*
    sim-only: the process world kills the owning worker natively."""

    @pytest.mark.parametrize("kwargs", [
        dict(net=NetworkModel()),
        dict(reliable=True),
        dict(fault_plan=FaultPlan(drop_rate=0.1, seed=1)),
    ], ids=("net", "reliable", "drop-plan"))
    def test_explicit_process_rejected(self, tiny_dense, kwargs):
        with pytest.raises(ConfigError, match="sim"):
            build(tiny_dense, "process", workers=2, **kwargs)

    def test_env_process_with_sim_only_falls_back(self, tiny_dense,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4, seed=1))
        with pytest.warns(RuntimeWarning, match="downgraded"):
            dnnd = DNND(tiny_dense, cfg, cluster=CLUSTER, reliable=True)
        assert dnnd.backend == "sim"
        snap = dnnd.metrics.snapshot()
        assert snap["counters"]["backend.fallbacks"] == 1
        dnnd.close()

    def test_env_process_without_blockers_sticks(self, tiny_dense,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dnnd = DNND(tiny_dense,
                        DNNDConfig(nnd=NNDescentConfig(k=4, seed=1)),
                        cluster=CLUSTER)
        assert dnnd.backend == "process"
        assert dnnd.metrics.snapshot()["counters"]["backend.fallbacks"] == 0
        dnnd.close()

    def test_crash_plan_accepted_natively(self, tiny_dense):
        result = build(tiny_dense, "process", workers=4,
                       fault_plan=FaultPlan(crashes=((2, 1),)))
        assert result.graph.ids.shape == (len(tiny_dense), K)
        assert result.fault_stats.crashes == 1


class TestSanitizerUnderParallel:
    def test_sanitized_parallel_build(self, tiny_dense):
        """The ownership sanitizer must find no cross-rank state access
        under the parallel executor (rank confinement is the executor's
        concurrency contract)."""
        result = build(tiny_dense, "parallel", workers=2, sanitize=True)
        assert result.graph.ids.shape == (len(tiny_dense), K)


# Delivery-order-invariant configuration: no redundancy checks or
# pruning bounds read at delivery time, no early termination — under it
# a backend is content-deterministic run to run, which is what the
# checkpoint round-trip needs (workers=1 keeps the parallel schedule
# deterministic on any machine).
ORDER_INVARIANT = dict(
    comm_opts=CommOptConfig(one_sided=True, redundancy_check=False,
                            distance_pruning=False, check_dedup=False),
)


class TestCheckpointRoundTripPerBackend:
    @pytest.mark.parametrize("backend,workers",
                             [("sim", 0), ("parallel", 1), ("process", 2)])
    def test_resume_equals_uninterrupted(self, small_dense, tmp_path,
                                         backend, workers):
        cfg = DNNDConfig(
            nnd=NNDescentConfig(k=K, seed=61, max_iters=6, delta=0.0),
            backend=backend, workers=workers, **ORDER_INVARIANT)

        full = DNND(small_dense, cfg, cluster=CLUSTER)
        reference = full.build()
        full.close()
        assert reference.iterations == 6  # delta=0 disables early stop

        # Interrupt after init + 3 iterations by driving the phases
        # manually (the same crash-simulation idiom as
        # test_checkpoint_resume), then resume under the same backend.
        ckpt = tmp_path / f"ckpt_{backend}"
        partial = DNND(small_dense, cfg, cluster=CLUSTER)
        partial._built = True
        partial._init_phase()
        counts = [partial._iteration(it) for it in range(3)]
        partial._write_checkpoint(ckpt, 3, counts)
        partial.close()

        resumed = DNND.resume(small_dense, ckpt, cluster=CLUSTER,
                              backend=backend, workers=workers)
        assert resumed.iterations == reference.iterations
        assert np.array_equal(resumed.graph.ids, reference.graph.ids)
        assert (resumed.graph.dists.tobytes()
                == reference.graph.dists.tobytes())
