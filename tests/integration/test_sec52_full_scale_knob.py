"""The REPRO_BENCH_SCALE contract: specs scale coherently.

Not a benchmark run — verifies the scaling knob's semantics that
EXPERIMENTS.md's reproducibility note depends on: larger instances of
the same stand-in stay loadable, keep their metric/dtype, and the
search datasets keep producing connected graphs (asserted separately in
test_chain_arrangement at two sizes).
"""

import numpy as np
import pytest

from repro.datasets.ann_benchmarks import PAPER_DATASETS, load_dataset


@pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
def test_scaled_instances_consistent(name):
    spec = PAPER_DATASETS[name]
    small, _ = load_dataset(name, n=100, seed=4)
    large, _ = load_dataset(name, n=300, seed=4)
    assert len(small) == 100 and len(large) == 300
    if spec.sparse:
        assert hasattr(small, "nbytes_of") and hasattr(large, "nbytes_of")
    else:
        assert small.dtype == large.dtype
        assert small.shape[1] == large.shape[1] == spec.dim


def test_scaled_n_helper_monotone():
    spec = PAPER_DATASETS["deep1b"]
    assert spec.scaled_n(0.5) < spec.scaled_n() < spec.scaled_n(2.0)


def test_seed_isolation_across_sizes():
    # Different sizes draw from independent streams (size is a key), so
    # growing an instance is not just a prefix extension — documents the
    # contract explicitly.
    a, _ = load_dataset("deep1b", n=100, seed=4)
    b, _ = load_dataset("deep1b", n=300, seed=4)
    assert not np.array_equal(a, b[:100])
