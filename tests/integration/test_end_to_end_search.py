"""Full pipeline: DNND build -> optimize -> epsilon search -> recall@10.

Mirrors the Section 5.3.3 evaluation on a laptop-scale dataset.
"""

import numpy as np
import pytest

from repro import (
    DNND,
    HNSW,
    HNSWConfig,
    ClusterConfig,
    DNNDConfig,
    KNNGraphSearcher,
    NNDescentConfig,
    recall_at_k,
)
from repro.baselines.bruteforce import brute_force_neighbors
from repro.datasets.ann_benchmarks import make_benchmark_dataset
from repro.eval.qps import QueryBenchmark, sweep_ef, sweep_epsilon


@pytest.fixture(scope="module")
def pipeline():
    train, queries, gt_ids, spec = make_benchmark_dataset(
        "deep1b", n=600, n_queries=40, k_gt=10, seed=2)
    cfg = DNNDConfig(nnd=NNDescentConfig(k=10, metric=spec.metric, seed=2))
    dnnd = DNND(train, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
    dnnd.build()
    adjacency = dnnd.optimize()
    searcher = KNNGraphSearcher(adjacency, train, metric=spec.metric, seed=0)
    return train, queries, gt_ids, spec, searcher


class TestRecallAtTen:
    def test_recall_high_at_moderate_epsilon(self, pipeline):
        _, queries, gt_ids, _, searcher = pipeline
        ids, _, _ = searcher.query_batch(queries, l=10, epsilon=0.2)
        assert recall_at_k(ids, gt_ids) > 0.85

    def test_epsilon_tradeoff_monotone_in_work(self, pipeline):
        _, queries, gt_ids, _, searcher = pipeline
        bench = QueryBenchmark(queries=queries, gt_ids=gt_ids, k=10)
        points = sweep_epsilon(searcher, bench, "k10", epsilons=[0.0, 0.2, 0.4])
        evals = [p.mean_distance_evals for p in points]
        assert evals == sorted(evals)

    def test_queries_visit_small_fraction(self, pipeline):
        train, queries, _, _, searcher = pipeline
        res = searcher.query(queries[0], l=10, epsilon=0.1)
        assert res.n_visited < len(train) * 0.6


class TestAgainstHNSW:
    def test_both_reach_high_recall(self, pipeline):
        train, queries, gt_ids, spec, searcher = pipeline
        index = HNSW(train, HNSWConfig(M=12, ef_construction=80, seed=0),
                     metric=spec.metric).build()
        bench = QueryBenchmark(queries=queries, gt_ids=gt_ids, k=10)
        dnnd_pts = sweep_epsilon(searcher, bench, "dnnd", epsilons=[0.3])
        hnsw_pts = sweep_ef(index, bench, "hnsw", efs=[100])
        assert dnnd_pts[0].recall > 0.85
        assert hnsw_pts[0].recall > 0.85


class TestQueriesNotInDataset:
    def test_held_out_queries(self, pipeline):
        # Queries were split out before building: true ANN generalization.
        train, queries, gt_ids, _, searcher = pipeline
        ids, dists, _ = searcher.query_batch(queries[:10], l=10, epsilon=0.3)
        want, _ = brute_force_neighbors(train, queries[:10], k=10)
        assert recall_at_k(ids, want) > 0.8
        # Distances ascending per row.
        finite = np.isfinite(dists)
        for row in range(10):
            d = dists[row][finite[row]]
            assert (np.diff(d) >= 0).all()
