"""Checkpoint/resume of in-progress DNND builds.

The defining property: because every random draw is keyed by
(seed, phase, iteration, ...) rather than consumed from a stream, a
build checkpointed at iteration i and resumed later produces the
*bit-identical* final graph of an uninterrupted run.
"""

import numpy as np
import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    MetallStore,
    NNDescentConfig,
)
from repro.errors import CheckpointCorruptError, ConfigError


def config(k=6, seed=43, max_iters=30):
    return DNNDConfig(nnd=NNDescentConfig(k=k, seed=seed, max_iters=max_iters))


@pytest.fixture(scope="module")
def reference(small_dense):
    dnnd = DNND(small_dense, config(),
                cluster=ClusterConfig(nodes=2, procs_per_node=2))
    return dnnd.build()


class TestCheckpointWrite:
    def test_checkpoint_created(self, small_dense, tmp_path):
        ckpt = tmp_path / "ckpt"
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        assert MetallStore.exists(ckpt)
        with MetallStore.open_read_only(ckpt) as store:
            meta = store["ckpt_meta"]
            assert meta["n"] == len(small_dense)
            assert meta["iteration"] >= 1
            assert np.asarray(store["ckpt_ids"]).shape == (len(small_dense), 6)

    def test_checkpoint_every_requires_path(self, small_dense):
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=1, procs_per_node=2))
        with pytest.raises(ConfigError):
            dnnd.build(checkpoint_every=2)

    def test_no_checkpoint_by_default(self, small_dense, tmp_path):
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=1, procs_per_node=2))
        dnnd.build()
        assert not any(tmp_path.iterdir())


class TestResume:
    def test_resumed_build_identical(self, small_dense, tmp_path, reference):
        """Interrupt after 2 iterations (max_iters=2), then resume: the
        final graph must equal the uninterrupted reference exactly."""
        ckpt = tmp_path / "ckpt"
        partial = DNND(small_dense, config(max_iters=2),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2))
        partial_result = partial.build(checkpoint_path=ckpt, checkpoint_every=1)
        assert not partial_result.converged  # genuinely interrupted

        resumed = DNND.resume(small_dense, ckpt,
                              cluster=ClusterConfig(nodes=2, procs_per_node=2))
        # The checkpoint stored max_iters=2; the resumed run stops at
        # max_iters again, so continue from a reference-config checkpoint
        # instead for the identity check below.
        assert resumed.iterations == 2

    def test_identity_with_full_config(self, small_dense, tmp_path, reference):
        ckpt = tmp_path / "ckpt_full"
        # Same config as the reference, checkpoint every iteration, but
        # stop the *driver* after the checkpoint of iteration 2 by
        # simulating a crash: run the full build (it checkpoints along
        # the way), then resume from the *iteration-2* state by editing
        # nothing — instead run a fresh partial driver.
        partial = DNND(small_dense, config(),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2))
        # Drive only init + 2 iterations manually, with checkpoints.
        partial._built = True
        partial._init_phase()
        counts = []
        for it in range(2):
            counts.append(partial._iteration(it))
        partial._write_checkpoint(ckpt, 2, counts)

        resumed = DNND.resume(small_dense, ckpt,
                              cluster=ClusterConfig(nodes=2, procs_per_node=2))
        assert resumed.converged == reference.converged
        assert resumed.iterations == reference.iterations
        np.testing.assert_array_equal(resumed.graph.ids, reference.graph.ids)
        np.testing.assert_allclose(resumed.graph.dists, reference.graph.dists)

    def test_resume_on_different_cluster_shape(self, small_dense, tmp_path,
                                               reference):
        """Hash partitioning is layout-independent: resuming on a
        different rank count still yields the identical graph."""
        ckpt = tmp_path / "ckpt_shape"
        partial = DNND(small_dense, config(),
                       cluster=ClusterConfig(nodes=2, procs_per_node=2))
        partial._built = True
        partial._init_phase()
        counts = [partial._iteration(0)]
        partial._write_checkpoint(ckpt, 1, counts)

        resumed = DNND.resume(small_dense, ckpt,
                              cluster=ClusterConfig(nodes=4, procs_per_node=2))
        np.testing.assert_array_equal(resumed.graph.ids, reference.graph.ids)

    def test_resume_wrong_dataset_rejected(self, small_dense, tiny_dense,
                                           tmp_path):
        ckpt = tmp_path / "ckpt_wrong"
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=1, procs_per_node=2))
        dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        with pytest.raises(ConfigError):
            DNND.resume(tiny_dense, ckpt)

    def test_resume_perturbed_data_rejected(self, small_dense, tmp_path):
        ckpt = tmp_path / "ckpt_fp"
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=1, procs_per_node=2))
        dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        tampered = small_dense.copy()
        tampered[0, 0] += 5.0
        with pytest.raises(ConfigError):
            DNND.resume(tampered, ckpt)

    def test_resume_exposes_dnnd_handle(self, small_dense, tmp_path):
        ckpt = tmp_path / "ckpt_handle"
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=1, procs_per_node=2))
        dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        resumed = DNND.resume(small_dense, ckpt,
                              cluster=ClusterConfig(nodes=1, procs_per_node=2))
        assert resumed.dnnd is not None
        adjacency = resumed.dnnd.optimize()
        adjacency.validate()


class TestCheckpointCorruption:
    """Hardened checkpoint I/O: a damaged checkpoint must surface as
    CheckpointCorruptError from resume and from crash recovery — never
    restore garbage, never crash on a parse error."""

    def _write_checkpoint(self, small_dense, tmp_path):
        ckpt = tmp_path / "ckpt_corrupt"
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        dnnd.close()
        return ckpt

    def _flip_tail_byte(self, ckpt):
        victim = sorted(ckpt.glob("*.npy"))[0]
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))

    def test_resume_rejects_corrupt_checkpoint(self, small_dense, tmp_path):
        ckpt = self._write_checkpoint(small_dense, tmp_path)
        self._flip_tail_byte(ckpt)
        with pytest.raises(CheckpointCorruptError, match="resume"):
            DNND.resume(small_dense, ckpt,
                        cluster=ClusterConfig(nodes=2, procs_per_node=2))

    def test_recovery_rejects_corrupt_checkpoint(self, small_dense,
                                                 tmp_path):
        """A crash whose checkpoint was damaged while the build ran:
        the supervisor must report corruption, not restore it."""
        from repro import FaultPlan

        ckpt = tmp_path / "ckpt_crash_corrupt"
        dnnd = DNND(small_dense, config(),
                    cluster=ClusterConfig(nodes=2, procs_per_node=2),
                    fault_plan=FaultPlan().with_crash(rank=1, at_iteration=2))
        orig = dnnd._write_checkpoint

        def write_then_damage(path, iteration, counts):
            orig(path, iteration, counts)
            self._flip_tail_byte(ckpt)

        dnnd._write_checkpoint = write_then_damage
        with pytest.raises(CheckpointCorruptError, match="recovery"):
            dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)

    def test_corruption_error_is_config_distinct(self):
        """CheckpointCorruptError chains from the store layer and is not
        a ConfigError: callers distinguish bad input from bad state."""
        assert not issubclass(CheckpointCorruptError, ConfigError)
