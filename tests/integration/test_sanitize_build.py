"""A sanitized DNND build must be bit-identical to an unsanitized one —
the sanitizer observes, it never perturbs (same regression contract as
the fault injector)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, DNNDConfig, NNDescentConfig
from repro.core.dist_search import DistributedKNNGraphSearcher
from repro.core.dnnd import DNND


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.standard_normal((150, 8))


def _cfg():
    return DNNDConfig(nnd=NNDescentConfig(k=6, seed=3, max_iters=4))


def _cluster():
    return ClusterConfig(nodes=2, procs_per_node=2)


def test_sanitized_build_bit_identical(data):
    # sanitize is pinned on both sides so the comparison holds even when
    # the suite itself runs under REPRO_SANITIZE=1 (the CI sanitize job).
    d_off = DNND(data, _cfg(), cluster=_cluster(), sanitize=False)
    d_on = DNND(data, _cfg(), cluster=_cluster(), sanitize=True)
    r_off = d_off.build()
    r_on = d_on.build()

    assert np.array_equal(r_off.graph.ids, r_on.graph.ids)
    assert np.array_equal(r_off.graph.dists, r_on.graph.dists)
    assert r_off.sim_seconds == r_on.sim_seconds
    assert r_off.message_stats.snapshot() == r_on.message_stats.snapshot()
    assert r_off.update_counts == r_on.update_counts
    assert r_off.distance_evals == r_on.distance_evals

    adj_off = d_off.optimize()
    adj_on = d_on.optimize()
    for key in ("indptr", "indices", "dists"):
        assert np.array_equal(adj_off.to_arrays()[key],
                              adj_on.to_arrays()[key])
    # A clean run records zero violations.
    assert d_on.world.sanitizer.violations == 0


def test_zero_overhead_structures_when_off(data):
    d = DNND(data, _cfg(), cluster=_cluster(), sanitize=False)
    assert d.world.sanitizer is None
    for ctx in d.world.ranks:
        assert type(ctx.state) is dict
        shard = ctx.state["shard"]
        assert all(h._san is None for h in shard.heaps)


def test_sanitized_distributed_search_matches(data):
    base = DNND(data, _cfg(), cluster=_cluster())
    base.build()
    adjacency = base.optimize()

    s_off = DistributedKNNGraphSearcher(adjacency, data, seed=7,
                                        sanitize=False)
    s_on = DistributedKNNGraphSearcher(adjacency, data, seed=7,
                                       sanitize=True)
    q = data[11]
    r_off = s_off.query(q, l=5)
    r_on = s_on.query(q, l=5)
    assert np.array_equal(r_off.ids, r_on.ids)
    assert np.array_equal(r_off.dists, r_on.dists)
    assert s_on.world.sanitizer.violations == 0


def test_env_var_enables_for_whole_build(data, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    d = DNND(data, _cfg(), cluster=_cluster())
    assert d.world.sanitizer is not None
    result = d.build()
    assert result.converged or result.iterations == 4
    assert d.world.sanitizer.violations == 0
