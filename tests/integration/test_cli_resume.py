"""CLI checkpoint / resume workflow."""


from repro.cli import main
from repro.runtime.metall import MetallStore


class TestCheckpointFlag:
    def test_construct_with_checkpoint(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        rc = main(["construct", "--dataset", "deep1b", "--n", "256",
                   "--k", "5", "--nodes", "2", "--store",
                   str(tmp_path / "idx"), "--checkpoint", ckpt,
                   "--checkpoint-every", "1"])
        assert rc == 0
        assert MetallStore.exists(ckpt)

    def test_checkpoint_every_without_path_errors(self, tmp_path, capsys):
        rc = main(["construct", "--dataset", "deep1b", "--n", "256",
                   "--k", "5", "--nodes", "2",
                   "--store", str(tmp_path / "idx"),
                   "--checkpoint-every", "1"])
        assert rc == 1
        assert "checkpoint" in capsys.readouterr().err


class TestResumeCommand:
    def test_resume_completes_and_persists(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        main(["construct", "--dataset", "deep1b", "--n", "256", "--k", "5",
              "--nodes", "2", "--store", str(tmp_path / "idx1"),
              "--checkpoint", ckpt, "--checkpoint-every", "1"])
        capsys.readouterr()
        rc = main(["resume", "--dataset", "deep1b", "--n", "256",
                   "--checkpoint", ckpt, "--nodes", "2",
                   "--store", str(tmp_path / "idx2")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed build finished" in out
        assert MetallStore.exists(tmp_path / "idx2")
        # The resumed store is queryable end to end.
        assert main(["optimize", "--store", str(tmp_path / "idx2")]) == 0
        assert main(["query", "--store", str(tmp_path / "idx2"),
                     "--n-queries", "10"]) == 0

    def test_resume_wrong_seed_rejected(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        main(["construct", "--dataset", "deep1b", "--n", "256", "--k", "5",
              "--nodes", "2", "--store", str(tmp_path / "idx"),
              "--checkpoint", ckpt, "--checkpoint-every", "1"])
        rc = main(["resume", "--dataset", "deep1b", "--n", "256",
                   "--seed", "999", "--checkpoint", ckpt])
        assert rc == 1
        assert "fingerprint" in capsys.readouterr().err

    def test_resume_missing_checkpoint(self, tmp_path, capsys):
        rc = main(["resume", "--dataset", "deep1b", "--n", "256",
                   "--checkpoint", str(tmp_path / "ghost")])
        assert rc == 1
