"""Distributed containers composed with a live DNND world.

The real YGM applications mix algorithm handlers with container
handlers on one communicator; this test does the same: after a DNND
build, a DistributedCounter on the *same world* aggregates the built
graph's reverse-degree distribution across ranks.
"""

import numpy as np
import pytest

from repro import ClusterConfig, DNND, DNNDConfig, NNDescentConfig
from repro.core.dnnd_phases import shard_of
from repro.runtime.containers import DistributedCounter


@pytest.fixture(scope="module")
def built(small_dense):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=6, seed=91))
    dnnd = DNND(small_dense, cfg,
                cluster=ClusterConfig(nodes=2, procs_per_node=2))
    result = dnnd.build()
    return dnnd, result


class TestCounterOnDnndWorld:
    def test_reverse_degree_histogram(self, built, small_dense):
        dnnd, result = built
        counter = DistributedCounter(dnnd.world, "rev_degree")
        # Each rank contributes one async_add per outgoing edge it owns,
        # keyed by the edge target — the reverse-degree count.
        for ctx in dnnd.world.ranks:
            shard = shard_of(ctx)
            for li in range(shard.n_local):
                for u, _d, _f in shard.heaps[li].entries():
                    counter.async_add(ctx.rank, int(u))
        dnnd.world.barrier()
        # Totals must equal the edge count of the gathered graph...
        n_edges = len(result.graph.edge_set())
        assert counter.total() == n_edges
        # ...and per-key counts must match the true reverse degrees.
        rev = np.zeros(len(small_dense), dtype=int)
        for _v, u in result.graph.edge_set():
            rev[u] += 1
        for vid in range(0, len(small_dense), 37):
            assert counter.count_of(vid) == rev[vid]

    def test_top_k_matches_numpy(self, built, small_dense):
        dnnd, result = built
        counter = DistributedCounter(dnnd.world, "rev_degree2")
        for ctx in dnnd.world.ranks:
            shard = shard_of(ctx)
            for li in range(shard.n_local):
                for u, _d, _f in shard.heaps[li].entries():
                    counter.async_add(ctx.rank, int(u))
        dnnd.world.barrier()
        rev = np.zeros(len(small_dense), dtype=int)
        for _v, u in result.graph.edge_set():
            rev[u] += 1
        top = counter.top_k(3)
        assert top[0][1] == rev.max()
