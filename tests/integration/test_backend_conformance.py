"""Cross-backend conformance: sim, parallel, and process must agree.

The observability contract (DESIGN.md §12): all execution backends
emit the *same metric names*, and the order-insensitive subset — message
counts and bytes by type, heap update attempts, distance evaluations,
handler invocations, collective calls — must be *value-identical* for a
delivery-order-invariant configuration.  That envelope is the
unoptimized communication pattern with early termination disabled
(``delta=0``, fixed iteration count): no redundancy check or distance
pruning whose outcome depends on message arrival order.

Scheduling-dependent quantities are deliberately outside the contract
and excluded here: ``comm.flushes`` / ``comm.barriers`` (the backends
structure supersteps differently), ``executor.dispatches`` (a
scheduling detail), ``heap.updates.accepted`` (accepted pushes depend
on arrival order even when the converged graph does not).

The kernel axis (``REPRO_KERNEL``, DESIGN.md §17): under the default
``rowwise`` kernel every distance is a pure per-row function, so the
full bit-identity contract above applies.  Under ``blocked`` the
kernels compute in the native input dtype (float32 here), which
quantizes distances coarsely enough that *exact ties* occur; tie
acceptance depends on message arrival order, so backends with
scheduling freedom may legitimately diverge on tied candidates.  The
contract weakens exactly as the issue specifies: neighbor-set overlap
and end-to-end recall must agree within 0.005, and the order-invariant
counters within a matching envelope, instead of bit-for-bit.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.baselines.bruteforce import brute_force_neighbors
from repro.config import CommOptConfig
from repro.core.search import KNNGraphSearcher
from repro.eval.recall import recall_at_k
from repro.runtime.partition import make_partitioner

BACKENDS = ("sim", "parallel", "process")

#: The whole suite is partitioner-generic: every backend builds under
#: the same placement, so cross-backend agreement must hold whichever
#: partitioner CI's conformance matrix selects (REPRO_PARTITIONER).
PARTITIONER = os.environ.get("REPRO_PARTITIONER", "hash")

#: Kernel axis of the CI matrix: "rowwise" (default) keeps the strict
#: bit-identity contract; "blocked" weakens the order-sensitive
#: assertions to the recall-parity gate (see module docstring).
KERNEL = os.environ.get("REPRO_KERNEL", "rowwise")
EXACT = KERNEL == "rowwise"

#: Maximum divergence tolerated under the blocked kernel: neighbor-set
#: overlap and recall within 0.005 of sim (the issue's parity gate).
PARITY = 0.005

#: Exact-value conformance set: names (or name prefixes) whose values
#: must be identical across backends in the order-invariant envelope.
CONFORMANT_PREFIXES = ("messages.sent", "messages.bytes",
                       "messages.offnode", "faults.")
CONFORMANT_NAMES = frozenset({
    "bytes.sent",
    "heap.updates",
    "distance.evals",
    "executor.tasks",
    "transport.collectives",
})


def _conformant_counters(counters: dict) -> dict:
    return {name: value for name, value in counters.items()
            if name in CONFORMANT_NAMES
            or name.startswith(CONFORMANT_PREFIXES)}


def _build(data, backend: str):
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=6, rho=0.8, delta=0.0, max_iters=4, seed=3),
        comm_opts=CommOptConfig.unoptimized(),
        batch_size=1 << 12,
        backend=backend,
        kernel=KERNEL,
        workers=4,
    )
    cluster = ClusterConfig(nodes=2, procs_per_node=2)
    dnnd = DNND(data, cfg, cluster=cluster,
                partitioner=make_partitioner(
                    PARTITIONER, len(data), cluster.world_size,
                    data=data, seed=3))
    try:
        return dnnd.build()
    finally:
        # Results (graph, metrics) outlive the build; closing here
        # stops the process backend's workers and unlinks its segment.
        dnnd.close()


@pytest.fixture(scope="module")
def runs(small_dense):
    """One build per backend over identical data and configuration."""
    return {backend: _build(small_dense, backend) for backend in BACKENDS}


@pytest.fixture(scope="module")
def query_set(small_dense):
    """Seeded out-of-sample queries plus their exact ground truth."""
    rng = np.random.default_rng(2026)
    base = small_dense[rng.choice(len(small_dense), size=25, replace=False)]
    queries = base + rng.normal(scale=0.02, size=base.shape).astype(
        small_dense.dtype)
    gt_ids, _ = brute_force_neighbors(small_dense, queries, k=6)
    return queries, gt_ids


def _recall(result, data, query_set) -> float:
    queries, gt_ids = query_set
    searcher = KNNGraphSearcher(result.graph.to_adjacency(), data, seed=7)
    found = np.vstack([searcher.query(q, l=20, epsilon=0.4).ids[:6]
                       for q in queries])
    return recall_at_k(found, gt_ids)


class TestBackendConformance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_final_graph_identical_to_sim(self, runs, backend):
        ref = runs["sim"].graph
        got = runs[backend].graph
        if EXACT:
            np.testing.assert_array_equal(got.ids, ref.ids)
            np.testing.assert_allclose(got.dists, ref.dists, rtol=0, atol=0)
        else:
            # Blocked kernel: float32 distance ties make tied candidates
            # arrival-order dependent; gate neighbor-set overlap instead.
            overlap = np.mean([
                len(set(a) & set(b)) / len(a)
                for a, b in zip(got.ids, ref.ids)])
            assert overlap >= 1.0 - PARITY

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recall_identical_on_seeded_queries(self, runs, small_dense,
                                                query_set, backend):
        ref = _recall(runs["sim"], small_dense, query_set)
        got = _recall(runs[backend], small_dense, query_set)
        if EXACT:
            assert got == ref
        else:
            assert abs(got - ref) <= PARITY
        assert got > 0.8  # the graphs must also be *good*, not just equal

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metric_names_identical(self, runs, backend):
        """Both backends emit the exact same counter name set."""
        ref = set(runs["sim"].metrics.snapshot()["counters"])
        got = set(runs[backend].metrics.snapshot()["counters"])
        assert got == ref

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_order_insensitive_counters_identical(self, runs, backend):
        ref = _conformant_counters(
            runs["sim"].metrics.snapshot()["counters"])
        got = _conformant_counters(
            runs[backend].metrics.snapshot()["counters"])
        if EXACT:
            assert got == ref
        else:
            # Tied-candidate divergence perturbs later iterations'
            # new/old lists, so traffic totals track the parity gate
            # rather than matching exactly.
            assert set(got) == set(ref)
            for name, value in ref.items():
                if value == 0:
                    assert got[name] == 0
                else:
                    assert abs(got[name] - value) / value <= 0.02
        # The set is non-trivial: real traffic flowed through it.
        assert ref["messages.sent"] > 0
        assert ref["heap.updates"] > 0
        assert any(name.startswith("messages.sent.") for name in ref)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_phase_list_identical(self, runs, backend):
        """Same phases, same order, same per-phase span counts."""
        ref = runs["sim"].metrics
        got = runs[backend].metrics
        assert got.phase_names() == ref.phase_names()
        ref_spans = [s.name for s in ref.spans if s.cat == "phase"]
        got_spans = [s.name for s in got.spans if s.cat == "phase"]
        assert got_spans == ref_spans

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_schema_identical(self, runs, backend):
        ref = runs["sim"].metrics.snapshot()
        got = runs[backend].metrics.snapshot()
        assert got["schema"] == ref["schema"]
        assert got["enabled"] and ref["enabled"]

    def test_iterations_and_convergence_match(self, runs):
        ref = runs["sim"]
        for backend in BACKENDS:
            assert runs[backend].iterations == ref.iterations
            assert runs[backend].converged == ref.converged


class TestOptimizedCommGraphs:
    """With the Section 4.3 optimizations on, message *counts* are
    order-dependent (redundancy checks race under the parallel
    backend), but at this scale the converged graph itself still
    matches — pin that weaker, still useful, invariant."""

    @pytest.fixture(scope="class")
    def opt_runs(self, tiny_dense):
        def build(backend):
            cfg = DNNDConfig(
                nnd=NNDescentConfig(k=5, rho=0.8, delta=0.0, max_iters=3,
                                    seed=9),
                comm_opts=CommOptConfig.optimized(),
                backend=backend, workers=4)
            return DNND(tiny_dense, cfg,
                        cluster=ClusterConfig(nodes=2, procs_per_node=2)
                        ).build()
        return {backend: build(backend) for backend in BACKENDS}

    def test_metric_names_still_identical(self, opt_runs):
        ref = set(opt_runs["sim"].metrics.snapshot()["counters"])
        got = set(opt_runs["parallel"].metrics.snapshot()["counters"])
        assert got == ref
