"""Distributed ANN search over a sharded graph."""

import numpy as np
import pytest

from repro import ClusterConfig, brute_force_knn_graph, brute_force_neighbors
from repro.core.dist_search import DistributedKNNGraphSearcher
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import SearchError
from repro.eval.recall import recall_at_k


@pytest.fixture(scope="module")
def setup():
    data = gaussian_mixture(250, 10, n_clusters=5, cluster_std=0.45, seed=61)
    adj = optimize_graph(brute_force_knn_graph(data, k=8), 1.5)
    assert adj.connected_fraction() == 1.0
    return data, adj


@pytest.fixture(scope="module")
def dist_searcher(setup):
    data, adj = setup
    return DistributedKNNGraphSearcher(
        adj, data, cluster=ClusterConfig(nodes=2, procs_per_node=2), seed=0)


class TestCorrectness:
    def test_distances_exact(self, setup, dist_searcher):
        data, _ = setup
        res = dist_searcher.query(data[3], l=5, epsilon=0.2)
        from repro.distances.dense import sqeuclidean
        for vid, d in zip(res.ids, res.dists):
            assert d == pytest.approx(sqeuclidean(data[3], data[int(vid)]))

    def test_results_sorted_distinct(self, setup, dist_searcher):
        data, _ = setup
        res = dist_searcher.query(data[0], l=8, epsilon=0.2)
        assert (np.diff(res.dists) >= 0).all()
        assert len(set(res.ids.tolist())) == len(res.ids)

    def test_self_query(self, setup, dist_searcher):
        data, _ = setup
        res = dist_searcher.query(data[17], l=5, epsilon=0.3)
        assert 17 in res.ids

    def test_recall_comparable_to_shared_memory(self, setup):
        data, adj = setup
        gt_ids, _ = brute_force_neighbors(data, data[:25], k=5)
        shared = KNNGraphSearcher(adj, data, seed=0)
        s_ids, _, _ = shared.query_batch(data[:25], l=5, epsilon=0.3)
        dist = DistributedKNNGraphSearcher(
            adj, data, cluster=ClusterConfig(nodes=2, procs_per_node=2), seed=0)
        d_ids, _, d_stats = dist.query_batch(data[:25], l=5, epsilon=0.3)
        r_shared = recall_at_k(s_ids, gt_ids)
        r_dist = recall_at_k(d_ids, gt_ids)
        assert r_dist > 0.7
        assert r_dist > r_shared - 0.2

    def test_external_query(self, setup, dist_searcher):
        data, _ = setup
        q = data[5] + 0.01
        res = dist_searcher.query(q, l=5, epsilon=0.3)
        assert 5 in res.ids


class TestCommunication:
    def test_messages_instrumented(self, setup):
        data, adj = setup
        s = DistributedKNNGraphSearcher(
            adj, data, cluster=ClusterConfig(nodes=2, procs_per_node=2), seed=1)
        s.query(data[0], l=5, epsilon=0.1)
        stats = s.message_stats
        # expand traffic only for off-rank owners; replies mirror them.
        assert stats.get("expand").count > 0
        assert stats.get("expand_reply").count > 0

    def test_features_never_leave_owner(self, setup):
        """The reply carries ids+distances only, so its per-message size
        must be far below a feature-vector message."""
        data, adj = setup
        s = DistributedKNNGraphSearcher(
            adj, data, cluster=ClusterConfig(nodes=2, procs_per_node=2), seed=2)
        s.query(data[0], l=5, epsilon=0.1)
        reply = s.message_stats.get("expand_reply")
        if reply.count:
            per_msg = reply.bytes / reply.count
            feature_bytes = data.shape[1] * data.dtype.itemsize
            assert per_msg < feature_bytes + 100

    def test_sim_time_advances(self, setup, dist_searcher):
        data, _ = setup
        before = dist_searcher.sim_seconds
        dist_searcher.query(data[1], l=5, epsilon=0.1)
        assert dist_searcher.sim_seconds > before

    def test_visited_bounded(self, setup, dist_searcher):
        data, _ = setup
        res = dist_searcher.query(data[2], l=5, epsilon=0.1)
        assert res.n_visited <= len(data)
        assert res.n_distance_evals > 0


class TestValidation:
    def test_size_mismatch(self, setup):
        data, adj = setup
        with pytest.raises(SearchError):
            DistributedKNNGraphSearcher(adj, data[:10])

    def test_bad_l(self, setup, dist_searcher):
        data, _ = setup
        with pytest.raises(SearchError):
            dist_searcher.query(data[0], l=0)

    def test_bad_epsilon(self, setup, dist_searcher):
        data, _ = setup
        with pytest.raises(SearchError):
            dist_searcher.query(data[0], l=5, epsilon=-1)

    def test_bad_coordinator(self, setup):
        data, adj = setup
        with pytest.raises(SearchError):
            DistributedKNNGraphSearcher(
                adj, data, cluster=ClusterConfig(nodes=1, procs_per_node=2),
                coordinator=5)
