"""Wire-size accounting matches Section 2's byte formulas.

Figure 4's bytes axis is meaningful only if each message type is priced
exactly: ids 4 B, distances 4 B, feature vectors dim * itemsize.  These
tests derive per-message sizes from the instrumented totals and check
them against the formulas.
"""

import pytest

from repro import (
    DNND,
    ClusterConfig,
    CommOptConfig,
    DNNDConfig,
    NNDescentConfig,
)
from repro.datasets.ann_benchmarks import load_dataset
from repro.types import DIST_BYTES, ID_BYTES, feature_bytes


def build(data, comm_opts, k=6, seed=31):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=k, seed=seed), comm_opts=comm_opts)
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
    return dnnd.build()


@pytest.fixture(scope="module")
def float_run(small_dense):
    return small_dense, build(small_dense, CommOptConfig.optimized())


@pytest.fixture(scope="module")
def unopt_run(small_dense):
    return build(small_dense, CommOptConfig.unoptimized())


def per_message(stats, msg_type):
    s = stats.get(msg_type)
    assert s.count > 0, msg_type
    return s.bytes / s.count


class TestOptimizedSizes:
    def test_type1_is_two_ids(self, float_run):
        _, res = float_run
        assert per_message(res.message_stats, "type1") == 2 * ID_BYTES

    def test_type2plus_is_ids_feature_bound(self, float_run):
        data, res = float_run
        fb = feature_bytes(data.shape[1], data.dtype)
        want = 2 * ID_BYTES + fb + DIST_BYTES
        assert per_message(res.message_stats, "type2+") == want

    def test_type3_is_ids_plus_distance(self, float_run):
        _, res = float_run
        assert per_message(res.message_stats, "type3") == 2 * ID_BYTES + DIST_BYTES

    def test_reverse_is_two_ids(self, float_run):
        _, res = float_run
        assert per_message(res.message_stats, "reverse") == 2 * ID_BYTES

    def test_init_request_carries_feature(self, float_run):
        data, res = float_run
        fb = feature_bytes(data.shape[1], data.dtype)
        assert per_message(res.message_stats, "init_req") == 2 * ID_BYTES + fb

    def test_init_response_is_small(self, float_run):
        _, res = float_run
        assert per_message(res.message_stats, "init_resp") == 2 * ID_BYTES + DIST_BYTES


class TestUnoptimizedSizes:
    def test_type2_lacks_the_bound(self, small_dense, unopt_run):
        fb = feature_bytes(small_dense.shape[1], small_dense.dtype)
        # Plain Type 2 (Figure 1a): ids + feature, no attached bound.
        assert per_message(unopt_run.message_stats, "type2") == 2 * ID_BYTES + fb


class TestDtypeDependence:
    def test_uint8_features_shrink_type2(self):
        """BigANN uses uint8: 'BigAnn's message size is smaller than
        DEEP 1B's' (Section 5.3.5)."""
        deep, _ = load_dataset("deep1b", n=300, seed=7)     # 96 x f32
        bigann, _ = load_dataset("bigann", n=300, seed=7)   # 128 x u8
        res_deep = build(deep, CommOptConfig.optimized())
        res_big = build(bigann, CommOptConfig.optimized())
        per_deep = per_message(res_deep.message_stats, "type2+")
        per_big = per_message(res_big.message_stats, "type2+")
        assert per_deep == 2 * ID_BYTES + 96 * 4 + DIST_BYTES
        assert per_big == 2 * ID_BYTES + 128 * 1 + DIST_BYTES
        assert per_big < per_deep

    def test_sparse_records_priced_by_actual_size(self, sparse_sets):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=4, metric="jaccard", seed=31))
        dnnd = DNND(sparse_sets, cfg,
                    cluster=ClusterConfig(nodes=2, procs_per_node=2))
        res = dnnd.build()
        s = res.message_stats.get("type2+")
        if s.count:
            mean_payload = s.bytes / s.count - 2 * ID_BYTES - DIST_BYTES
            expected = sparse_sets.mean_record_size() * 8  # int64 items
            # Ragged records: average within 3x of the dataset mean.
            assert expected / 3 < mean_payload < expected * 3


class TestBytesRatioStructure:
    def test_type2_dominates_bytes(self, float_run):
        """Section 4.3: 'the communication cost is high' because Type 2
        carries the feature vector — it must dominate total bytes."""
        _, res = float_run
        stats = res.message_stats
        t2 = stats.get("type2+").bytes
        others = stats.total_bytes() - t2
        assert t2 > others
