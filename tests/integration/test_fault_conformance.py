"""Cross-backend fault tolerance: sim and parallel under the same plan.

The fault machinery lives in the Transport/comm/Executor seam, so the
PR 1 acceptance bars must now hold on *both* execution backends under
the *same seeded* ``FaultPlan``:

1. drops/dups/delays + reliable delivery => the final graph is
   byte-identical to the fault-free sim reference (the order-invariant
   envelope of the conformance suite),
2. a rank crash mid-build recovers from a checkpoint through the
   supervisor and lands on the identical graph,
3. degraded mode completes with the dead rank excluded then repaired,
   within a bounded recall envelope,
4. the recovery observability surface — ``faults.detected``,
   ``recovery.attempts``, ``backend.fallbacks`` counters, the
   ``degraded.ranks`` gauge, ``recovery.duration`` spans — appears
   under identical names in both backends' snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    FaultPlan,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)
from repro.config import CommOptConfig

BACKENDS = ("sim", "parallel")
CLUSTER = ClusterConfig(nodes=2, procs_per_node=2)
K = 6

#: Seeded network-chaos plan shared by every run in this module.
PLAN = FaultPlan(seed=17, drop_rate=0.05, dup_rate=0.03, delay_rate=0.05,
                 max_delay_ticks=2)

#: Degraded mode gives up checkpoint replay for availability; its
#: repaired graph must stay within this recall envelope of fault-free.
DEGRADED_EPSILON = 0.1


def _config(backend: str) -> DNNDConfig:
    """The delivery-order-invariant envelope (see
    test_backend_conformance): unoptimized comm pattern, fixed iteration
    count — required for cross-backend graph identity."""
    return DNNDConfig(
        nnd=NNDescentConfig(k=K, rho=0.8, delta=0.0, max_iters=4, seed=3),
        comm_opts=CommOptConfig.unoptimized(),
        batch_size=1 << 12,
        backend=backend,
        workers=4,
    )


def _dnnd(data, backend: str, **kwargs) -> DNND:
    return DNND(data, _config(backend), cluster=CLUSTER, **kwargs)


@pytest.fixture(scope="module")
def reference(small_dense):
    """Fault-free sim build: the identity bar for every faulty run."""
    return _dnnd(small_dense, "sim").build()


@pytest.fixture(scope="module")
def chaos_runs(small_dense):
    """Per backend: the shared drop/dup/delay plan + reliable delivery."""
    return {b: _dnnd(small_dense, b, fault_plan=PLAN, reliable=True).build()
            for b in BACKENDS}


@pytest.fixture(scope="module")
def crash_runs(small_dense, tmp_path_factory):
    """Per backend: chaos plan + a rank crash, supervised recovery."""
    out = {}
    for b in BACKENDS:
        ckpt = tmp_path_factory.mktemp(f"crash_{b}") / "ckpt"
        dnnd = _dnnd(small_dense, b,
                     fault_plan=PLAN.with_crash(rank=1, at_iteration=2),
                     reliable=True)
        out[b] = dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
    return out


@pytest.fixture(scope="module")
def degraded_runs(small_dense):
    """Per backend: same crash handled by exclusion + repair."""
    out = {}
    for b in BACKENDS:
        dnnd = _dnnd(small_dense, b,
                     fault_plan=PLAN.with_crash(rank=1, at_iteration=2),
                     reliable=True)
        out[b] = dnnd.build(degraded=True)
    return out


class TestReliableDeliveryConformance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_graph_identical_to_fault_free(self, chaos_runs, reference,
                                           backend):
        got = chaos_runs[backend].graph
        np.testing.assert_array_equal(got.ids, reference.graph.ids)
        np.testing.assert_allclose(got.dists, reference.graph.dists,
                                   rtol=0, atol=0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_faults_actually_fired(self, chaos_runs, backend):
        stats = chaos_runs[backend].fault_stats
        assert stats.dropped > 0
        assert stats.retransmits > 0


class TestSupervisedRecoveryConformance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_recovers_to_identical_graph(self, crash_runs, reference,
                                               backend):
        result = crash_runs[backend]
        assert result.recoveries == 1
        np.testing.assert_array_equal(result.graph.ids, reference.graph.ids)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recall_within_epsilon(self, crash_runs, reference, small_dense,
                                   backend):
        """The ISSUE's acceptance bound: recall@k within 0.005 of the
        fault-free build (implied by graph identity, asserted anyway as
        the paper-facing statement)."""
        truth = brute_force_knn_graph(small_dense, k=K)
        ref = graph_recall(reference.graph, truth)
        got = graph_recall(crash_runs[backend].graph, truth)
        assert got >= ref - 0.005

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovery_metrics_populated(self, crash_runs, backend):
        snap = crash_runs[backend].metrics.snapshot()
        assert snap["counters"]["faults.detected"] >= 1
        assert snap["counters"]["recovery.attempts"] == 1
        spans = [s.name for s in crash_runs[backend].metrics.spans]
        assert "recovery.duration" in spans


class TestDegradedModeConformance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_completes_with_exclusion_then_repair(self, degraded_runs,
                                                  backend):
        result = degraded_runs[backend]
        assert result.degraded_ranks == (1,)
        assert result.recoveries == 0  # no checkpoint replay happened
        # Every vertex has a full neighbor list after the repair pass —
        # including the crashed rank's shard.
        assert np.all(result.graph.ids >= 0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recall_within_degraded_envelope(self, degraded_runs, reference,
                                             small_dense, backend):
        truth = brute_force_knn_graph(small_dense, k=K)
        ref = graph_recall(reference.graph, truth)
        got = graph_recall(degraded_runs[backend].graph, truth)
        assert got >= ref - DEGRADED_EPSILON

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_degraded_gauge_returns_to_zero(self, degraded_runs, backend):
        """``degraded.ranks`` spikes during exclusion and must read 0
        after re-admission + repair."""
        snap = degraded_runs[backend].metrics.snapshot()
        assert snap["gauges"]["degraded.ranks"] == 0.0


#: Crash-only conformance set: the process backend kills the owning
#: worker natively, but message-level network faults (drop/dup/delay)
#: and reliable delivery are sim/parallel-only — so its conformance
#: envelope is a pure-crash plan.  ``workers=4`` gives one rank per
#: worker, so the planned SIGKILL takes down exactly the planned rank.
CRASH_BACKENDS = ("sim", "process")
CRASH_PLAN = FaultPlan(seed=17).with_crash(rank=1, at_iteration=2)


@pytest.fixture(scope="module")
def crash_only_runs(small_dense, tmp_path_factory):
    """Per backend: a pure-crash plan, supervised checkpoint recovery."""
    out = {}
    for b in CRASH_BACKENDS:
        ckpt = tmp_path_factory.mktemp(f"crash_only_{b}") / "ckpt"
        dnnd = _dnnd(small_dense, b, fault_plan=CRASH_PLAN)
        try:
            out[b] = dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        finally:
            dnnd.close()
    return out


@pytest.fixture(scope="module")
def degraded_only_runs(small_dense):
    """Per backend: the same crash handled by exclusion + repair."""
    out = {}
    for b in CRASH_BACKENDS:
        dnnd = _dnnd(small_dense, b, fault_plan=CRASH_PLAN)
        try:
            out[b] = dnnd.build(degraded=True)
        finally:
            dnnd.close()
    return out


class TestProcessCrashConformance:
    """PR 6's supervised/degraded recovery bars, re-run with real
    worker-process deaths: the planned crash SIGKILLs the owning
    worker, detection surfaces through the same RankFailureError path,
    and recovery lands on the identical graph."""

    @pytest.mark.parametrize("backend", CRASH_BACKENDS)
    def test_crash_recovers_to_identical_graph(self, crash_only_runs,
                                               reference, backend):
        result = crash_only_runs[backend]
        assert result.recoveries == 1
        np.testing.assert_array_equal(result.graph.ids, reference.graph.ids)
        np.testing.assert_allclose(result.graph.dists,
                                   reference.graph.dists, rtol=0, atol=0)

    @pytest.mark.parametrize("backend", CRASH_BACKENDS)
    def test_crash_metrics_populated(self, crash_only_runs, backend):
        snap = crash_only_runs[backend].metrics.snapshot()
        assert snap["counters"]["faults.crashes"] == 1
        assert snap["counters"]["faults.detected"] >= 1
        assert snap["counters"]["recovery.attempts"] == 1
        spans = [s.name for s in crash_only_runs[backend].metrics.spans]
        assert "recovery.duration" in spans

    def test_counter_name_sets_identical(self, crash_only_runs):
        ref = set(crash_only_runs["sim"].metrics.snapshot()["counters"])
        got = set(crash_only_runs["process"].metrics.snapshot()["counters"])
        assert got == ref

    @pytest.mark.parametrize("backend", CRASH_BACKENDS)
    def test_degraded_completes_with_exclusion_then_repair(
            self, degraded_only_runs, backend):
        result = degraded_only_runs[backend]
        assert result.degraded_ranks == (1,)
        assert result.recoveries == 0
        assert np.all(result.graph.ids >= 0)

    @pytest.mark.parametrize("backend", CRASH_BACKENDS)
    def test_degraded_recall_within_envelope(self, degraded_only_runs,
                                             reference, small_dense,
                                             backend):
        truth = brute_force_knn_graph(small_dense, k=K)
        ref = graph_recall(reference.graph, truth)
        got = graph_recall(degraded_only_runs[backend].graph, truth)
        assert got >= ref - DEGRADED_EPSILON

    @pytest.mark.parametrize("backend", CRASH_BACKENDS)
    def test_degraded_gauge_returns_to_zero(self, degraded_only_runs,
                                            backend):
        snap = degraded_only_runs[backend].metrics.snapshot()
        assert snap["gauges"]["degraded.ranks"] == 0.0


class TestRecoveryObservabilityNames:
    RECOVERY_COUNTERS = ("faults.detected", "recovery.attempts",
                         "backend.fallbacks")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counter_names_present_everywhere(self, crash_runs, backend):
        counters = crash_runs[backend].metrics.snapshot()["counters"]
        for name in self.RECOVERY_COUNTERS:
            assert name in counters, name

    def test_counter_name_sets_identical(self, crash_runs):
        ref = set(crash_runs["sim"].metrics.snapshot()["counters"])
        got = set(crash_runs["parallel"].metrics.snapshot()["counters"])
        assert got == ref

    def test_span_names_identical(self, crash_runs):
        ref = sorted({s.name for s in crash_runs["sim"].metrics.spans})
        got = sorted({s.name for s in crash_runs["parallel"].metrics.spans})
        assert got == ref

    def test_gauge_names_present_in_degraded_runs(self, degraded_runs):
        for backend in BACKENDS:
            gauges = degraded_runs[backend].metrics.snapshot()["gauges"]
            assert "degraded.ranks" in gauges
