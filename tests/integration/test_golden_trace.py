"""Golden-trace regression: the canonical build's metrics are pinned.

A fixed dataset + configuration on the sim backend must reproduce the
checked-in ``tests/data/golden_metrics.json`` **bit for bit** — not the
wall-clock quantities (those differ every run), but the deterministic
projection: counters, the span name sequence, per-timer counts, and the
cost model's ``sim.*`` gauges.  Any change to message accounting, phase
structure, or the cost model shows up here as a diff.

Regenerate after an *intentional* change::

    PYTHONPATH=src python -c "
    from tests.integration.test_golden_trace import write_golden
    write_golden()"
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.datasets.synthetic import gaussian_mixture
from repro.runtime.metrics import deterministic_projection

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "data" / "golden_metrics.json")


def canonical_build():
    """The pinned build: every parameter fixed, sim backend and rowwise
    kernel only (both pinned so CI matrix env vars cannot leak in)."""
    data = gaussian_mixture(200, 10, n_clusters=5, cluster_std=0.15, seed=42)
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=6, rho=0.8, delta=0.001, max_iters=8, seed=1),
        batch_size=1 << 12,
        backend="sim",
        kernel="rowwise",
    )
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=2, procs_per_node=2))
    return dnnd.build()


def write_golden() -> None:
    """Regenerate the golden file (run manually, then review the diff)."""
    snap = canonical_build().metrics.snapshot()
    GOLDEN_PATH.write_text(
        json.dumps(deterministic_projection(snap), indent=2, sort_keys=True)
        + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def canonical_result():
    return canonical_build()


class TestGoldenTrace:
    def test_projection_matches_golden_bit_for_bit(self, canonical_result):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        got = deterministic_projection(canonical_result.metrics.snapshot())
        # Compare through a JSON round trip so both sides have identical
        # type normalization (tuples/ints) — byte-equality of the dumps.
        got = json.loads(json.dumps(got, sort_keys=True))
        assert got == golden

    def test_rebuild_reproduces_itself(self):
        a = deterministic_projection(canonical_build().metrics.snapshot())
        b = deterministic_projection(canonical_build().metrics.snapshot())
        assert a == b

    def test_trace_round_trips_json(self, canonical_result):
        trace = canonical_result.metrics.to_chrome_trace()
        text = json.dumps(trace)
        assert json.loads(text) == trace
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "C" for e in events)

    def test_phase_spans_monotone_and_non_overlapping(self, canonical_result):
        """The phase driver closes each span before opening the next, so
        the ``cat == "phase"`` timeline is strictly sequential."""
        spans = [s for s in canonical_result.metrics.spans
                 if s.cat == "phase"]
        assert len(spans) >= 4  # init + iterations + gather at minimum
        previous_end = -1.0
        for s in spans:
            assert s.end >= s.start >= 0.0
            assert s.start >= previous_end, (
                f"span {s.name} starts at {s.start} before previous "
                f"span ended at {previous_end}")
            previous_end = s.end

    def test_phase_sequence_starts_with_init(self, canonical_result):
        names = [s.name for s in canonical_result.metrics.spans
                 if s.cat == "phase"]
        assert names[0] == "phase.init"
        assert names[-1] == "phase.gather"
        assert "phase.neighbor_check" in names
