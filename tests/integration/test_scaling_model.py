"""The simulated-time model behind Figure 3.

These tests assert the *mechanisms* that produce the paper's scaling
shape: more ranks -> shorter simulated construction; diminishing
returns at high rank counts; communication share grows with scale.
"""

import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    NNDescentConfig,
)
from repro.datasets.synthetic import gaussian_mixture


@pytest.fixture(scope="module")
def scaling_results():
    data = gaussian_mixture(600, 24, n_clusters=12, cluster_std=0.15, seed=5)
    out = {}
    for nodes in (1, 2, 4, 8):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=6, seed=5), batch_size=1 << 13)
        dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=nodes, procs_per_node=2))
        out[nodes] = dnnd.build()
    return out


class TestStrongScaling:
    def test_sim_time_decreases_with_nodes(self, scaling_results):
        times = {n: r.sim_seconds for n, r in scaling_results.items()}
        assert times[2] < times[1]
        assert times[4] < times[2]

    def test_scaling_factor_reasonable(self, scaling_results):
        # Paper: 3.8x speedup from 4x more nodes (4 -> 16). Here 4x more
        # ranks should speed up by >2x but <= ideal 4x.
        speedup = scaling_results[1].sim_seconds / scaling_results[4].sim_seconds
        assert 1.8 < speedup <= 4.5

    def test_diminishing_returns(self, scaling_results):
        # Efficiency (speedup / node-ratio) decreases with scale - the
        # flattening visible between 16 and 32 nodes in Figure 3.
        s2 = scaling_results[1].sim_seconds / scaling_results[2].sim_seconds
        s8 = scaling_results[1].sim_seconds / scaling_results[8].sim_seconds
        eff2 = s2 / 2
        eff8 = s8 / 8
        assert eff8 < eff2

    def test_quality_unaffected_by_scale(self, scaling_results):
        from repro import brute_force_knn_graph, graph_recall
        data = gaussian_mixture(600, 24, n_clusters=12, cluster_std=0.15, seed=5)
        truth = brute_force_knn_graph(data, k=6)
        recalls = [graph_recall(r.graph, truth) for r in scaling_results.values()]
        assert min(recalls) > 0.9
        assert max(recalls) - min(recalls) < 0.05


class TestCostComposition:
    def test_offnode_traffic_grows_with_nodes(self, scaling_results):
        # With more nodes, a larger fraction of messages crosses nodes.
        def offnode_fraction(res):
            total = res.message_stats.total_count()
            return res.message_stats.offnode_count() / total if total else 0.0
        assert offnode_fraction(scaling_results[8]) > offnode_fraction(scaling_results[2])

    def test_total_messages_grow_with_ranks(self, scaling_results):
        # More ranks -> fewer co-located (free) vertex pairs.
        assert (scaling_results[8].message_stats.total_count()
                > scaling_results[1].message_stats.total_count())

    def test_phase_seconds_sum_to_total(self, scaling_results):
        res = scaling_results[4]
        assert sum(res.phase_seconds.values()) == pytest.approx(res.sim_seconds,
                                                                rel=1e-6)


class TestWorkPerRank:
    def test_distance_work_divides(self, scaling_results):
        # Total distance evaluations are roughly scale-independent
        # (same algorithm), so per-rank work shrinks with ranks.
        e1 = scaling_results[1].distance_evals
        e8 = scaling_results[8].distance_evals
        assert 0.5 < e8 / e1 < 2.0
