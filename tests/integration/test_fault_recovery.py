"""Fault-tolerant DNND builds: crash recovery and reliable delivery.

The acceptance bar for the fault subsystem:

1. A rank crash mid-build recovers from the latest checkpoint and the
   finished graph — and hence its recall — matches the fault-free build.
2. A seeded drop/dup/reorder/delay plan under reliable delivery yields
   the *identical* final graph to a fault-free run (the recovery layer
   fully masks the adversarial network).
3. With injection disabled, the fault machinery is zero-overhead: the
   message accounting is byte-for-byte what the seed produced.
"""

import numpy as np
import pytest

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    FaultPlan,
    NNDescentConfig,
)
from repro.errors import FaultToleranceError, RankFailureError


def config(k=6, seed=43, max_iters=30):
    return DNNDConfig(nnd=NNDescentConfig(k=k, seed=seed, max_iters=max_iters))


CLUSTER = dict(nodes=2, procs_per_node=2)


@pytest.fixture(scope="module")
def reference(small_dense):
    """Fault-free build — the ground truth every faulty build must match."""
    dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER))
    return dnnd.build()


class TestCrashRecovery:
    def test_crash_recovers_to_identical_graph(self, small_dense, tmp_path,
                                               reference):
        """Crash rank 1 at iteration 2; the build detects the failed
        barrier, restores the iteration-1 checkpoint, replays, and
        finishes with the fault-free graph (recall identity is implied
        by graph identity)."""
        ckpt = tmp_path / "ckpt"
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=FaultPlan().with_crash(rank=1, at_iteration=2))
        result = dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        assert result.recoveries == 1
        assert result.fault_stats.crashes == 1
        assert result.converged == reference.converged
        assert result.iterations == reference.iterations
        np.testing.assert_array_equal(result.graph.ids, reference.graph.ids)
        np.testing.assert_allclose(result.graph.dists, reference.graph.dists)

    def test_crash_recall_matches_fault_free(self, small_dense, tmp_path,
                                             reference):
        """The paper-facing metric: recall@k against brute force is the
        same for the recovered build and the fault-free build."""
        from repro import brute_force_knn_graph, graph_recall

        ckpt = tmp_path / "ckpt_recall"
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=FaultPlan().with_crash(rank=0, at_iteration=1))
        result = dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        truth = brute_force_knn_graph(small_dense, k=6)
        assert result.recoveries == 1
        assert graph_recall(result.graph, truth) == pytest.approx(
            graph_recall(reference.graph, truth), abs=1e-12)

    def test_crash_without_checkpoint_restarts_from_scratch(
            self, small_dense, reference):
        """No checkpoint configured: recovery re-runs init.  Keyed RNG
        makes even that replay land on the identical graph."""
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=FaultPlan().with_crash(rank=2, at_iteration=1))
        result = dnnd.build()
        assert result.recoveries == 1
        np.testing.assert_array_equal(result.graph.ids, reference.graph.ids)

    def test_crash_surfaces_when_recovery_disabled(self, small_dense):
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=FaultPlan().with_crash(rank=1, at_iteration=1))
        with pytest.raises(RankFailureError) as exc:
            dnnd.build(recover_on_crash=False)
        assert exc.value.ranks == (1,)

    def test_multiple_crashes_all_recovered(self, small_dense, tmp_path,
                                            reference):
        ckpt = tmp_path / "ckpt_multi"
        plan = (FaultPlan().with_crash(rank=1, at_iteration=1)
                .with_crash(rank=3, at_iteration=3))
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=plan)
        result = dnnd.build(checkpoint_path=ckpt, checkpoint_every=1)
        assert result.recoveries == 2
        np.testing.assert_array_equal(result.graph.ids, reference.graph.ids)


class TestReliableDeliveryBuild:
    def test_drop_dup_reorder_graph_identical(self, small_dense, reference):
        """Seeded network faults + reliable delivery => byte-identical
        final graph (the second acceptance criterion)."""
        plan = FaultPlan(seed=17, drop_rate=0.05, dup_rate=0.05,
                         reorder_rate=0.2, delay_rate=0.05)
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=plan, reliable=True)
        result = dnnd.build()
        assert result.fault_stats.dropped > 0
        assert result.fault_stats.retransmits > 0
        assert result.iterations == reference.iterations
        np.testing.assert_array_equal(result.graph.ids, reference.graph.ids)
        np.testing.assert_allclose(result.graph.dists, reference.graph.dists)

    def test_reliability_overhead_is_accounted(self, small_dense, reference):
        plan = FaultPlan(seed=17, drop_rate=0.05)
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=plan, reliable=True)
        result = dnnd.build()
        assert result.message_stats.by_type["ack"].count > 0
        assert result.message_stats.by_type["retransmit"].count > 0
        # Recovery work costs simulated time.
        assert result.sim_seconds > reference.sim_seconds

    def test_unrecoverable_network_raises(self, small_dense):
        plan = FaultPlan(seed=1, drop_rate=1.0)
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=plan, reliable=True, max_retries=3)
        with pytest.raises(FaultToleranceError):
            dnnd.build()


class TestZeroOverheadDefault:
    def test_null_plan_build_matches_default_exactly(self, small_dense,
                                                     reference):
        """Passing a null FaultPlan (or none) leaves message accounting
        byte-for-byte unchanged — the regression gate for bench_fig4."""
        dnnd = DNND(small_dense, config(), cluster=ClusterConfig(**CLUSTER),
                    fault_plan=FaultPlan())
        result = dnnd.build()
        assert dnnd._injector is None
        ref_types = {t: (s.count, s.bytes, s.offnode_count, s.offnode_bytes)
                     for t, s in reference.message_stats.by_type.items()}
        got_types = {t: (s.count, s.bytes, s.offnode_count, s.offnode_bytes)
                     for t, s in result.message_stats.by_type.items()}
        assert got_types == ref_types
        assert "ack" not in got_types and "retransmit" not in got_types
        assert result.sim_seconds == reference.sim_seconds
        assert not result.fault_stats.any_faults()
        assert result.recoveries == 0
