"""CLI: the paper's two executables plus the query program."""

import pytest

from repro.cli import build_parser, main
from repro.runtime.metall import MetallStore


@pytest.fixture()
def store(tmp_path):
    return str(tmp_path / "idx")


def run(argv):
    return main(argv)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_construct_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["construct"])

    def test_dataset_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["construct", "--dataset", "nope", "--store", "x"])


class TestWorkflow:
    def test_construct_creates_store(self, store, capsys):
        rc = run(["construct", "--dataset", "deep1b", "--n", "256",
                  "--k", "5", "--nodes", "2", "--store", store])
        assert rc == 0
        assert MetallStore.exists(store)
        out = capsys.readouterr().out
        assert "constructed deep1b" in out
        assert "type1" in out  # message table printed

    def test_optimize_then_query(self, store, capsys):
        run(["construct", "--dataset", "deep1b", "--n", "256", "--k", "5",
             "--nodes", "2", "--store", store])
        rc = run(["optimize", "--store", store, "--pruning-factor", "1.5"])
        assert rc == 0
        rc = run(["query", "--store", store, "--n-queries", "20",
                  "--epsilon", "0.2", "--threads", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "qps" in out
        assert "self-recall" in out

    def test_query_without_optimize_warns(self, store, capsys):
        run(["construct", "--dataset", "deep1b", "--n", "256", "--k", "5",
             "--nodes", "2", "--store", store])
        rc = run(["query", "--store", store, "--n-queries", "5"])
        assert rc == 0
        assert "repro optimize" in capsys.readouterr().out

    def test_unoptimized_comm_flag(self, store, capsys):
        rc = run(["construct", "--dataset", "deep1b", "--n", "256",
                  "--k", "5", "--nodes", "2", "--store", store,
                  "--unoptimized-comm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "type2 " in out or "type2" in out
        assert "type2+" not in out

    def test_sparse_dataset_workflow(self, store):
        rc = run(["construct", "--dataset", "kosarak", "--n", "128",
                  "--k", "4", "--nodes", "2", "--store", store])
        assert rc == 0
        assert run(["optimize", "--store", store]) == 0
        assert run(["query", "--store", store, "--n-queries", "10"]) == 0


class TestErrors:
    def test_optimize_missing_store(self, tmp_path, capsys):
        rc = run(["optimize", "--store", str(tmp_path / "ghost")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_construct_over_existing_store(self, store, capsys):
        run(["construct", "--dataset", "deep1b", "--n", "256", "--k", "5",
             "--nodes", "2", "--store", store])
        rc = run(["construct", "--dataset", "deep1b", "--n", "256",
                  "--k", "5", "--nodes", "2", "--store", store])
        assert rc == 1


class TestIntrospection:
    def test_datasets_listing(self, capsys):
        assert run(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "kosarak" in out and "1,000,000,000" in out

    def test_experiments_listing(self, capsys):
        assert run(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "bench_fig4_message_savings.py" in out


class TestObservability:
    def test_metrics_and_trace_export(self, store, tmp_path, capsys):
        import json

        metrics_out = str(tmp_path / "run.json")
        trace_out = str(tmp_path / "run.trace.json")
        rc = run(["construct", "--dataset", "deep1b", "--n", "256",
                  "--k", "5", "--nodes", "2", "--store", store,
                  "--metrics-out", metrics_out, "--trace-out", trace_out])
        assert rc == 0
        with open(metrics_out) as f:
            snap = json.load(f)
        assert snap["schema"] == "repro.metrics/1"
        assert snap["enabled"] is True
        assert snap["counters"]["messages.sent"] > 0
        assert any(name.startswith("phase.") for name in snap["timers"])
        with open(trace_out) as f:
            trace = json.load(f)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_stats_pretty_printer(self, store, tmp_path, capsys):
        metrics_out = str(tmp_path / "run.json")
        run(["construct", "--dataset", "deep1b", "--n", "256", "--k", "5",
             "--nodes", "2", "--store", store, "--metrics-out", metrics_out])
        capsys.readouterr()
        assert run(["stats", metrics_out]) == 0
        out = capsys.readouterr().out
        assert "phase timers" in out
        assert "messages by type" in out
        assert "heap.updates" in out

    def test_stats_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something/else"}')
        assert run(["stats", str(bogus)]) == 1
        assert "not a repro metrics snapshot" in capsys.readouterr().err

    def test_no_metrics_conflicts_with_export(self, store, capsys):
        rc = run(["construct", "--dataset", "deep1b", "--n", "256",
                  "--k", "5", "--nodes", "2", "--store", store,
                  "--no-metrics", "--metrics-out", "/tmp/x.json"])
        assert rc == 1
        assert "--no-metrics" in capsys.readouterr().err

    def test_no_metrics_build_succeeds(self, store, capsys):
        rc = run(["construct", "--dataset", "deep1b", "--n", "256",
                  "--k", "5", "--nodes", "2", "--store", store,
                  "--no-metrics"])
        assert rc == 0
        assert "constructed deep1b" in capsys.readouterr().out
