"""Pickle round-trip properties for the process backend's wire frames.

The process transport ships the comm layer's existing flush envelopes —
``call`` / ``bflush`` / ``hflush`` / ``sflush`` (plus the reliability
``rel`` / ``ack`` wrappers) — as pickled cross-worker frames
``(epoch, dest, src, payload)`` on a ``multiprocessing.Queue``.  The
wire format therefore *is* the sim wire format, serialized: every
envelope shape the comm layer can produce must survive
pickle.dumps/loads bit-exactly, including numpy scalar and array
payload members (gids travel as ``np.int64``, features as ndarrays)."""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st


def _np_scalars():
    return st.one_of(
        st.integers(-2**31, 2**31 - 1).map(np.int64),
        st.floats(allow_nan=False, width=64).map(np.float64),
    )


def _atoms():
    return st.one_of(
        st.integers(-2**62, 2**62),
        st.floats(allow_nan=False),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
        _np_scalars(),
    )


def _args():
    """A handler payload: a tuple of atoms or small nested tuples."""
    return st.tuples(*[st.one_of(_atoms(), st.tuples(_atoms(), _atoms()))
                       for _ in range(2)])


_HANDLER = st.sampled_from(
    ["init_req", "init_resp", "rev_new", "rev_old", "check_unopt",
     "feature_unopt", "check_opt", "feature_opt", "distance_reply",
     "opt_rev_edge"])
_SEQ = st.integers(0, 2**31)


def _call_env():
    return st.tuples(st.just("call"), _SEQ, _HANDLER, _args())


def _sflush_env():
    entries = st.lists(st.tuples(_HANDLER, _args(), _SEQ), max_size=6)
    return st.tuples(st.just("sflush"), entries)


def _bflush_env():
    entries = st.lists(
        st.tuples(_HANDLER, _args(), _SEQ, st.integers(0, 4096)), max_size=6)
    return st.tuples(st.just("bflush"), entries)


def _hflush_env():
    return st.tuples(st.just("hflush"), _HANDLER,
                     st.lists(_args(), max_size=6))


def _plain_envelopes():
    return st.one_of(_call_env(), _sflush_env(), _bflush_env(),
                     _hflush_env())


def _envelopes():
    """All envelope tags, including reliability wrappers around each."""
    rel = st.tuples(st.just("rel"), _SEQ, _plain_envelopes())
    ack = st.tuples(st.just("ack"),
                    st.lists(_SEQ, max_size=8).map(tuple))
    return st.one_of(_plain_envelopes(), rel, ack)


def _frames():
    """The cross-worker queue frame: (epoch, dest, src, envelope)."""
    return st.tuples(st.integers(0, 100), st.integers(0, 63),
                     st.integers(0, 63), _envelopes())


def _eq(a, b) -> bool:
    """Structural equality that treats numpy scalars/arrays by value."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and np.array_equal(a, b))
    if isinstance(a, (tuple, list)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_eq(x, y) for x, y in zip(a, b)))
    if a is None or b is None:
        return a is b
    return bool(a == b) and type(a) is type(b)


@given(frame=_frames())
@settings(max_examples=200, deadline=None)
def test_frame_pickle_round_trip(frame):
    assert _eq(pickle.loads(pickle.dumps(frame)), frame)


@given(env=_envelopes())
@settings(max_examples=200, deadline=None)
def test_envelope_pickle_round_trip(env):
    assert _eq(pickle.loads(pickle.dumps(env)), env)


def test_feature_row_payload_round_trip():
    """The unoptimized pattern ships raw feature rows inside envelopes
    on sim/parallel; a pickled copy must stay bit-identical so the
    process backend's distances match to the last ulp."""
    rng = np.random.default_rng(3)
    row = rng.normal(size=32)
    env = ("hflush", "feature_unopt",
           [(np.int64(7), row), (np.int64(9), row[::2].copy())])
    out = pickle.loads(pickle.dumps(env))
    assert _eq(out, env)
    assert out[2][0][1].tobytes() == row.tobytes()
