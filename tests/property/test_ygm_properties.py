"""YGM delivery properties over random message storms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


@st.composite
def storms(draw):
    """A random batch of (src, dest, forward_hops) messages."""
    p = draw(st.integers(1, 6))
    msgs = draw(st.lists(
        st.tuples(st.integers(0, p - 1), st.integers(0, p - 1),
                  st.integers(0, 3)),
        min_size=0, max_size=60,
    ))
    flush = draw(st.integers(1, 16))
    return p, msgs, flush


def build_world(p: int, flush: int):
    cluster = SimCluster(ClusterConfig(nodes=p, procs_per_node=1))
    world = YGMWorld(cluster, flush_threshold=flush)
    log = []

    def relay(ctx, hops, tag):
        log.append((ctx.rank, hops, tag))
        if hops > 0:
            ctx.async_call((ctx.rank + 1) % ctx.world_size, "relay",
                           hops - 1, tag)

    world.register_handler("relay", relay)
    return world, log


@given(storm=storms())
@settings(max_examples=80, deadline=None)
def test_exactly_once_delivery(storm):
    """Every message (including handler-generated forwards) runs exactly
    once: handler invocations == primary messages + total forward hops."""
    p, msgs, flush = storm
    world, log = build_world(p, flush)
    expected = 0
    for tag, (src, dest, hops) in enumerate(msgs):
        world.async_call(src, dest, "relay", hops, tag, nbytes=8)
        expected += 1 + hops
    world.barrier()
    assert world.handler_invocations == expected
    assert len(log) == expected
    assert world.cluster.all_quiescent()


@given(storm=storms())
@settings(max_examples=60, deadline=None)
def test_delivery_deterministic(storm):
    p, msgs, flush = storm
    def run():
        world, log = build_world(p, flush)
        for tag, (src, dest, hops) in enumerate(msgs):
            world.async_call(src, dest, "relay", hops, tag, nbytes=8)
        world.barrier()
        return log
    assert run() == run()


@given(storm=storms())
@settings(max_examples=60, deadline=None)
def test_flush_threshold_does_not_change_semantics(storm):
    """Buffering policy affects cost, never the set of deliveries."""
    p, msgs, _ = storm
    def deliveries(flush):
        world, log = build_world(p, flush)
        for tag, (src, dest, hops) in enumerate(msgs):
            world.async_call(src, dest, "relay", hops, tag, nbytes=8)
        world.barrier()
        return sorted(log)
    assert deliveries(1) == deliveries(64)


@given(storm=storms())
@settings(max_examples=60, deadline=None)
def test_stats_count_remote_messages_only(storm):
    p, msgs, flush = storm
    world, _ = build_world(p, flush)
    remote = 0
    for tag, (src, dest, hops) in enumerate(msgs):
        world.async_call(src, dest, "relay", hops, tag, nbytes=8,
                         msg_type="m")
        if src != dest:
            remote += 1
    # Before the barrier, only primary sends are recorded.
    assert world.stats.get("m").count == remote
