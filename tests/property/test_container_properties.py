"""Distributed-container invariants over random workloads."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.runtime.containers import DistributedBag, DistributedCounter, DistributedMap
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


def make_world(p: int) -> YGMWorld:
    return YGMWorld(SimCluster(ClusterConfig(nodes=p, procs_per_node=1)))


@given(p=st.integers(1, 6),
       items=st.lists(st.integers(-100, 100), max_size=80))
@settings(max_examples=50, deadline=None)
def test_bag_multiset_semantics(p, items):
    world = make_world(p)
    bag = DistributedBag(world, "b")
    for i, item in enumerate(items):
        bag.async_insert(i % p, item)
    world.barrier()
    assert Counter(bag.gather()) == Counter(items)
    assert bag.size() == len(items)


@given(p=st.integers(1, 6),
       adds=st.lists(st.tuples(st.integers(0, 10), st.integers(1, 5)),
                     max_size=60))
@settings(max_examples=50, deadline=None)
def test_counter_totals_match_model(p, adds):
    world = make_world(p)
    counter = DistributedCounter(world, "c")
    model: Counter = Counter()
    for i, (key, amount) in enumerate(adds):
        counter.async_add(i % p, key, amount)
        model[key] += amount
    world.barrier()
    for key, want in model.items():
        assert counter.count_of(key) == want
    assert counter.total() == sum(model.values())
    top = counter.top_k(len(model) + 1)
    assert dict(top) == dict(model)


@given(p=st.integers(1, 6),
       writes=st.lists(st.tuples(st.integers(0, 12), st.integers(-50, 50)),
                       max_size=60))
@settings(max_examples=50, deadline=None)
def test_map_converges_to_some_written_value(p, writes):
    """Across *different* source ranks there is no global write order
    (fire-and-forget semantics, exactly like real YGM): the final value
    must be one of the values written to that key, and every written
    key must exist."""
    world = make_world(p)
    dmap = DistributedMap(world, "m")
    written = {}
    for i, (key, value) in enumerate(writes):
        dmap.async_insert(i % p, key, value)
        written.setdefault(key, set()).add(value)
    world.barrier()
    assert dmap.size() == len(written)
    for key, candidates in written.items():
        assert dmap.get(key) in candidates


@given(writes=st.lists(st.tuples(st.integers(0, 12), st.integers(-50, 50)),
                       max_size=60))
@settings(max_examples=50, deadline=None)
def test_map_single_source_is_last_writer_wins(writes):
    """From one source rank, program order is preserved end to end
    (FIFO buffers + FIFO mailboxes), so last-writer-wins holds."""
    world = make_world(4)
    dmap = DistributedMap(world, "m")
    model = {}
    for key, value in writes:
        dmap.async_insert(0, key, value)
        model[key] = value
    world.barrier()
    assert dict(dmap.items()) == model
