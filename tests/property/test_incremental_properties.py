"""Incremental-index invariants under random add/remove sequences."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NNDescentConfig
from repro.core.incremental import IncrementalIndex


@st.composite
def workloads(draw):
    seed = draw(st.integers(0, 2**31))
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("add"), st.integers(1, 10)),
            st.tuples(st.just("remove"), st.integers(1, 6)),
        ),
        min_size=1, max_size=5,
    ))
    return seed, ops


@given(wl=workloads())
@settings(max_examples=15, deadline=None)
def test_index_stays_consistent(wl):
    """After any add/remove sequence: graph size == data size, the graph
    validates, and all neighbor distances are true distances."""
    seed, ops = wl
    rng = np.random.default_rng(seed)
    data = rng.random((60, 6)).astype(np.float32)
    index = IncrementalIndex(data, NNDescentConfig(k=4, seed=seed),
                             refinement_iters=4)
    for op, amount in ops:
        if op == "add":
            index.add(rng.random((amount, 6)).astype(np.float32))
        else:
            n = len(index)
            amount = min(amount, n - 6)  # keep > k+1 rows
            if amount < 1:
                continue
            ids = rng.choice(n, size=amount, replace=False)
            index.remove([int(i) for i in ids])
        assert index.graph.n == len(index)
        index.graph.validate()
    # Spot-check stored distances against the data.
    from repro.distances.dense import sqeuclidean
    g = index.graph
    for v in range(0, g.n, max(1, g.n // 8)):
        ids, dists = g.neighbors(v)
        for u, d in zip(ids[:2], dists[:2]):
            assert abs(d - sqeuclidean(index.data[v], index.data[int(u)])) < 1e-4


@given(seed=st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_add_preserves_existing_rows(seed):
    rng = np.random.default_rng(seed)
    data = rng.random((50, 5)).astype(np.float32)
    index = IncrementalIndex(data, NNDescentConfig(k=4, seed=seed))
    added = rng.random((7, 5)).astype(np.float32)
    index.add(added)
    np.testing.assert_array_equal(index.data[:50], data)
    np.testing.assert_array_equal(index.data[50:], added)
