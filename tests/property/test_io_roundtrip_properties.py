"""Round-trip properties of the vector file formats."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.io.bigann import read_bin, write_bin, read_ground_truth, write_ground_truth
from repro.io.vecs import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)

shapes = st.tuples(st.integers(1, 12), st.integers(1, 16))


@given(shape=shapes, data=st.data())
@settings(max_examples=50, deadline=None)
def test_fvecs_roundtrip(tmp_path_factory, shape, data):
    arr = data.draw(hnp.arrays(np.float32, shape,
                               elements=st.floats(-1e6, 1e6, width=32,
                                                  allow_nan=False)))
    path = tmp_path_factory.mktemp("vecs") / "x.fvecs"
    write_fvecs(path, arr)
    np.testing.assert_array_equal(read_fvecs(path), arr)


@given(shape=shapes, data=st.data())
@settings(max_examples=50, deadline=None)
def test_ivecs_roundtrip(tmp_path_factory, shape, data):
    arr = data.draw(hnp.arrays(np.int32, shape,
                               elements=st.integers(-2**31, 2**31 - 1)))
    path = tmp_path_factory.mktemp("vecs") / "x.ivecs"
    write_ivecs(path, arr)
    np.testing.assert_array_equal(read_ivecs(path), arr)


@given(shape=shapes, data=st.data())
@settings(max_examples=50, deadline=None)
def test_bvecs_roundtrip(tmp_path_factory, shape, data):
    arr = data.draw(hnp.arrays(np.uint8, shape, elements=st.integers(0, 255)))
    path = tmp_path_factory.mktemp("vecs") / "x.bvecs"
    write_bvecs(path, arr)
    np.testing.assert_array_equal(read_bvecs(path), arr)


@given(shape=shapes, data=st.data())
@settings(max_examples=50, deadline=None)
def test_fbin_roundtrip(tmp_path_factory, shape, data):
    arr = data.draw(hnp.arrays(np.float32, shape,
                               elements=st.floats(-1e6, 1e6, width=32,
                                                  allow_nan=False)))
    path = tmp_path_factory.mktemp("bin") / "x.fbin"
    write_bin(path, arr)
    np.testing.assert_array_equal(read_bin(path), arr)


@given(shape=shapes, data=st.data())
@settings(max_examples=40, deadline=None)
def test_ground_truth_roundtrip(tmp_path_factory, shape, data):
    ids = data.draw(hnp.arrays(np.int32, shape, elements=st.integers(0, 10**6)))
    dists = data.draw(hnp.arrays(np.float32, shape,
                                 elements=st.floats(0, 1e6, width=32,
                                                    allow_nan=False)))
    path = tmp_path_factory.mktemp("bin") / "gt.bin"
    write_ground_truth(path, ids, dists)
    got_ids, got_dists = read_ground_truth(path)
    np.testing.assert_array_equal(got_ids, ids)
    np.testing.assert_array_equal(got_dists, dists)
