"""Property tests for the blocked distance kernels (DESIGN.md §17).

Three invariants the kernel layer promises:

- **Tile-size invariance**: the tile heuristic is a pure performance
  knob — any tile size yields the same top-k neighbor sets, a fixed
  tile size reproduces its own bits, and tilings agree to f64 ulp
  bounds (bitwise cross-tile equality is *not* promised: BLAS gemm
  bits depend on operand extents).
- **Norm-cache consistency**: after in-place dataset mutation plus
  ``update_rows`` / ``invalidate``, cached-norm results are identical
  to a cold cache.
- **End-to-end recall parity**: a sim build under ``blocked`` stays
  within the 0.005 recall-parity gate of the ``rowwise`` build.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.baselines.bruteforce import brute_force_knn_graph
from repro.distances import NormCache, blocked_metrics, make_kernels
from repro.eval.recall import recall_at_k


@st.composite
def operand_sets(draw):
    n = draw(st.integers(5, 60))
    m = draw(st.integers(5, 60))
    dim = draw(st.sampled_from([1, 3, 8, 17]))
    seed = draw(st.integers(0, 2**31))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, dim)).astype(dtype)
    B = rng.standard_normal((m, dim)).astype(dtype)
    return A, B


@given(ops=operand_sets(), metric=st.sampled_from(blocked_metrics()),
       tile=st.integers(1, 70), k=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_tile_size_invariance_topk_sets(ops, metric, tile, k):
    """Any tile size gives the same top-k neighbor sets as the
    heuristic default (ties broken identically by id)."""
    A, B = ops
    k = min(k, B.shape[0])
    ref = make_kernels(metric).pairwise(A, B)
    got = make_kernels(metric, tile=tile).pairwise(A, B)
    for row in range(A.shape[0]):
        ref_top = np.lexsort((np.arange(B.shape[0]), ref[row]))[:k]
        got_top = np.lexsort((np.arange(B.shape[0]), got[row]))[:k]
        assert set(ref_top) == set(got_top)


@given(ops=operand_sets(), tile=st.integers(1, 70))
@settings(max_examples=30, deadline=None)
def test_fixed_tile_is_deterministic_and_tiles_agree_to_ulps(ops, tile):
    """Per-tile determinism plus cross-tile agreement on float64: a
    fixed tile size always reproduces its own bits, and any two tilings
    agree to f64 ulp bounds.  Bitwise *cross-tile* equality is not
    promised — BLAS gemm results depend on the operand extents (gemv
    vs gemm micro-kernels, N-dependent blocking), so changing the tile
    legitimately changes low-order bits."""
    A, B = (o.astype(np.float64) for o in ops)
    ref = make_kernels("sqeuclidean").pairwise(A, B)
    bundle = make_kernels("sqeuclidean", tile=tile)
    got = bundle.pairwise(A, B)
    np.testing.assert_array_equal(bundle.pairwise(A, B), got)
    np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)


@given(seed=st.integers(0, 2**31), rows=st.sets(st.integers(0, 19),
                                                min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_norm_cache_consistent_after_update_rows(seed, rows):
    """Mutate rows in place, refresh via ``update_rows``: every
    subsequent kernel result matches a cold cache bit-for-bit."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((20, 6))
    Q = rng.standard_normal((7, 6))
    cache = NormCache()
    bundle = make_kernels("sqeuclidean", cache=cache)
    bundle.pairwise(Q, X)  # warm the cache on the pre-mutation rows
    idx = sorted(rows)
    X[idx] = rng.standard_normal((len(idx), 6))
    cache.update_rows(X, idx)
    got = bundle.pairwise(Q, X)
    cold = make_kernels("sqeuclidean", cache=NormCache()).pairwise(Q, X)
    np.testing.assert_array_equal(got, cold)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_norm_cache_consistent_after_invalidate(seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((15, 5))
    cache = NormCache()
    bundle = make_kernels("euclidean", cache=cache)
    bundle.pairwise(X, X)
    X *= 1.5  # whole-array mutation: targeted refresh is not enough
    cache.invalidate(X)
    got = bundle.pairwise(X, X)
    cold = make_kernels("euclidean", cache=NormCache()).pairwise(X, X)
    np.testing.assert_array_equal(got, cold)


def test_end_to_end_recall_parity_on_sim():
    """The issue's parity gate: a sim build at n=500 under the blocked
    kernel reaches recall within 0.005 of the rowwise build."""
    rng = np.random.default_rng(11)
    centers = rng.standard_normal((8, 24)) * 2.0
    data = (centers[rng.integers(0, 8, size=500)]
            + rng.normal(scale=0.3, size=(500, 24))).astype(np.float32)

    def build(kernel):
        cfg = DNNDConfig(
            nnd=NNDescentConfig(k=10, seed=5),
            backend="sim", kernel=kernel)
        return DNND(data, cfg,
                    cluster=ClusterConfig(nodes=2, procs_per_node=2)).build()

    truth = brute_force_knn_graph(data, k=10).ids
    recalls = {kernel: recall_at_k(build(kernel).graph.ids, truth)
               for kernel in ("rowwise", "blocked")}
    assert recalls["rowwise"] > 0.9  # the baseline itself must be good
    assert abs(recalls["blocked"] - recalls["rowwise"]) <= 0.005
