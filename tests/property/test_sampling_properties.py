"""Sampling properties."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import derive_rng
from repro.utils.sampling import reservoir_sample, sample_without_replacement


@given(pop=st.integers(0, 500), n=st.integers(0, 60), seed=st.integers(0, 10**6))
@settings(max_examples=120, deadline=None)
def test_swr_size_and_uniqueness(pop, n, seed):
    rng = derive_rng(seed)
    out = sample_without_replacement(rng, pop, n)
    assert len(out) == min(max(n, 0), max(pop, 0))
    assert len(np.unique(out)) == len(out)
    if len(out):
        assert out.min() >= 0 and out.max() < pop


@given(pop=st.integers(1, 200), n=st.integers(1, 200), seed=st.integers(0, 10**6))
@settings(max_examples=80, deadline=None)
def test_swr_deterministic_per_seed(pop, n, seed):
    a = sample_without_replacement(derive_rng(seed), pop, n)
    b = sample_without_replacement(derive_rng(seed), pop, n)
    np.testing.assert_array_equal(np.sort(a), np.sort(b))


@given(stream_len=st.integers(0, 300), n=st.integers(1, 40),
       seed=st.integers(0, 10**6))
@settings(max_examples=100, deadline=None)
def test_reservoir_size_and_membership(stream_len, n, seed):
    rng = derive_rng(seed)
    out = reservoir_sample(rng, range(stream_len), n)
    assert len(out) == min(n, stream_len)
    assert all(0 <= x < stream_len for x in out)
    assert len(set(out)) == len(out)
