"""HNSW structural invariants over random datasets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_neighbors
from repro.baselines.hnsw import HNSW, HNSWConfig


@st.composite
def hnsw_indexes(draw):
    n = draw(st.integers(10, 60))
    dim = draw(st.integers(2, 6))
    M = draw(st.integers(4, 8))
    efc = draw(st.integers(8, 40))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    data = rng.random((n, dim)).astype(np.float32)
    index = HNSW(data, HNSWConfig(M=M, ef_construction=efc, seed=seed)).build()
    return data, index


@given(setup=hnsw_indexes())
@settings(max_examples=30, deadline=None)
def test_structure_invariants(setup):
    data, index = setup
    cfg = index.config
    n = len(data)
    assert len(index._links) == n
    for node, links in enumerate(index._links):
        assert len(links) == index._levels[node] + 1
        for layer, nbrs in enumerate(links):
            cap = cfg.M_max0 if layer == 0 else cfg.M
            assert len(nbrs) <= cap
            assert node not in nbrs  # no self-links
            assert all(0 <= e < n for e in nbrs)
            # A link at layer L implies the target reaches layer L.
            for e in nbrs:
                assert index._levels[e] >= layer
    assert index._levels[index._entry] == index._max_level


@given(setup=hnsw_indexes())
@settings(max_examples=30, deadline=None)
def test_query_contract(setup):
    data, index = setup
    res = index.query(data[0], k=min(5, len(data)), ef=40)
    assert len(res.ids) == min(5, len(data))
    assert (np.diff(res.dists) >= 0).all()
    assert len(set(res.ids.tolist())) == len(res.ids)


@given(setup=hnsw_indexes())
@settings(max_examples=20, deadline=None)
def test_exhaustive_ef_is_near_exact(setup):
    """With ef = n the beam covers (almost) the whole reachable graph,
    so top-1 must be the true nearest neighbor whenever the graph is
    reachable from the entry point (guaranteed: inserts link upward)."""
    data, index = setup
    n = len(data)
    q = data[n // 2]
    res = index.query(q, k=1, ef=n)
    true_ids, _ = brute_force_neighbors(data, q.reshape(1, -1), k=1)
    assert res.ids[0] == true_ids[0, 0]


@given(setup=hnsw_indexes())
@settings(max_examples=20, deadline=None)
def test_determinism(setup):
    data, index = setup
    a = index.query(data[0], k=3, ef=20)
    b = index.query(data[0], k=3, ef=20)
    np.testing.assert_array_equal(a.ids, b.ids)
