"""Partitioner properties."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.partition import BlockPartitioner, HashPartitioner


@given(n=st.integers(1, 2000), p=st.integers(1, 32))
@settings(max_examples=80, deadline=None)
def test_hash_owner_total_function(n, p):
    part = HashPartitioner(n, p)
    owners = part.owner_array(np.arange(n))
    assert owners.min() >= 0 and owners.max() < p


@given(n=st.integers(1, 1000), p=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_hash_local_ids_are_a_partition(n, p):
    part = HashPartitioner(n, p)
    seen = np.zeros(n, dtype=int)
    for r in range(p):
        for g in part.local_ids(r):
            seen[g] += 1
            assert part.owner(int(g)) == r
    assert (seen == 1).all()


@given(n=st.integers(1, 1000), p=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_block_local_ids_are_a_partition(n, p):
    part = BlockPartitioner(n, p)
    seen = np.zeros(n, dtype=int)
    for r in range(p):
        for g in part.local_ids(r):
            seen[g] += 1
            assert part.owner(int(g)) == r
    assert (seen == 1).all()


@given(n=st.integers(64, 4000), p=st.integers(2, 16))
@settings(max_examples=40, deadline=None)
def test_hash_owner_stable_across_instances(n, p):
    a = HashPartitioner(n, p)
    b = HashPartitioner(n, p)
    ids = np.arange(min(n, 200))
    np.testing.assert_array_equal(a.owner_array(ids), b.owner_array(ids))


@given(n=st.integers(1000, 8000), p=st.integers(2, 32))
@settings(max_examples=30, deadline=None)
def test_hash_balance_bound(n, p):
    # With n >> p, hash partitioning keeps the imbalance modest.
    part = HashPartitioner(n, p)
    assert part.max_imbalance() < 1.6


@given(n=st.integers(1, 500), p=st.integers(1, 8), scale=st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_owner_independent_of_other_vertices(n, p, scale):
    """Hash ownership of vertex v depends only on (v, p) — adding more
    vertices must not reassign existing ones (stability under growth)."""
    small = HashPartitioner(n, p)
    big = HashPartitioner(n * scale, p)
    ids = np.arange(n)
    np.testing.assert_array_equal(small.owner_array(ids), big.owner_array(ids))
