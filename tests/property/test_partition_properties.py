"""Partitioner properties."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.partition import (
    BlockPartitioner,
    ExplicitPartitioner,
    HashPartitioner,
    edge_cut_fraction,
    graph_locality_assignment,
    partitioner_from_spec,
    partitioner_spec,
    spec_matches,
)


@given(n=st.integers(1, 2000), p=st.integers(1, 32))
@settings(max_examples=80, deadline=None)
def test_hash_owner_total_function(n, p):
    part = HashPartitioner(n, p)
    owners = part.owner_array(np.arange(n))
    assert owners.min() >= 0 and owners.max() < p


@given(n=st.integers(1, 1000), p=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_hash_local_ids_are_a_partition(n, p):
    part = HashPartitioner(n, p)
    seen = np.zeros(n, dtype=int)
    for r in range(p):
        for g in part.local_ids(r):
            seen[g] += 1
            assert part.owner(int(g)) == r
    assert (seen == 1).all()


@given(n=st.integers(1, 1000), p=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_block_local_ids_are_a_partition(n, p):
    part = BlockPartitioner(n, p)
    seen = np.zeros(n, dtype=int)
    for r in range(p):
        for g in part.local_ids(r):
            seen[g] += 1
            assert part.owner(int(g)) == r
    assert (seen == 1).all()


@given(n=st.integers(64, 4000), p=st.integers(2, 16))
@settings(max_examples=40, deadline=None)
def test_hash_owner_stable_across_instances(n, p):
    a = HashPartitioner(n, p)
    b = HashPartitioner(n, p)
    ids = np.arange(min(n, 200))
    np.testing.assert_array_equal(a.owner_array(ids), b.owner_array(ids))


@given(n=st.integers(1000, 8000), p=st.integers(2, 32))
@settings(max_examples=30, deadline=None)
def test_hash_balance_bound(n, p):
    # With n >> p, hash partitioning keeps the imbalance modest.
    part = HashPartitioner(n, p)
    assert part.max_imbalance() < 1.6


@st.composite
def _assignments(draw):
    ws = draw(st.integers(1, 8))
    table = draw(st.lists(st.integers(0, ws - 1), min_size=1, max_size=400))
    return np.asarray(table, dtype=np.int64), ws


@given(_assignments())
@settings(max_examples=80, deadline=None)
def test_explicit_spec_round_trip_is_identity(case):
    """Any explicit table survives spec → JSON → spec reconstruction."""
    import json

    table, ws = case
    p = ExplicitPartitioner(table, ws, source="repartition")
    spec = json.loads(json.dumps(partitioner_spec(p)))
    q = partitioner_from_spec(spec)
    assert isinstance(q, ExplicitPartitioner)
    assert (q.n, q.world_size, q.source) == (p.n, p.world_size, "repartition")
    np.testing.assert_array_equal(q.assignment, p.assignment)
    assert spec_matches(spec, q)


@given(_assignments())
@settings(max_examples=60, deadline=None)
def test_explicit_local_ids_are_a_partition(case):
    table, ws = case
    p = ExplicitPartitioner(table, ws)
    seen = np.zeros(p.n, dtype=int)
    for r in range(ws):
        for g in p.local_ids(r):
            seen[g] += 1
            assert p.owner(int(g)) == r
    assert (seen == 1).all()


@given(n=st.integers(1, 300), p=st.integers(1, 16), seed=st.integers(0, 50))
@settings(max_examples=60, deadline=None)
def test_hash_spec_round_trip_same_ownership(n, p, seed):
    part = HashPartitioner(n, p)
    back = partitioner_from_spec(partitioner_spec(part))
    ids = np.arange(n)
    np.testing.assert_array_equal(back.owner_array(ids),
                                  part.owner_array(ids))
    assert spec_matches(partitioner_spec(part), "hash")


@given(n=st.integers(2, 200), k=st.integers(1, 8), ws=st.integers(1, 8),
       seed=st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_locality_assignment_total_and_balanced(n, k, ws, seed):
    """The repartition BFS always yields a near-perfectly balanced,
    total assignment, whatever the graph shape (padding included)."""
    rng = np.random.default_rng(seed)
    knn = rng.integers(-1, n, size=(n, k))
    a = graph_locality_assignment(knn, ws)
    assert a.shape == (n,)
    assert a.min() >= 0 and a.max() < ws
    counts = np.bincount(a, minlength=ws)
    # Running-capacity packing: every region is ceil(remaining/left).
    assert counts.max() <= -(-n // ws) + 1

    cut = edge_cut_fraction(ExplicitPartitioner(a, ws), knn)
    assert 0.0 <= cut <= 1.0
    if ws == 1:
        assert cut == 0.0


@given(n=st.integers(1, 500), p=st.integers(1, 8), scale=st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_owner_independent_of_other_vertices(n, p, scale):
    """Hash ownership of vertex v depends only on (v, p) — adding more
    vertices must not reassign existing ones (stability under growth)."""
    small = HashPartitioner(n, p)
    big = HashPartitioner(n * scale, p)
    ids = np.arange(n)
    np.testing.assert_array_equal(small.owner_array(ids), big.owner_array(ids))
