"""Property-based tests for NeighborHeap (core NN-Descent invariant)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heap import EMPTY, NeighborHeap

pushes = st.lists(
    st.tuples(st.integers(0, 40),
              st.floats(0.0, 100.0, allow_nan=False),
              st.booleans()),
    min_size=0, max_size=120,
)


@given(k=st.integers(1, 12), ops=pushes)
@settings(max_examples=120, deadline=None)
def test_heap_distance_multiset_matches_greedy_model(k, ops):
    """The multiset of retained distances equals a greedy replay of
    Algorithm 1's Update rule (insert if id absent and strictly closer
    than the current worst).  Ids are compared as a subset because ties
    in the worst distance make the evicted id implementation-defined."""
    heap = NeighborHeap(k)
    model = {}
    # De-tie distances: with ties in the worst distance, the evicted id
    # is implementation-defined and later duplicate-id pushes would make
    # even the distance multiset diverge from any fixed model.
    ops = [(vid, dist + i * 1e-7, flag) for i, (vid, dist, flag) in enumerate(ops)]
    for vid, dist, flag in ops:
        heap.checked_push(vid, dist, flag)
        heap.check_invariants()
        if vid in model:
            continue
        if len(model) < k:
            model[vid] = dist
        else:
            worst = max(model.values())
            if dist < worst:
                evict = max(model.items(), key=lambda t: t[1])[0]
                del model[evict]
                model[vid] = dist
    got_dists = sorted(d for _, d, _ in heap.entries())
    want_dists = sorted(model.values())
    assert got_dists == want_dists
    got_ids = {vid for vid, _, _ in heap.entries()}
    seen_ids = {vid for vid, _, _ in ops}
    assert got_ids <= seen_ids


@given(k=st.integers(1, 10), ops=pushes)
@settings(max_examples=100, deadline=None)
def test_worst_distance_is_max_when_full(k, ops):
    heap = NeighborHeap(k)
    for vid, dist, flag in ops:
        heap.checked_push(vid, dist, flag)
    if heap.full:
        dists = [d for _, d, _ in heap.entries()]
        assert heap.worst_distance() == max(dists)
    else:
        assert heap.worst_distance() == np.inf


@given(k=st.integers(1, 10), ops=pushes)
@settings(max_examples=100, deadline=None)
def test_sorted_arrays_ascending_and_padded(k, ops):
    heap = NeighborHeap(k)
    for vid, dist, flag in ops:
        heap.checked_push(vid, dist, flag)
    ids, dists, flags = heap.sorted_arrays()
    occ = ids != EMPTY
    assert (np.diff(dists[occ]) >= 0).all()
    assert np.isinf(dists[~occ]).all()
    assert len(set(ids[occ].tolist())) == occ.sum()


@given(k=st.integers(1, 10), ops=pushes)
@settings(max_examples=100, deadline=None)
def test_new_old_partition(k, ops):
    """new_ids and old_ids partition the membership."""
    heap = NeighborHeap(k)
    for vid, dist, flag in ops:
        heap.checked_push(vid, dist, flag)
    new = set(heap.new_ids())
    old = set(heap.old_ids())
    assert not (new & old)
    assert new | old == {vid for vid, _, _ in heap.entries()}


@given(k=st.integers(1, 10), ops=pushes, marks=st.lists(st.integers(0, 40)))
@settings(max_examples=80, deadline=None)
def test_mark_old_idempotent(k, ops, marks):
    heap = NeighborHeap(k)
    for vid, dist, flag in ops:
        heap.checked_push(vid, dist, flag)
    for m in marks:
        heap.mark_old(m)
        heap.mark_old(m)
        assert m not in set(heap.new_ids())
        heap.check_invariants()


@given(k=st.integers(1, 8), ops=pushes)
@settings(max_examples=80, deadline=None)
def test_push_return_value_matches_membership_change(k, ops):
    heap = NeighborHeap(k)
    for vid, dist, flag in ops:
        before = {v: d for v, d, _ in heap.entries()}
        changed = heap.checked_push(vid, dist, flag)
        after = {v: d for v, d, _ in heap.entries()}
        assert changed in (0, 1)
        assert (before != after) == bool(changed)
