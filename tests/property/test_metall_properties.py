"""MetallStore round-trip properties over arbitrary payloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.runtime.metall import MetallStore

names = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789_-"),
    min_size=1, max_size=20,
)

arrays = hnp.arrays(
    dtype=st.sampled_from([np.float32, np.float64, np.int64, np.uint8]),
    shape=st.tuples(st.integers(0, 8), st.integers(0, 8)),
    elements=st.just(0),
).map(lambda a: a)  # zeros are fine; shape/dtype are what matters


@given(objs=st.dictionaries(names, arrays, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_array_store_roundtrip(tmp_path_factory, objs):
    path = tmp_path_factory.mktemp("store") / "ds"
    with MetallStore.create(path) as store:
        for name, arr in objs.items():
            store[name] = arr
    with MetallStore.open_read_only(path) as store:
        assert set(store.keys()) == set(objs)
        for name, arr in objs.items():
            got = np.asarray(store[name])
            assert got.shape == arr.shape
            assert got.dtype == arr.dtype


@given(payload=st.recursive(
    st.one_of(st.integers(-10**9, 10**9), st.floats(allow_nan=False),
              st.text(max_size=20), st.booleans(), st.none()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=12,
))
@settings(max_examples=40, deadline=None)
def test_pickle_payload_roundtrip(tmp_path_factory, payload):
    path = tmp_path_factory.mktemp("store") / "ds"
    with MetallStore.create(path) as store:
        store["obj"] = payload
    with MetallStore.open_read_only(path) as store:
        assert store["obj"] == payload


@given(vals=st.lists(st.integers(0, 100), min_size=1, max_size=5))
@settings(max_examples=30, deadline=None)
def test_last_write_wins(tmp_path_factory, vals):
    path = tmp_path_factory.mktemp("store") / "ds"
    with MetallStore.create(path) as store:
        for v in vals:
            store["x"] = np.full(3, v)
    with MetallStore.open_read_only(path) as store:
        np.testing.assert_array_equal(np.asarray(store["x"]), np.full(3, vals[-1]))
