"""Search invariants over random datasets and graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_knn_graph, brute_force_neighbors
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher


@st.composite
def search_setups(draw):
    n = draw(st.integers(20, 80))
    dim = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    data = rng.random((n, dim)).astype(np.float32)
    k = draw(st.integers(2, min(8, n - 1)))
    graph = brute_force_knn_graph(data, k=k)
    adj = optimize_graph(graph, pruning_factor=1.5)
    return data, adj, seed


@given(setup=search_setups(), l=st.integers(1, 12),
       eps=st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_results_sorted_and_distinct(setup, l, eps):
    data, adj, seed = setup
    s = KNNGraphSearcher(adj, data, seed=seed)
    res = s.query(data[0], l=l, epsilon=eps)
    assert len(res.ids) == min(l, len(data))
    assert len(set(res.ids.tolist())) == len(res.ids)
    assert (np.diff(res.dists) >= 0).all()


@given(setup=search_setups(), l=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_distances_are_true_distances(setup, l):
    data, adj, seed = setup
    s = KNNGraphSearcher(adj, data, seed=seed)
    q = data[1]
    res = s.query(q, l=l, epsilon=0.2)
    from repro.distances.dense import sqeuclidean
    for vid, d in zip(res.ids, res.dists):
        assert d == pytest.approx(sqeuclidean(q, data[int(vid)]), rel=1e-5)


@given(setup=search_setups())
@settings(max_examples=30, deadline=None)
def test_result_never_better_than_exact(setup):
    """Approximate results are a subset of the dataset, so their
    distances are >= the true k-NN distances, pointwise."""
    data, adj, seed = setup
    s = KNNGraphSearcher(adj, data, seed=seed)
    q = data[2]
    res = s.query(q, l=5, epsilon=0.3)
    _, true_d = brute_force_neighbors(data, q.reshape(1, -1), k=5)
    got = np.sort(res.dists)[:5]
    want = np.sort(true_d[0])
    for g, w in zip(got, want):
        assert g >= w - 1e-9


@given(setup=search_setups())
@settings(max_examples=25, deadline=None)
def test_visited_counts_bounded(setup):
    data, adj, seed = setup
    s = KNNGraphSearcher(adj, data, seed=seed)
    res = s.query(data[0], l=5, epsilon=0.1)
    assert res.n_visited <= len(data)
    assert res.n_distance_evals <= len(data)
    assert res.n_distance_evals >= len(res.ids)
