"""Metric axioms, property-based.

Section 2 requires theta symmetric with values in [0, inf); the true
metrics additionally satisfy the triangle inequality and identity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import dense, sparse

vec = hnp.arrays(
    np.float64, st.integers(2, 12),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
)


def paired(n=2):
    """n same-length float vectors."""
    return st.integers(2, 12).flatmap(
        lambda d: st.tuples(*[
            hnp.arrays(np.float64, d,
                       elements=st.floats(-50, 50, allow_nan=False))
            for _ in range(n)
        ])
    )


METRICS = [dense.euclidean, dense.sqeuclidean, dense.manhattan,
           dense.chebyshev, dense.cosine, dense.hamming]
TRUE_METRICS = [dense.euclidean, dense.manhattan, dense.chebyshev]


@given(ab=paired(2))
@settings(max_examples=150, deadline=None)
def test_symmetry(ab):
    a, b = ab
    for m in METRICS:
        assert m(a, b) == m(b, a)


@given(ab=paired(2))
@settings(max_examples=150, deadline=None)
def test_nonnegative(ab):
    a, b = ab
    for m in METRICS:
        assert m(a, b) >= 0.0


@given(a=vec)
@settings(max_examples=100, deadline=None)
def test_self_distance_zero(a):
    for m in (dense.euclidean, dense.sqeuclidean, dense.manhattan,
              dense.chebyshev, dense.hamming):
        assert m(a, a) == 0.0


@given(abc=paired(3))
@settings(max_examples=150, deadline=None)
def test_triangle_inequality(abc):
    a, b, c = abc
    for m in TRUE_METRICS:
        assert m(a, c) <= m(a, b) + m(b, c) + 1e-9


@given(ab=paired(2))
@settings(max_examples=100, deadline=None)
def test_sqeuclidean_is_euclidean_squared(ab):
    a, b = ab
    np.testing.assert_allclose(
        dense.sqeuclidean(a, b), dense.euclidean(a, b) ** 2, rtol=1e-9, atol=1e-12)


@given(ab=paired(2))
@settings(max_examples=100, deadline=None)
def test_cosine_bounded(ab):
    a, b = ab
    assert 0.0 <= dense.cosine(a, b) <= 2.0 + 1e-12


@given(ab=paired(2))
@settings(max_examples=80, deadline=None)
def test_cosine_scale_invariant(ab):
    a, b = ab
    # Norms below ~1e-154 square into subnormals, where the cosine's
    # dot/norm accumulation has no relative precision left and scale
    # invariance genuinely breaks down in float64.
    if np.linalg.norm(a) < 1e-100 or np.linalg.norm(b) < 1e-100:
        return
    np.testing.assert_allclose(
        dense.cosine(a, b), dense.cosine(3.0 * a, 0.5 * b), atol=1e-9)


sets = st.lists(st.integers(0, 100), min_size=0, max_size=30)


@given(sa=sets, sb=sets)
@settings(max_examples=150, deadline=None)
def test_jaccard_axioms(sa, sb):
    a = sparse.as_sorted_set(sa)
    b = sparse.as_sorted_set(sb)
    d = sparse.jaccard(a, b)
    assert 0.0 <= d <= 1.0
    assert sparse.jaccard(b, a) == d
    assert sparse.jaccard(a, a) == 0.0


@given(sa=sets, sb=sets, sc=sets)
@settings(max_examples=120, deadline=None)
def test_jaccard_triangle(sa, sb, sc):
    # Jaccard distance is a metric: triangle inequality holds.
    a, b, c = (sparse.as_sorted_set(x) for x in (sa, sb, sc))
    assert sparse.jaccard(a, c) <= sparse.jaccard(a, b) + sparse.jaccard(b, c) + 1e-12


@given(sa=sets, sb=sets)
@settings(max_examples=100, deadline=None)
def test_dice_vs_jaccard_relation(sa, sb):
    # dice = 2j/(1+j) similarity relation implies dice distance <= jaccard.
    a = sparse.as_sorted_set(sa)
    b = sparse.as_sorted_set(sb)
    assert sparse.dice(a, b) <= sparse.jaccard(a, b) + 1e-12


@given(ab=paired(2))
@settings(max_examples=60, deadline=None)
def test_one_to_many_consistency(ab):
    a, b = ab
    X = np.stack([b, a, (a + b) / 2])
    for scalar, batch in [
        (dense.euclidean, dense.euclidean_one_to_many),
        (dense.cosine, dense.cosine_one_to_many),
        (dense.manhattan, dense.manhattan_one_to_many),
    ]:
        got = batch(a, X)
        want = [scalar(a, X[i]) for i in range(3)]
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)
