"""Fault-tolerance properties over random fault plans and message storms.

The contract under test: with reliable delivery on, *any* seeded plan of
drop/duplicate/delay/reorder faults yields exactly-once handler effects
and a terminating barrier — the injected network is an adversary the
recovery layer must fully mask.  Drop rates are capped below 1.0 so the
default retry budget (32 attempts) makes residual failure probability
negligible (< 1e-12 per message at rate 0.4).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.runtime.faults import FaultInjector, FaultPlan, make_injector
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld


@st.composite
def fault_plans(draw):
    return FaultPlan(
        seed=draw(st.integers(0, 2**31 - 1)),
        drop_rate=draw(st.floats(0.0, 0.4)),
        dup_rate=draw(st.floats(0.0, 0.5)),
        reorder_rate=draw(st.floats(0.0, 1.0)),
        delay_rate=draw(st.floats(0.0, 0.5)),
        max_delay_ticks=draw(st.integers(1, 4)),
    )


@st.composite
def faulty_storms(draw):
    p = draw(st.integers(2, 5))
    msgs = draw(st.lists(
        st.tuples(st.integers(0, p - 1), st.integers(0, p - 1),
                  st.integers(0, 2)),
        min_size=1, max_size=40,
    ))
    flush = draw(st.integers(1, 16))
    plan = draw(fault_plans())
    return p, msgs, flush, plan


def build_world(p, flush, plan, reliable):
    cfg = ClusterConfig(nodes=p, procs_per_node=1)
    cluster = SimCluster(cfg, injector=make_injector(plan, cfg.world_size))
    world = YGMWorld(cluster, flush_threshold=flush, reliable=reliable,
                     retry_timeout=1)
    log = []

    def relay(ctx, hops, tag):
        log.append((ctx.rank, hops, tag))
        if hops > 0:
            ctx.async_call((ctx.rank + 1) % ctx.world_size, "relay",
                           hops - 1, tag)

    world.register_handler("relay", relay)
    return world, log


def run_storm(p, msgs, flush, plan, reliable):
    world, log = build_world(p, flush, plan, reliable)
    expected = 0
    for tag, (src, dest, hops) in enumerate(msgs):
        world.async_call(src, dest, "relay", hops, tag, nbytes=8)
        expected += 1 + hops
    world.barrier()
    return world, log, expected


@given(storm=faulty_storms())
@settings(max_examples=60, deadline=None, derandomize=True)
def test_reliable_mode_is_exactly_once_under_any_plan(storm):
    """Drop/dup/delay/reorder faults never change handler effects:
    every message (including handler-generated forwards) runs exactly
    once and the barrier terminates quiescent."""
    p, msgs, flush, plan = storm
    world, log, expected = run_storm(p, msgs, flush, plan, reliable=True)
    assert len(log) == expected
    assert world.handler_invocations == expected
    assert world.cluster.all_quiescent()
    assert not world._reliable_pending()


@given(storm=faulty_storms())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_reliable_mode_matches_fault_free_effects(storm):
    """The multiset of handler effects equals the fault-free run's —
    reliability makes the adversarial network indistinguishable."""
    p, msgs, flush, plan = storm
    _w1, faulty_log, _n = run_storm(p, msgs, flush, plan, reliable=True)
    _w2, clean_log, _n2 = run_storm(p, msgs, flush, None, reliable=False)
    assert sorted(faulty_log) == sorted(clean_log)


@given(storm=faulty_storms())
@settings(max_examples=30, deadline=None, derandomize=True)
def test_faulty_run_replays_identically(storm):
    """Same plan + same program => bit-identical delivery log and fault
    counters (the injector draws from a keyed stream in call order)."""
    p, msgs, flush, plan = storm
    w1, log1, _ = run_storm(p, msgs, flush, plan, reliable=True)
    w2, log2, _ = run_storm(p, msgs, flush, plan, reliable=True)
    assert log1 == log2
    assert w1.fault_stats.snapshot() == w2.fault_stats.snapshot()


@given(plan=fault_plans(), n=st.integers(1, 512))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_plan_signature_replays_byte_identically(plan, n):
    clone = FaultPlan(
        seed=plan.seed, drop_rate=plan.drop_rate, dup_rate=plan.dup_rate,
        reorder_rate=plan.reorder_rate, delay_rate=plan.delay_rate,
        max_delay_ticks=plan.max_delay_ticks)
    assert plan.signature(n) == clone.signature(n)
    assert plan.signature(n) == FaultPlan(seed=plan.seed).signature(n)


@given(plan=fault_plans())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_injector_decision_stream_deterministic(plan):
    a, b = FaultInjector(plan, 4), FaultInjector(plan, 4)
    for _ in range(100):
        assert a.on_deliver(0, 1) == b.on_deliver(0, 1)
        ra, rb = a.maybe_reorder(5), b.maybe_reorder(5)
        assert (ra is None) == (rb is None)
        if ra is not None:
            assert list(ra) == list(rb)
        assert a.maybe_stall() == b.maybe_stall()
    assert a.stats.snapshot() == b.stats.snapshot()


@given(storm=faulty_storms())
@settings(max_examples=30, deadline=None, derandomize=True)
def test_unreliable_mode_still_terminates(storm):
    """Without reliability, faults may lose messages but the barrier
    must still quiesce (no hangs from delayed/duplicated traffic)."""
    p, msgs, flush, plan = storm
    world, log, expected = run_storm(p, msgs, flush, plan, reliable=False)
    assert len(log) <= expected + world.fault_stats.duplicated * 3
    assert world.cluster.all_quiescent()
