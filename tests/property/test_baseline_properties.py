"""Property tests for the taxonomy baselines (kdtree / LSH / PQ)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_neighbors
from repro.baselines.kdtree import KDTree
from repro.baselines.lsh import LSHIndex
from repro.baselines.pq import PQIndex


@st.composite
def datasets(draw):
    n = draw(st.integers(20, 80))
    dim = draw(st.sampled_from([2, 4, 8]))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    return rng.random((n, dim)).astype(np.float32), seed


@given(setup=datasets(), k=st.integers(1, 6),
       leaf=st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_kdtree_exact_mode_is_exact(setup, k, leaf):
    """The branch-and-bound search must be exact for every dataset,
    leaf size, and k — the defining property of the tree."""
    data, seed = setup
    k = min(k, len(data))
    tree = KDTree(data, leaf_size=leaf)
    want, want_d = brute_force_neighbors(data, data[:5], k=k)
    for i in range(5):
        res = tree.query(data[i], k=k)
        np.testing.assert_allclose(np.sort(res.dists), np.sort(want_d[i]),
                                   rtol=1e-5, atol=1e-9)


@given(setup=datasets())
@settings(max_examples=25, deadline=None)
def test_kdtree_bounded_mode_subset_of_exact_cost(setup):
    data, seed = setup
    tree = KDTree(data, leaf_size=4)
    exact = tree.query(data[0], k=3)
    fast = tree.query(data[0], k=3, max_leaves=1)
    assert fast.n_distance_evals <= exact.n_distance_evals
    assert len(fast.ids) <= 3


@given(setup=datasets(), tables=st.integers(1, 8), bits=st.integers(1, 10))
@settings(max_examples=25, deadline=None)
def test_lsh_indexes_every_point_once_per_table(setup, tables, bits):
    data, seed = setup
    idx = LSHIndex(data, metric="cosine", n_tables=tables, n_bits=bits,
                   seed=seed)
    for table in idx._tables:
        members = np.concatenate(list(table.values()))
        assert sorted(members.tolist()) == list(range(len(data)))


@given(setup=datasets())
@settings(max_examples=25, deadline=None)
def test_lsh_self_bucket_membership(setup):
    """A dataset point always collides with itself in every table."""
    data, seed = setup
    idx = LSHIndex(data, metric="sqeuclidean", n_tables=4, n_bits=4,
                   seed=seed)
    for i in range(0, len(data), max(1, len(data) // 5)):
        assert i in idx.candidates(data[i])


@given(setup=datasets(), m_choice=st.integers(0, 2))
@settings(max_examples=25, deadline=None)
def test_pq_full_rerank_is_exact(setup, m_choice):
    """With rerank = n, PQ degenerates to exact search: the ADC stage
    only orders candidates, and all of them get exact distances."""
    data, seed = setup
    divisors = [m for m in (1, 2, 4) if data.shape[1] % m == 0]
    m = divisors[m_choice % len(divisors)]
    idx = PQIndex(data, m=m, n_centroids=16, seed=seed)
    k = min(3, len(data))
    want, want_d = brute_force_neighbors(data, data[:3], k=k)
    for i in range(3):
        res = idx.query(data[i], k=k, rerank=len(data))
        np.testing.assert_allclose(np.sort(res.dists), np.sort(want_d[i]),
                                   rtol=1e-5, atol=1e-9)


@given(setup=datasets(), m_choice=st.integers(0, 1))
@settings(max_examples=20, deadline=None)
def test_pq_codes_within_codebook(setup, m_choice):
    data, seed = setup
    divisors = [m for m in (2, 4, 1) if data.shape[1] % m == 0]
    m = divisors[m_choice % len(divisors)]
    idx = PQIndex(data, m=m, n_centroids=8, seed=seed)
    assert idx.codes.max() < idx.codebooks.shape[1]
    assert idx.codes.shape == (len(data), m)
