"""NN-Descent behavioural properties on small random instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.config import NNDescentConfig
from repro.core.nndescent import NNDescent
from repro.eval.recall import graph_recall


@st.composite
def instances(draw):
    n = draw(st.integers(30, 90))
    dim = draw(st.integers(2, 6))
    k = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    data = rng.random((n, dim)).astype(np.float32)
    return data, k, seed


@given(inst=instances())
@settings(max_examples=25, deadline=None)
def test_output_always_structurally_valid(inst):
    data, k, seed = inst
    res = NNDescent(data, NNDescentConfig(k=k, seed=seed)).build()
    res.graph.validate()
    assert res.graph.n == len(data)
    assert res.graph.k == k


@given(inst=instances())
@settings(max_examples=20, deadline=None)
def test_distances_are_true_distances(inst):
    """Every stored neighbor distance equals theta(v, u) recomputed."""
    from repro.distances.dense import sqeuclidean

    data, k, seed = inst
    res = NNDescent(data, NNDescentConfig(k=k, seed=seed)).build()
    g = res.graph
    for v in range(0, g.n, max(1, g.n // 10)):
        ids, dists = g.neighbors(v)
        for u, d in zip(ids, dists):
            assert abs(d - sqeuclidean(data[v], data[int(u)])) < 1e-5


@given(inst=instances())
@settings(max_examples=15, deadline=None)
def test_reasonable_recall_on_random_data(inst):
    """Even on structure-free uniform data, NN-Descent beats random
    neighbor lists by a wide margin.  (At k=2 the candidate propagation
    has almost no slack — see the planted-neighbors unit test — so the
    bound is deliberately loose; random lists score ~k/n ~ 0.05.)"""
    data, k, seed = inst
    res = NNDescent(data, NNDescentConfig(k=k, seed=seed)).build()
    truth = brute_force_knn_graph(data, k=k)
    assert graph_recall(res.graph, truth) > 0.3


@given(inst=instances())
@settings(max_examples=15, deadline=None)
def test_update_counts_eventually_below_threshold(inst):
    data, k, seed = inst
    cfg = NNDescentConfig(k=k, seed=seed, delta=0.01, max_iters=40)
    res = NNDescent(data, cfg).build()
    if res.converged:
        assert res.update_counts[-1] < cfg.delta * k * len(data)
    else:
        assert res.iterations == cfg.max_iters
