"""Batch execution engine — bit-identity with the scalar path.

The whole contract of ``DNNDConfig.batch_exec`` (coalesced YGM
delivery, rowwise distance kernels, bulk heap updates) is that it is a
pure implementation optimization: every observable output — the graph
arrays, simulated seconds, per-type message statistics, update counters,
distance-eval counts, and the optimized adjacency — must be *bitwise*
equal to the scalar engine's.  These tests pin that across cluster
shapes, both comm-opt modes, and a fault-injected reliable run.
"""

import numpy as np
import pytest

from repro import DNND, ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig
from repro.runtime.faults import FaultPlan

N, DIM, K = 150, 12, 6


def _run(batch_exec, nodes=2, ppn=2, opts=None, plan=None, reliable=False):
    rng = np.random.default_rng(7)
    data = rng.standard_normal((N, DIM))
    cfg = DNNDConfig(nnd=NNDescentConfig(k=K, seed=3),
                     comm_opts=opts or CommOptConfig.optimized(),
                     batch_size=1 << 10, batch_exec=batch_exec,
                     backend="sim")
    kwargs = {}
    if plan is not None:
        kwargs = {"fault_plan": plan, "reliable": reliable}
    dnnd = DNND(data, cfg,
                cluster=ClusterConfig(nodes=nodes, procs_per_node=ppn),
                **kwargs)
    res = dnnd.build()
    adjacency = dnnd.optimize().to_arrays()
    return res, adjacency


def _assert_identical(scalar, batched):
    res_s, adj_s = scalar
    res_b, adj_b = batched
    # Graph bits: ids exactly, distances byte-for-byte.
    assert np.array_equal(res_s.graph.ids, res_b.graph.ids)
    assert res_s.graph.dists.tobytes() == res_b.graph.dists.tobytes()
    # Cost model and counters.
    assert res_s.sim_seconds == res_b.sim_seconds
    assert res_s.iterations == res_b.iterations
    assert res_s.distance_evals == res_b.distance_evals
    assert list(res_s.update_counts) == list(res_b.update_counts)
    assert res_s.message_stats.snapshot() == res_b.message_stats.snapshot()
    # Optimized adjacency (Section 4.5 output), array for array.
    assert set(adj_s) == set(adj_b)
    for key in adj_s:
        a, b = adj_s[key], adj_b[key]
        if hasattr(a, "shape"):
            assert np.array_equal(a, b), key
        else:
            assert a == b, key


@pytest.mark.parametrize("nodes,ppn", [(1, 2), (2, 2), (3, 2)])
def test_batched_bit_identical_across_cluster_shapes(nodes, ppn):
    _assert_identical(_run(False, nodes=nodes, ppn=ppn),
                      _run(True, nodes=nodes, ppn=ppn))


def test_batched_bit_identical_unoptimized_comm():
    opts = CommOptConfig.unoptimized()
    _assert_identical(_run(False, opts=opts), _run(True, opts=opts))


def test_batched_bit_identical_under_faults_with_reliable_delivery():
    # Coalescing must compose with the reliable seq/ack protocol: the
    # fault injector sees the same per-message stream either way.
    plan = FaultPlan(seed=11, drop_rate=0.02, dup_rate=0.02,
                     reorder_rate=0.05, delay_rate=0.03)
    scalar = _run(False, plan=plan, reliable=True)
    batched = _run(True, plan=plan, reliable=True)
    _assert_identical(scalar, batched)
    assert scalar[0].fault_stats.snapshot() == batched[0].fault_stats.snapshot()
