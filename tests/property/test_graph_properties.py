"""Graph container and optimization properties."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import AdjacencyGraph, KNNGraph
from repro.core.optimization import merge_reverse_edges, optimize_graph


@st.composite
def knn_graphs(draw):
    """Random valid KNNGraph: sorted rows, no dups, no self-loops."""
    n = draw(st.integers(3, 24))
    k = draw(st.integers(1, min(6, n - 1)))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    for v in range(n):
        others = np.setdiff1d(np.arange(n), [v])
        pick = rng.choice(others, size=k, replace=False)
        d = np.sort(rng.random(k))
        ids[v] = pick
        dists[v] = d
    return KNNGraph(ids, dists)


@given(g=knn_graphs())
@settings(max_examples=60, deadline=None)
def test_generated_graphs_valid(g):
    g.validate()


@given(g=knn_graphs())
@settings(max_examples=60, deadline=None)
def test_adjacency_preserves_edges(g):
    adj = g.to_adjacency()
    assert adj.edge_set() == g.edge_set()
    adj.validate()


@given(g=knn_graphs())
@settings(max_examples=60, deadline=None)
def test_merge_reverse_is_symmetric_closure(g):
    merged = merge_reverse_edges(g)
    edges = {(v, u) for v in range(g.n) for u, _ in merged[v]}
    # Symmetric:
    assert all((u, v) in edges for v, u in edges)
    # Contains the original edges:
    assert g.edge_set() <= edges
    # Contains nothing else:
    expected = g.edge_set() | {(u, v) for v, u in g.edge_set()}
    assert edges == expected


@given(g=knn_graphs(), m=st.floats(1.0, 3.0))
@settings(max_examples=60, deadline=None)
def test_optimize_degree_cap(g, m):
    adj = optimize_graph(g, pruning_factor=m)
    assert adj.degrees().max() <= int(np.ceil(g.k * m))
    adj.validate()


@given(g=knn_graphs())
@settings(max_examples=60, deadline=None)
def test_optimize_keeps_closest_edges(g):
    """Pruning keeps each vertex's closest merged neighbors."""
    adj = optimize_graph(g, pruning_factor=1.0)
    merged = merge_reverse_edges(g)
    for v in range(g.n):
        kept_ids, kept_d = adj.neighbors(v)
        want = merged[v][: len(kept_ids)]
        assert [u for u, _ in want] == kept_ids.tolist()
        np.testing.assert_allclose([d for _, d in want], kept_d)


@given(g=knn_graphs())
@settings(max_examples=40, deadline=None)
def test_sort_rows_idempotent(g):
    s1 = g.sort_rows()
    s2 = s1.sort_rows()
    np.testing.assert_array_equal(s1.ids, s2.ids)
    np.testing.assert_allclose(s1.dists, s2.dists)


@given(g=knn_graphs())
@settings(max_examples=40, deadline=None)
def test_arrays_roundtrip(g):
    g2 = KNNGraph.from_arrays(g.to_arrays())
    np.testing.assert_array_equal(g.ids, g2.ids)
    adj = g.to_adjacency()
    adj2 = AdjacencyGraph.from_arrays(adj.to_arrays())
    np.testing.assert_array_equal(adj.indices, adj2.indices)
