"""Section 4.5 — k-NN graph optimizations for search quality.

Two post-construction transforms, both from PyNNDescent:

1. **Reverse-edge merge** — add every edge in the opposite direction
   (union the graph with its transpose), removing duplicates.  This
   densifies connectivity so greedy search escapes local minima.
2. **Degree pruning** — the merge can blow up in-degree-heavy vertices;
   cap every adjacency list at ``k * m`` closest neighbors
   (``m >= 1``, paper default 1.5).

The functions here are the shared-memory reference; DNND performs the
same transform with messages (each rank ships reverse edges to the
owning ranks) and the tests assert both produce identical graphs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigError
from .graph import EMPTY, AdjacencyGraph, KNNGraph


def merge_reverse_edges(graph: KNNGraph) -> List[List[Tuple[int, float]]]:
    """Per-vertex neighbor lists of ``G ∪ G^T`` with duplicates removed.

    Returns ragged ``[(neighbor, dist), ...]`` lists sorted ascending by
    ``(dist, id)``.
    """
    n = graph.n
    merged: List[Dict[int, float]] = [dict() for _ in range(n)]
    rows, cols = np.nonzero(graph.ids != EMPTY)
    for r, c in zip(rows, cols):
        u = int(graph.ids[r, c])
        d = float(graph.dists[r, c])
        v = int(r)
        # Forward edge v -> u and reverse edge u -> v; distances are
        # symmetric (Section 2), so a duplicate keeps the smaller value
        # defensively.
        if u != v:
            prev = merged[v].get(u)
            if prev is None or d < prev:
                merged[v][u] = d
            prev = merged[u].get(v)
            if prev is None or d < prev:
                merged[u][v] = d
    out: List[List[Tuple[int, float]]] = []
    for v in range(n):
        lst = sorted(merged[v].items(), key=lambda t: (t[1], t[0]))
        out.append(lst)
    return out


def prune_neighborhoods(
    neighbor_lists: List[List[Tuple[int, float]]], max_degree: int
) -> List[List[Tuple[int, float]]]:
    """Keep at most ``max_degree`` closest neighbors per vertex."""
    if max_degree < 1:
        raise ConfigError(f"max_degree must be >= 1, got {max_degree}")
    return [lst[:max_degree] for lst in neighbor_lists]


def optimize_graph(graph: KNNGraph, pruning_factor: float = 1.5) -> AdjacencyGraph:
    """Full Section 4.5 pipeline: reverse merge then prune to ``k * m``.

    Parameters
    ----------
    graph:
        The fixed-degree k-NNG produced by NN-Descent/DNND.
    pruning_factor:
        ``m`` — per-vertex degree cap is ``ceil(k * m)``.
    """
    if pruning_factor < 1.0:
        raise ConfigError(f"pruning_factor (m) must be >= 1.0, got {pruning_factor}")
    max_degree = int(np.ceil(graph.k * pruning_factor))
    merged = merge_reverse_edges(graph)
    pruned = prune_neighborhoods(merged, max_degree)
    return AdjacencyGraph.from_edge_lists(pruned)
