"""Greedy ANN search on a k-NN graph — Section 3.3.

The paper's query program (used to produce Figure 2) implements the
PyNNDescent search: two heaps — a *frontier* min-heap of vertices to
expand (closest first) and an *l-NN* max-heap of the best ``l`` results
(farthest on top) — and the ``epsilon`` relaxation: a point ``p`` joins
the frontier when ``(epsilon + 1) * d_max > theta(q, p)``, where
``d_max`` is the current worst result distance.  ``epsilon = 0`` is the
plain greedy search; larger values widen the explored region, trading
queries/second for recall — exactly the sweep of Figure 2.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..distances.counting import CountingMetric
from ..errors import SearchError
from ..runtime.metrics import MetricsRegistry, NULL_METRICS
from ..utils.rng import derive_rng
from ..utils.sampling import sample_without_replacement
from .graph import AdjacencyGraph, KNNGraph
from .rptree import RPTreeForest


@dataclass
class SearchResult:
    """One query's outcome.

    ``ids``/``dists`` are ascending by distance.  ``n_distance_evals``
    and ``n_visited`` are the per-query work counters the paper uses to
    cross-check its query program against PyNNDescent (Section 5.3.1).
    """

    ids: np.ndarray
    dists: np.ndarray
    n_distance_evals: int
    n_visited: int


class KNNGraphSearcher:
    """Query engine over an (optimized) k-NN graph.

    Parameters
    ----------
    graph:
        :class:`AdjacencyGraph` (preferred — the Section 4.5 output) or
        a raw :class:`KNNGraph`, which is converted.
    data:
        The dataset the graph was built from (graph-based ANN must keep
        it, as Section 3.2 notes).
    metric:
        Name or Metric; must match the one used at construction.
    entry_forest:
        Optional RP-tree forest: when given, search entry points come
        from the query's leaf instead of uniform random sampling
        (PyNNDescent's start-point refinement, Section 6).
    batch_exec:
        Evaluate each expanded vertex's unvisited neighbors with one
        rowwise kernel call instead of per-neighbor scalar calls.
        Bit-identical to the scalar path (the kernel is row-exact and
        the accept/push decisions replay sequentially); automatically
        falls back for sparse metrics or non-array datasets.
    kernel:
        Batched kernel implementation for the frontier expansion:
        ``"rowwise"`` (bit-exact, the default) or ``"blocked"``
        (tiled GEMM, DESIGN.md section 17); ``None`` defers to
        ``REPRO_KERNEL``.
    """

    def __init__(self, graph, data, metric: str = "sqeuclidean",
                 entry_forest: Optional[RPTreeForest] = None,
                 seed: int = 0, batch_exec: bool = True,
                 metrics: "MetricsRegistry | None" = None,
                 kernel: str | None = None) -> None:
        if isinstance(graph, KNNGraph):
            graph = graph.to_adjacency()
        if not isinstance(graph, AdjacencyGraph):
            raise SearchError(f"unsupported graph type {type(graph).__name__}")
        if graph.n == 0:
            raise SearchError("cannot search an empty graph")
        if graph.n != len(data):
            raise SearchError(
                f"graph has {graph.n} vertices but dataset has {len(data)} rows"
            )
        self.graph = graph
        self.data = data
        self.metric = CountingMetric(metric, kernel=kernel)
        self.entry_forest = entry_forest
        self._rng = derive_rng(seed, 0x5EA6C4)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.batch_exec = bool(batch_exec)
        self._use_batch = (self.batch_exec
                           and not self.metric.sparse_input
                           and isinstance(data, np.ndarray)
                           and data.ndim == 2)

    def clone(self, seed: int) -> "KNNGraphSearcher":
        """A new searcher sharing this one's graph/data/metric but with
        an independent entry-point RNG — what thread-parallel batch
        execution needs (``repro.eval.parallel_query``), since a numpy
        Generator is not safe to share across threads."""
        return KNNGraphSearcher(self.graph, self.data,
                                metric=self.metric.inner,
                                entry_forest=self.entry_forest, seed=seed,
                                batch_exec=self.batch_exec,
                                metrics=self.metrics if self.metrics.enabled
                                else None,
                                kernel=self.metric.kernel)

    # -- single query ----------------------------------------------------------

    def query(self, q: np.ndarray, l: int = 10, epsilon: float = 0.0) -> SearchResult:
        """Find ``l`` approximate nearest neighbors of ``q``.

        ``q`` need not be in the indexed dataset and ``l`` may exceed the
        graph's ``k`` (Section 3.3).
        """
        if not self.metrics.enabled:
            return self._query_impl(q, l, epsilon)
        with self.metrics.span("query", cat="query", l=l):
            res = self._query_impl(q, l, epsilon)
        self.metrics.inc("search.queries")
        self.metrics.inc("search.visited", res.n_visited)
        self.metrics.inc("distance.evals", res.n_distance_evals)
        return res

    def _query_impl(self, q: np.ndarray, l: int, epsilon: float) -> SearchResult:
        if l < 1:
            raise SearchError(f"l must be >= 1, got {l}")
        if epsilon < 0:
            raise SearchError(f"epsilon must be >= 0, got {epsilon}")
        n = self.graph.n
        l_eff = min(l, n)
        evals = 0

        if not self.metric.sparse_input:
            q_arr = np.asarray(q)
            if q_arr.ndim != 1:
                raise SearchError("query must be a 1-D vector")
            dim = self.data[0].shape[0] if hasattr(self.data[0], "shape") else len(self.data[0])
            if q_arr.shape[0] != dim:
                raise SearchError(
                    f"query dim {q_arr.shape[0]} != dataset dim {dim}"
                )

        entries = self._entry_points(q, l_eff)

        visited = np.zeros(n, dtype=bool)
        # l-NN max-heap: python heapq is a min-heap, store negated dists.
        result: List[Tuple[float, int]] = []  # (-dist, id)
        # frontier min-heap: (dist, id)
        frontier: List[Tuple[float, int]] = []

        distance_scale = 1.0 + epsilon

        for p in entries:
            if visited[p]:
                continue
            visited[p] = True
            d = self.metric(q, self.data[int(p)])
            evals += 1
            heapq.heappush(frontier, (d, int(p)))
            _result_push(result, l_eff, d, int(p))

        bound = distance_scale * _worst(result, l_eff)

        use_batch = self._use_batch
        while frontier:
            d_p, p = heapq.heappop(frontier)
            # Termination B: the closest frontier point is already beyond
            # the (relaxed) worst result.
            if d_p > bound:
                break
            nbr_ids, _ = self.graph.neighbors(p)
            if use_batch:
                # The scalar loop evaluates EVERY unvisited neighbor
                # (the bound only gates pushes), so collecting them
                # first and computing one rowwise kernel call is exact;
                # accept decisions then replay in neighbor order.
                todo, dists_w = self._expand_batch(q_arr, visited, nbr_ids)
                evals += len(todo)
                for w, d in zip(todo, dists_w):
                    if d < bound:
                        heapq.heappush(frontier, (d, w))
                        if _result_push(result, l_eff, d, w):
                            bound = distance_scale * _worst(result, l_eff)
                continue
            for w in nbr_ids:
                w = int(w)
                if visited[w]:
                    continue
                visited[w] = True
                d = self.metric(q, self.data[w])
                evals += 1
                if d < bound:
                    heapq.heappush(frontier, (d, w))
                    if _result_push(result, l_eff, d, w):
                        bound = distance_scale * _worst(result, l_eff)

        out = sorted(((-nd, i) for nd, i in result), key=lambda t: (t[0], t[1]))
        ids = np.array([i for _, i in out], dtype=np.int64)
        dists = np.array([d for d, _ in out], dtype=np.float64)
        return SearchResult(ids=ids, dists=dists, n_distance_evals=evals,
                            n_visited=int(visited.sum()))

    def query_radius(self, q: np.ndarray, radius: float,
                     l: int = 10, epsilon: float = 0.1,
                     max_results: int = 10_000) -> SearchResult:
        """All indexed points within ``radius`` of ``q`` (approximate).

        Runs the greedy search seeded as usual, but keeps expanding
        while the frontier stays inside ``(1 + epsilon) * radius`` and
        collects every point whose distance is <= ``radius``.  Like the
        k-NN search, completeness is approximate: points in graph
        regions the traversal never reaches can be missed, and
        ``epsilon`` widens the explored band.
        """
        if radius < 0:
            raise SearchError(f"radius must be >= 0, got {radius}")
        if max_results < 1:
            raise SearchError("max_results must be >= 1")
        n = self.graph.n
        # Phase 1: greedy descent — random entries usually start far
        # outside the radius, so first navigate toward q exactly like
        # the k-NN search.
        seed = self.query(q, l=min(l, n), epsilon=epsilon)
        visited = np.zeros(n, dtype=bool)
        hits: List[Tuple[float, int]] = []
        frontier: List[Tuple[float, int]] = []
        bound = (1.0 + epsilon) * radius
        evals = seed.n_distance_evals
        for vid, d in zip(seed.ids, seed.dists):
            vid = int(vid)
            visited[vid] = True
            if d <= bound:
                heapq.heappush(frontier, (float(d), vid))
            if d <= radius:
                hits.append((float(d), vid))
        # Phase 2: flood the region within the (relaxed) radius.
        use_batch = self._use_batch
        q_arr = np.asarray(q) if use_batch else None
        while frontier and len(hits) < max_results:
            d_p, p = heapq.heappop(frontier)
            nbr_ids, _ = self.graph.neighbors(p)
            if use_batch:
                todo, dists_w = self._expand_batch(q_arr, visited, nbr_ids)
                evals += len(todo)
                for w, d in zip(todo, dists_w):
                    if d <= bound:
                        heapq.heappush(frontier, (d, w))
                    if d <= radius:
                        hits.append((d, w))
                continue
            for w in nbr_ids:
                w = int(w)
                if visited[w]:
                    continue
                visited[w] = True
                d = self.metric(q, self.data[w])
                evals += 1
                if d <= bound:
                    heapq.heappush(frontier, (d, w))
                if d <= radius:
                    hits.append((d, w))
        hits.sort(key=lambda t: (t[0], t[1]))
        hits = hits[:max_results]
        return SearchResult(
            ids=np.array([i for _, i in hits], dtype=np.int64),
            dists=np.array([d for d, _ in hits], dtype=np.float64),
            n_distance_evals=evals,
            n_visited=int(visited.sum()),
        )

    # -- batch queries ----------------------------------------------------------

    def query_batch(self, queries, l: int = 10,
                    epsilon: float = 0.0) -> Tuple[np.ndarray, np.ndarray, dict]:
        """Run many queries; returns ``(ids, dists, stats)`` where ids is
        ``(nq, l)`` (padded with -1 when fewer than ``l`` found)."""
        nq = len(queries)
        ids = np.full((nq, l), -1, dtype=np.int64)
        dists = np.full((nq, l), np.inf, dtype=np.float64)
        total_evals = 0
        total_visited = 0
        for i in range(nq):
            res = self.query(queries[i], l=l, epsilon=epsilon)
            found = len(res.ids)
            ids[i, :found] = res.ids[:l]
            dists[i, :found] = res.dists[:l]
            total_evals += res.n_distance_evals
            total_visited += res.n_visited
        stats = {
            "n_queries": nq,
            "mean_distance_evals": total_evals / max(1, nq),
            "mean_visited": total_visited / max(1, nq),
        }
        return ids, dists, stats

    # -- internals ----------------------------------------------------------

    def _expand_batch(self, q_arr: np.ndarray, visited: np.ndarray,
                      nbr_ids) -> Tuple[List[int], List[float]]:
        """Mark and evaluate the unvisited members of ``nbr_ids``.

        Returns ``(todo, dists)`` in neighbor order.  The rowwise kernel
        is bitwise row-exact against the scalar metric, so callers can
        replay their per-neighbor decisions on the precomputed values.
        """
        todo: List[int] = []
        for w in nbr_ids:
            w = int(w)
            if not visited[w]:
                visited[w] = True
                todo.append(w)
        if not todo:
            return todo, []
        rows = self.data[todo]
        qm = np.broadcast_to(q_arr, rows.shape)
        return todo, self.metric.rowwise(qm, rows).tolist()

    def _entry_points(self, q, l: int) -> Sequence[int]:
        if self.entry_forest is not None and not self.metric.sparse_input:
            cand = self.entry_forest.candidates_for(np.asarray(q, dtype=np.float64))
            if len(cand) >= l:
                return [int(c) for c in cand[:max(l, 1)]]
            extra = sample_without_replacement(self._rng, self.graph.n, l - len(cand))
            return [int(c) for c in cand] + [int(e) for e in extra]
        picks = sample_without_replacement(self._rng, self.graph.n, l)
        return [int(p) for p in picks]


def _result_push(result: List[Tuple[float, int]], l: int, d: float, vid: int) -> bool:
    """Push into the bounded max-heap; True if the heap changed."""
    if len(result) < l:
        heapq.heappush(result, (-d, vid))
        return True
    if d < -result[0][0]:
        heapq.heapreplace(result, (-d, vid))
        return True
    return False


def _worst(result: List[Tuple[float, int]], l: int) -> float:
    """Current d_max (inf while the result heap is not yet full)."""
    if len(result) < l:
        return np.inf
    return -result[0][0]
