"""Shared-memory NN-Descent — Algorithm 1 of the paper.

This is the reference implementation the distributed version (DNND) is
validated against, written in the PyNNDescent "local join" formulation
that the paper follows:

1. initialize every vertex's heap with ``K`` random neighbors,
2. per iteration, split each heap into *new* entries (flag true, sample
   ``rho*K`` and mark them old) and *old* entries,
3. reverse both lists, sample ``rho*K`` from each reversed list and
   union into the originals,
4. local join: for every vertex, check all new-new pairs (``u1 < u2``)
   and all new-old pairs, pushing improvements into both endpoint heaps,
5. stop when fewer than ``delta * K * N`` pushes succeeded.

Supports random or RP-tree initialization (PyNNDescent's refinement),
and any registered metric, including sparse Jaccard datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..config import NNDescentConfig
from ..distances.counting import CountingMetric
from ..errors import ConfigError
from ..utils.rng import derive_rng
from ..utils.sampling import sample_without_replacement
from .graph import KNNGraph
from .heap import NeighborHeap
from .rptree import make_rp_forest


@dataclass
class NNDescentResult:
    """Outcome of a shared-memory NN-Descent run."""

    graph: KNNGraph
    iterations: int
    update_counts: List[int] = field(default_factory=list)
    distance_evals: int = 0
    converged: bool = False


class NNDescent:
    """Shared-memory NN-Descent builder.

    Parameters
    ----------
    data:
        Dense ``(n, dim)`` matrix or a :class:`~repro.distances.sparse.
        SparseDataset` for set metrics.
    config:
        Algorithm parameters (``k``, ``rho``, ``delta``, ``metric`` ...).
    init_method:
        ``"random"`` (Algorithm 1 lines 2-5) or ``"rptree"``
        (PyNNDescent's forest initialization).
    """

    def __init__(self, data, config: NNDescentConfig,
                 init_method: str = "random",
                 initial_graph: "KNNGraph | None" = None) -> None:
        if init_method not in ("random", "rptree"):
            raise ConfigError(f"unknown init_method {init_method!r}")
        self.data = data
        self.config = config
        self.metric = CountingMetric(config.metric)
        if self.metric.sparse_input and init_method == "rptree":
            raise ConfigError("rptree init requires dense data")
        self.init_method = init_method
        self.n = len(data)
        if config.k >= self.n:
            raise ConfigError(
                f"k={config.k} must be smaller than the dataset size {self.n}"
            )
        if initial_graph is not None and initial_graph.n > self.n:
            raise ConfigError(
                f"initial graph has {initial_graph.n} rows but the dataset "
                f"has only {self.n}"
            )
        self.initial_graph = initial_graph
        self._heaps: List[NeighborHeap] = []

    # -- public API ---------------------------------------------------------

    def build(self, iteration_callback=None) -> NNDescentResult:
        """Run Algorithm 1 to convergence (or ``max_iters``).

        Parameters
        ----------
        iteration_callback:
            Optional ``callback(iteration, update_count, graph_snapshot)``
            invoked after every NN-Descent round with the current graph
            (a :class:`KNNGraph` copy) — used by the convergence
            diagnostics in :mod:`repro.eval.convergence`.
        """
        cfg = self.config
        self._initialize()
        threshold = cfg.delta * cfg.k * self.n
        update_counts: List[int] = []
        converged = False
        iterations = 0
        for it in range(cfg.max_iters):
            iterations = it + 1
            c = self._iterate(it)
            update_counts.append(c)
            if iteration_callback is not None:
                iteration_callback(it, c, self._to_graph())
            if c < threshold:
                converged = True
                break
        return NNDescentResult(
            graph=self._to_graph(),
            iterations=iterations,
            update_counts=update_counts,
            distance_evals=self.metric.count,
            converged=converged,
        )

    # -- phases ------------------------------------------------------------

    def _initialize(self) -> None:
        """Lines 2-5: K random neighbors per vertex (or RP-tree leaves),
        optionally warm-started from a prior graph (the Section 7
        incremental-update scenario: most slots arrive pre-converged and
        delta-termination fires after a short refinement)."""
        cfg = self.config
        rng = derive_rng(cfg.seed, 0xC0FFEE)
        self._heaps = [NeighborHeap(cfg.k) for _ in range(self.n)]
        if self.initial_graph is not None:
            self._warm_start(self.initial_graph)
        if self.init_method == "rptree":
            self._rptree_seed()
        for v in range(self.n):
            heap = self._heaps[v]
            need = cfg.k - len(heap)
            if need <= 0:
                continue
            # Draw a few extra to survive collisions with v/self.
            cand = sample_without_replacement(rng, self.n, min(self.n - 1, need + 2))
            cand = cand[cand != v][:need]
            if cand.size == 0:
                continue
            if self.metric.sparse_input:
                dists = [self.metric(self.data[v], self.data[int(u)]) for u in cand]
            else:
                dists = self.metric.distances_to(self.data[v], self.data[cand])
            for u, d in zip(cand, dists):
                heap.checked_push(int(u), float(d), True)

    def _warm_start(self, graph: "KNNGraph") -> None:
        """Seed heaps from an existing graph's rows.

        Entries are flagged *new* so the first iteration re-checks them
        against the fresh random candidates; stale neighbors (pointing
        at removed rows) are skipped.
        """
        from .graph import EMPTY

        for v in range(min(graph.n, self.n)):
            heap = self._heaps[v]
            row_ids = graph.ids[v]
            row_dists = graph.dists[v]
            for u, d in zip(row_ids, row_dists):
                u = int(u)
                if u == EMPTY or u == v or u >= self.n or not np.isfinite(d):
                    continue
                heap.checked_push(u, float(d), True)

    def _rptree_seed(self) -> None:
        """Seed heaps with intra-leaf candidates from an RP forest."""
        cfg = self.config
        forest = make_rp_forest(
            np.asarray(self.data), n_trees=max(1, min(4, self.n // (cfg.k * 4) or 1)),
            leaf_size=max(cfg.k + 1, 2 * cfg.k), seed=cfg.seed,
        )
        for leaf in forest.leaves():
            members = list(leaf)
            for i, v in enumerate(members):
                others = np.array([u for u in members if u != v], dtype=np.int64)
                if others.size == 0:
                    continue
                dists = self.metric.distances_to(self.data[v], self.data[others])
                heap = self._heaps[v]
                for u, d in zip(others, dists):
                    heap.checked_push(int(u), float(d), True)

    def _iterate(self, iteration: int) -> int:
        """One NN-Descent round (lines 7-22); returns the push counter c."""
        cfg = self.config
        rng = derive_rng(cfg.seed, 1, iteration)
        sample_n = cfg.sample_size

        # Lines 8-10: per-vertex old list and sampled new list.
        new_lists: List[List[int]] = [[] for _ in range(self.n)]
        old_lists: List[List[int]] = [[] for _ in range(self.n)]
        for v in range(self.n):
            heap = self._heaps[v]
            old_lists[v] = heap.old_ids()
            fresh = heap.new_ids()
            if len(fresh) > sample_n:
                pick = sample_without_replacement(rng, len(fresh), sample_n)
                sampled = [fresh[int(i)] for i in pick]
            else:
                sampled = fresh
            for u in sampled:
                heap.mark_old(u)
            new_lists[v] = sampled

        # Lines 11-12: reversed lists.
        new_rev: List[List[int]] = [[] for _ in range(self.n)]
        old_rev: List[List[int]] = [[] for _ in range(self.n)]
        for v in range(self.n):
            for u in new_lists[v]:
                new_rev[u].append(v)
            for u in old_lists[v]:
                old_rev[u].append(v)

        # Lines 14-16: union with sampled reversed lists.
        c = 0
        for v in range(self.n):
            new_c = _union_with_sample(new_lists[v], new_rev[v], sample_n, rng)
            old_c = _union_with_sample(old_lists[v], old_rev[v], sample_n, rng)
            c += self._local_join(v, new_c, old_c)
        return c

    def _local_join(self, v: int, new_c: List[int], old_c: List[int]) -> int:
        """Lines 17-22: neighbor checks among v's candidates."""
        c = 0
        if not new_c:
            return 0
        # Pre-gather features and compute the candidate-block distances in
        # one vectorized call for dense data (the paper's implementations
        # are likewise batched inside a rank).
        if not self.metric.sparse_input:
            all_c = new_c + old_c
            block = self.metric.block(self.data[np.array(new_c)], self.data[np.array(all_c)])
            n_new = len(new_c)
            for i in range(n_new):
                u1 = new_c[i]
                for j in range(i + 1, n_new):
                    u2 = new_c[j]
                    if u1 == u2:
                        continue
                    c += self._push_pair(u1, u2, float(block[i, j]))
                for j in range(len(old_c)):
                    u2 = old_c[j]
                    if u1 == u2:
                        continue
                    c += self._push_pair(u1, u2, float(block[i, n_new + j]))
        else:
            for i, u1 in enumerate(new_c):
                for u2 in new_c[i + 1:]:
                    if u1 == u2:
                        continue
                    c += self._push_pair(u1, u2, self.metric(self.data[u1], self.data[u2]))
                for u2 in old_c:
                    if u1 == u2:
                        continue
                    c += self._push_pair(u1, u2, self.metric(self.data[u1], self.data[u2]))
        return c

    def _push_pair(self, u1: int, u2: int, d: float) -> int:
        """Lines 21-22: atomically update both endpoint heaps."""
        c = self._heaps[u1].checked_push(u2, d, True)
        c += self._heaps[u2].checked_push(u1, d, True)
        return c

    # -- output --------------------------------------------------------------

    def _to_graph(self) -> KNNGraph:
        ids = np.empty((self.n, self.config.k), dtype=np.int64)
        dists = np.empty((self.n, self.config.k), dtype=np.float64)
        for v, heap in enumerate(self._heaps):
            row_ids, row_dists, _ = heap.sorted_arrays()
            ids[v] = row_ids
            dists[v] = row_dists
        return KNNGraph(ids, dists)


def _union_with_sample(base: List[int], reversed_list: Sequence[int],
                       sample_n: int, rng: np.random.Generator) -> List[int]:
    """``base ∪ Sample(reversed_list, sample_n)`` preserving base order."""
    out = list(base)
    seen = set(base)
    if len(reversed_list) > sample_n:
        pick = sample_without_replacement(rng, len(reversed_list), sample_n)
        chosen = [reversed_list[int(i)] for i in pick]
    else:
        chosen = list(reversed_list)
    for u in chosen:
        if u not in seen:
            seen.add(u)
            out.append(u)
    return out


def build_knn_graph(data, k: int = 10, metric: str = "sqeuclidean",
                    rho: float = 0.8, delta: float = 0.001,
                    seed: int = 0, init_method: str = "random",
                    max_iters: int = 30) -> NNDescentResult:
    """Convenience one-call shared-memory builder (quickstart API)."""
    cfg = NNDescentConfig(k=k, rho=rho, delta=delta, metric=metric,
                          seed=seed, max_iters=max_iters)
    return NNDescent(data, cfg, init_method=init_method).build()
