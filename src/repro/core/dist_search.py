"""Distributed ANN search over a rank-partitioned k-NN graph.

The paper constructs the k-NNG distributed and then *gathers* it for a
shared-memory query program (Section 5.3.1) — adequate when the graph
fits one node.  The obvious next step for a "massive-scale framework"
(Section 1's goal; cf. Pyramid in Section 6) is to leave the graph
partitioned and route the search's vertex expansions to the owning
ranks.  This module implements that on the simulated runtime:

- graph rows and feature vectors stay sharded exactly as DNND left them
  (vertex + neighbor list co-located, Section 4),
- a *coordinator rank* runs the Section 3.3 greedy loop; each frontier
  pop sends one ``expand`` RPC to the popped vertex's owner, which
  computes the exact distance ``theta(q, v)`` plus exact distances for
  the neighbors it happens to own (features never leave their owner —
  only ids and distances travel),
- the result heap receives **exact distances only**; neighbor distances
  (exact for co-located neighbors, the parent's distance as an estimate
  for remote ones) order the frontier, and a vertex's exact distance is
  established when it is expanded,
- the ``epsilon`` relaxation works unchanged.

Compared to the shared-memory search, every *result* costs one RPC
round-trip (the price of not moving feature vectors), so the
instrumentation exposes the network cost per query — the measurement a
distributed deployment would tune against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import ClusterConfig
from ..errors import ConfigError, SearchError
from ..runtime.instrumentation import MessageStats
from ..runtime.metrics import MetricsRegistry, NULL_METRICS
from ..runtime.netmodel import NetworkModel
from ..runtime.partition import HashPartitioner, Partitioner
from ..runtime.transports import LocalTransport, SimCluster
from ..runtime.ygm import RankContext, YGMWorld
from ..types import DIST_BYTES, ID_BYTES
from ..utils.rng import derive_rng
from ..utils.sampling import sample_without_replacement
from .executor import SimExecutor, make_executor, resolve_backend
from .graph import AdjacencyGraph
from .search import SearchResult, _result_push, _worst


@dataclass
class _QueryState:
    """Coordinator-side state of one in-flight query."""

    query: Any
    l: int
    epsilon: float
    frontier: List[Tuple[float, int]] = field(default_factory=list)
    results: List[Tuple[float, int]] = field(default_factory=list)  # (-d, id)
    visited: set = field(default_factory=set)
    pending: int = 0


class DistributedKNNGraphSearcher:
    """Search a sharded graph + dataset on a simulated cluster.

    Parameters
    ----------
    adjacency:
        The (optimized) graph; rows are distributed by ``partitioner``.
    data:
        The dataset; row ``v`` lives on ``owner(v)``.
    coordinator:
        Rank that drives queries (a login/driver process), default 0.
    """

    def __init__(self, adjacency: AdjacencyGraph, data,
                 metric: str = "sqeuclidean",
                 cluster: ClusterConfig | None = None,
                 net: NetworkModel | None = None,
                 partitioner: Optional[Partitioner] = None,
                 coordinator: int = 0,
                 seed: int = 0,
                 sanitize: bool | None = None,
                 backend: str | None = None,
                 workers: int = 0,
                 metrics: "MetricsRegistry | None" = None) -> None:
        from ..distances.counting import CountingMetric

        if adjacency.n != len(data):
            raise SearchError(
                f"graph has {adjacency.n} vertices, dataset has {len(data)}"
            )
        self.cluster_config = cluster or ClusterConfig(nodes=2, procs_per_node=2)
        backend_name = resolve_backend(backend)
        if backend_name == "process":
            # Query search is coordinator-driven: every hop re-enters the
            # driver, so there is no long-running per-rank section worth a
            # worker process.  Runs on the thread-parallel executor when
            # explicitly requested, on sim when the environment chose.
            if backend == "process":
                raise ConfigError(
                    "the process backend covers graph construction "
                    "(DNND.build); distributed search is coordinator-"
                    "driven and supports backend='sim' or 'parallel'.")
            backend_name = "sim"
        if backend_name == "parallel" and net is not None:
            if backend == "parallel":
                raise ConfigError(
                    "network cost model (net=...) requires the "
                    "deterministic sim backend; the parallel executor "
                    "has no cost ledger. Use backend='sim'.")
            # Parallel came from the REPRO_BACKEND environment default:
            # run on sim rather than silently dropping the cost model.
            backend_name = "sim"
        self.backend = backend_name
        if backend_name == "parallel":
            self.executor = make_executor(
                backend_name, workers, self.cluster_config.world_size)
            self.cluster = LocalTransport(self.cluster_config)
        else:
            self.executor = SimExecutor()
            self.cluster = SimCluster(self.cluster_config, net)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.world = YGMWorld(self.cluster, seed=seed, sanitize=sanitize,
                              executor=self.executor, metrics=self.metrics)
        self.partitioner = partitioner or HashPartitioner(
            adjacency.n, self.cluster_config.world_size)
        # The partitioner is the routing table: a repartitioned build
        # hands its (explicit) partitioner in here, and a mismatch with
        # the graph or cluster must fail loudly, not mis-route expands.
        if (self.partitioner.n != adjacency.n
                or self.partitioner.world_size
                != self.cluster_config.world_size):
            raise ConfigError(
                f"partitioner covers n={self.partitioner.n}, "
                f"world_size={self.partitioner.world_size}; the searcher "
                f"has n={adjacency.n}, "
                f"world_size={self.cluster_config.world_size}")
        if not 0 <= coordinator < self.cluster_config.world_size:
            raise SearchError(f"coordinator rank {coordinator} out of range")
        self.coordinator = coordinator
        self.n = adjacency.n
        self._rng = derive_rng(seed, 0xD15C)
        self._queries: Dict[int, _QueryState] = {}
        self._next_qid = 0
        self._distribute(adjacency, data, metric)
        self.world.register_handlers(
            expand=_h_expand, expand_reply=_h_expand_reply)
        self.world.set_phase("dist_query")

    # -- setup -----------------------------------------------------------------

    def _distribute(self, adjacency: AdjacencyGraph, data, metric) -> None:
        from ..distances.counting import CountingMetric

        sparse = CountingMetric(metric).sparse_input
        arr = None if sparse else np.asarray(data)
        for ctx in self.world.ranks:
            gids = self.partitioner.local_ids(ctx.rank)
            rows = {int(g): adjacency.neighbors(int(g))[0].copy() for g in gids}
            if sparse:
                feats = {int(g): data[int(g)] for g in gids}
            else:
                feats = {int(g): arr[int(g)] for g in gids}
            ctx.state["search_shard"] = {
                "rows": rows,
                "features": feats,
                "metric": CountingMetric(metric),
                "searcher": self,
            }

    # -- queries ------------------------------------------------------------

    def query(self, q, l: int = 10, epsilon: float = 0.0) -> SearchResult:
        """Distributed Section 3.3 search for one query.

        Returned distances are exact (each was computed at the owning
        rank during that vertex's expansion).
        """
        if l < 1:
            raise SearchError(f"l must be >= 1, got {l}")
        if epsilon < 0:
            raise SearchError(f"epsilon must be >= 0, got {epsilon}")
        l_eff = min(l, self.n)
        qid = self._next_qid
        self._next_qid += 1
        state = _QueryState(query=q, l=l_eff, epsilon=epsilon)
        self._queries[qid] = state
        evals_before = self.total_distance_evals()

        with self.metrics.span("query", cat="query", qid=qid, l=l_eff):
            coord = self.world.ranks[self.coordinator]
            entries = sample_without_replacement(self._rng, self.n, l_eff)
            for p in entries:
                self._send_expand(coord, state, qid, int(p))

            # Greedy loop: the barrier is the wait-for-replies primitive;
            # between barriers the coordinator pops the frontier.
            while True:
                self.world.barrier()
                if state.pending:
                    continue
                if not self._pop_and_expand(coord, state, qid):
                    break
        if self.metrics.enabled:
            self.metrics.inc("search.queries")
            self.metrics.inc("search.visited", len(state.visited))

        out = sorted(((-nd, i) for nd, i in state.results),
                     key=lambda t: (t[0], t[1]))
        ids = np.array([i for _, i in out], dtype=np.int64)
        dists = np.array([d for d, _ in out], dtype=np.float64)
        del self._queries[qid]
        return SearchResult(
            ids=ids, dists=dists,
            n_distance_evals=self.total_distance_evals() - evals_before,
            n_visited=len(state.visited))

    def query_batch(self, queries, l: int = 10, epsilon: float = 0.0):
        nq = len(queries)
        ids = np.full((nq, l), -1, dtype=np.int64)
        dists = np.full((nq, l), np.inf, dtype=np.float64)
        total_evals = 0
        for i in range(nq):
            res = self.query(queries[i], l=l, epsilon=epsilon)
            found = len(res.ids)
            ids[i, :found] = res.ids[:l]
            dists[i, :found] = res.dists[:l]
            total_evals += res.n_distance_evals
        return ids, dists, {
            "n_queries": nq,
            "mean_distance_evals": total_evals / max(1, nq),
        }

    def close(self) -> None:
        """Release the executor's scheduling resources (a no-op for the
        sim backend; joins the parallel backend's thread pool)."""
        self.executor.shutdown()

    @property
    def message_stats(self) -> MessageStats:
        return self.cluster.stats

    @property
    def sim_seconds(self) -> float:
        return self.cluster.ledger.elapsed

    def total_distance_evals(self) -> int:
        return sum(ctx.state["search_shard"]["metric"].count
                   for ctx in self.world.ranks)

    # -- coordinator internals ---------------------------------------------------

    def _send_expand(self, coord: RankContext, state: _QueryState,
                     qid: int, vid: int) -> None:
        if vid in state.visited:
            return
        state.visited.add(vid)
        state.pending += 1
        q = state.query
        q_bytes = q.nbytes if hasattr(q, "nbytes") else len(q) * 8
        coord.async_call(self.partitioner.owner(vid), "expand",
                         qid, vid, q, self.coordinator,
                         nbytes=2 * ID_BYTES + q_bytes, msg_type="expand")

    def _pop_and_expand(self, coord: RankContext, state: _QueryState,
                        qid: int) -> bool:
        """Pop the best (estimated) frontier entry; False = terminate."""
        bound = (1.0 + state.epsilon) * _worst(state.results, state.l)
        while state.frontier:
            d_est, p = heapq.heappop(state.frontier)
            if p in state.visited:
                continue  # a better-estimated duplicate was expanded
            if d_est > bound:
                return False  # termination B (on the estimate)
            self._send_expand(coord, state, qid, p)
            return True
        return False  # termination A: frontier exhausted

    def _on_reply(self, qid: int, center: int, center_dist: float,
                  nbr_ids, nbr_dists) -> None:
        state = self._queries.get(qid)
        if state is None:  # pragma: no cover - defensive
            return
        state.pending -= 1
        # Exact distance for the expanded vertex -> result heap.
        _result_push(state.results, state.l, float(center_dist), int(center))
        bound = (1.0 + state.epsilon) * _worst(state.results, state.l)
        # Neighbor entries order the frontier only (exact for neighbors
        # co-located with the center, parent-estimate for remote ones).
        for u, d in zip(nbr_ids, nbr_dists):
            u = int(u)
            d = float(d)
            if u in state.visited:
                continue
            if d < bound or len(state.results) < state.l:
                heapq.heappush(state.frontier, (d, u))


def _h_expand(ctx: RankContext, qid: int, vid: int, q, reply_to: int) -> None:
    """Owner-side expansion.

    Computes ``theta(q, v)`` exactly, plus exact distances to the
    neighbors this rank also owns (frontier-ordering hints); remote
    neighbors are reported with the center's distance as an optimistic
    estimate — their exact distance is established when they are
    themselves expanded.
    """
    shard = ctx.state["search_shard"]
    metric = shard["metric"]
    feats = shard["features"]
    if vid not in feats:  # pragma: no cover - routing bug guard
        raise SearchError(f"expand for {vid} routed to non-owner rank {ctx.rank}")
    center_dist = metric(q, feats[vid])
    ctx.charge_distance(_dim(q))
    nbr = shard["rows"].get(vid, np.empty(0, dtype=np.int64))
    est_ids: List[int] = []
    est_dists: List[float] = []
    for u in nbr:
        u = int(u)
        if u in feats:
            est_ids.append(u)
            est_dists.append(metric(q, feats[u]))
            ctx.charge_distance(_dim(q))
        else:
            est_ids.append(u)
            est_dists.append(float(center_dist))
    nbytes = (ID_BYTES + DIST_BYTES
              + len(est_ids) * (ID_BYTES + DIST_BYTES))
    ctx.async_call(reply_to, "expand_reply", qid, vid, float(center_dist),
                   np.asarray(est_ids, dtype=np.int64),
                   np.asarray(est_dists, dtype=np.float64),
                   nbytes=nbytes, msg_type="expand_reply")


def _h_expand_reply(ctx: RankContext, qid: int, center: int,
                    center_dist: float, nbr_ids, nbr_dists) -> None:
    shard = ctx.state.get("search_shard")
    if shard is None:  # pragma: no cover - defensive
        raise SearchError("expand_reply delivered to a non-participant rank")
    searcher: DistributedKNNGraphSearcher = shard["searcher"]
    searcher._on_reply(qid, center, center_dist, nbr_ids, nbr_dists)
    ctx.charge_update(len(nbr_ids))


def _dim(q) -> int:
    shape = getattr(q, "shape", None)
    if shape:
        return int(shape[0])
    return max(1, len(q))
