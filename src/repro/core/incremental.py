"""Incremental k-NN graph maintenance — the Section 7 scenario.

The paper's future work: "new data points may be added/deleted,
followed by a short graph refinement phase, which will fit NN-Descent's
iterative nature well."  This module implements that lifecycle on the
shared-memory side:

- :meth:`IncrementalIndex.add` appends rows and runs a *warm-started*
  NN-Descent refinement: existing rows keep their converged neighbor
  lists (flagged *new* so one round of checks integrates the arrivals),
  so the delta-termination criterion fires after a few iterations
  instead of a full rebuild.
- :meth:`IncrementalIndex.remove` deletes rows, compacts ids, drops
  dangling edges, and refills the holes with a short refinement.

It pairs naturally with the Metall store: open, mutate, snapshot — see
``examples/persistent_index.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import NNDescentConfig
from ..errors import ConfigError, DatasetError
from .graph import EMPTY, KNNGraph
from .nndescent import NNDescent, NNDescentResult


class IncrementalIndex:
    """A maintainable k-NN graph over a growable dense dataset.

    Parameters
    ----------
    data:
        Initial dense ``(n, dim)`` matrix.
    config:
        NN-Descent parameters; ``max_iters`` bounds each refinement.
    refinement_iters:
        Cap on NN-Descent iterations per :meth:`add`/:meth:`remove`
        (the "short graph refinement phase").
    """

    def __init__(self, data: np.ndarray, config: NNDescentConfig,
                 refinement_iters: int = 8) -> None:
        if refinement_iters < 1:
            raise ConfigError("refinement_iters must be >= 1")
        self._data = np.array(data, copy=True)
        if self._data.ndim != 2:
            raise DatasetError("IncrementalIndex needs a dense 2-D matrix")
        self.config = config
        self.refinement_iters = int(refinement_iters)
        self._graph: Optional[KNNGraph] = None
        self._total_build_iters = 0
        self._rebuild(initial=None)

    # -- views ------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def graph(self) -> KNNGraph:
        assert self._graph is not None
        return self._graph

    def __len__(self) -> int:
        return len(self._data)

    @property
    def total_refinement_iterations(self) -> int:
        """Iterations spent across the initial build and all updates."""
        return self._total_build_iters

    # -- mutation -----------------------------------------------------------

    def add(self, points: np.ndarray) -> NNDescentResult:
        """Append rows and refine.

        Existing vertices keep their neighbor lists as the warm start;
        new vertices start empty and are filled by the random-init pass
        plus the refinement's neighbor propagation.
        """
        points = np.asarray(points)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[1] != self._data.shape[1]:
            raise DatasetError(
                f"new points have dim {points.shape[1]}, index has "
                f"{self._data.shape[1]}"
            )
        self._data = np.vstack([self._data, points.astype(self._data.dtype)])
        return self._rebuild(initial=self._graph)

    def remove(self, ids: Sequence[int]) -> NNDescentResult:
        """Delete rows by id and refine.

        Remaining vertices are renumbered compactly (ascending order is
        preserved); edges to removed vertices are dropped from the warm
        start and the refinement refills the freed slots.
        """
        drop = set(int(i) for i in ids)
        n = len(self._data)
        bad = [i for i in drop if not 0 <= i < n]
        if bad:
            raise DatasetError(f"cannot remove out-of-range ids {bad}")
        if len(drop) >= n - self.config.k:
            raise DatasetError(
                f"removing {len(drop)} of {n} rows would leave fewer than "
                f"k+1 = {self.config.k + 1} points"
            )
        keep = np.array([i for i in range(n) if i not in drop], dtype=np.int64)
        remap = np.full(n, EMPTY, dtype=np.int64)
        remap[keep] = np.arange(len(keep))

        old_graph = self.graph
        new_ids = np.full((len(keep), self.config.k), EMPTY, dtype=np.int64)
        new_dists = np.full((len(keep), self.config.k), np.inf, dtype=np.float64)
        for new_v, old_v in enumerate(keep):
            slot = 0
            for u, d in zip(old_graph.ids[old_v], old_graph.dists[old_v]):
                if u == EMPTY or int(u) in drop:
                    continue
                new_ids[new_v, slot] = remap[int(u)]
                new_dists[new_v, slot] = d
                slot += 1
        self._data = self._data[keep]
        return self._rebuild(initial=KNNGraph(new_ids, new_dists))

    # -- internals ----------------------------------------------------------

    def _rebuild(self, initial: Optional[KNNGraph]) -> NNDescentResult:
        cfg = self.config.with_(
            max_iters=self.refinement_iters if initial is not None
            else self.config.max_iters,
            seed=self.config.seed + self._total_build_iters + len(self._data),
        )
        builder = NNDescent(self._data, cfg, initial_graph=initial)
        result = builder.build()
        self._graph = result.graph
        self._total_build_iters += result.iterations
        return result
