"""k-NN graph containers.

Two representations, matching the two lifecycle stages in the paper:

- :class:`KNNGraph` — the fixed-degree (``k`` neighbors per vertex)
  graph produced by NN-Descent/DNND construction: dense ``(n, k)``
  arrays of ids and distances, the "simple graph data structure" the
  paper highlights as an NN-Descent advantage (Section 3.2).
- :class:`AdjacencyGraph` — a CSR (indptr/indices/dists) variable-degree
  graph produced by the Section 4.5 optimizations (reverse-edge merge
  makes degrees vary up to ``k * m``); this is what queries traverse.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import GraphError

EMPTY = -1


class KNNGraph:
    """A fixed-degree k-NN graph: row ``v`` lists ``k`` neighbor ids and
    their distances, ascending by distance.

    Attributes
    ----------
    ids:
        ``(n, k)`` int64 — neighbor ids, ``EMPTY`` (-1) padding allowed
        at the tail of a row.
    dists:
        ``(n, k)`` float64 — corresponding distances, ``inf`` padding.
    """

    def __init__(self, ids: np.ndarray, dists: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        dists = np.asarray(dists, dtype=np.float64)
        if ids.ndim != 2 or ids.shape != dists.shape:
            raise GraphError(
                f"ids/dists must be matching 2-D arrays, got {ids.shape} vs {dists.shape}"
            )
        self.ids = ids
        self.dists = dists

    # -- basic shape -----------------------------------------------------------

    @property
    def n(self) -> int:
        return self.ids.shape[0]

    @property
    def k(self) -> int:
        return self.ids.shape[1]

    def __len__(self) -> int:
        return self.n

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, dists)`` of ``v``'s occupied neighbor slots."""
        row_ids = self.ids[v]
        mask = row_ids != EMPTY
        return row_ids[mask], self.dists[v][mask]

    def degree(self, v: int) -> int:
        return int((self.ids[v] != EMPTY).sum())

    # -- invariants ----------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError`."""
        n, k = self.ids.shape
        occ = self.ids != EMPTY
        if np.any(self.ids[occ] < 0) or np.any(self.ids[occ] >= n):
            raise GraphError("neighbor id out of range")
        if np.any(~np.isfinite(self.dists[occ])):
            raise GraphError("occupied slot has non-finite distance")
        if np.any(np.isfinite(self.dists[~occ])):
            raise GraphError("empty slot has finite distance")
        rows, cols = np.nonzero(occ)
        if np.any(self.ids[rows, cols] == rows):
            raise GraphError("self-loop present")
        for v in range(n):
            nbr = self.ids[v][occ[v]]
            if len(np.unique(nbr)) != len(nbr):
                raise GraphError(f"duplicate neighbor in row {v}")
            d = self.dists[v][occ[v]]
            if np.any(np.diff(d) < 0):
                raise GraphError(f"row {v} not sorted by distance")

    def sort_rows(self) -> "KNNGraph":
        """Return a copy with every row sorted ascending by distance."""
        order = np.argsort(self.dists, axis=1, kind="stable")
        ids = np.take_along_axis(self.ids, order, axis=1)
        dists = np.take_along_axis(self.dists, order, axis=1)
        return KNNGraph(ids, dists)

    # -- conversions ----------------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Dict-of-arrays form (Metall-store and ``.npz`` friendly)."""
        return {"ids": self.ids, "dists": self.dists}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "KNNGraph":
        return cls(arrays["ids"], arrays["dists"])

    def to_adjacency(self) -> "AdjacencyGraph":
        """CSR view of this fixed-degree graph."""
        occ = self.ids != EMPTY
        degrees = occ.sum(axis=1)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = self.ids[occ].astype(np.int64)
        dists = self.dists[occ].astype(np.float64)
        return AdjacencyGraph(indptr, indices, dists)

    def edge_set(self) -> set:
        """Directed edge set ``{(u, v)}`` — used by tests and recall."""
        rows, cols = np.nonzero(self.ids != EMPTY)
        return {(int(r), int(self.ids[r, c])) for r, c in zip(rows, cols)}

    def reverse_edge_multiset(self) -> List[Tuple[int, int, float]]:
        """All edges reversed: ``(dst, src, dist)`` triples."""
        rows, cols = np.nonzero(self.ids != EMPTY)
        return [
            (int(self.ids[r, c]), int(r), float(self.dists[r, c]))
            for r, c in zip(rows, cols)
        ]


class AdjacencyGraph:
    """Variable-degree directed graph in CSR form.

    Produced by the Section 4.5 optimization (reverse-edge merge +
    degree pruning) and consumed by the Section 3.3 search.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 dists: np.ndarray) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.dists = np.asarray(dists, dtype=np.float64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise GraphError("indptr must be 1-D starting at 0")
        if self.indptr[-1] != self.indices.shape[0]:
            raise GraphError("indptr end disagrees with indices length")
        if self.indices.shape != self.dists.shape:
            raise GraphError("indices/dists length mismatch")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")

    @property
    def n(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def n_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.dists[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def validate(self) -> None:
        n = self.n
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphError("neighbor id out of range")
        for v in range(n):
            nbr, _ = self.neighbors(v)
            if np.any(nbr == v):
                raise GraphError(f"self-loop at {v}")
            if len(np.unique(nbr)) != len(nbr):
                raise GraphError(f"duplicate neighbor at {v}")

    def edge_set(self) -> set:
        out = set()
        for v in range(self.n):
            nbr, _ = self.neighbors(v)
            out.update((v, int(u)) for u in nbr)
        return out

    def to_arrays(self) -> Dict[str, np.ndarray]:
        return {"indptr": self.indptr, "indices": self.indices, "dists": self.dists}

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "AdjacencyGraph":
        return cls(arrays["indptr"], arrays["indices"], arrays["dists"])

    @classmethod
    def from_edge_lists(cls, neighbor_lists: List[List[Tuple[int, float]]]) -> "AdjacencyGraph":
        """Build from per-vertex ``[(neighbor, dist), ...]`` lists."""
        n = len(neighbor_lists)
        degrees = np.array([len(lst) for lst in neighbor_lists], dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        dists = np.empty(int(indptr[-1]), dtype=np.float64)
        pos = 0
        for lst in neighbor_lists:
            for u, d in lst:
                indices[pos] = u
                dists[pos] = d
                pos += 1
        return cls(indptr, indices, dists)

    def connected_fraction(self) -> float:
        """Fraction of vertices reachable from vertex 0 treating edges as
        undirected — a cheap connectivity diagnostic for optimized graphs."""
        if self.n == 0:
            return 0.0
        # Build undirected adjacency once.
        undirected: List[List[int]] = [[] for _ in range(self.n)]
        for v in range(self.n):
            nbr, _ = self.neighbors(v)
            for u in nbr:
                undirected[v].append(int(u))
                undirected[int(u)].append(v)
        seen = np.zeros(self.n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for u in undirected[v]:
                if not seen[u]:
                    seen[u] = True
                    count += 1
                    stack.append(u)
        return count / self.n
