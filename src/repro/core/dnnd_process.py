"""Worker-side DNND application for the process backend.

Each worker process runs this module's :class:`ProcessDNNDApp` around an
in-process :class:`~repro.runtime.ygm.YGMWorld` (non-parallel sim mode —
the comm layer's buffering/coalescing/batch machinery is reused
verbatim; only the transport underneath ships cross-worker frames).
The driver stays the SPMD program counter: it broadcasts *named
sections* — each the worker-side mirror of the corresponding
``core.dnnd`` driver section, run over the worker's owned ranks — plus
state commands (shard build, checkpoint get/set, stats export).

**Shared-memory feature shipping.**  The dataset is mapped read-only
from the driver's shared-memory segment (module-global ``_DATA``), so
feature vectors never travel in messages: the five handlers whose sim
wire format carries a feature vector get process variants that ship the
*global id* instead and fetch the row from ``_DATA`` at the receiver.
The modeled ``nbytes`` at every emission is unchanged (the wire still
"carries" the feature for Figure 4's accounting), distances are computed
from the same row values (the segment holds exactly the rows the sim
shards copy), and the remaining five handlers are reused from
``dnnd_phases`` verbatim — so message statistics and the constructed
graph are identical to the sim backend under the conformance envelope.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..distances.counting import CountingMetric
from ..errors import RuntimeStateError, StoreError
from ..runtime.transports.process import WorkerComm, attach_shared_array
from ..runtime.ygm import RankContext, YGMWorld
from ..types import DIST_BYTES, ID_BYTES
from ..utils.rng import derive_rng
from ..utils.sampling import sample_without_replacement
from . import dnnd_phases
from .dnnd_phases import T1, T2, T2P, LocalShard, shard_of
from .heap import NeighborHeap
from .nndescent import _union_with_sample

#: Worker-global view of the shared-memory dataset, set once by
#: :func:`bootstrap` before any handler can run.  Read-only by
#: convention (the segment is the driver's); handlers only index rows.
_DATA: Optional[np.ndarray] = None
_SHM = None


# ---------------------------------------------------------------------------
# Process handler variants: ship global ids, fetch features from _DATA.
# Modeled nbytes at each emission are identical to the sim handlers.
# ---------------------------------------------------------------------------


def h_init_request_shm(ctx: RankContext, v_gid: int, u_gid: int) -> None:
    """``init_req`` at owner(u): the wire carries ``(v, u)``; v's
    feature row comes from the shared segment."""
    shard = shard_of(ctx)
    d = shard.metric(_DATA[v_gid], shard.feature(u_gid))
    ctx.async_call(
        shard.owner(v_gid), "init_resp", v_gid, u_gid, d,
        nbytes=2 * ID_BYTES + DIST_BYTES, msg_type="init_resp",
    )


def h_check_request_unopt_shm(ctx: RankContext, target_gid: int,
                              other_gid: int) -> None:
    shard = shard_of(ctx)
    if shard.config.comm_opts.check_dedup:
        pair = (int(target_gid), int(other_gid))
        if pair in shard.check_seen:
            return
        shard.check_seen.add(pair)
    ctx.async_call(
        shard.owner(other_gid), "feature_unopt", other_gid, target_gid,
        nbytes=2 * ID_BYTES + shard.feature_nbytes(target_gid), msg_type=T2,
    )


def h_feature_unopt_shm(ctx: RankContext, recv_gid: int,
                        sender_gid: int) -> None:
    shard = shard_of(ctx)
    d = shard.metric(shard.feature(recv_gid), _DATA[sender_gid])
    shard.push_attempts += 1
    shard.update_count += shard.heap(recv_gid).checked_push(
        int(sender_gid), float(d), True)


def h_check_request_opt_shm(ctx: RankContext, u1_gid: int,
                            u2_gid: int) -> None:
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    if opts.check_dedup:
        pair = (int(u1_gid), int(u2_gid))
        if pair in shard.check_seen:
            return
        shard.check_seen.add(pair)
    heap1 = shard.heap(u1_gid)
    if opts.redundancy_check and int(u2_gid) in heap1:
        return
    if opts.distance_pruning:
        bound = heap1.worst_distance()
        extra = DIST_BYTES
        msg_type = T2P
    else:
        bound = np.inf
        extra = 0
        msg_type = T2
    ctx.async_call(
        shard.owner(u2_gid), "feature_opt", u2_gid, u1_gid, bound,
        nbytes=2 * ID_BYTES + shard.feature_nbytes(u1_gid) + extra,
        msg_type=msg_type,
    )


def h_feature_opt_shm(ctx: RankContext, u2_gid: int, u1_gid: int,
                      bound: float) -> None:
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    heap2 = shard.heap(u2_gid)
    if opts.redundancy_check and int(u1_gid) in heap2:
        return
    d = shard.metric(shard.feature(u2_gid), _DATA[u1_gid])
    shard.push_attempts += 1
    shard.update_count += heap2.checked_push(int(u1_gid), float(d), True)
    if opts.distance_pruning and d >= bound:
        return
    ctx.async_call(
        shard.owner(u1_gid), "distance_reply", u1_gid, u2_gid, d,
        nbytes=2 * ID_BYTES + DIST_BYTES, msg_type="type3",
    )


# -- batch variants ---------------------------------------------------------


def _gid_rows(gids) -> np.ndarray:
    """Fancy-index rows for a list of global ids (a fresh contiguous
    array, row-value-equal to the features the sim wire would carry)."""
    return _DATA[np.asarray(list(gids), dtype=np.int64)]


def h_init_request_batch_shm(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    rows = [shard.local_index[int(a[1])] for a in args_list]
    A = shard.features[rows]
    B = _gid_rows(a[0] for a in args_list)
    # Argument order matches the scalar handler: theta(v_feature, u_row).
    dists = shard.metric.rowwise(B, A)
    world = ctx.world
    rank = ctx.rank
    owner = shard.owner_of
    send, close = world.block_emitter(rank, "init_resp")
    nb = 2 * ID_BYTES + DIST_BYTES
    for (v_gid, u_gid), d in zip(args_list, dists.tolist()):
        send(owner[v_gid], "init_resp", (v_gid, u_gid, d), nb)
    close()


def h_check_request_unopt_batch_shm(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    dedup = shard.config.comm_opts.check_dedup
    seen = shard.check_seen
    owner = shard.owner_of
    fnb = shard.feature_nbytes_dense
    out: list = []
    for target_gid, other_gid in args_list:
        target = int(target_gid)
        other = int(other_gid)
        if dedup:
            pair = (target, other)
            if pair in seen:
                continue
            seen.add(pair)
        out.append((owner[other], "feature_unopt", (other_gid, target_gid)))
    ctx.world.emit_run(ctx.rank, out, 2 * ID_BYTES + fnb, T2)


def h_feature_unopt_batch_shm(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    rows = [shard.local_index[int(a[0])] for a in args_list]
    A = shard.features[rows]
    B = _gid_rows(a[1] for a in args_list)
    dists = shard.metric.rowwise(A, B)
    shard.push_attempts += len(args_list)
    heaps = shard.heaps
    li = shard.local_index
    updates = 0
    for (recv_gid, sender_gid), d in zip(args_list, dists.tolist()):
        updates += heaps[li[int(recv_gid)]].checked_push(
            int(sender_gid), d, True)
    shard.update_count += updates


def h_check_request_opt_batch_shm(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    dedup = opts.check_dedup
    redundancy = opts.redundancy_check
    pruning = opts.distance_pruning
    seen = shard.check_seen
    owner = shard.owner_of
    li = shard.local_index
    heaps = shard.heaps
    fnb = shard.feature_nbytes_dense
    extra = DIST_BYTES if pruning else 0
    msg_type = T2P if pruning else T2
    out: list = []
    emit = out.append
    cache: Dict[int, tuple] = {}
    for u1, u2 in args_list:
        if dedup:
            pair = (u1, u2)
            if pair in seen:
                continue
            seen.add(pair)
        ent = cache.get(u1)
        if ent is None:
            heap1 = heaps[li[u1]]
            ent = cache[u1] = (
                heap1._members,
                float(heap1.dists[0]) if pruning else np.inf,
            )
        members, bound = ent
        if redundancy and u2 in members:
            continue
        emit((owner[u2], "feature_opt", (u2, u1, bound)))
    ctx.world.emit_run(ctx.rank, out, 2 * ID_BYTES + fnb + extra, msg_type)


def h_feature_opt_batch_shm(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    redundancy = opts.redundancy_check
    pruning = opts.distance_pruning
    rows = [shard.local_index[int(a[0])] for a in args_list]
    A = shard.features[rows]
    B = _gid_rows(a[1] for a in args_list)
    metric = shard.metric
    # Uncounted precompute: a redundancy-skipped pair must not count.
    dists = metric.rowwise_raw(A, B)
    world = ctx.world
    owner = shard.owner_of
    li = shard.local_index
    heaps = shard.heaps
    nb3 = 2 * ID_BYTES + DIST_BYTES
    send, close = world.block_emitter(ctx.rank, "type3")
    updates = 0
    evals = 0
    cache: Dict[int, Any] = {}
    for (u2, u1, bound), d in zip(args_list, dists.tolist()):
        heap2 = cache.get(u2)
        if heap2 is None:
            heap2 = cache[u2] = heaps[li[u2]]
        if redundancy and u1 in heap2._members:
            continue
        evals += 1
        updates += heap2.checked_push(u1, d, True)
        if pruning and d >= bound:
            continue
        send(owner[u1], "distance_reply", (u1, u2, d), nb3)
    close()
    metric.count += evals
    shard.push_attempts += evals
    shard.update_count += updates


def register_process_handlers(world: YGMWorld, batch_exec: bool) -> None:
    """Register the DNND handler set with the five feature-shipping
    handlers replaced by their shared-memory variants (the other five
    are the ``dnnd_phases`` handlers, unchanged)."""
    world.register_handlers(
        init_req=h_init_request_shm,
        init_resp=dnnd_phases.h_init_response,
        rev_new=dnnd_phases.h_reverse_new,
        rev_old=dnnd_phases.h_reverse_old,
        check_unopt=h_check_request_unopt_shm,
        feature_unopt=h_feature_unopt_shm,
        check_opt=h_check_request_opt_shm,
        feature_opt=h_feature_opt_shm,
        distance_reply=dnnd_phases.h_distance_reply,
        opt_rev_edge=dnnd_phases.h_opt_reverse_edge,
    )
    if batch_exec:
        world.register_batch_handlers(
            init_req=h_init_request_batch_shm,
            init_resp=dnnd_phases.h_init_response_batch,
            rev_new=dnnd_phases.h_reverse_new_batch,
            rev_old=dnnd_phases.h_reverse_old_batch,
            check_unopt=h_check_request_unopt_batch_shm,
            feature_unopt=h_feature_unopt_batch_shm,
            check_opt=h_check_request_opt_batch_shm,
            feature_opt=h_feature_opt_batch_shm,
            distance_reply=dnnd_phases.h_distance_reply_batch,
            opt_rev_edge=dnnd_phases.h_opt_reverse_edge_batch,
        )


# ---------------------------------------------------------------------------
# The worker app
# ---------------------------------------------------------------------------


def bootstrap(comm: WorkerComm, params: dict) -> "ProcessDNNDApp":
    """Worker entry point (named in the driver's spawn bootstrap)."""
    return ProcessDNNDApp(comm, params)


class ProcessDNNDApp:
    """Owns the worker's ranks: their shards, heaps, and the in-process
    comm world.  ``dispatch`` executes the driver's broadcast commands;
    every *section* is the worker-side mirror of the identically-shaped
    driver section in ``core.dnnd``, restricted to this worker's owned,
    non-excluded ranks."""

    def __init__(self, comm: WorkerComm, params: dict) -> None:
        global _DATA, _SHM
        _SHM, _DATA = attach_shared_array(params["spec"])
        self.comm = comm
        self.config = params["config"]
        self.partitioner = params["partitioner"]
        self.n = int(params["n"])
        self.world = YGMWorld(
            comm.transport,
            flush_threshold=int(params.get("flush_threshold", 1024)),
            seed=self.config.nnd.seed,
            sanitize=False, race=False)
        register_process_handlers(self.world, self.config.batch_exec)
        self._owner_table = self.partitioner.owner_array(
            np.arange(self.n, dtype=np.int64)).tolist()
        self._check_triples: Dict[int, list] = {}
        self._commands = {
            "build_shards": self._cmd_build_shards,
            "set_partitioner": self._cmd_set_partitioner,
            "section": self._cmd_section,
            "set_phase": self._cmd_set_phase,
            "export_stats": self._cmd_export_stats,
            "shard_totals": self._cmd_shard_totals,
            "exclude": self._cmd_exclude,
            "readmit": self._cmd_readmit,
            "ckpt_get": self._cmd_ckpt_get,
            "ckpt_set": self._cmd_ckpt_set,
            "gather_rows": self._cmd_gather_rows,
            "opt_collect": self._cmd_opt_collect,
        }
        self._sections = {
            "init": self._section_init,
            "sample": self._section_sample,
            "reverse": self._section_reverse,
            "union": self._section_union,
            "check_build": self._section_check_build,
            "check_emit": self._section_check_emit,
            "repair_reset": self._section_repair_reset,
            "repair_reinit": self._section_repair_reinit,
            "repair_donate": self._section_repair_donate,
            "opt_seed": self._section_opt_seed,
            "opt_rev": self._section_opt_rev,
        }
        self._cmd_build_shards({})

    # -- runtime hooks --------------------------------------------------------

    def dispatch(self, cmd: str, payload: Any) -> Any:
        fn = self._commands.get(cmd)
        if fn is None:
            raise RuntimeStateError(f"unknown worker command {cmd!r}")
        return fn(payload or {})

    def on_reset(self) -> None:
        """Epoch change: the comm layer's in-flight state was already
        cleared by the runtime; shard state survives (the supervisor
        decides whether to rebuild or restore it)."""

    # -- rank iteration -------------------------------------------------------

    def _contexts(self):
        """Owned, non-excluded rank contexts (SPMD section scope)."""
        excluded = self.world.excluded_ranks
        for rank in self.comm.owned:
            if excluded and rank in excluded:
                continue
            yield self.world.ranks[rank]

    def _owned_shards(self):
        for rank in self.comm.owned:
            ctx = self.world.ranks[rank]
            shard = ctx.state.get("shard")
            if shard is not None:
                yield rank, shard

    # -- state commands -------------------------------------------------------

    def _cmd_build_shards(self, payload: dict) -> None:
        cfg = self.config
        for rank in self.comm.owned:
            ctx = self.world.ranks[rank]
            gids = self.partitioner.local_ids(rank)
            feats = _DATA[gids]
            dense_bytes = (int(feats.shape[1] * feats.dtype.itemsize)
                           if feats.size else 0)
            ctx.state["shard"] = LocalShard(
                rank=rank,
                partitioner=self.partitioner,
                global_ids=gids,
                local_index={int(g): i for i, g in enumerate(gids)},
                features=feats,
                heaps=[NeighborHeap(cfg.k) for _ in range(len(gids))],
                metric=CountingMetric(cfg.nnd.metric, kernel=cfg.kernel),
                config=cfg,
                sparse=False,
                feature_nbytes_dense=dense_bytes,
                owner_of=self._owner_table,
            )

    def _cmd_set_partitioner(self, payload: dict) -> None:
        """Swap the ownership layer (the repartition pass): install the
        new partitioner, recompute the owner table, and rebuild the
        owned shards under the new assignment.  Heap contents are
        restored separately via ``ckpt_set``."""
        self.partitioner = payload["partitioner"]
        self._owner_table = self.partitioner.owner_array(
            np.arange(self.n, dtype=np.int64)).tolist()
        self._cmd_build_shards({})

    def _cmd_section(self, payload: dict) -> Any:
        name = payload["name"]
        fn = self._sections.get(name)
        if fn is None:
            raise RuntimeStateError(f"unknown worker section {name!r}")
        return fn(**payload.get("params", {}))

    def _cmd_set_phase(self, payload: dict) -> None:
        self.world.set_phase(payload["phase"])

    def _cmd_export_stats(self, payload: dict) -> dict:
        world = self.world
        stats = world.cluster.stats
        return {
            "stats": {t: (s.count, s.bytes, s.offnode_count, s.offnode_bytes)
                      for t, s in stats.by_type.items()},
            "phases": {
                phase: {t: (s.count, s.bytes, s.offnode_count,
                            s.offnode_bytes)
                        for t, s in ms.by_type.items()}
                for phase, ms in world.phase_stats.items()},
            "flushes": world.flush_count,
            "invocations": world.handler_invocations,
            "locals": world.local_delivery_count,
        }

    def _cmd_shard_totals(self, payload: dict) -> list:
        return [(rank, shard.push_attempts, shard.metric.count,
                 shard.update_count, shard.metric.tile_flops,
                 shard.metric.kernel_fallbacks)
                for rank, shard in self._owned_shards()]

    def _cmd_exclude(self, payload: dict) -> None:
        ranks = {int(r) for r in payload["ranks"]}
        self.world.exclude_ranks(ranks)
        for rank, shard in self._owned_shards():
            if rank in ranks:
                shard.update_count = 0

    def _cmd_readmit(self, payload: dict) -> None:
        self.world.readmit_ranks()

    def _cmd_ckpt_get(self, payload: dict) -> dict:
        k = self.config.k
        out = {}
        for rank, shard in self._owned_shards():
            nl = shard.n_local
            ids = np.full((nl, k), -1, dtype=np.int64)
            dists = np.full((nl, k), np.inf, dtype=np.float64)
            flags = np.zeros((nl, k), dtype=bool)
            for li in range(nl):
                heap = shard.heaps[li]
                ids[li] = heap.ids
                dists[li] = heap.dists
                flags[li] = heap.flags
            out[rank] = (np.asarray(shard.global_ids, dtype=np.int64),
                         ids, dists, flags)
        return out

    def _cmd_ckpt_set(self, payload: dict) -> None:
        k = self.config.k
        for rank, (ids, dists, flags) in payload["heaps"].items():
            ctx = self.world.ranks[int(rank)]
            shard = ctx.state["shard"]
            if ids.shape != (shard.n_local, k):
                raise StoreError(
                    f"checkpoint slice shape {ids.shape} does not match "
                    f"rank {rank} shard ({shard.n_local}, {k})")
            for li in range(shard.n_local):
                heap = shard.heaps[li]
                heap.ids[:] = ids[li]
                heap.dists[:] = dists[li]
                heap.flags[:] = flags[li]
                heap._members = {int(v) for v in ids[li] if v != -1}
                heap.check_invariants()

    def _cmd_gather_rows(self, payload: dict) -> dict:
        out = {}
        for rank, shard in self._owned_shards():
            rows = []
            for li in range(shard.n_local):
                row_ids, row_dists, _ = shard.heaps[li].sorted_arrays()
                rows.append((int(shard.global_ids[li]), row_ids, row_dists))
            out[rank] = rows
        return out

    def _cmd_opt_collect(self, payload: dict) -> dict:
        max_degree = int(payload["max_degree"])
        out = {}
        for _rank, shard in self._owned_shards():
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                lst = sorted(shard.merged[li].items(),
                             key=lambda t: (t[1], t[0]))
                out[v] = lst[:max_degree]
        return out

    # -- SPMD sections (worker-side mirrors of core.dnnd driver sections) -----

    def _section_init(self) -> None:
        cfg = self.config.nnd
        use_batch = self.config.batch_exec
        n = self.n
        k = cfg.k
        seed = cfg.seed
        for ctx in self._contexts():
            shard = shard_of(ctx)
            owner = shard.owner_of
            triples: list = []
            append = triples.append
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                rng = derive_rng(seed, 2, v)
                cand = sample_without_replacement(rng, n, min(n - 1, k + 2))
                cand = cand[cand != v][:k]
                if use_batch:
                    for u in cand.tolist():
                        append((owner[u], "init_req", (v, u)))
                else:
                    nb = 2 * ID_BYTES + shard.feature_nbytes(v)
                    for u in cand:
                        u = int(u)
                        ctx.async_call(shard.owner(u), "init_req", v, u,
                                       nbytes=nb, msg_type="init_req")
            if triples:
                nb = 2 * ID_BYTES + shard.feature_nbytes(
                    int(shard.global_ids[0]))
                self.world.emit_run(ctx.rank, triples, nb, "init_req")

    def _section_sample(self, iteration: int) -> None:
        cfg = self.config.nnd
        sample_n = cfg.sample_size
        for ctx in self._contexts():
            shard = shard_of(ctx)
            shard.reset_iteration_scratch()
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                heap = shard.heaps[li]
                shard.old_lists[li] = sorted(heap.old_ids())
                fresh = sorted(heap.new_ids())
                if len(fresh) > sample_n:
                    rng = derive_rng(cfg.seed, 3, iteration, v)
                    pick = sample_without_replacement(
                        rng, len(fresh), sample_n)
                    sampled = [fresh[int(i)] for i in pick]
                else:
                    sampled = fresh
                heap.mark_old_many(sampled)
                shard.new_lists[li] = sampled

    def _section_reverse(self, iteration: int) -> None:
        cfg = self.config.nnd
        use_batch = self.config.batch_exec
        for ctx in self._contexts():
            shard = shard_of(ctx)
            owner = shard.owner_of
            outgoing: list = []
            append = outgoing.append
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                if use_batch:
                    for u in shard.new_lists[li]:
                        append((owner[u], "rev_new", (u, v)))
                    for u in shard.old_lists[li]:
                        append((owner[u], "rev_old", (u, v)))
                else:
                    for u in shard.new_lists[li]:
                        append(("rev_new", int(u), v))
                    for u in shard.old_lists[li]:
                        append(("rev_old", int(u), v))
            if (self.config.shuffle_reverse_destinations
                    and len(outgoing) > 1):
                rng = derive_rng(cfg.seed, 4, iteration, ctx.rank)
                order = rng.permutation(len(outgoing))
                outgoing = [outgoing[int(i)] for i in order]
            if use_batch:
                self.world.emit_run(ctx.rank, outgoing, 2 * ID_BYTES,
                                    "reverse")
            else:
                for handler, u, v in outgoing:
                    ctx.async_call(shard.owner(u), handler, u, v,
                                   nbytes=2 * ID_BYTES, msg_type="reverse")

    def _section_union(self, iteration: int) -> None:
        cfg = self.config.nnd
        sample_n = cfg.sample_size
        for ctx in self._contexts():
            shard = shard_of(ctx)
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                rn = sorted(shard.rev_new[li])
                ro = sorted(shard.rev_old[li])
                rng = (derive_rng(cfg.seed, 5, iteration, v)
                       if len(rn) > sample_n or len(ro) > sample_n
                       else None)
                shard.new_lists[li] = _union_with_sample(
                    shard.new_lists[li], rn, sample_n, rng)
                shard.old_lists[li] = _union_with_sample(
                    shard.old_lists[li], ro, sample_n, rng)

    def _section_check_build(self, one_sided: bool) -> int:
        handler = "check_opt" if one_sided else "check_unopt"
        self._check_triples = {}
        longest = 0
        for ctx in self._contexts():
            shard = shard_of(ctx)
            owner = shard.owner_of
            triples: list = []
            append = triples.append
            for li in range(shard.n_local):
                new_c = shard.new_lists[li]
                old_c = shard.old_lists[li]
                for i, u1 in enumerate(new_c):
                    o1 = owner[u1]
                    for u2 in new_c[i + 1:]:
                        if u1 != u2:
                            append((o1, handler, (u1, u2)))
                            if not one_sided:
                                append((owner[u2], handler, (u2, u1)))
                    for u2 in old_c:
                        if u1 != u2:
                            append((o1, handler, (u1, u2)))
                            if not one_sided:
                                append((owner[u2], handler, (u2, u1)))
            self._check_triples[ctx.rank] = triples
            if len(triples) > longest:
                longest = len(triples)
        return longest

    def _section_check_emit(self, start: int, stop: int) -> None:
        for ctx in self._contexts():
            part = self._check_triples.get(ctx.rank, [])[start:stop]
            if part:
                self.world.emit_run(ctx.rank, part, 2 * ID_BYTES, T1)

    def _section_repair_reset(self, ranks: List[int]) -> None:
        repaired = set(ranks)
        for rank, shard in self._owned_shards():
            if rank not in repaired:
                continue
            shard.heaps = [NeighborHeap(self.config.k)
                           for _ in range(shard.n_local)]
            shard.reset_iteration_scratch()

    def _section_repair_reinit(self, ranks: List[int]) -> None:
        cfg = self.config.nnd
        repaired = set(ranks)
        for ctx in self._contexts():
            if ctx.rank not in repaired:
                continue
            shard = shard_of(ctx)
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                rng = derive_rng(cfg.seed, 2, v)
                cand = sample_without_replacement(
                    rng, self.n, min(self.n - 1, cfg.k + 2))
                cand = cand[cand != v][:cfg.k]
                nb = 2 * ID_BYTES + shard.feature_nbytes(v)
                for u in cand:
                    u = int(u)
                    ctx.async_call(shard.owner(u), "init_req", v, u,
                                   nbytes=nb, msg_type="init_req")

    def _section_repair_donate(self, ranks: List[int]) -> None:
        repaired = set(ranks)
        for ctx in self._contexts():
            if ctx.rank in repaired:
                continue
            shard = shard_of(ctx)
            owner = shard.owner_of
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                for u, d, _flag in list(shard.heaps[li].entries()):
                    if owner[u] in repaired:
                        ctx.async_call(
                            owner[u], "init_resp", int(u), v, float(d),
                            nbytes=2 * ID_BYTES + DIST_BYTES,
                            msg_type="init_resp")

    def _section_opt_seed(self) -> None:
        for ctx in self._contexts():
            shard = shard_of(ctx)
            shard.merged = [dict() for _ in range(shard.n_local)]
            for li in range(shard.n_local):
                for u, d, _flag in shard.heaps[li].entries():
                    bucket = shard.merged[li]
                    prev = bucket.get(u)
                    if prev is None or d < prev:
                        bucket[u] = d

    def _section_opt_rev(self) -> None:
        use_batch = self.config.batch_exec
        for ctx in self._contexts():
            shard = shard_of(ctx)
            if use_batch:
                owner = shard.owner_of
                triples = []
                for li in range(shard.n_local):
                    v = int(shard.global_ids[li])
                    for u, d, _flag in list(shard.heaps[li].entries()):
                        triples.append((owner[u], "opt_rev_edge",
                                        (int(u), v, float(d))))
                self.world.emit_run(ctx.rank, triples, 2 * ID_BYTES + 4,
                                    "opt_rev")
            else:
                for li in range(shard.n_local):
                    v = int(shard.global_ids[li])
                    for u, d, _flag in list(shard.heaps[li].entries()):
                        ctx.async_call(shard.owner(u), "opt_rev_edge",
                                       int(u), v, float(d),
                                       nbytes=2 * ID_BYTES + 4,
                                       msg_type="opt_rev")
