"""Fixed-capacity flagged neighbor heaps — Algorithm 1's ``Update``.

Every vertex's candidate list ``G[v]`` is a bounded max-heap on
distance: the root is the *farthest* current neighbor, so a new
candidate either beats the root (replace + sift) or is rejected in O(1).
Each entry carries the ``new``/``old`` flag NN-Descent uses to avoid
re-checking pairs (Section 3.1).

The layout follows PyNNDescent: three parallel arrays (ids, distances,
flags) with ``INVALID_ID``/``inf`` placeholders, so a heap is usable
before it is full (during distributed initialization, entries arrive as
asynchronous messages in arbitrary order).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import GraphError

if TYPE_CHECKING:  # import only for annotations: heap has no runtime
    from ..analysis.sanitizer import Sanitizer  # dependency on analysis

#: Placeholder id for an empty slot.
EMPTY = -1


class NeighborHeap:
    """Bounded max-heap of ``(id, distance, flag)`` neighbor entries.

    Parameters
    ----------
    k:
        Capacity — the ``K`` of the output k-NNG.

    Notes
    -----
    ``checked_push`` implements Algorithm 1's ``Update(H, (v, d, f))``:
    reject if ``v`` already present or ``d`` not better than the current
    worst; otherwise replace the worst and return 1.
    """

    __slots__ = ("k", "ids", "dists", "flags", "_members",
                 "_san", "_san_owner", "_san_iters")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise GraphError(f"heap capacity must be >= 1, got {k}")
        self.k = int(k)
        self.ids = np.full(self.k, EMPTY, dtype=np.int64)
        self.dists = np.full(self.k, np.inf, dtype=np.float64)
        self.flags = np.zeros(self.k, dtype=bool)
        self._members: set[int] = set()
        # Ownership sanitizer metadata; set via repro.analysis.sanitizer
        # .tag_heap when REPRO_SANITIZE is on, otherwise permanently None
        # (so guards cost one attribute test).
        self._san: Optional["Sanitizer"] = None
        self._san_owner = 0
        self._san_iters = 0

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, vid: int) -> bool:
        return int(vid) in self._members

    @property
    def full(self) -> bool:
        return len(self._members) == self.k

    def worst_distance(self) -> float:
        """Distance of the farthest neighbor (``inf`` while not full).

        This is the bound attached to Type 2+ messages (Section 4.3.3).
        """
        return float(self.dists[0])

    def entries(self) -> Iterator[Tuple[int, float, bool]]:
        """Yield ``(id, dist, flag)`` for occupied slots, heap order."""
        if self._san is not None:
            return self._sanitized_entries()
        return self._entries()

    def _entries(self) -> Iterator[Tuple[int, float, bool]]:
        for i in range(self.k):
            if self.ids[i] != EMPTY:
                yield int(self.ids[i]), float(self.dists[i]), bool(self.flags[i])

    def _sanitized_entries(self) -> Iterator[Tuple[int, float, bool]]:
        self._san.check_access(self._san_owner, "neighbor heap (iterate)")
        self._san_iters += 1
        try:
            yield from self._entries()
        finally:
            self._san_iters -= 1

    def new_ids(self) -> List[int]:
        """Ids currently flagged *new* (Algorithm 1 line 9 source)."""
        mask = (self.ids != EMPTY) & self.flags
        return self.ids[mask].tolist()

    def old_ids(self) -> List[int]:
        """Ids currently flagged *old* (Algorithm 1 line 8)."""
        mask = (self.ids != EMPTY) & ~self.flags
        return self.ids[mask].tolist()

    # -- mutation -----------------------------------------------------------

    def checked_push(self, vid: int, dist: float, flag: bool = True) -> int:
        """Algorithm 1 ``Update``: insert if new and closer than the
        worst; returns 1 if the heap changed, else 0."""
        if self._san is not None:
            self._san.check_access(self._san_owner, "neighbor heap (push)")
            self._san.check_iteration(self._san_iters, "neighbor heap")
        vid = int(vid)
        if vid in self._members:
            return 0
        if dist >= self.dists[0]:
            # Not better than the current worst (inf while not full, so
            # any finite distance is accepted until full).
            return 0
        evicted = int(self.ids[0])
        if evicted != EMPTY:
            self._members.discard(evicted)
        self._members.add(vid)
        self.ids[0] = vid
        self.dists[0] = dist
        self.flags[0] = flag
        self._siftdown(0)
        return 1

    def checked_push_batch(self, ids, dists, flag: bool = True) -> int:
        """Apply a batch of candidates *in array order*; returns the
        number of entries that changed the heap.

        Semantically identical to calling :meth:`checked_push` per
        element — the batch execution engine relies on this for
        bit-identity with the scalar path.  One vectorized threshold
        pass drops candidates that cannot be accepted: the root distance
        is non-increasing while pushing, so any ``d >= worst`` *at batch
        start* would also be rejected at its original position (and a
        rejected push has no side effects).  Membership must stay a
        sequential check: an id evicted mid-batch may legitimately be
        re-pushed later in the same batch.
        """
        if self._san is not None:
            self._san.check_access(self._san_owner, "neighbor heap (push batch)")
            self._san.check_iteration(self._san_iters, "neighbor heap")
        dists = np.asarray(dists, dtype=np.float64)
        worst0 = self.dists[0]
        if np.isfinite(worst0):  # full heap: prefilter is exact
            keep = dists < worst0
            if not keep.all():
                ids = np.asarray(ids, dtype=np.int64)[keep]
                dists = dists[keep]
        updates = 0
        members = self._members
        slot_ids, slot_dists, slot_flags = self.ids, self.dists, self.flags
        for vid, d in zip(np.asarray(ids, dtype=np.int64).tolist(),
                          dists.tolist()):
            if vid in members:
                continue
            if d >= slot_dists[0]:
                continue
            evicted = int(slot_ids[0])
            if evicted != EMPTY:
                members.discard(evicted)
            members.add(vid)
            slot_ids[0] = vid
            slot_dists[0] = d
            slot_flags[0] = flag
            self._siftdown(0)
            updates += 1
        return updates

    def mark_old(self, vid: int) -> None:
        """Clear the *new* flag of ``vid`` (Algorithm 1 line 10)."""
        if self._san is not None:
            self._san.check_access(self._san_owner, "neighbor heap (mark_old)")
            self._san.check_iteration(self._san_iters, "neighbor heap")
        idx = np.flatnonzero(self.ids == int(vid))
        if idx.size:
            self.flags[idx[0]] = False

    def mark_old_many(self, vids) -> None:
        """Clear the *new* flag of every id in ``vids`` — equivalent to
        :meth:`mark_old` per element (heap ids are unique, and clearing
        flags is order-free)."""
        if not vids:
            return
        if self._san is not None:
            self._san.check_access(self._san_owner, "neighbor heap (mark_old)")
            self._san.check_iteration(self._san_iters, "neighbor heap")
        vidset = set(vids)
        ids = self.ids.tolist()
        flags = self.flags
        for i in range(self.k):
            if ids[i] in vidset:
                flags[i] = False

    def _siftdown(self, i: int) -> None:
        """Restore the max-heap property from slot ``i`` downwards."""
        ids, dists, flags = self.ids, self.dists, self.flags
        k = self.k
        while True:
            left = 2 * i + 1
            right = left + 1
            largest = i
            if left < k and dists[left] > dists[largest]:
                largest = left
            if right < k and dists[right] > dists[largest]:
                largest = right
            if largest == i:
                return
            ids[i], ids[largest] = ids[largest], ids[i]
            dists[i], dists[largest] = dists[largest], dists[i]
            flags[i], flags[largest] = flags[largest], flags[i]
            i = largest

    # -- extraction ----------------------------------------------------------

    def sorted_entries(self) -> List[Tuple[int, float, bool]]:
        """Occupied entries sorted ascending by distance (closest first)."""
        occupied = [(int(i), float(d), bool(f))
                    for i, d, f in zip(self.ids, self.dists, self.flags)
                    if i != EMPTY]
        occupied.sort(key=lambda t: (t[1], t[0]))
        return occupied

    def sorted_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ids, dists, flags)`` sorted ascending by distance, padded to
        capacity with ``EMPTY``/``inf``/False."""
        entries = self.sorted_entries()
        ids = np.full(self.k, EMPTY, dtype=np.int64)
        dists = np.full(self.k, np.inf, dtype=np.float64)
        flags = np.zeros(self.k, dtype=bool)
        for slot, (vid, dist, flag) in enumerate(entries):
            ids[slot] = vid
            dists[slot] = dist
            flags[slot] = flag
        return ids, dists, flags

    # -- invariant check (used by property tests) -------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`GraphError` if any heap invariant is violated."""
        occupied = self.ids != EMPTY
        if len(self._members) != int(occupied.sum()):
            raise GraphError("member-set size disagrees with occupied slots")
        if set(int(i) for i in self.ids[occupied]) != self._members:
            raise GraphError("member set disagrees with id slots")
        for i in range(self.k):
            for child in (2 * i + 1, 2 * i + 2):
                if child < self.k and self.dists[child] > self.dists[i]:
                    raise GraphError(f"heap order violated at slot {i}->{child}")
        if np.any(np.isfinite(self.dists[~occupied])):
            raise GraphError("empty slot holds a finite distance")
