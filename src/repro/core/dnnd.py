"""DNND — Distributed NN-Descent (Section 4), the paper's contribution.

The driver orchestrates the SPMD phases over the simulated cluster:

1. **distribute** — hash-partition vertices and feature rows over ranks
   (Section 4: vertex and neighbor list co-located on the owner rank).
2. **init** — Algorithm 1 lines 2-5 through the Section 4.1 async
   request/response pattern.
3. **iterate** — per NN-Descent round: local old/new sampling, the
   Section 4.2 reversed-matrix exchange (with destination shuffling),
   and the Section 4.3 neighbor checks (optimized or unoptimized
   message pattern), with Section 4.4 application-level batch barriers
   every ``batch_size`` global async requests; terminate when the
   allreduced update counter drops below ``delta * K * N``.
4. **persist** — store the graph + dataset into a Metall-style store
   (the paper's first executable ends here).
5. **optimize** — Section 4.5 reverse-edge merge + degree pruning, again
   by messages (the paper's second executable).

The result carries the gathered :class:`~repro.core.graph.KNNGraph`,
per-type message statistics (Figure 4), and the simulated construction
time from the cost model (Figure 3).
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.race import race_requested
from ..analysis.sanitizer import sanitizer_requested, tag_heap
from ..config import ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig
from ..distances.counting import CountingMetric
from ..errors import (CheckpointCorruptError, ConfigError, RankFailureError,
                      RuntimeStateError, StoreCorruptError, StoreError)
from ..runtime.faults import FaultPlan, make_injector
from ..runtime.instrumentation import FaultStats, MessageStats
from ..runtime.metall import MetallStore
from ..runtime.metrics import NULL_METRICS, MetricsRegistry
from ..runtime.netmodel import NetworkModel
from ..runtime.partition import (ExplicitPartitioner, HashPartitioner,
                                 Partitioner, edge_cut_fraction,
                                 graph_locality_assignment,
                                 partitioner_from_spec, partitioner_spec,
                                 spec_matches)
from ..runtime.transports import (LocalTransport, ProcessTransport,
                                  ProcessWorld, SharedArrayOwner, SimCluster)
from ..runtime.ygm import RankContext, YGMWorld
from .executor import SimExecutor, make_executor, resolve_backend
from ..types import DIST_BYTES, ID_BYTES
from ..utils.rng import derive_rng
from ..utils.sampling import sample_without_replacement
from .dnnd_phases import (LocalShard, register_dnnd_batch_handlers,
                          register_dnnd_handlers, shard_of, T1)
from .graph import EMPTY, AdjacencyGraph, KNNGraph
from .heap import NeighborHeap
from .nndescent import _union_with_sample

#: Shared no-op context for driver sections when the sanitizer is off —
#: module-level so the hot loops allocate nothing per vertex.
_NULL_SCOPE = contextlib.nullcontext()


def _process_blocker(net, fault_plan: Optional[FaultPlan], reliable: bool,
                     sanitize: bool | None, sparse: bool) -> Optional[str]:
    """Name the sim-only feature that blocks the process backend, or
    ``None`` when the configuration can run on worker processes.  Crash
    plans are *not* blockers — the process world kills the owning worker
    natively; only message-level network fault injection is sim-bound."""
    if net is not None:
        return "the network cost model (net=...)"
    if fault_plan is not None and (
            fault_plan.drop_rate or fault_plan.dup_rate
            or fault_plan.reorder_rate or fault_plan.delay_rate
            or fault_plan.stall_rate):
        return "network fault injection (drop/dup/reorder/delay/stall)"
    if reliable:
        return "reliable delivery (reliable=True)"
    if sanitize or (sanitize is None
                    and (sanitizer_requested() or race_requested())):
        return "the runtime sanitizer (REPRO_SANITIZE)"
    if sparse:
        return ("a sparse dataset (shared-memory segments hold one "
                "dense matrix)")
    return None


def _process_teardown(cluster, shm_owner):
    """Process-backend teardown closure: stop the workers, then unlink
    the shared-memory dataset segment (both idempotent).  A free
    function over the two resources — not a bound method — so the
    executor's finalizer holds no reference to the :class:`DNND`."""
    def teardown() -> None:
        cluster.shutdown()
        shm_owner.close()
    return teardown


@dataclass
class DNNDResult:
    """Outcome of a distributed build.

    Attributes
    ----------
    graph:
        The gathered fixed-degree k-NNG.
    adjacency:
        The Section 4.5-optimized graph, present after ``optimize()``.
    message_stats:
        Global per-type message counters (Figure 4's measurement).
    sim_seconds:
        Modeled construction time (Figure 3's y-axis, in seconds).
    distance_evals:
        Total scalar distance evaluations across all ranks.
    """

    graph: KNNGraph
    iterations: int
    update_counts: List[int]
    converged: bool
    message_stats: MessageStats
    phase_stats: Dict[str, MessageStats]
    sim_seconds: float
    phase_seconds: Dict[str, float]
    distance_evals: int
    world_size: int
    adjacency: Optional[AdjacencyGraph] = None
    optimize_sim_seconds: float = 0.0
    per_iteration_messages: List[Dict[str, tuple]] = field(default_factory=list)
    fault_stats: FaultStats = field(default_factory=FaultStats)
    recoveries: int = 0
    """Checkpoint-recovery cycles the build survived (rank crashes)."""
    degraded_ranks: tuple = ()
    """Ranks that spent part of the build excluded (degraded mode) and
    were re-admitted + repaired before the final graph was gathered."""
    dnnd: Optional["DNND"] = field(default=None, repr=False, compare=False)
    """Set by :meth:`DNND.resume` so callers can keep driving the
    instance (e.g. run ``optimize()``) after a resumed build."""

    metrics: MetricsRegistry = field(default=NULL_METRICS, repr=False,
                                     compare=False)
    """The build's metrics registry (``repro.runtime.metrics``) — the
    backend-agnostic observability surface.  ``result.metrics.snapshot()``
    is the JSON export, ``result.metrics.to_chrome_trace()`` the
    Perfetto-loadable timeline; the shared no-op registry when the build
    ran with ``DNNDConfig(metrics=False)``."""

    def summary(self) -> str:
        """Human-readable build report (used by the CLI and examples)."""
        from ..utils.timing import format_duration

        lines = [
            f"DNND build: n={self.graph.n}, k={self.graph.k}, "
            f"{self.world_size} ranks",
            f"iterations: {self.iterations} "
            f"({'converged' if self.converged else 'hit max_iters'})",
            f"updates per iteration: "
            f"{', '.join(f'{c:,}' for c in self.update_counts)}",
            f"distance evaluations: {self.distance_evals:,}",
            f"simulated time: {format_duration(self.sim_seconds)}",
        ]
        if self.phase_seconds:
            total = sum(self.phase_seconds.values()) or 1.0
            breakdown = ", ".join(
                f"{phase} {secs / total:.0%}"
                for phase, secs in sorted(self.phase_seconds.items(),
                                          key=lambda t: -t[1]))
            lines.append(f"phase breakdown: {breakdown}")
        if self.adjacency is not None:
            lines.append(
                f"optimized graph: {self.adjacency.n_edges:,} edges, "
                f"max degree {int(self.adjacency.degrees().max())}")
        if self.fault_stats.total_events():
            lines.append(self.fault_stats.format_line())
        if self.recoveries:
            lines.append(f"checkpoint recoveries: {self.recoveries}")
        if self.degraded_ranks:
            lines.append("degraded ranks (excluded, then repaired): "
                         f"{list(self.degraded_ranks)}")
        lines.append(self.message_stats.format_table("message totals"))
        return "\n".join(lines)


class DNND:
    """Distributed NN-Descent builder on a simulated cluster.

    Parameters
    ----------
    data:
        Dense ``(n, dim)`` matrix or sparse record dataset.
    config:
        Algorithm + communication configuration.
    cluster:
        Simulated cluster shape (nodes x procs_per_node).
    net:
        Cost-model constants (defaults in :class:`NetworkModel`).
    flush_threshold:
        YGM internal per-destination buffer size in messages.
    partitioner:
        Override the vertex partitioner (default: hash, as in the paper).
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan`; a non-null
        plan attaches a fault injector to the simulated network.
    reliable:
        Run YGM in reliable delivery mode (acks + retransmits + dedup)
        so injected drop/duplicate/delay/reorder faults cannot corrupt
        the build; see :class:`~repro.runtime.ygm.YGMWorld`.
    max_retries:
        Retransmit budget per message in reliable mode.
    failure_timeout:
        Heartbeat threshold for the comm layer's failure detector (in
        delivery rounds): a rank that holds an unacked frame *and*
        drains nothing for this long is declared failed and surfaces as
        :class:`~repro.errors.RankFailureError`.  Only active in
        reliable mode; ``None`` disables detection-by-timeout.  The
        default covers several retransmit backoff cycles (the backoff
        caps at 32 rounds), so a lossy-but-alive link is retried rather
        than declared dead.
    sanitize:
        Run under the runtime ownership sanitizer
        (:mod:`repro.analysis.sanitizer`): rank-owned heaps and state
        are tagged and cross-rank access from handler/SPMD context
        raises.  ``None`` (default) defers to ``REPRO_SANITIZE``.

    The execution backend comes from ``config.backend`` (``"sim"`` |
    ``"parallel"`` | ``None`` = defer to ``REPRO_BACKEND``, default
    sim).  The sim backend is the deterministic cost-modeled
    simulation; the parallel backend runs rank sections concurrently on
    a shared-memory thread pool (``config.workers``).  Fault injection,
    reliable delivery, failure detection, and supervised recovery work
    on *both* backends (the transport seam owns them); only the network
    cost model remains sim-only: requesting ``net=...`` with an
    *explicit* ``backend="parallel"`` raises
    :class:`~repro.errors.ConfigError`, while a blanket
    ``REPRO_BACKEND=parallel`` environment default downgrades such a
    run to sim — with a visible :class:`RuntimeWarning` and a
    ``backend.fallbacks`` counter in the metrics, never silently.
    """

    def __init__(self, data, config: DNNDConfig | None = None,
                 cluster: ClusterConfig | None = None,
                 net: NetworkModel | None = None,
                 flush_threshold: int = 1024,
                 partitioner: Optional[Partitioner] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 reliable: bool = False,
                 max_retries: int = 32,
                 failure_timeout: int | None = 256,
                 sanitize: bool | None = None) -> None:
        self.data = data
        self.config = config or DNNDConfig()
        self.cluster_config = cluster or ClusterConfig()
        self.n = len(data)
        if self.config.k >= self.n:
            raise ConfigError(
                f"k={self.config.k} must be smaller than dataset size {self.n}"
            )
        # One metrics registry per build (the no-op singleton when the
        # config turns observability off); the comm layer publishes the
        # counter aggregates into it at every barrier, the driver adds
        # wall-clock phase spans and heap/distance totals.  Created
        # before backend resolution so the resolution itself is
        # observable (``backend.fallbacks``).
        self.metrics: MetricsRegistry = (
            MetricsRegistry() if self.config.metrics else NULL_METRICS)
        backend = resolve_backend(self.config.backend)
        fallbacks = 0
        if backend == "parallel" and net is not None:
            if self.config.backend == "parallel":
                raise ConfigError(
                    "the network cost model (net=...) requires the "
                    "deterministic sim backend; the parallel executor "
                    "has no cost ledger. Use backend='sim'.")
            # Parallel came from the REPRO_BACKEND environment default:
            # run on sim rather than silently dropping the requested
            # cost model — and say so, audibly and in the metrics.
            warnings.warn(
                "REPRO_BACKEND=parallel downgraded to the sim backend: "
                "a network cost model (net=...) was requested and the "
                "parallel executor has no cost ledger",
                RuntimeWarning, stacklevel=2)
            backend = "sim"
            fallbacks = 1
        self._sparse = getattr(CountingMetric(self.config.nnd.metric), "sparse_input")
        if backend == "process":
            blocker = _process_blocker(net, fault_plan, reliable, sanitize,
                                       self._sparse)
            if blocker is not None:
                if self.config.backend == "process":
                    raise ConfigError(
                        f"{blocker} requires the deterministic sim "
                        f"backend; the process backend runs ranks in "
                        f"worker processes without a cost ledger or "
                        f"network fault hooks. Use backend='sim'.")
                # Process came from the REPRO_BACKEND environment
                # default: downgrade to sim rather than silently
                # dropping the requested feature — audibly and in the
                # metrics, same contract as the parallel fallback.
                warnings.warn(
                    f"REPRO_BACKEND=process downgraded to the sim "
                    f"backend: {blocker} is sim-only",
                    RuntimeWarning, stacklevel=2)
                backend = "sim"
                fallbacks = 1
        self.metrics.set_counter("backend.fallbacks", fallbacks)
        self.backend = backend
        self._parallel = backend == "parallel"
        self._process = backend == "process"
        self.fault_plan = fault_plan
        self._flush_threshold = int(flush_threshold)
        self._shm_owner: Optional[SharedArrayOwner] = None
        if self._process:
            # Crash plans are handled natively by the process world
            # (SIGKILL at the planned iteration); the message-level
            # injector is a sim/parallel transport hook.
            self._injector = None
            self.executor = make_executor(
                backend, self.config.workers, self.cluster_config.world_size)
            self._shm_owner = SharedArrayOwner(
                np.ascontiguousarray(np.asarray(self.data)))
            self.cluster = ProcessTransport(self.cluster_config,
                                            workers=self.executor.workers)
            self.world = ProcessWorld(self.cluster, executor=self.executor,
                                      metrics=self.metrics,
                                      fault_plan=fault_plan,
                                      seed=self.config.nnd.seed)
            # The teardown closure captures only the transport and the
            # segment owner — never ``self`` — so the executor's
            # GC finalizer cannot keep the whole build alive.
            self.executor.bind(
                _process_teardown(self.cluster, self._shm_owner))
        else:
            self._injector = make_injector(fault_plan, self.cluster_config.world_size)
            if self._parallel:
                self.executor = make_executor(
                    backend, self.config.workers, self.cluster_config.world_size)
                self.cluster = LocalTransport(self.cluster_config,
                                              injector=self._injector)
            else:
                self.executor = SimExecutor()
                self.cluster = SimCluster(self.cluster_config, net,
                                          injector=self._injector)
            self.world = YGMWorld(self.cluster, flush_threshold=flush_threshold,
                                  seed=self.config.nnd.seed,
                                  reliable=reliable, max_retries=max_retries,
                                  failure_timeout=failure_timeout,
                                  sanitize=sanitize, executor=self.executor,
                                  metrics=self.metrics)
        self._open_span = None
        self._recoveries = 0
        self._recovery_attempts = 0
        self._degraded_ranks: set = set()
        if not self._process:
            # Process workers register their own handler set (the
            # shared-memory variants) inside each worker process.
            register_dnnd_handlers(self.world)
            if self.config.batch_exec:
                register_dnnd_batch_handlers(self.world)
        self.partitioner = partitioner or HashPartitioner(self.n, self.cluster_config.world_size)
        self._built = False
        self._distribute()
        if self.metrics.enabled:
            self.metrics.set_gauge("partition.imbalance",
                                   self.partitioner.max_imbalance())

    # -- setup -----------------------------------------------------------------

    def _distribute(self) -> None:
        """Scatter feature rows to owner ranks (not timed: the paper
        excludes data loading from construction time)."""
        if self._process:
            # First call spawns the worker fabric (each worker maps the
            # shared dataset segment and builds its owned shards in its
            # bootstrap); recovery calls rebroadcast a shard rebuild.
            if not self.cluster.started:
                self.cluster.start(
                    ("repro.core.dnnd_process", "bootstrap"),
                    {"spec": self._shm_owner.spec,
                     "config": self.config,
                     "partitioner": self.partitioner,
                     "n": self.n,
                     "flush_threshold": self._flush_threshold})
            else:
                # Rebroadcast the (possibly repartitioned) ownership
                # layer with the rebuild: workers swap their partitioner
                # and owner table, then rebuild their owned shards.
                self.world.command("set_partitioner",
                                   {"partitioner": self.partitioner})
            return
        cfg = self.config
        san = self.world.sanitizer
        # One shared read-only owner table: owner_of[gid] == owner(gid),
        # used by the batch handlers instead of per-message hash calls.
        # Kept as a plain list: per-message indexing of a Python list is
        # several times cheaper than a numpy scalar index + int().
        owner_table = self.partitioner.owner_array(
            np.arange(self.n, dtype=np.int64)).tolist()
        for ctx in self.world.ranks:
            gids = self.partitioner.local_ids(ctx.rank)
            if self._sparse:
                feats = [self.data[int(g)] for g in gids]
                dense_bytes = 0
            else:
                feats = np.ascontiguousarray(np.asarray(self.data)[gids])
                dense_bytes = int(feats.shape[1] * feats.dtype.itemsize) if feats.size else 0
            shard = LocalShard(
                rank=ctx.rank,
                partitioner=self.partitioner,
                global_ids=gids,
                local_index={int(g): i for i, g in enumerate(gids)},
                features=feats,
                heaps=[NeighborHeap(cfg.k) for _ in range(len(gids))],
                metric=CountingMetric(cfg.nnd.metric, kernel=cfg.kernel),
                config=cfg,
                sparse=self._sparse,
                feature_nbytes_dense=dense_bytes,
                owner_of=owner_table,
            )
            if san is not None:
                for heap in shard.heaps:
                    tag_heap(heap, san, ctx.rank)
            ctx.state["shard"] = shard

    def _shards(self) -> List[LocalShard]:
        return [shard_of(ctx) for ctx in self.world.ranks]

    def _rank_scope(self, ctx: RankContext):
        """Sanitizer scope marking driver code as executing *as*
        ``ctx.rank`` (a no-op singleton when the sanitizer is off)."""
        san = self.world.sanitizer
        return _NULL_SCOPE if san is None else san.rank_scope(ctx.rank)

    def close(self) -> None:
        """Release the executor's scheduling resources (a no-op for the
        sim backend; joins the parallel backend's thread pool).  Safe to
        call more than once; also triggered by garbage collection."""
        self.executor.shutdown()

    def _enter_phase(self, name: str, **args) -> None:
        """Start phase ``name``: scope message stats to it *and* open a
        wall-clock span on the metrics timeline.  The previous phase's
        span is closed first, so phase spans form a strictly sequential,
        non-overlapping timeline (the golden-trace contract)."""
        self._close_phase()
        self.world.set_phase(name)
        if self.metrics.enabled:
            span = self.metrics.span(f"phase.{name}", **args)
            span.__enter__()
            self._open_span = span

    def _close_phase(self) -> None:
        if self._open_span is not None:
            self._open_span.__exit__(None, None, None)
            self._open_span = None

    def _maybe_batch_barrier(self) -> None:
        """Section 4.4: barrier every ``batch_size`` global requests.

        No-op under the parallel backend: application-level batch
        barriers exist to bound the *simulated* buffer memory between
        supersteps, and mid-phase barriers cannot be driven from inside
        concurrently-running rank sections."""
        if self._parallel:
            return
        bs = self.config.batch_size
        if bs and self.world.async_count_since_barrier >= bs:
            self.world.barrier()

    def _emit_chunked(self, ctx: RankContext, triples: list,
                      nbytes: int, msg_type: str) -> None:
        """Emit ``(dest, handler, args)`` triples as blocks sized to hit
        the Section 4.4 barrier at exactly the same message index as a
        per-message loop with a per-message :meth:`_maybe_batch_barrier`
        would (the scalar path in phases whose handlers emit nothing —
        the async count between barriers then only grows by driver
        emissions, one per message, so the barrier fires precisely when
        the count reaches ``batch_size``)."""
        if self._parallel:
            # No mid-phase barriers under the parallel backend: ship the
            # whole run in one coalesced emission.
            self.world.emit_run(ctx.rank, triples, nbytes, msg_type)
            return
        bs = self.config.batch_size
        i = 0
        n = len(triples)
        while i < n:
            if bs:
                room = max(1, bs - self.world.async_count_since_barrier)
                chunk = triples[i:i + room]
            else:
                chunk = triples[i:] if i else triples
            self.world.emit_run(ctx.rank, chunk, nbytes, msg_type)
            i += len(chunk)
            self._maybe_batch_barrier()

    def _interleaved_vertices(self):
        """Yield ``(ctx, local_index)`` round-robin across ranks, modeling
        SPMD ranks progressing through their local vertices together
        (excluded ranks sit out, as in :meth:`YGMWorld.run_on_all`)."""
        shards = self._shards()
        excluded = self.world.excluded_ranks
        max_local = max((s.n_local for s in shards), default=0)
        for li in range(max_local):
            for ctx in self.world.ranks:
                if excluded and ctx.rank in excluded:
                    continue
                if li < shard_of(ctx).n_local:
                    yield ctx, li

    # -- build ------------------------------------------------------------------

    def build(self, store_path=None, checkpoint_path=None,
              checkpoint_every: int = 0,
              recover_on_crash: bool = True,
              degraded: bool = False,
              max_recovery_attempts: int = 8) -> DNNDResult:
        """Construct the k-NNG; optionally persist graph + dataset.

        Parameters
        ----------
        store_path:
            If given, persist the final graph + dataset (the paper's
            first executable).
        checkpoint_path / checkpoint_every:
            Checkpoint the in-progress build every ``checkpoint_every``
            iterations into a Metall store at ``checkpoint_path``.
            :meth:`resume` continues an interrupted build from such a
            checkpoint, producing the *identical* final graph (all
            per-iteration randomness is keyed, not streamed) — the
            natural extension of Section 4.6's persistence to the
            hours-long billion-scale construction itself.
        recover_on_crash:
            When the fault injector crashes a rank mid-build, restore
            from the latest checkpoint (or restart initialization if
            none was written yet) and replay — keyed randomness makes
            the recovered build identical to a fault-free one.  Set to
            False to let :class:`~repro.errors.RankFailureError`
            propagate instead.
        degraded:
            Degraded-mode recovery: instead of rolling back, *exclude*
            the detected-failed ranks and continue the build without
            them (their traffic is discarded, their shards contribute
            nothing to convergence).  Before the final gather the
            excluded ranks are re-admitted and a neighborhood-repair
            pass rebuilds their shards (keyed re-initialization +
            survivor edge donation + bounded extra NN-Descent rounds).
            Takes precedence over checkpoint rollback when both apply.
        max_recovery_attempts:
            Bound on *consecutive* recovery cycles (supervised rollback
            or degraded exclusion) without a completed iteration; when
            exceeded the failure propagates.
        """
        if self._built:
            raise RuntimeStateError("build() already ran on this DNND instance")
        if checkpoint_every and checkpoint_path is None:
            raise ConfigError("checkpoint_every requires checkpoint_path")
        if max_recovery_attempts < 1:
            raise ConfigError("max_recovery_attempts must be >= 1")
        self._built = True
        self._init_phase()
        return self._run_iterations(
            start_iteration=0, update_counts=[], per_iter_msgs=[],
            store_path=store_path, checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            recover_on_crash=recover_on_crash,
            degraded=degraded,
            max_recovery_attempts=max_recovery_attempts)

    @classmethod
    def resume(cls, data, checkpoint_path,
               cluster: ClusterConfig | None = None,
               net: NetworkModel | None = None,
               store_path=None,
               checkpoint_every: int = 0,
               fault_plan: Optional[FaultPlan] = None,
               reliable: bool = False,
               backend: str | None = None,
               workers: int = 0,
               partitioner: "str | Partitioner | None" = None) -> DNNDResult:
        """Continue an interrupted build from a checkpoint store.

        ``data`` must be the same dataset the original build ran on
        (the checkpoint records its fingerprint and refuses otherwise).
        The cluster shape may differ for the parametric partitioners —
        hash/block reassign vertices deterministically at the new size —
        but an explicit assignment table is pinned to its world size.
        The execution backend is likewise free: checkpoints record
        algorithm state, not the execution choice, so a build
        checkpointed under sim may resume under ``backend="parallel"``
        and vice versa.

        ``partitioner`` optionally *asserts* the ownership layer: a name
        (``"hash"``/``"block"``/``"rptree"``) or instance that conflicts
        with the one recorded in the checkpoint raises
        :class:`~repro.errors.ConfigError` — resume always reconstructs
        the stored ownership, never silently reassigns it.
        """
        try:
            with MetallStore.open_read_only(checkpoint_path,
                                            verify=True) as store:
                meta = store["ckpt_meta"]
                heap_ids = np.asarray(store["ckpt_ids"])
                heap_dists = np.asarray(store["ckpt_dists"])
                heap_flags = np.asarray(store["ckpt_flags"])
        except StoreCorruptError as exc:
            raise CheckpointCorruptError(
                f"checkpoint at {checkpoint_path} failed verification "
                f"on resume: {exc}") from exc
        if meta["n"] != len(data):
            raise ConfigError(
                f"checkpoint was built on {meta['n']} rows, got {len(data)}"
            )
        if abs(float(meta["data_fingerprint"]) - _fingerprint(data)) > 1e-6:
            raise ConfigError(
                "checkpoint data fingerprint mismatch: not the same dataset"
            )
        config = DNNDConfig(
            nnd=NNDescentConfig(**meta["nnd"]),
            comm_opts=CommOptConfig(**meta["comm_opts"]),
            batch_size=meta["batch_size"],
            pruning_factor=meta["pruning_factor"],
            shuffle_reverse_destinations=meta["shuffle_reverse_destinations"],
            batch_exec=meta.get("batch_exec", True),
            backend=backend,
            workers=workers,
        )
        cluster_config = cluster or ClusterConfig()
        spec = meta.get("partitioner")
        if spec is None:
            # Pre-partitioner-layer checkpoint: hash was the only form.
            spec = {"type": "hash", "n": int(meta["n"]),
                    "world_size": cluster_config.world_size}
        if partitioner is not None and not spec_matches(spec, partitioner):
            stored = spec.get("source") or spec["type"]
            wanted = (partitioner if isinstance(partitioner, str)
                      else getattr(partitioner, "source", partitioner.kind))
            raise ConfigError(
                f"checkpoint at {checkpoint_path} was built with the "
                f"{stored!r} partitioner; resume requested {wanted!r}. "
                f"Resume must reuse the stored ownership — omit the "
                f"partitioner argument to reconstruct it automatically.")
        if spec["type"] in ("hash", "block"):
            # Parametric ownership reassigns deterministically at the
            # (possibly different) resumed cluster size.
            restored = partitioner_from_spec(
                {**spec, "world_size": cluster_config.world_size})
        else:
            if int(spec["world_size"]) != cluster_config.world_size:
                raise ConfigError(
                    f"checkpoint pins an explicit id->rank assignment for "
                    f"{spec['world_size']} ranks; the resumed cluster has "
                    f"{cluster_config.world_size}. Resume with the "
                    f"original cluster shape.")
            restored = partitioner_from_spec(spec)
        dnnd = cls(data, config, cluster=cluster, net=net,
                   fault_plan=fault_plan, reliable=reliable,
                   partitioner=restored)
        dnnd._built = True
        dnnd._restore_heaps(heap_ids, heap_dists, heap_flags)
        result = dnnd._run_iterations(
            start_iteration=int(meta["iteration"]),
            update_counts=list(meta["update_counts"]),
            per_iter_msgs=[],
            store_path=store_path,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every)
        dnnd._last_result = result
        result.dnnd = dnnd  # so callers can run optimize() afterwards
        return result

    def _run_iterations(self, start_iteration: int, update_counts: List[int],
                        per_iter_msgs: List[Dict[str, tuple]],
                        store_path, checkpoint_path,
                        checkpoint_every: int,
                        recover_on_crash: bool = True,
                        degraded: bool = False,
                        max_recovery_attempts: int = 8) -> DNNDResult:
        cfg = self.config.nnd
        threshold = cfg.delta * cfg.k * self.n
        converged = False
        iterations = start_iteration
        n_pre = len(update_counts)  # history carried in from a resume
        consecutive_failures = 0
        it = start_iteration
        while it < cfg.max_iters:
            iterations = it + 1
            if self._injector is not None:
                self._injector.advance_iteration(it)
            elif self._process and self.fault_plan is not None:
                # Planned crashes fire here as real SIGKILLs on the
                # owning worker; detection surfaces at the next barrier.
                self.world.advance_iteration(it)
            before = {t: (s.count, s.bytes) for t, s in self.cluster.stats.by_type.items()}
            try:
                c = self._iteration(it)
            except RankFailureError as failure:
                if not recover_on_crash and not degraded:
                    raise
                # End the failed phase's span before the recovery span
                # opens — timeline spans stay sequential even across
                # crash-recovery cycles.
                self._close_phase()
                self._recovery_attempts += 1
                consecutive_failures += 1
                if consecutive_failures > max_recovery_attempts:
                    # The supervisor's patience is bounded: a failure
                    # storm that never completes an iteration must
                    # surface, not loop forever.
                    raise
                if degraded:
                    # Write the dead ranks out of the build and replay
                    # the iteration without them; they are repaired and
                    # re-admitted before the final gather.
                    self._exclude_failed(failure.ranks)
                    continue
                # The barrier failed under us: roll back to the latest
                # checkpoint (message/time costs stay on the ledger —
                # the work wasted by the crash was genuinely spent) and
                # replay.  Keyed per-iteration randomness guarantees the
                # replay reconstructs the fault-free trajectory.
                self._charge_recovery_backoff(consecutive_failures)
                it = self._recover(checkpoint_path, update_counts)
                del per_iter_msgs[max(0, len(update_counts) - n_pre):]
                continue
            consecutive_failures = 0
            update_counts.append(c)
            self._publish_build_metrics(update_counts)
            after = self.cluster.stats.snapshot()
            per_iter_msgs.append({
                t: (after[t][0] - before.get(t, (0, 0))[0],
                    after[t][1] - before.get(t, (0, 0))[1])
                for t in after
            })
            if checkpoint_every and (it + 1) % checkpoint_every == 0:
                self._write_checkpoint(checkpoint_path, it + 1, update_counts)
            if c < threshold:
                converged = True
                break
            it += 1
        if self._degraded_ranks:
            self._repair_degraded(update_counts, threshold)
        graph = self._gather_graph()
        self._publish_build_metrics(update_counts)
        self._publish_partition_metrics(graph.ids)
        self._publish_sim_enrichment()
        if self._process:
            distance_evals = sum(
                t[1] for t in self.world.shard_totals().values())
        else:
            distance_evals = sum(s.metric.count for s in self._shards())
        result = DNNDResult(
            graph=graph,
            iterations=iterations,
            update_counts=update_counts,
            converged=converged,
            message_stats=self.cluster.stats,
            phase_stats=dict(self.world.phase_stats),
            sim_seconds=self.cluster.ledger.elapsed,
            phase_seconds=dict(self.cluster.ledger.phase_elapsed),
            distance_evals=distance_evals,
            world_size=self.cluster.world_size,
            per_iteration_messages=per_iter_msgs,
            fault_stats=self.world.fault_stats,
            recoveries=self._recoveries,
            degraded_ranks=tuple(sorted(self._degraded_ranks)),
            metrics=self.metrics,
        )
        if store_path is not None:
            self._persist(store_path, result)
        self._last_result = result
        return result

    def _publish_build_metrics(self, update_counts: List[int]) -> None:
        """Driver-level totals the comm layer cannot see: heap update
        attempts (``heap.updates``, delivery-order invariant under the
        unoptimized pattern — the conformance metric), successful
        NN-Descent pushes (``heap.updates.accepted``, order-sensitive
        for full heaps), and distance evaluations."""
        m = self.metrics
        if not m.enabled:
            return
        if self._process:
            totals = list(self.world.shard_totals().values())
            m.set_counter("heap.updates", sum(t[0] for t in totals))
            m.set_counter("heap.updates.accepted", sum(update_counts))
            m.set_counter("distance.evals", sum(t[1] for t in totals))
            m.set_counter("kernel.tile_flops",
                          sum(t[3] for t in totals if len(t) > 3))
            m.set_counter("kernel.fallbacks",
                          sum(t[4] for t in totals if len(t) > 4))
            m.set_counter("recovery.attempts", self._recovery_attempts)
            return
        shards = self._shards()
        m.set_counter("heap.updates", sum(s.push_attempts for s in shards))
        m.set_counter("heap.updates.accepted", sum(update_counts))
        m.set_counter("distance.evals", sum(s.metric.count for s in shards))
        # Kernel-layer tallies (DESIGN.md section 17): zero under the
        # default rowwise kernel, so the snapshot names stay stable
        # across kernel choices (same contract as the recovery zeros).
        m.set_counter("kernel.tile_flops",
                      sum(s.metric.tile_flops for s in shards))
        m.set_counter("kernel.fallbacks",
                      sum(s.metric.kernel_fallbacks for s in shards))
        # Recovery SLO counters: published on every backend (zeros
        # included) so fault-free and fault-injected snapshots expose
        # the same names.
        m.set_counter("recovery.attempts", self._recovery_attempts)

    def _publish_partition_metrics(self, neighbor_ids: np.ndarray) -> None:
        """Partition-layer gauges: placement balance and the fraction of
        graph edges crossing a rank boundary.  Driver-side and O(n*k),
        so every backend publishes the same names from the same code."""
        m = self.metrics
        if not m.enabled:
            return
        m.set_gauge("partition.imbalance", self.partitioner.max_imbalance())
        m.set_gauge("partition.edge_cut",
                    edge_cut_fraction(self.partitioner, neighbor_ids))

    def _publish_sim_enrichment(self) -> None:
        """Sim cost-model decomposition as *enrichment* gauges
        (``sim.seconds`` / ``sim.phase.<name>.seconds``): deterministic
        modeled time, only present when the transport carries a real
        ledger — the parallel backend's phase timing comes from the
        wall-clock spans instead."""
        m = self.metrics
        ledger = self.cluster.ledger
        if not (m.enabled and ledger.enabled):
            return
        m.set_gauge("sim.seconds", ledger.elapsed)
        for phase, secs in ledger.phase_elapsed.items():
            m.set_gauge(f"sim.phase.{phase}.seconds", secs)

    def _recover(self, checkpoint_path, update_counts: List[int]) -> int:
        """Crash recovery: discard in-flight traffic, repair the failed
        ranks (the replacement-node model — supervisor marks and
        injector crashes both clear), and restore algorithm state from
        the latest checkpoint — or rerun initialization when the crash
        predates the first checkpoint.  Returns the iteration to replay
        from; ``update_counts`` is rewritten in place to the restored
        history."""
        self._recoveries += 1
        with self.metrics.span("recovery.duration", cat="recovery",
                               recovery=self._recoveries):
            self.world.reset_in_flight()
            self.cluster.repair_all()
            if checkpoint_path is not None and MetallStore.exists(checkpoint_path):
                try:
                    with MetallStore.open_read_only(checkpoint_path,
                                                    verify=True) as store:
                        meta = store["ckpt_meta"]
                        ids = np.asarray(store["ckpt_ids"])
                        dists = np.asarray(store["ckpt_dists"])
                        flags = np.asarray(store["ckpt_flags"])
                except StoreCorruptError as exc:
                    raise CheckpointCorruptError(
                        f"checkpoint at {checkpoint_path} failed "
                        f"verification during crash recovery: {exc}"
                    ) from exc
                self._restore_heaps(ids, dists, flags)
                update_counts[:] = list(meta["update_counts"])
                return int(meta["iteration"])
            # No checkpoint yet: rebuild shards and replay initialization.
            self._distribute()
            self._init_phase()
            update_counts[:] = []
            return 0

    def _charge_recovery_backoff(self, attempt: int) -> None:
        """Supervised-recovery backoff: each consecutive failed attempt
        doubles a small modeled penalty charged to every rank (the
        replacement node's provisioning time; a wall-clock sleep would
        be meaningless against the simulated clock and pure waste on
        the parallel backend, whose ledger discards the charge)."""
        ledger = self.cluster.ledger
        if not ledger.enabled:
            return
        penalty = 1.0e-3 * (2.0 ** (attempt - 1))
        for r in range(self.cluster.world_size):
            ledger.charge(r, penalty)

    def _exclude_failed(self, ranks) -> None:
        """Degraded mode: write failed ``ranks`` out of the build.  The
        comm layer discards their traffic and skips them in SPMD
        sections; their shards' convergence contribution is zeroed here
        (the allreduce still collects one value per rank)."""
        ranks = {int(r) for r in ranks} - self._degraded_ranks
        self._degraded_ranks |= ranks
        self.world.exclude_ranks(ranks)
        # In-flight traffic from the failed round may carry messages
        # from/to the dead ranks; drop all of it and replay the
        # iteration from its start (keyed randomness makes the replay
        # emit the same survivor-side messages).
        self.world.reset_in_flight()
        if self._process:
            # The worker-side "exclude" broadcast already zeroed the
            # excluded shards' convergence counters (dead workers' ranks
            # report nothing until respawned at readmission).
            return
        for ctx in self.world.ranks:
            if ctx.rank in self._degraded_ranks:
                shard_of(ctx).update_count = 0

    def _repair_degraded(self, update_counts: List[int],
                         threshold: float) -> None:
        """Degraded-mode epilogue: re-admit the excluded ranks and run
        the neighborhood-repair pass that rebuilds their shards —

        1. fresh heaps on the repaired ranks (a replacement node comes
           back with the reloaded feature shard and empty state),
        2. keyed re-initialization: repaired vertices replay the
           Algorithm 1 init sampling (same ``derive_rng`` key, so the
           same candidates as a fault-free init),
        3. survivor donation: surviving ranks push the edges they
           already hold that land on repaired vertices,
        4. bounded extra NN-Descent rounds to knit the repaired
           neighborhoods back into the graph.
        """
        cfg = self.config.nnd
        repaired = set()
        with self.metrics.span("recovery.duration", cat="recovery",
                               mode="degraded-repair",
                               ranks=sorted(self._degraded_ranks)):
            self._enter_phase("repair")
            repaired = self.world.readmit_ranks()
            if self._process:
                # Same three repair stages, run worker-side: fresh heaps
                # on repaired ranks (respawned workers already rebuilt
                # their shards from the shared segment — the reset is
                # idempotent), keyed re-initialization, and survivor
                # edge donation.
                rlist = sorted(repaired)
                self.world.run_section("repair_reset", {"ranks": rlist})
                self.world.run_section("repair_reinit", {"ranks": rlist})
                self.world.run_section("repair_donate", {"ranks": rlist})
                self.world.barrier()
                for j in range(4):
                    c = self._iteration(cfg.max_iters + 1 + j)
                    update_counts.append(c)
                    self._publish_build_metrics(update_counts)
                    if c < threshold:
                        break
                self._close_phase()
                return
            san = self.world.sanitizer
            for ctx in self.world.ranks:
                if ctx.rank not in repaired:
                    continue
                shard = shard_of(ctx)
                shard.heaps = [NeighborHeap(self.config.k)
                               for _ in range(shard.n_local)]
                shard.reset_iteration_scratch()
                if san is not None:
                    for heap in shard.heaps:
                        tag_heap(heap, san, ctx.rank)

            def reinit_section(ctx: RankContext) -> None:
                if ctx.rank not in repaired:
                    return
                shard = shard_of(ctx)
                for li in range(shard.n_local):
                    v = int(shard.global_ids[li])
                    rng = derive_rng(cfg.seed, 2, v)
                    cand = sample_without_replacement(
                        rng, self.n, min(self.n - 1, cfg.k + 2))
                    cand = cand[cand != v][:cfg.k]
                    nb = 2 * ID_BYTES + shard.feature_nbytes(v)
                    for u in cand:
                        u = int(u)
                        ctx.async_call(shard.owner(u), "init_req", v, u,
                                       shard.feature(v), nbytes=nb,
                                       msg_type="init_req")

            def donate_section(ctx: RankContext) -> None:
                if ctx.rank in repaired:
                    return
                shard = shard_of(ctx)
                owner = shard.owner_of
                for li in range(shard.n_local):
                    v = int(shard.global_ids[li])
                    for u, d, _flag in list(shard.heaps[li].entries()):
                        if owner[u] in repaired:
                            # u's neighbor list died with its rank; the
                            # survivor donates the reverse edge (u, v).
                            ctx.async_call(
                                owner[u], "init_resp", int(u), v, float(d),
                                nbytes=2 * ID_BYTES + DIST_BYTES,
                                msg_type="init_resp")

            self.world.run_on_all(reinit_section)
            self.world.run_on_all(donate_section)
            self.world.barrier()
            # Bounded extra rounds, keyed past the regular iteration
            # space so their RNG streams are fresh; stop early once the
            # update counter falls under the convergence threshold.  The
            # repaired shards restart from reinit + donations, so they
            # need a few descent rounds — four bounds the epilogue while
            # typically reaching the fault-free neighborhood quality.
            for j in range(4):
                c = self._iteration(cfg.max_iters + 1 + j)
                update_counts.append(c)
                self._publish_build_metrics(update_counts)
                if c < threshold:
                    break
            self._close_phase()

    def _init_phase(self) -> None:
        """Algorithm 1 lines 2-5 via the Section 4.1 async pattern."""
        self._enter_phase("init")
        cfg = self.config.nnd
        use_batch = self.config.batch_exec
        if self._process:
            self.world.run_section("init")
            self.world.barrier()
            return
        if self._parallel:
            # Parallel backend: each rank emits all of its vertices'
            # init requests in one section (candidates are keyed by
            # vertex id, so rank-major order changes nothing), then the
            # barrier drains rank mailboxes concurrently.
            n = self.n
            k = cfg.k
            seed = cfg.seed

            def section(ctx: RankContext) -> None:
                shard = shard_of(ctx)
                owner = shard.owner_of
                triples = []
                append = triples.append
                for li in range(shard.n_local):
                    v = int(shard.global_ids[li])
                    rng = derive_rng(seed, 2, v)
                    cand = sample_without_replacement(rng, n, min(n - 1, k + 2))
                    cand = cand[cand != v][:k]
                    if use_batch:
                        f = shard.features[li]
                        for u in cand.tolist():
                            append((owner[u], "init_req", (v, u, f)))
                    else:
                        nb = 2 * ID_BYTES + shard.feature_nbytes(v)
                        for u in cand:
                            u = int(u)
                            ctx.async_call(
                                shard.owner(u), "init_req", v, u,
                                shard.feature(v), nbytes=nb,
                                msg_type="init_req")
                if triples:
                    # Dense features share one row size; sparse rows
                    # differ but the stats stay per-message exact only
                    # for dense data — use the first row's size as the
                    # uniform estimate (stats are diagnostics here; the
                    # ledger is off under this backend).
                    nb = 2 * ID_BYTES + shard.feature_nbytes(
                        int(shard.global_ids[0]))
                    self.world.emit_run(ctx.rank, triples, nb, "init_req")

            self.world.run_on_all(section)
            self.world.barrier()
            return
        for ctx, li in self._interleaved_vertices():
            with self._rank_scope(ctx):
                shard = shard_of(ctx)
                v = int(shard.global_ids[li])
                rng = derive_rng(cfg.seed, 2, v)
                cand = sample_without_replacement(rng, self.n, min(self.n - 1, cfg.k + 2))
                cand = cand[cand != v][:cfg.k]
                if use_batch:
                    owner = shard.owner_of
                    f = shard.features[li]
                    nb = 2 * ID_BYTES + shard.feature_nbytes(v)
                    self.world.emit_run(
                        ctx.rank,
                        [(owner[u], "init_req", (v, u, f))
                         for u in cand.tolist()],
                        nb, "init_req")
                else:
                    for u in cand:
                        u = int(u)
                        ctx.async_call(
                            shard.owner(u), "init_req", v, u, shard.feature(v),
                            nbytes=2 * ID_BYTES + shard.feature_nbytes(v),
                            msg_type="init_req",
                        )
            self._maybe_batch_barrier()
        self.world.barrier()

    def _iteration_process(self, iteration: int) -> int:
        """One NN-Descent round on the process backend: the same phase
        sequence as :meth:`_iteration`, with each section broadcast to
        the worker fabric instead of run on driver-side rank contexts
        (workers mirror the parallel-branch section bodies over their
        owned ranks)."""
        ws = self.cluster.world_size
        self._enter_phase("sample", iteration=iteration)
        self.world.run_section("sample", {"iteration": iteration})
        self._enter_phase("reverse", iteration=iteration)
        self.world.run_section("reverse", {"iteration": iteration})
        self.world.barrier()
        self._enter_phase("union", iteration=iteration)
        self.world.run_section("union", {"iteration": iteration})
        self._enter_phase("neighbor_check", iteration=iteration)
        one_sided = self.config.comm_opts.one_sided
        longest = max(self.world.run_section(
            "check_build", {"one_sided": one_sided}).values(), default=0)
        chunk = (max(1, self.config.batch_size // ws)
                 if self.config.batch_size else longest)
        start = 0
        while start < longest:
            stop = start + chunk
            self.world.run_section("check_emit",
                                   {"start": start, "stop": stop})
            self.world.barrier()
            start = stop
        totals = self.world.shard_totals()
        return int(self.cluster.allreduce_sum(
            [totals.get(r, (0, 0, 0))[2] for r in range(ws)]))

    def _iteration(self, iteration: int) -> int:
        """One NN-Descent round; returns the allreduced update counter."""
        if self._process:
            return self._iteration_process(iteration)
        cfg = self.config.nnd
        sample_n = cfg.sample_size

        # ---- local sampling (lines 8-10): no communication ------------------
        # RNG streams are keyed by *vertex id* (not rank), and candidate
        # lists are canonicalized before sampling, so the constructed
        # graph is bit-identical across cluster shapes — the paper's
        # "same quality graphs regardless of the number of compute
        # nodes" observation, strengthened to exact reproducibility.
        self._enter_phase("sample", iteration=iteration)
        charge = self.cluster.ledger.enabled

        def sample_section(ctx: RankContext) -> None:
            shard = shard_of(ctx)
            shard.reset_iteration_scratch()
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                heap = shard.heaps[li]
                shard.old_lists[li] = sorted(heap.old_ids())
                fresh = sorted(heap.new_ids())
                if len(fresh) > sample_n:
                    # Derived lazily: the stream is only consumed on
                    # this branch, so skipping creation otherwise is
                    # stream-exact (SeedSequence mixing is ~10us).
                    rng = derive_rng(cfg.seed, 3, iteration, v)
                    pick = sample_without_replacement(rng, len(fresh), sample_n)
                    sampled = [fresh[int(i)] for i in pick]
                else:
                    sampled = fresh
                heap.mark_old_many(sampled)
                shard.new_lists[li] = sampled
                if charge:
                    ctx.charge_update(len(sampled) + len(shard.old_lists[li]))

        self.world.run_on_all(sample_section)

        # ---- reversed-matrix exchange (Section 4.2) --------------------------
        self._enter_phase("reverse", iteration=iteration)

        def reverse_section(ctx: RankContext) -> None:
            shard = shard_of(ctx)
            use_batch = self.config.batch_exec
            owner = shard.owner_of
            outgoing = []
            append = outgoing.append
            # Built directly in emission form per path; the shuffle
            # permutes list positions, so it commutes with the
            # elementwise formatting and both paths emit the same
            # message sequence.
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                if use_batch:
                    for u in shard.new_lists[li]:
                        append((owner[u], "rev_new", (u, v)))
                    for u in shard.old_lists[li]:
                        append((owner[u], "rev_old", (u, v)))
                else:
                    for u in shard.new_lists[li]:
                        append(("rev_new", int(u), v))
                    for u in shard.old_lists[li]:
                        append(("rev_old", int(u), v))
            if self.config.shuffle_reverse_destinations and len(outgoing) > 1:
                rng = derive_rng(cfg.seed, 4, iteration, ctx.rank)
                order = rng.permutation(len(outgoing))
                outgoing = [outgoing[int(i)] for i in order]
            if use_batch:
                self._emit_chunked(ctx, outgoing, 2 * ID_BYTES, "reverse")
            else:
                for handler, u, v in outgoing:
                    ctx.async_call(shard.owner(u), handler, u, v,
                                   nbytes=2 * ID_BYTES, msg_type="reverse")
                    self._maybe_batch_barrier()

        self.world.run_on_all(reverse_section)
        self.world.barrier()

        # ---- union with sampled reversed lists (lines 14-16) -----------------
        # Reverse entries arrive in a delivery order that depends on the
        # cluster shape; sorting canonicalizes them before the keyed
        # sample so shape-invariance holds here too.
        self._enter_phase("union", iteration=iteration)

        def union_section(ctx: RankContext) -> None:
            shard = shard_of(ctx)
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                rn = sorted(shard.rev_new[li])
                ro = sorted(shard.rev_old[li])
                # Lazy derivation, as in the sample phase: creation
                # does not consume the stream, and draws (when any)
                # happen in the same order as with eager creation,
                # so this is stream-exact.
                rng = (derive_rng(cfg.seed, 5, iteration, v)
                       if len(rn) > sample_n or len(ro) > sample_n
                       else None)
                shard.new_lists[li] = _union_with_sample(
                    shard.new_lists[li], rn, sample_n, rng)
                shard.old_lists[li] = _union_with_sample(
                    shard.old_lists[li], ro, sample_n, rng)

        self.world.run_on_all(union_section)

        # ---- neighbor checks (Section 4.3) ----------------------------------
        self._enter_phase("neighbor_check", iteration=iteration)
        one_sided = self.config.comm_opts.one_sided
        use_batch = self.config.batch_exec
        handler = "check_opt" if one_sided else "check_unopt"
        if self._parallel:
            # Phase 1: every rank builds its full Type 1 emission list
            # (pair generation reads only iteration-start new/old lists,
            # so it can run without interleaving).  Phase 2: emit in
            # global chunks of ~batch_size with a barrier between chunks
            # — the Section 4.4 application-level batching.  The
            # interleave matters for *communication volume*, not just
            # memory: the redundancy check and the distance-pruning
            # bound read heap state at delivery time, so a chunk's
            # Type 3 feedback tightens the bounds seen by the next
            # chunk.  Emitting a whole iteration up front triples the
            # Type 3 traffic (measured at n=2000: 176k vs 48k replies).
            ws = self.world.world_size
            rank_triples: list = [None] * ws

            def check_build_section(ctx: RankContext) -> None:
                shard = shard_of(ctx)
                owner = shard.owner_of
                triples = []
                append = triples.append
                for li in range(shard.n_local):
                    new_c = shard.new_lists[li]
                    old_c = shard.old_lists[li]
                    for i, u1 in enumerate(new_c):
                        o1 = owner[u1]
                        for u2 in new_c[i + 1:]:
                            if u1 != u2:
                                append((o1, handler, (u1, u2)))
                                if not one_sided:
                                    append((owner[u2], handler, (u2, u1)))
                        for u2 in old_c:
                            if u1 != u2:
                                append((o1, handler, (u1, u2)))
                                if not one_sided:
                                    append((owner[u2], handler, (u2, u1)))
                rank_triples[ctx.rank] = triples

            self.world.run_on_all(check_build_section)
            # Excluded ranks never ran the build section; their slot
            # stays None and they emit nothing.
            longest = max((len(t) for t in rank_triples if t is not None),
                          default=0)
            chunk = (max(1, self.config.batch_size // ws)
                     if self.config.batch_size else longest)
            start = 0
            while start < longest:
                stop = start + chunk

                def check_emit_section(ctx: RankContext,
                                       start: int = start,
                                       stop: int = stop) -> None:
                    part = rank_triples[ctx.rank][start:stop]
                    if part:
                        self.world.emit_run(ctx.rank, part, 2 * ID_BYTES, T1)

                self.world.run_on_all(check_emit_section)
                self.world.barrier()
                start = stop
            return int(self.cluster.allreduce_sum(
                [shard_of(ctx).update_count for ctx in self.world.ranks]
            ))
        for ctx, li in self._interleaved_vertices():
            with self._rank_scope(ctx):
                shard = shard_of(ctx)
                new_c = shard.new_lists[li]
                old_c = shard.old_lists[li]
                if use_batch:
                    owner = shard.owner_of
                    triples = []
                    append = triples.append
                    for i, u1 in enumerate(new_c):
                        o1 = owner[u1]
                        for u2 in new_c[i + 1:]:
                            if u1 != u2:
                                append((o1, handler, (u1, u2)))
                                if not one_sided:
                                    append((owner[u2], handler, (u2, u1)))
                        for u2 in old_c:
                            if u1 != u2:
                                append((o1, handler, (u1, u2)))
                                if not one_sided:
                                    append((owner[u2], handler, (u2, u1)))
                    self.world.emit_run(ctx.rank, triples, 2 * ID_BYTES, T1)
                else:
                    for i, u1 in enumerate(new_c):
                        for u2 in new_c[i + 1:]:
                            if u1 != u2:
                                self._emit_check(ctx, shard, u1, u2, one_sided)
                        for u2 in old_c:
                            if u1 != u2:
                                self._emit_check(ctx, shard, u1, u2, one_sided)
            self._maybe_batch_barrier()
        self.world.barrier()

        # ---- termination counter (line 23): allreduce ------------------------
        return int(self.cluster.allreduce_sum(
            [shard_of(ctx).update_count for ctx in self.world.ranks]
        ))

    def _emit_check(self, ctx: RankContext, shard: LocalShard,
                    u1: int, u2: int, one_sided: bool) -> None:
        """Emit the Type 1 message(s) for one candidate pair."""
        if one_sided:
            ctx.async_call(shard.owner(u1), "check_opt", int(u1), int(u2),
                           nbytes=2 * ID_BYTES, msg_type=T1)
        else:
            ctx.async_call(shard.owner(u1), "check_unopt", int(u1), int(u2),
                           nbytes=2 * ID_BYTES, msg_type=T1)
            ctx.async_call(shard.owner(u2), "check_unopt", int(u2), int(u1),
                           nbytes=2 * ID_BYTES, msg_type=T1)

    # -- gather -----------------------------------------------------------------

    def _gather_graph(self) -> KNNGraph:
        """Collect per-rank heap contents into one global KNNGraph,
        charging the gather's communication cost."""
        self._enter_phase("gather")
        k = self.config.k
        ids = np.full((self.n, k), EMPTY, dtype=np.int64)
        dists = np.full((self.n, k), np.inf, dtype=np.float64)
        if self._process:
            contributions = [[] for _ in range(self.cluster.world_size)]
            for per_worker in self.world.command("gather_rows").values():
                for rank, rows in per_worker.items():
                    contributions[int(rank)] = rows
        else:
            contributions = []
            for ctx in self.world.ranks:
                shard = shard_of(ctx)
                rows = []
                for li in range(shard.n_local):
                    row_ids, row_dists, _ = shard.heaps[li].sorted_arrays()
                    rows.append((int(shard.global_ids[li]), row_ids, row_dists))
                contributions.append(rows)
        per_rank_bytes = max(1, (self.n // self.cluster.world_size) * k * (ID_BYTES + 4))
        # gather follows MPI root semantics: only result[root] holds data.
        gathered = self.cluster.gather(contributions, root=0,
                                       item_bytes=per_rank_bytes)[0]
        for rows in gathered:
            for gid, row_ids, row_dists in rows:
                ids[gid] = row_ids
                dists[gid] = row_dists
        self._close_phase()
        return KNNGraph(ids, dists)

    # -- optimize (Section 4.5, the paper's second executable) --------------------

    def optimize(self, pruning_factor: Optional[float] = None) -> AdjacencyGraph:
        """Distributed reverse-edge merge + degree pruning.

        Must run after :meth:`build` (or use :func:`optimize_from_store`
        to mirror the paper's separate executable).
        """
        if not self._built:
            raise RuntimeStateError("optimize() requires build() first")
        m = pruning_factor if pruning_factor is not None else self.config.pruning_factor
        if m < 1.0:
            raise ConfigError(f"pruning_factor must be >= 1.0, got {m}")
        start = self.cluster.ledger.elapsed
        self._enter_phase("optimize")
        if self._process:
            self.world.run_section("opt_seed")
            self.world.run_section("opt_rev")
            self.world.barrier()
            max_degree = int(np.ceil(self.config.k * m))
            neighbor_lists = [None] * self.n
            for per_worker in self.world.command(
                    "opt_collect", {"max_degree": max_degree}).values():
                for v, lst in per_worker.items():
                    neighbor_lists[int(v)] = [tuple(e) for e in lst]
            self.world.barrier()
            self._close_phase()
            self._publish_sim_enrichment()
            adjacency = AdjacencyGraph.from_edge_lists(neighbor_lists)
            if getattr(self, "_last_result", None) is not None:
                self._last_result.adjacency = adjacency
                self._last_result.optimize_sim_seconds = (
                    self.cluster.ledger.elapsed - start)
                self._last_result.sim_seconds = self.cluster.ledger.elapsed
            return adjacency
        # Stage 1: seed local merge maps with forward edges, ship reversed
        # edges to their owners.
        def seed_section(ctx: RankContext) -> None:
            shard = shard_of(ctx)
            shard.merged = [dict() for _ in range(shard.n_local)]
            for li in range(shard.n_local):
                for u, d, _flag in shard.heaps[li].entries():
                    bucket = shard.merged[li]
                    prev = bucket.get(u)
                    if prev is None or d < prev:
                        bucket[u] = d

        def reversed_edges_section(ctx: RankContext) -> None:
            shard = shard_of(ctx)
            if self.config.batch_exec:
                owner = shard.owner_of
                triples = []
                for li in range(shard.n_local):
                    v = int(shard.global_ids[li])
                    for u, d, _flag in list(shard.heaps[li].entries()):
                        triples.append((owner[u], "opt_rev_edge",
                                        (int(u), v, float(d))))
                self._emit_chunked(ctx, triples, 2 * ID_BYTES + 4,
                                   "opt_rev")
            else:
                for li in range(shard.n_local):
                    v = int(shard.global_ids[li])
                    for u, d, _flag in list(shard.heaps[li].entries()):
                        ctx.async_call(shard.owner(u), "opt_rev_edge",
                                       int(u), v, float(d),
                                       nbytes=2 * ID_BYTES + 4,
                                       msg_type="opt_rev")
                        self._maybe_batch_barrier()

        self.world.run_on_all(seed_section)
        self.world.run_on_all(reversed_edges_section)
        self.world.barrier()
        # Stage 2: local prune to ceil(k * m) and gather.
        max_degree = int(np.ceil(self.config.k * m))
        neighbor_lists: List[Optional[List]] = [None] * self.n
        for ctx in self.world.ranks:
            shard = shard_of(ctx)
            for li in range(shard.n_local):
                v = int(shard.global_ids[li])
                lst = sorted(shard.merged[li].items(), key=lambda t: (t[1], t[0]))
                neighbor_lists[v] = lst[:max_degree]
                ctx.charge_update(len(lst))
        self.world.barrier()
        self._close_phase()
        self._publish_sim_enrichment()
        adjacency = AdjacencyGraph.from_edge_lists(neighbor_lists)
        if getattr(self, "_last_result", None) is not None:
            self._last_result.adjacency = adjacency
            self._last_result.optimize_sim_seconds = self.cluster.ledger.elapsed - start
            self._last_result.sim_seconds = self.cluster.ledger.elapsed
        return adjacency

    # -- repartitioning (locality pass) -----------------------------------------

    def repartition(self, partitioner: Optional[Partitioner] = None
                    ) -> KNNGraph:
        """Post-build locality pass: re-home rows and heap state.

        Measures the edge cut of the built graph under the current
        partitioner, computes a better explicit assignment (a
        capacity-bounded BFS over the graph so neighbors co-locate,
        unless ``partitioner`` overrides it), redistributes feature rows
        and neighbor heaps to the new owners on every backend, and
        returns the re-homed graph.  The instance's partitioner follows,
        so subsequent :meth:`optimize`, checkpoints, and searchers built
        from :attr:`partitioner` route against the new ownership.

        Failure semantics: the heap snapshot is taken *before* any
        ownership changes, so a rank failure mid-redistribution can
        always be repaired by re-running :meth:`_distribute` +
        :meth:`_restore_heaps` from the in-memory snapshot — the
        existing supervised-recovery machinery, with the snapshot in
        place of the Metall checkpoint.
        """
        if not self._built:
            raise RuntimeStateError("repartition() requires build() first")
        ids, dists, flags = self._collect_heap_state()
        if partitioner is None:
            assignment = graph_locality_assignment(
                ids, self.cluster.world_size)
            partitioner = ExplicitPartitioner(
                assignment, self.cluster.world_size, source="repartition")
        elif (partitioner.n != self.n
              or partitioner.world_size != self.cluster.world_size):
            raise ConfigError(
                f"repartition target covers n={partitioner.n}, "
                f"world_size={partitioner.world_size}; this build has "
                f"n={self.n}, world_size={self.cluster.world_size}")
        self._enter_phase("repartition")
        self.partitioner = partitioner
        self._distribute()
        self._restore_heaps(ids, dists, flags)
        self.world.barrier()
        self._close_phase()
        graph = self._gather_graph()
        self._publish_partition_metrics(graph.ids)
        self._publish_sim_enrichment()
        result = getattr(self, "_last_result", None)
        if result is not None:
            result.graph = graph
            result.sim_seconds = self.cluster.ledger.elapsed
        return graph

    # -- checkpointing ----------------------------------------------------------

    def _collect_heap_state(self):
        """Snapshot raw heap state (ids/dists/flags in *heap order* —
        slot order feeds the keyed sampling, so exact restoration makes
        a resumed build bit-identical to an uninterrupted one)."""
        k = self.config.k
        ids = np.full((self.n, k), -1, dtype=np.int64)
        dists = np.full((self.n, k), np.inf, dtype=np.float64)
        flags = np.zeros((self.n, k), dtype=bool)
        if self._process:
            for per_worker in self.world.command("ckpt_get").values():
                for _rank, (gids, r_ids, r_dists, r_flags) in per_worker.items():
                    ids[gids] = r_ids
                    dists[gids] = r_dists
                    flags[gids] = r_flags
        else:
            for shard in self._shards():
                for li in range(shard.n_local):
                    gid = int(shard.global_ids[li])
                    heap = shard.heaps[li]
                    ids[gid] = heap.ids
                    dists[gid] = heap.dists
                    flags[gid] = heap.flags
        return ids, dists, flags

    def _write_checkpoint(self, checkpoint_path, iteration: int,
                          update_counts: List[int]) -> None:
        """Persist the heap snapshot plus everything needed to rebuild
        an identical driver: algorithm config *and* the partitioner
        (type + parameters, or the full assignment table), so resume
        and recovery reconstruct identical ownership."""
        ids, dists, flags = self._collect_heap_state()
        cfg = self.config
        meta = {
            "iteration": iteration,
            "update_counts": list(update_counts),
            "n": self.n,
            "k": cfg.k,
            "data_fingerprint": _fingerprint(self.data),
            "nnd": {
                "k": cfg.nnd.k, "rho": cfg.nnd.rho, "delta": cfg.nnd.delta,
                "max_iters": cfg.nnd.max_iters, "metric": cfg.nnd.metric,
                "seed": cfg.nnd.seed,
            },
            "comm_opts": {
                "one_sided": cfg.comm_opts.one_sided,
                "redundancy_check": cfg.comm_opts.redundancy_check,
                "distance_pruning": cfg.comm_opts.distance_pruning,
                "check_dedup": cfg.comm_opts.check_dedup,
            },
            "batch_size": cfg.batch_size,
            "pruning_factor": cfg.pruning_factor,
            "shuffle_reverse_destinations": cfg.shuffle_reverse_destinations,
            "batch_exec": cfg.batch_exec,
            "partitioner": partitioner_spec(self.partitioner),
        }
        with self.metrics.span("checkpoint.write", cat="io",
                               iteration=iteration):
            if MetallStore.exists(checkpoint_path):
                store = MetallStore.open(checkpoint_path)
            else:
                store = MetallStore.create(checkpoint_path)
            with store:
                store["ckpt_ids"] = ids
                store["ckpt_dists"] = dists
                store["ckpt_flags"] = flags
                store["ckpt_meta"] = meta

    def _restore_heaps(self, ids: np.ndarray, dists: np.ndarray,
                       flags: np.ndarray) -> None:
        if ids.shape != (self.n, self.config.k):
            raise StoreError(
                f"checkpoint heap shape {ids.shape} does not match "
                f"(n={self.n}, k={self.config.k})"
            )
        if self._process:
            # Per-worker sliced restore: each worker receives only its
            # owned ranks' heap rows, not the full (n, k) arrays.
            for w in self.cluster.alive_workers():
                heaps = {}
                for rank in self.cluster.owned_by[w]:
                    gids = self.partitioner.local_ids(rank)
                    heaps[rank] = (ids[gids], dists[gids], flags[gids])
                self.cluster.command_one(w, "ckpt_set", {"heaps": heaps})
            return
        for shard in self._shards():
            for li in range(shard.n_local):
                gid = int(shard.global_ids[li])
                heap = shard.heaps[li]
                heap.ids[:] = ids[gid]
                heap.dists[:] = dists[gid]
                heap.flags[:] = flags[gid]
                heap._members = {int(v) for v in ids[gid] if v != -1}
                heap.check_invariants()

    # -- persistence ----------------------------------------------------------

    def _persist(self, store_path, result: DNNDResult) -> None:
        """Store graph + dataset, as the paper's construction executable
        does with Metall (Section 5.1.3)."""
        with MetallStore.create(store_path) as store:
            store["graph"] = result.graph.to_arrays()
            if not self._sparse:
                store["dataset"] = np.asarray(self.data)
            else:
                store["dataset"] = [np.asarray(self.data[i]) for i in range(self.n)]
            store["meta"] = {
                "k": self.config.k,
                "metric": self.config.nnd.metric,
                "n": self.n,
                "iterations": result.iterations,
                "pruning_factor": self.config.pruning_factor,
            }


def _fingerprint(data) -> float:
    """Cheap order-sensitive dataset fingerprint for checkpoint safety."""
    if isinstance(data, np.ndarray):
        weights = np.arange(1, min(64, data.shape[0]) + 1, dtype=np.float64)
        head = data[: len(weights)].astype(np.float64)
        return float((head.sum(axis=1) * weights).sum())
    total = 0.0
    for i in range(min(64, len(data))):
        total += (i + 1) * float(np.asarray(data[i]).sum())
    return total


def optimize_from_store(store_path, pruning_factor: Optional[float] = None) -> AdjacencyGraph:
    """The paper's second executable: reopen the Metall store written by
    :meth:`DNND.build`, run the Section 4.5 optimizations, and persist
    the optimized adjacency back into the store."""
    from .optimization import optimize_graph

    with MetallStore.open(store_path) as store:
        graph = KNNGraph.from_arrays(store["graph"])
        meta = store["meta"]
        m = pruning_factor if pruning_factor is not None else meta.get("pruning_factor", 1.5)
        adjacency = optimize_graph(graph, pruning_factor=m)
        store["optimized_graph"] = adjacency.to_arrays()
        store["meta"] = {**meta, "optimized": True, "pruning_factor": m}
    return adjacency
