"""Core algorithms (S7-S13): the paper's primary contribution.

- :mod:`.heap` — fixed-capacity flagged neighbor heaps (Algorithm 1's
  ``Update``),
- :mod:`.graph` — k-NN graph containers (fixed-degree build-time graph
  and CSR adjacency for the optimized/searchable graph),
- :mod:`.nndescent` — shared-memory NN-Descent (Algorithm 1 with
  PyNNDescent's local-join formulation),
- :mod:`.dnnd` / :mod:`.dnnd_phases` — **DNND**, the distributed
  NN-Descent of Section 4,
- :mod:`.optimization` — Section 4.5 graph optimizations,
- :mod:`.search` — Section 3.3 greedy ANN search with ``epsilon``,
- :mod:`.rptree` — random-projection-tree initialization (PyNNDescent's
  technique, referenced in Section 6).
"""

from .heap import NeighborHeap
from .graph import KNNGraph, AdjacencyGraph
from .nndescent import NNDescent, NNDescentResult
from .dnnd import DNND, DNNDResult
from .optimization import optimize_graph
from .diversify import diversified_optimize_graph
from .incremental import IncrementalIndex
from .search import KNNGraphSearcher, SearchResult
from .dist_search import DistributedKNNGraphSearcher
from .rptree import RPTreeForest, make_rp_forest

__all__ = [
    "NeighborHeap",
    "KNNGraph",
    "AdjacencyGraph",
    "NNDescent",
    "NNDescentResult",
    "DNND",
    "DNNDResult",
    "optimize_graph",
    "diversified_optimize_graph",
    "IncrementalIndex",
    "KNNGraphSearcher",
    "SearchResult",
    "DistributedKNNGraphSearcher",
    "make_rp_forest",
    "RPTreeForest",
]
