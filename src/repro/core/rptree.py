"""Random-projection-tree forest (PyNNDescent's initialization).

PyNNDescent seeds NN-Descent with candidates drawn from the leaves of a
small forest of random-projection trees, and also uses tree leaves to
pick search entry points (paper Section 6, Related Work).  A tree splits
the data recursively with random hyperplanes through pairs of sampled
points until leaves hold at most ``leaf_size`` points; points sharing a
leaf are likely neighbors, giving a far better starting graph than
uniform random initialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..errors import ConfigError
from ..utils.rng import derive_rng


@dataclass
class _Node:
    """Internal RP-tree node (leaf iff ``members is not None``)."""

    members: Optional[np.ndarray] = None
    normal: Optional[np.ndarray] = None
    offset: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.members is not None


class RPTree:
    """A single random-projection tree over dense data."""

    def __init__(self, data: np.ndarray, leaf_size: int,
                 rng: np.random.Generator, max_depth: int = 64) -> None:
        if leaf_size < 2:
            raise ConfigError(f"leaf_size must be >= 2, got {leaf_size}")
        self.data = np.asarray(data, dtype=np.float64)
        self.leaf_size = int(leaf_size)
        self._root = self._build(np.arange(len(data), dtype=np.int64), rng, max_depth)

    def _build(self, members: np.ndarray, rng: np.random.Generator,
               depth: int) -> _Node:
        if len(members) <= self.leaf_size or depth <= 0:
            return _Node(members=members)
        # Random hyperplane through the midpoint of two random members
        # (the classic Dasgupta-Freund split PyNNDescent uses).
        i, j = rng.choice(len(members), size=2, replace=False)
        a = self.data[members[i]]
        b = self.data[members[j]]
        normal = a - b
        norm = np.linalg.norm(normal)
        if norm == 0.0:
            # Degenerate (duplicate points): split arbitrarily in half.
            half = len(members) // 2
            perm = rng.permutation(len(members))
            return _Node(
                normal=np.zeros_like(normal), offset=0.0,
                left=self._build(members[perm[:half]], rng, depth - 1),
                right=self._build(members[perm[half:]], rng, depth - 1),
            )
        normal = normal / norm
        midpoint = (a + b) / 2.0
        offset = float(np.dot(normal, midpoint))
        side = self.data[members] @ normal - offset
        left_mask = side <= 0
        # Guard against empty splits.
        if left_mask.all() or not left_mask.any():
            half = len(members) // 2
            perm = rng.permutation(len(members))
            left_members, right_members = members[perm[:half]], members[perm[half:]]
        else:
            left_members, right_members = members[left_mask], members[~left_mask]
        return _Node(
            normal=normal, offset=offset,
            left=self._build(left_members, rng, depth - 1),
            right=self._build(right_members, rng, depth - 1),
        )

    def leaves(self) -> Iterator[np.ndarray]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node.members
            else:
                stack.append(node.left)
                stack.append(node.right)

    def leaf_for(self, q: np.ndarray) -> np.ndarray:
        """Member ids of the leaf a query point routes to."""
        node = self._root
        q = np.asarray(q, dtype=np.float64)
        while not node.is_leaf:
            if node.normal is None or float(q @ node.normal) - node.offset <= 0:
                node = node.left
            else:
                node = node.right
        return node.members

    def depth(self) -> int:
        def _d(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))
        return _d(self._root)


class RPTreeForest:
    """A forest of independent RP trees."""

    def __init__(self, trees: List[RPTree]) -> None:
        if not trees:
            raise ConfigError("forest needs at least one tree")
        self.trees = trees

    def leaves(self) -> Iterator[np.ndarray]:
        for tree in self.trees:
            yield from tree.leaves()

    def candidates_for(self, q: np.ndarray) -> np.ndarray:
        """Union of the leaf members ``q`` routes to in every tree —
        PyNNDescent-style search entry candidates."""
        parts = [tree.leaf_for(q) for tree in self.trees]
        return np.unique(np.concatenate(parts))

    def __len__(self) -> int:
        return len(self.trees)


def make_rp_forest(data: np.ndarray, n_trees: int = 4, leaf_size: int = 30,
                   seed: int = 0) -> RPTreeForest:
    """Build an RP-tree forest over dense ``data``."""
    if n_trees < 1:
        raise ConfigError(f"n_trees must be >= 1, got {n_trees}")
    trees = [
        RPTree(data, leaf_size=leaf_size, rng=derive_rng(seed, 0x7EE, t))
        for t in range(n_trees)
    ]
    return RPTreeForest(trees)
