"""Graph diversification (occlusion pruning) — PyNNDescent's extra
search optimization.

Our reference implementation, PyNNDescent, applies one more transform
than the two the paper describes in Section 4.5: *diversification*
drops an edge ``v -> c`` when some closer, already-kept neighbor ``b``
occludes it — i.e. ``theta(b, c) < theta(v, c)``, meaning the search
can reach ``c`` through ``b`` anyway.  Diversified graphs answer
queries with fewer distance evaluations at nearly the same recall,
which is why every modern graph-ANN system (HNSW's heuristic, NSG,
DiskANN's alpha-pruning) uses some form of it.

``prune_probability`` (PyNNDescent's knob) keeps an occluded edge with
the given probability, softening the pruning; ``1.0`` is full
diversification.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..distances.counting import CountingMetric
from ..errors import ConfigError
from ..utils.rng import derive_rng
from .graph import AdjacencyGraph, KNNGraph
from .optimization import merge_reverse_edges, prune_neighborhoods


def diversify_neighbor_lists(
    neighbor_lists: List[List[Tuple[int, float]]],
    data,
    metric="sqeuclidean",
    prune_probability: float = 1.0,
    seed: int = 0,
) -> List[List[Tuple[int, float]]]:
    """Occlusion-prune each (distance-sorted) neighbor list.

    For each vertex the closest neighbor is always kept; a later
    candidate ``c`` is dropped when a kept ``b`` satisfies
    ``theta(b, c) < theta(v, c)`` (subject to ``prune_probability``).
    Returns new lists; inputs must be sorted ascending by distance.
    """
    if not 0.0 <= prune_probability <= 1.0:
        raise ConfigError(
            f"prune_probability must be in [0, 1], got {prune_probability}"
        )
    m = CountingMetric(metric)
    rng = derive_rng(seed, 0xD1BE)
    out: List[List[Tuple[int, float]]] = []
    for v, lst in enumerate(neighbor_lists):
        kept: List[Tuple[int, float]] = []
        for c, d_vc in lst:
            occluded = False
            for b, _d_vb in kept:
                if m(data[b], data[c]) < d_vc:
                    occluded = True
                    break
            if occluded and (prune_probability >= 1.0
                             or rng.random() < prune_probability):
                continue
            kept.append((c, d_vc))
        out.append(kept)
    return out


def diversified_optimize_graph(
    graph: KNNGraph,
    data,
    metric="sqeuclidean",
    pruning_factor: float = 1.5,
    prune_probability: float = 1.0,
    seed: int = 0,
) -> AdjacencyGraph:
    """Full PyNNDescent-style pipeline: diversify, reverse-merge the
    surviving edges, diversify the reverse direction, cap degrees.

    A drop-in alternative to :func:`repro.core.optimization.
    optimize_graph` when query-time distance evaluations matter more
    than maximum recall.
    """
    if pruning_factor < 1.0:
        raise ConfigError(f"pruning_factor must be >= 1.0, got {pruning_factor}")
    # Pass 1: diversify the forward lists.
    forward = []
    for v in range(graph.n):
        ids, dists = graph.neighbors(v)
        forward.append(list(zip((int(u) for u in ids), (float(d) for d in dists))))
    forward = diversify_neighbor_lists(forward, data, metric,
                                       prune_probability, seed)
    # Reverse-merge the surviving edges.
    pruned_graph = _lists_to_knn_graph(forward, graph.k)
    merged = merge_reverse_edges(pruned_graph)
    # Pass 2: diversify again (reverse edges may be occluded too).
    merged = diversify_neighbor_lists(merged, data, metric,
                                      prune_probability, seed + 1)
    max_degree = int(np.ceil(graph.k * pruning_factor))
    return AdjacencyGraph.from_edge_lists(
        prune_neighborhoods(merged, max_degree))


def _lists_to_knn_graph(lists: List[List[Tuple[int, float]]], k: int) -> KNNGraph:
    from .graph import EMPTY

    n = len(lists)
    ids = np.full((n, k), EMPTY, dtype=np.int64)
    dists = np.full((n, k), np.inf, dtype=np.float64)
    for v, lst in enumerate(lists):
        for slot, (u, d) in enumerate(lst[:k]):
            ids[v, slot] = u
            dists[v, slot] = d
    return KNNGraph(ids, dists)
