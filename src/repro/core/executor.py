"""Execution backends: how per-rank program sections actually run.

The runtime is layered as Transport / Comm / Executor:

- the **Transport** (:mod:`repro.runtime.transports`) moves payloads
  between per-rank mailboxes,
- the **YGM comm layer** (:mod:`repro.runtime.ygm`) buffers, coalesces,
  and accounts messages on top of it,
- the **Executor** (this module) decides how the per-rank sections —
  SPMD driver code between barriers and mailbox draining inside a
  barrier — are scheduled.

:class:`SimExecutor` is the deterministic default: rank sections run
inline on the driver thread in rank order, which is exactly the
historical behaviour (bit-identical graphs, message ledgers, and cost
accounting).  :class:`ParallelExecutor` runs rank sections concurrently
on a persistent thread pool; per-rank state stays confined to its rank
(the ownership sanitizer's rules), mailbox handoff is the only
cross-rank channel, and the comm layer aggregates per-rank statistics
race-free at each barrier.  The parallel backend is *content*
deterministic only for configurations whose results are delivery-order
invariant (see DESIGN.md §11); the cost ledger and fault injection are
sim-only.

Executors are duck-typed by the comm layer (``repro.runtime`` never
imports ``repro.core``): anything exposing ``parallel``, ``workers``,
``map_ranks``, ``run_ranks``, and ``shutdown`` works.
"""

from __future__ import annotations

import os
import sys
import weakref
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, Optional

from ..errors import ConfigError

#: GIL switch interval (seconds) while pool sections are in flight.
#: Rank sections are CPU-bound Python; the default 5 ms interval forces
#: frequent GIL handoffs between worker threads, which is pure overhead
#: when the sections never contend on locks (mailbox handoff is lock-free
#: deque appends).  Raised only for the duration of a dispatch and always
#: restored.
_POOL_SWITCH_INTERVAL = 0.02

#: Backends accepted by :func:`resolve_backend` / ``DNNDConfig.backend``.
BACKENDS = ("sim", "parallel", "process")

#: Environment knobs honoured when the config leaves the choice open.
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"


def resolve_backend(backend: Optional[str],
                    env: Optional[Dict[str, str]] = None) -> str:
    """Resolve a configured backend name: explicit config value wins,
    then the ``REPRO_BACKEND`` environment variable, then ``"sim"``."""
    environ = os.environ if env is None else env
    if backend is None:
        backend = environ.get(BACKEND_ENV, "").strip().lower() or "sim"
    if backend not in BACKENDS:
        raise ConfigError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{'/'.join(BACKENDS)}")
    return backend


def resolve_workers(workers: int, world_size: int,
                    env: Optional[Dict[str, str]] = None) -> int:
    """Resolve a worker count: ``0`` means auto (``REPRO_WORKERS`` if
    set, else the machine's core count), capped at ``world_size`` —
    more threads than ranks can never be scheduled."""
    environ = os.environ if env is None else env
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        env_workers = environ.get(WORKERS_ENV, "").strip()
        if env_workers:
            try:
                workers = int(env_workers)
            except ValueError as exc:
                raise ConfigError(
                    f"{WORKERS_ENV}={env_workers!r} is not an integer") from exc
            if workers <= 0:
                raise ConfigError(
                    f"{WORKERS_ENV} must be a positive integer, "
                    f"got {env_workers!r}")
        else:
            workers = os.cpu_count() or 1
    return max(1, min(int(workers), int(world_size)))


class Executor:
    """Base scheduling policy: inline, in rank order, on the caller's
    thread.  Subclass hooks are the comm layer's only entry points."""

    #: True when rank sections may run concurrently — the comm layer
    #: switches to per-rank sequence counters and stats sinks.
    parallel = False
    backend = "sim"

    #: Attached :class:`repro.analysis.race.RaceSanitizer` under
    #: ``REPRO_SANITIZE=race``; ``None`` otherwise.  The parallel
    #: executor advances its barrier epoch at both edges of every
    #: dispatch, which is what separates driver-only code from task
    #: code in the sanitizer's happens-before model.
    race = None

    def __init__(self, workers: int = 1) -> None:
        self.workers = int(workers)
        #: Sections dispatched (one per ``map_ranks``/``run_ranks`` call)
        #: — published as the ``executor.dispatches`` metric.  A
        #: scheduling detail, not a workload invariant: the sim backend
        #: drains mailboxes inline and legitimately reports fewer.
        self.dispatches = 0

    def map_ranks(self, fn: Callable[[int], int], world_size: int) -> int:
        """Run ``fn(rank)`` over every rank, repeating full passes until
        one makes no progress (``fn`` returns the per-rank progress
        count, e.g. messages delivered); return the summed results.  The
        repeat-until-stable contract lets delivery chains between ranks
        resolve inside a single dispatch instead of one driver round
        trip per hop."""
        self.dispatches += 1
        total = 0
        while True:
            ran = 0
            for rank in range(world_size):
                ran += fn(rank)
            total += ran
            if ran == 0:
                return total

    def run_ranks(self, fn: Callable[[Any], None], ctxs: Iterable[Any],
                  sanitizer: Any = None) -> None:
        """Run a driver-side SPMD section ``fn(ctx)`` once per rank
        context.  Under the sanitizer each invocation executes *as* its
        rank, so touching another rank's state raises."""
        self.dispatches += 1
        if sanitizer is None:
            for ctx in ctxs:
                fn(ctx)
        else:
            for ctx in ctxs:
                with sanitizer.rank_scope(ctx.rank):
                    fn(ctx)

    def shutdown(self) -> None:
        """Release scheduling resources (idempotent)."""


class SimExecutor(Executor):
    """The deterministic inline executor — today's semantics, verbatim."""


class ParallelExecutor(Executor):
    """Shared-memory parallel executor: rank sections run concurrently
    on a persistent thread pool.

    Concurrency contract (enforced by construction, checked by the
    ownership sanitizer):

    - each submitted section touches only its own rank's shard and its
      own rank's send-side comm state (buffers, per-rank stats sinks),
    - cross-rank communication happens only by appending to the
      destination's mailbox deque (atomic under CPython),
    - the driver thread runs collectives, flushes, and stats merging
      only while no section is in flight (``map_ranks``/``run_ranks``
      join all futures before returning, so exceptions propagate and
      the barrier sees a quiesced world).
    """

    parallel = True
    backend = "parallel"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-rank")
        # Reclaim worker threads when the executor is garbage-collected
        # (test suites build many worlds; without this, idle pools would
        # pile up until interpreter exit).
        weakref.finalize(self, self._pool.shutdown, wait=False)

    @staticmethod
    @contextmanager
    def _pool_switch_interval() -> Iterator[None]:
        interval = sys.getswitchinterval()
        sys.setswitchinterval(_POOL_SWITCH_INTERVAL)
        try:
            yield
        finally:
            sys.setswitchinterval(interval)

    def _chunks(self, n: int) -> list:
        """Partition ranks ``0..n-1`` round-robin — one task per
        *effective* lane, not per rank, so a dispatch costs at most
        ``width`` future round trips instead of ``world_size``.  The
        width is capped at the machine's core count: CPU-bound Python
        threads beyond the core count cannot overlap (the GIL serializes
        them) and only add handoff and cache-thrash overhead, so the
        requested ``workers`` is treated as *maximum* parallelism, not a
        mandatory thread count."""
        width = max(1, min(self.workers, n, os.cpu_count() or 1))
        return [range(start, n, width) for start in range(width)]

    def map_ranks(self, fn: Callable[[int], int], world_size: int) -> int:
        def chunk_task(ranks: range) -> int:
            # Same repeat-until-stable contract as the base executor,
            # applied per chunk: chains between co-assigned ranks
            # resolve without another driver dispatch.
            total = 0
            while True:
                ran = 0
                for rank in ranks:
                    ran += fn(rank)
                total += ran
                if ran == 0:
                    return total

        self.dispatches += 1
        chunks = self._chunks(world_size)
        race = self.race
        if race is not None:
            race.begin_dispatch()
        try:
            with self._pool_switch_interval():
                # Caller-runs-first: the driver thread works chunk 0
                # itself instead of sleeping on futures — one fewer
                # future per dispatch, and the whole dispatch is
                # thread-free when the effective width is 1.
                futures = [self._pool.submit(chunk_task, chunk)
                           for chunk in chunks[1:]]
                total = chunk_task(chunks[0])
                # result() re-raises worker exceptions on the driver
                # thread.
                return total + sum(f.result() for f in futures)
        finally:
            if race is not None:
                race.end_dispatch()

    def run_ranks(self, fn: Callable[[Any], None], ctxs: Iterable[Any],
                  sanitizer: Any = None) -> None:
        ctxs = list(ctxs)
        if not ctxs:
            return

        def chunk_task(chunk: range) -> None:
            if sanitizer is None:
                for i in chunk:
                    fn(ctxs[i])
            else:
                for i in chunk:
                    with sanitizer.rank_scope(ctxs[i].rank):
                        fn(ctxs[i])

        self.dispatches += 1
        chunks = self._chunks(len(ctxs))
        race = self.race
        if race is not None:
            race.begin_dispatch()
        try:
            with self._pool_switch_interval():
                futures = [self._pool.submit(chunk_task, chunk)
                           for chunk in chunks[1:]]
                chunk_task(chunks[0])
                for f in futures:
                    f.result()
        finally:
            if race is not None:
                race.end_dispatch()

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(Executor):
    """Executor facade for the process backend.

    The real scheduling lives in
    :class:`repro.runtime.transports.process.ProcessTransport`: worker
    *processes* hold persistent per-rank state (shards, heaps, comm
    worlds) between barriers and the driver broadcasts named sections to
    them, so there is nothing for ``map_ranks``/``run_ranks`` to do on
    the driver side.  This class keeps the executor seam uniform — the
    backend name, worker count, ``executor.dispatches`` metric (bumped
    by the process world per broadcast section), and teardown hook all
    flow through the same object the other backends use."""

    parallel = True
    backend = "process"

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self._finalizer: Optional[weakref.finalize] = None

    def bind(self, teardown: Callable[[], None]) -> None:
        """Attach the transport/shared-memory teardown callback invoked
        by :meth:`shutdown` (idempotent by contract of the callee).
        Registered as a GC finalizer so dropping the last reference to
        the executor also stops the worker processes — ``teardown``
        must therefore not capture its owner (a closure over the
        transport + segment owner, not a bound method)."""
        self._finalizer = weakref.finalize(self, teardown)

    def shutdown(self) -> None:
        if self._finalizer is not None:
            self._finalizer()


def make_executor(backend: str, workers: int, world_size: int,
                  env: Optional[Dict[str, str]] = None) -> Executor:
    """Build the executor for a resolved backend name."""
    backend = resolve_backend(backend, env)
    if backend == "sim":
        return SimExecutor()
    if backend == "process":
        return ProcessExecutor(resolve_workers(workers, world_size, env))
    return ParallelExecutor(resolve_workers(workers, world_size, env))
