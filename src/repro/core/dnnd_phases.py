"""DNND's rank-local state and message handlers (Section 4).

DNND partitions vertices over ranks by id hash; each rank holds its
vertices' feature rows and neighbor heaps (:class:`LocalShard`).  The
three communication phases of Section 4 are implemented as YGM handlers:

**Initialization** (Section 4.1's example pattern)
    ``init_req`` carries ``v``'s feature vector to ``owner(u)``, which
    computes ``theta(v, u)`` and replies with ``init_resp`` carrying the
    distance back to ``owner(v)``.

**Reverse-matrix generation** (Section 4.2)
    ``rev_new`` / ``rev_old`` ship one reversed entry ``(u, v)`` to
    ``owner(u)``; the sender shuffles destination order to avoid
    congestion bursts.

**Neighbor checks** (Section 4.3, Figure 1)
    *Unoptimized* (Figure 1a): the center vertex sends a Type 1 request
    to both endpoints; each endpoint ships its feature vector (Type 2)
    to the other; both sides compute the distance and update their own
    heaps.

    *Optimized* (Figure 1b): Type 1 goes only to ``u1`` (one-sided,
    4.3.1).  ``u1`` skips the exchange entirely when ``u2`` is already a
    neighbor (4.3.2), otherwise sends a Type 2+ message — its feature
    plus its worst-neighbor distance bound (4.3.3) — to ``u2``.  ``u2``
    computes the distance, updates its own heap, and replies with a tiny
    Type 3 distance message only if the distance beats the bound and
    ``u1`` is not already a neighbor of ``u2``.

**Graph optimization** (Section 4.5)
    ``opt_rev_edge`` ships each final edge reversed to the neighbor's
    owner for the reverse-merge + prune pass.

Message sizes follow Section 2's accounting: ids are 4 bytes, distances
4 bytes, features ``dim * itemsize`` (ragged records use their actual
byte size), so Figure 4's bytes axis is modeled, not pickled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from ..config import DNNDConfig
from ..distances.counting import CountingMetric
from ..errors import PartitionError
from ..runtime.partition import Partitioner
from ..runtime.ygm import RankContext, YGMWorld
from ..types import DIST_BYTES, ID_BYTES
from .heap import NeighborHeap

# Message-type labels used in Figure 4.
T1 = "type1"
T2 = "type2"
T2P = "type2+"
T3 = "type3"


@dataclass
class LocalShard:
    """Everything one simulated rank owns.

    Attributes
    ----------
    global_ids:
        Ascending global ids of the vertices this rank owns.
    local_index:
        global id -> row index into ``features`` / ``heaps``.
    features:
        Dense ``(n_local, dim)`` array, or a list of ragged sparse
        records.
    heaps:
        One :class:`NeighborHeap` per local vertex — the distributed
        ``G_v`` (vertex and neighbor list co-located, Section 4).
    """

    rank: int
    partitioner: Partitioner
    global_ids: np.ndarray
    local_index: Dict[int, int]
    features: Any  # dense (n_local, dim) array or list of sparse records
    heaps: List[NeighborHeap]
    metric: CountingMetric
    config: DNNDConfig
    sparse: bool = False
    feature_nbytes_dense: int = 0

    # Per-iteration scratch:
    new_lists: List[List[int]] = field(default_factory=list)
    old_lists: List[List[int]] = field(default_factory=list)
    rev_new: List[List[int]] = field(default_factory=list)
    rev_old: List[List[int]] = field(default_factory=list)
    update_count: int = 0

    # Cumulative neighbor-heap update *attempts* (checked_push calls)
    # over the whole run — the ``heap.updates`` metric.  Attempts are a
    # delivery-order-invariant count under the unoptimized pattern
    # (every delivered feature message is one attempt), unlike
    # ``update_count`` (successful pushes), whose acceptance of
    # later-evicted entries depends on arrival order.  Never reset by
    # :meth:`reset_iteration_scratch`; batch handlers add their exact
    # scalar-equivalent counts, so the scalar/batch paths agree.
    push_attempts: int = 0

    # Pairs already neighbor-checked at this rank this iteration
    # (``comm_opts.check_dedup``, Section 4.3.2 applied to compute).
    check_seen: set = field(default_factory=set)

    # Precomputed owner lookup: ``owner_of[gid]`` == partitioner.owner(gid)
    # (a plain list of ints, set by :meth:`DNND._distribute`; None before).
    owner_of: Any = None

    # Optimization-phase scratch: per local vertex {neighbor: dist}.
    merged: List[Dict[int, float]] = field(default_factory=list)

    # -- helpers ------------------------------------------------------------

    @property
    def n_local(self) -> int:
        return len(self.global_ids)

    def local(self, gid: int) -> int:
        try:
            return self.local_index[int(gid)]
        except KeyError:
            raise PartitionError(
                f"vertex {gid} dereferenced on rank {self.rank}, "
                f"owner is {self.partitioner.owner(int(gid))}"
            ) from None

    def feature(self, gid: int):
        return self.features[self.local(gid)]

    def heap(self, gid: int) -> NeighborHeap:
        return self.heaps[self.local(gid)]

    def owner(self, gid: int) -> int:
        return self.partitioner.owner(int(gid))

    def feature_nbytes(self, gid: int) -> int:
        """Wire size of one feature vector (Type 2 payload size)."""
        if self.sparse:
            return int(self.features[self.local(gid)].nbytes)
        return self.feature_nbytes_dense

    def reset_iteration_scratch(self) -> None:
        self.new_lists = [[] for _ in range(self.n_local)]
        self.old_lists = [[] for _ in range(self.n_local)]
        self.rev_new = [[] for _ in range(self.n_local)]
        self.rev_old = [[] for _ in range(self.n_local)]
        self.update_count = 0
        self.check_seen.clear()


def shard_of(ctx: RankContext) -> LocalShard:
    return ctx.state["shard"]


# ---------------------------------------------------------------------------
# Initialization handlers (Section 4.1 communication example)
# ---------------------------------------------------------------------------


def h_init_request(ctx: RankContext, v_gid: int, u_gid: int, v_feature) -> None:
    """Runs at owner(u): compute theta(v, u), reply with the distance."""
    shard = shard_of(ctx)
    d = shard.metric(v_feature, shard.feature(u_gid))
    ctx.charge_distance(_dim_of(v_feature))
    ctx.async_call(
        shard.owner(v_gid), "init_resp", v_gid, u_gid, d,
        nbytes=2 * ID_BYTES + DIST_BYTES, msg_type="init_resp",
    )


def h_init_response(ctx: RankContext, v_gid: int, u_gid: int, d: float) -> None:
    """Runs at owner(v): record the initial neighbor."""
    shard = shard_of(ctx)
    shard.push_attempts += 1
    shard.heap(v_gid).checked_push(int(u_gid), float(d), True)
    ctx.charge_update()


# ---------------------------------------------------------------------------
# Reverse-matrix handlers (Section 4.2)
# ---------------------------------------------------------------------------


def h_reverse_new(ctx: RankContext, u_gid: int, v_gid: int) -> None:
    """Runs at owner(u): u gained a reversed *new* entry v."""
    shard = shard_of(ctx)
    shard.rev_new[shard.local(u_gid)].append(int(v_gid))


def h_reverse_old(ctx: RankContext, u_gid: int, v_gid: int) -> None:
    shard = shard_of(ctx)
    shard.rev_old[shard.local(u_gid)].append(int(v_gid))


# ---------------------------------------------------------------------------
# Neighbor-check handlers — unoptimized pattern (Figure 1a)
# ---------------------------------------------------------------------------


def h_check_request_unopt(ctx: RankContext, target_gid: int, other_gid: int) -> None:
    """Runs at owner(target): Type 1 received; ship target's feature
    (Type 2) to the other endpoint."""
    shard = shard_of(ctx)
    if shard.config.comm_opts.check_dedup:
        pair = (int(target_gid), int(other_gid))
        if pair in shard.check_seen:
            # This exact exchange already happened this iteration (many
            # center vertices propose the same pair); repeating it
            # cannot change any heap.
            return
        shard.check_seen.add(pair)
    ctx.async_call(
        shard.owner(other_gid), "feature_unopt",
        other_gid, target_gid, shard.feature(target_gid),
        nbytes=2 * ID_BYTES + shard.feature_nbytes(target_gid), msg_type=T2,
    )


def h_feature_unopt(ctx: RankContext, recv_gid: int, sender_gid: int, feature) -> None:
    """Runs at owner(recv): Type 2 received; compute the distance and
    update recv's own heap (both directions happen symmetrically)."""
    shard = shard_of(ctx)
    d = shard.metric(shard.feature(recv_gid), feature)
    ctx.charge_distance(_dim_of(feature))
    shard.push_attempts += 1
    shard.update_count += shard.heap(recv_gid).checked_push(int(sender_gid), float(d), True)
    ctx.charge_update()


# ---------------------------------------------------------------------------
# Neighbor-check handlers — optimized pattern (Figure 1b)
# ---------------------------------------------------------------------------


def h_check_request_opt(ctx: RankContext, u1_gid: int, u2_gid: int) -> None:
    """Runs at owner(u1): Type 1 received (one-sided, Section 4.3.1)."""
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    if opts.check_dedup:
        pair = (int(u1_gid), int(u2_gid))
        if pair in shard.check_seen:
            # Already checked this iteration: a repeated checked_push of
            # the same (id, distance) is always rejected, so skipping
            # the whole exchange is output-invariant.
            return
        shard.check_seen.add(pair)
    heap1 = shard.heap(u1_gid)
    if opts.redundancy_check and int(u2_gid) in heap1:
        # Section 4.3.2: the pair is already adjacent; the whole
        # Type 2+/Type 3 exchange would be wasted.
        return
    if opts.distance_pruning:
        bound = heap1.worst_distance()
        extra = DIST_BYTES  # the attached bound, "negligible in size"
        msg_type = T2P
    else:
        bound = np.inf
        extra = 0
        msg_type = T2
    ctx.async_call(
        shard.owner(u2_gid), "feature_opt",
        u2_gid, u1_gid, shard.feature(u1_gid), bound,
        nbytes=2 * ID_BYTES + shard.feature_nbytes(u1_gid) + extra,
        msg_type=msg_type,
    )


def h_feature_opt(ctx: RankContext, u2_gid: int, u1_gid: int, feature, bound: float) -> None:
    """Runs at owner(u2): Type 2+/2 received; compute once, update u2's
    heap locally, and reply (Type 3) only when useful."""
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    heap2 = shard.heap(u2_gid)
    if opts.redundancy_check and int(u1_gid) in heap2:
        # Section 4.3.2 applied on the u2 side before Type 3.
        return
    d = shard.metric(shard.feature(u2_gid), feature)
    ctx.charge_distance(_dim_of(feature))
    shard.push_attempts += 1
    shard.update_count += heap2.checked_push(int(u1_gid), float(d), True)
    ctx.charge_update()
    if opts.distance_pruning and d >= bound:
        # Section 4.3.3: u1 could not accept this distance anyway.
        return
    ctx.async_call(
        shard.owner(u1_gid), "distance_reply", u1_gid, u2_gid, d,
        nbytes=2 * ID_BYTES + DIST_BYTES, msg_type=T3,
    )


def h_distance_reply(ctx: RankContext, u1_gid: int, u2_gid: int, d: float) -> None:
    """Runs at owner(u1): Type 3 received; update u1's heap."""
    shard = shard_of(ctx)
    shard.push_attempts += 1
    shard.update_count += shard.heap(u1_gid).checked_push(int(u2_gid), float(d), True)
    ctx.charge_update()


# ---------------------------------------------------------------------------
# Graph-optimization handlers (Section 4.5)
# ---------------------------------------------------------------------------


def h_opt_reverse_edge(ctx: RankContext, u_gid: int, v_gid: int, d: float) -> None:
    """Runs at owner(u): merge the reversed edge u -> v."""
    shard = shard_of(ctx)
    bucket = shard.merged[shard.local(u_gid)]
    v = int(v_gid)
    prev = bucket.get(v)
    if prev is None or d < prev:
        bucket[v] = float(d)
    ctx.charge_update()


# ---------------------------------------------------------------------------
# Batch handler variants (vectorized batch execution engine)
#
# Each ``h_*_batch`` receives the argument tuples of a contiguous run of
# same-named messages and must be bit-identical to running the scalar
# handler once per tuple, in order.  The recipes:
#
# - distances are precomputed with the metric's *rowwise* kernel, whose
#   per-row results are bit-identical to the scalar metric (see
#   ``distances/dense.py``); side effects (skips, counters, ledger
#   charges, heap pushes, emissions) then replay in a sequential
#   per-message loop, so charges interleave with mid-block flush charges
#   exactly as in the scalar path,
# - handlers whose only charge is the constant per-update cost may group
#   heap pushes by target vertex (pushes to different heaps commute and
#   don't charge) and batch the clock adds with ``charge_repeated``,
# - emissions go through ``block_emitter`` in original message order.
# ---------------------------------------------------------------------------


def _paired_features(shard: LocalShard, own_gids, other_feats):
    """(A, B) inputs for the rowwise kernel: this rank's rows for
    ``own_gids`` paired with the shipped ``other_feats``.  Dense shards
    stack into 2-D arrays (vectorized kernel); sparse shards pass lists
    (exact scalar fallback inside ``rowwise_dists``)."""
    if shard.sparse:
        feats = shard.features
        li = shard.local_index
        return [feats[li[int(g)]] for g in own_gids], list(other_feats)
    rows = [shard.local_index[int(g)] for g in own_gids]
    return shard.features[rows], np.stack(list(other_feats))


def h_init_request_batch(ctx: RankContext, args_list: list) -> None:
    """Batch of ``init_req`` at owner(u): one rowwise kernel call, then
    per-message charge + reply emission."""
    shard = shard_of(ctx)
    A, B = _paired_features(shard, [a[1] for a in args_list],
                            [a[2] for a in args_list])
    # Every message computes its distance, so use the counted kernel.
    # Argument order matches the scalar handler: theta(v_feature, u_row).
    dists = shard.metric.rowwise(B, A)
    world = ctx.world
    ledger = world.cluster.ledger
    rank = ctx.rank
    owner = shard.owner_of
    send, close = world.block_emitter(rank, "init_resp")
    nb = 2 * ID_BYTES + DIST_BYTES
    if not ledger.enabled:
        # NullLedger (parallel backend): skip the per-message clock
        # arithmetic — replies alone remain.
        for (v_gid, u_gid, _vf), d in zip(args_list, dists.tolist()):
            send(owner[v_gid], "init_resp", (v_gid, u_gid, d), nb)
        close()
        return
    clocks = ledger.clocks
    net = world.cluster.net
    dense_cost = None if shard.sparse else net.distance_cost(int(A.shape[1]))
    for (v_gid, u_gid, v_feature), d in zip(args_list, dists.tolist()):
        clocks[rank] += (dense_cost if dense_cost is not None
                         else net.distance_cost(_dim_of(v_feature)))
        send(owner[v_gid], "init_resp", (v_gid, u_gid, d), nb)
    close()


def h_init_response_batch(ctx: RankContext, args_list: list) -> None:
    """Batch of ``init_resp`` at owner(v): bulk heap updates grouped by
    v (cross-heap pushes commute; within-heap order preserved)."""
    shard = shard_of(ctx)
    groups: Dict[int, list] = {}
    for v_gid, u_gid, d in args_list:
        g = groups.get(int(v_gid))
        if g is None:
            g = groups[int(v_gid)] = [[], []]
        g[0].append(int(u_gid))
        g[1].append(float(d))
    heaps = shard.heaps
    li = shard.local_index
    for v, (ids, dists) in groups.items():
        heaps[li[v]].checked_push_batch(ids, dists, True)
    shard.push_attempts += len(args_list)
    world = ctx.world
    world.cluster.ledger.charge_repeated(
        ctx.rank, world.cluster.net.compute_per_update, len(args_list))


def h_reverse_new_batch(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    rev = shard.rev_new
    li = shard.local_index
    for u_gid, v_gid in args_list:
        rev[li[u_gid]].append(v_gid)


def h_reverse_old_batch(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    rev = shard.rev_old
    li = shard.local_index
    for u_gid, v_gid in args_list:
        rev[li[u_gid]].append(v_gid)


def h_check_request_unopt_batch(ctx: RankContext, args_list: list) -> None:
    """Batch of Type 1 (unoptimized) at owner(target): dedup + feature
    shipment through one emitter."""
    shard = shard_of(ctx)
    dedup = shard.config.comm_opts.check_dedup
    seen = shard.check_seen
    owner = shard.owner_of
    li = shard.local_index
    feats = shard.features
    sparse = shard.sparse
    fnb = shard.feature_nbytes_dense
    # Decide-then-emit, as in the optimized variant: the scalar handler
    # charges nothing itself, so deferring the send sequence is exact.
    out: list = []
    nbs: list = [] if sparse else None  # type: ignore[assignment]
    for target_gid, other_gid in args_list:
        target = int(target_gid)
        other = int(other_gid)
        if dedup:
            pair = (target, other)
            if pair in seen:
                continue
            seen.add(pair)
        f = feats[li[target]]
        out.append((owner[other], "feature_unopt", (other_gid, target_gid, f)))
        if sparse:
            nbs.append(2 * ID_BYTES + int(f.nbytes))
    if sparse:
        send, close = ctx.world.block_emitter(ctx.rank, T2)
        for (dest, h, margs), nb in zip(out, nbs):
            send(dest, h, margs, nb)
        close()
    else:
        ctx.world.emit_run(ctx.rank, out, 2 * ID_BYTES + fnb, T2)


def h_feature_unopt_batch(ctx: RankContext, args_list: list) -> None:
    """Batch of Type 2 (unoptimized) at owner(recv): one kernel call,
    then the scalar handler's charge/push/charge sequence per message."""
    shard = shard_of(ctx)
    A, B = _paired_features(shard, [a[0] for a in args_list],
                            [a[2] for a in args_list])
    dists = shard.metric.rowwise(A, B)  # every message computes -> counted
    shard.push_attempts += len(args_list)
    world = ctx.world
    ledger = world.cluster.ledger
    heaps = shard.heaps
    li = shard.local_index
    if not ledger.enabled:
        # NullLedger (parallel backend): pushes only, no clock math.
        updates = 0
        for (recv_gid, sender_gid, _f), d in zip(args_list, dists.tolist()):
            updates += heaps[li[int(recv_gid)]].checked_push(
                int(sender_gid), d, True)
        shard.update_count += updates
        return
    clocks = ledger.clocks
    net = world.cluster.net
    rank = ctx.rank
    cu = net.compute_per_update
    dense_cost = None if shard.sparse else net.distance_cost(int(A.shape[1]))
    updates = 0
    # Charges must interleave per message (distance cost, then update
    # cost) to reproduce the scalar clock bit-for-bit.  This handler
    # emits nothing, so no flush charge can land mid-loop and the clock
    # can be accumulated in a local and written back once.
    t = clocks[rank]
    for (recv_gid, sender_gid, feature), d in zip(args_list, dists.tolist()):
        t += (dense_cost if dense_cost is not None
              else net.distance_cost(_dim_of(feature)))
        updates += heaps[li[int(recv_gid)]].checked_push(
            int(sender_gid), d, True)
        t += cu
    clocks[rank] = t
    shard.update_count += updates


def h_check_request_opt_batch(ctx: RankContext, args_list: list) -> None:
    """Batch of Type 1 (optimized) at owner(u1): dedup + redundancy
    check + Type 2+/2 emission through one emitter."""
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    dedup = opts.check_dedup
    redundancy = opts.redundancy_check
    pruning = opts.distance_pruning
    seen = shard.check_seen
    owner = shard.owner_of
    li = shard.local_index
    feats = shard.features
    heaps = shard.heaps
    sparse = shard.sparse
    fnb = shard.feature_nbytes_dense
    extra = DIST_BYTES if pruning else 0
    msg_type = T2P if pruning else T2
    # Two passes: decide, then emit.  The scalar handler performs no
    # ledger charges itself (the only clock activity while it runs is
    # the flush cost of its own emissions), and emissions cannot change
    # local heaps or the dedup set, so deferring the identical send
    # sequence past the decision loop leaves every flush charge at the
    # same position on the clock.
    out: list = []
    emit = out.append
    nbs: list = [] if sparse else None  # type: ignore[assignment]
    # No handler in this batch mutates local heaps (emission only
    # enqueues), so u1's members/bound/feature/nbytes are constant for
    # the whole batch and can be looked up once per distinct u1.
    cache: Dict[int, tuple] = {}
    for u1, u2 in args_list:
        if dedup:
            pair = (u1, u2)
            if pair in seen:
                continue
            seen.add(pair)
        ent = cache.get(u1)
        if ent is None:
            row = li[u1]
            heap1 = heaps[row]
            f = feats[row]
            ent = cache[u1] = (
                heap1._members,
                float(heap1.dists[0]) if pruning else np.inf,
                f,
                2 * ID_BYTES + (int(f.nbytes) if sparse else fnb) + extra,
            )
        members, bound, f, nb = ent
        if redundancy and u2 in members:
            continue
        emit((owner[u2], "feature_opt", (u2, u1, f, bound)))
        if sparse:
            nbs.append(nb)
    if sparse:
        send, close = ctx.world.block_emitter(ctx.rank, msg_type)
        for (dest, h, margs), nb in zip(out, nbs):
            send(dest, h, margs, nb)
        close()
    else:
        ctx.world.emit_run(ctx.rank, out, 2 * ID_BYTES + fnb + extra,
                           msg_type)


def h_feature_opt_batch(ctx: RankContext, args_list: list) -> None:
    """Batch of Type 2+/2 at owner(u2): kernel precompute for all pairs
    (uncounted — a redundancy-skipped pair must not count or charge),
    then the scalar handler's effect sequence per message."""
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    redundancy = opts.redundancy_check
    pruning = opts.distance_pruning
    A, B = _paired_features(shard, [a[0] for a in args_list],
                            [a[2] for a in args_list])
    metric = shard.metric
    dists = metric.rowwise_raw(A, B)
    world = ctx.world
    ledger = world.cluster.ledger
    rank = ctx.rank
    owner = shard.owner_of
    li = shard.local_index
    heaps = shard.heaps
    nb3 = 2 * ID_BYTES + DIST_BYTES
    send, close = world.block_emitter(rank, T3)
    updates = 0
    evals = 0
    if not ledger.enabled:
        # NullLedger (parallel backend): same skip/push/reply sequence,
        # no clock bookkeeping.
        cache: Dict[int, Any] = {}
        for (u2, u1, _f, bound), d in zip(args_list, dists.tolist()):
            heap2 = cache.get(u2)
            if heap2 is None:
                heap2 = cache[u2] = heaps[li[u2]]
            if redundancy and u1 in heap2._members:
                continue
            evals += 1
            updates += heap2.checked_push(u1, d, True)
            if pruning and d >= bound:
                continue
            send(owner[u1], "distance_reply", (u1, u2, d), nb3)
        close()
        metric.count += evals
        shard.push_attempts += evals
        shard.update_count += updates
        return
    clocks = ledger.clocks
    net = world.cluster.net
    cu = net.compute_per_update
    dense_cost = None if shard.sparse else net.distance_cost(int(A.shape[1]))
    hcache: Dict[int, Any] = {}
    # Clock kept in a local between sends: a send may trigger a flush,
    # whose charge must land at its exact position in the addition
    # sequence — so the local is written back before every send and
    # reloaded after.  Skipped/pruned messages touch no shared state.
    t = clocks[rank]
    for (u2, u1, feature, bound), d in zip(args_list, dists.tolist()):
        heap2 = hcache.get(u2)
        if heap2 is None:
            heap2 = hcache[u2] = heaps[li[u2]]
        if redundancy and u1 in heap2._members:
            continue
        evals += 1  # only evaluated pairs count, as in scalar
        t += (dense_cost if dense_cost is not None
              else net.distance_cost(_dim_of(feature)))
        updates += heap2.checked_push(u1, d, True)
        t += cu
        if pruning and d >= bound:
            continue
        clocks[rank] = t
        send(owner[u1], "distance_reply", (u1, u2, d), nb3)
        t = clocks[rank]
    clocks[rank] = t
    close()
    metric.count += evals
    shard.push_attempts += evals
    shard.update_count += updates


def h_distance_reply_batch(ctx: RankContext, args_list: list) -> None:
    """Batch of Type 3 at owner(u1): bulk heap updates grouped by u1."""
    shard = shard_of(ctx)
    groups: Dict[int, list] = {}
    for u1_gid, u2_gid, d in args_list:
        g = groups.get(int(u1_gid))
        if g is None:
            g = groups[int(u1_gid)] = [[], []]
        g[0].append(int(u2_gid))
        g[1].append(float(d))
    heaps = shard.heaps
    li = shard.local_index
    updates = 0
    for u1, (ids, dists) in groups.items():
        updates += heaps[li[u1]].checked_push_batch(ids, dists, True)
    shard.push_attempts += len(args_list)
    shard.update_count += updates
    world = ctx.world
    world.cluster.ledger.charge_repeated(
        ctx.rank, world.cluster.net.compute_per_update, len(args_list))


def h_opt_reverse_edge_batch(ctx: RankContext, args_list: list) -> None:
    shard = shard_of(ctx)
    merged = shard.merged
    li = shard.local_index
    for u_gid, v_gid, d in args_list:
        bucket = merged[li[int(u_gid)]]
        v = int(v_gid)
        prev = bucket.get(v)
        if prev is None or d < prev:
            bucket[v] = float(d)
    world = ctx.world
    world.cluster.ledger.charge_repeated(
        ctx.rank, world.cluster.net.compute_per_update, len(args_list))


def register_dnnd_handlers(world: YGMWorld) -> None:
    """Register every DNND handler on a world (idempotent per world)."""
    world.register_handlers(
        init_req=h_init_request,
        init_resp=h_init_response,
        rev_new=h_reverse_new,
        rev_old=h_reverse_old,
        check_unopt=h_check_request_unopt,
        feature_unopt=h_feature_unopt,
        check_opt=h_check_request_opt,
        feature_opt=h_feature_opt,
        distance_reply=h_distance_reply,
        opt_rev_edge=h_opt_reverse_edge,
    )


def register_dnnd_batch_handlers(world: YGMWorld) -> None:
    """Register the batch variants (requires ``register_dnnd_handlers``
    first; only called when ``config.batch_exec`` is on)."""
    world.register_batch_handlers(
        init_req=h_init_request_batch,
        init_resp=h_init_response_batch,
        rev_new=h_reverse_new_batch,
        rev_old=h_reverse_old_batch,
        check_unopt=h_check_request_unopt_batch,
        feature_unopt=h_feature_unopt_batch,
        check_opt=h_check_request_opt_batch,
        feature_opt=h_feature_opt_batch,
        distance_reply=h_distance_reply_batch,
        opt_rev_edge=h_opt_reverse_edge_batch,
    )


def _dim_of(feature) -> int:
    shape = getattr(feature, "shape", None)
    if shape:
        return int(shape[0])
    return max(1, len(feature))
