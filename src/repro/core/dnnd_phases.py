"""DNND's rank-local state and message handlers (Section 4).

DNND partitions vertices over ranks by id hash; each rank holds its
vertices' feature rows and neighbor heaps (:class:`LocalShard`).  The
three communication phases of Section 4 are implemented as YGM handlers:

**Initialization** (Section 4.1's example pattern)
    ``init_req`` carries ``v``'s feature vector to ``owner(u)``, which
    computes ``theta(v, u)`` and replies with ``init_resp`` carrying the
    distance back to ``owner(v)``.

**Reverse-matrix generation** (Section 4.2)
    ``rev_new`` / ``rev_old`` ship one reversed entry ``(u, v)`` to
    ``owner(u)``; the sender shuffles destination order to avoid
    congestion bursts.

**Neighbor checks** (Section 4.3, Figure 1)
    *Unoptimized* (Figure 1a): the center vertex sends a Type 1 request
    to both endpoints; each endpoint ships its feature vector (Type 2)
    to the other; both sides compute the distance and update their own
    heaps.

    *Optimized* (Figure 1b): Type 1 goes only to ``u1`` (one-sided,
    4.3.1).  ``u1`` skips the exchange entirely when ``u2`` is already a
    neighbor (4.3.2), otherwise sends a Type 2+ message — its feature
    plus its worst-neighbor distance bound (4.3.3) — to ``u2``.  ``u2``
    computes the distance, updates its own heap, and replies with a tiny
    Type 3 distance message only if the distance beats the bound and
    ``u1`` is not already a neighbor of ``u2``.

**Graph optimization** (Section 4.5)
    ``opt_rev_edge`` ships each final edge reversed to the neighbor's
    owner for the reverse-merge + prune pass.

Message sizes follow Section 2's accounting: ids are 4 bytes, distances
4 bytes, features ``dim * itemsize`` (ragged records use their actual
byte size), so Figure 4's bytes axis is modeled, not pickled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from ..config import DNNDConfig
from ..distances.counting import CountingMetric
from ..errors import PartitionError
from ..runtime.partition import Partitioner
from ..runtime.ygm import RankContext, YGMWorld
from ..types import DIST_BYTES, ID_BYTES
from .heap import NeighborHeap

# Message-type labels used in Figure 4.
T1 = "type1"
T2 = "type2"
T2P = "type2+"
T3 = "type3"


@dataclass
class LocalShard:
    """Everything one simulated rank owns.

    Attributes
    ----------
    global_ids:
        Ascending global ids of the vertices this rank owns.
    local_index:
        global id -> row index into ``features`` / ``heaps``.
    features:
        Dense ``(n_local, dim)`` array, or a list of ragged sparse
        records.
    heaps:
        One :class:`NeighborHeap` per local vertex — the distributed
        ``G_v`` (vertex and neighbor list co-located, Section 4).
    """

    rank: int
    partitioner: Partitioner
    global_ids: np.ndarray
    local_index: Dict[int, int]
    features: Any  # dense (n_local, dim) array or list of sparse records
    heaps: List[NeighborHeap]
    metric: CountingMetric
    config: DNNDConfig
    sparse: bool = False
    feature_nbytes_dense: int = 0

    # Per-iteration scratch:
    new_lists: List[List[int]] = field(default_factory=list)
    old_lists: List[List[int]] = field(default_factory=list)
    rev_new: List[List[int]] = field(default_factory=list)
    rev_old: List[List[int]] = field(default_factory=list)
    update_count: int = 0

    # Optimization-phase scratch: per local vertex {neighbor: dist}.
    merged: List[Dict[int, float]] = field(default_factory=list)

    # -- helpers ------------------------------------------------------------

    @property
    def n_local(self) -> int:
        return len(self.global_ids)

    def local(self, gid: int) -> int:
        try:
            return self.local_index[int(gid)]
        except KeyError:
            raise PartitionError(
                f"vertex {gid} dereferenced on rank {self.rank}, "
                f"owner is {self.partitioner.owner(int(gid))}"
            ) from None

    def feature(self, gid: int):
        return self.features[self.local(gid)]

    def heap(self, gid: int) -> NeighborHeap:
        return self.heaps[self.local(gid)]

    def owner(self, gid: int) -> int:
        return self.partitioner.owner(int(gid))

    def feature_nbytes(self, gid: int) -> int:
        """Wire size of one feature vector (Type 2 payload size)."""
        if self.sparse:
            return int(self.features[self.local(gid)].nbytes)
        return self.feature_nbytes_dense

    def reset_iteration_scratch(self) -> None:
        self.new_lists = [[] for _ in range(self.n_local)]
        self.old_lists = [[] for _ in range(self.n_local)]
        self.rev_new = [[] for _ in range(self.n_local)]
        self.rev_old = [[] for _ in range(self.n_local)]
        self.update_count = 0


def shard_of(ctx: RankContext) -> LocalShard:
    return ctx.state["shard"]


# ---------------------------------------------------------------------------
# Initialization handlers (Section 4.1 communication example)
# ---------------------------------------------------------------------------


def h_init_request(ctx: RankContext, v_gid: int, u_gid: int, v_feature) -> None:
    """Runs at owner(u): compute theta(v, u), reply with the distance."""
    shard = shard_of(ctx)
    d = shard.metric(v_feature, shard.feature(u_gid))
    ctx.charge_distance(_dim_of(v_feature))
    ctx.async_call(
        shard.owner(v_gid), "init_resp", v_gid, u_gid, d,
        nbytes=2 * ID_BYTES + DIST_BYTES, msg_type="init_resp",
    )


def h_init_response(ctx: RankContext, v_gid: int, u_gid: int, d: float) -> None:
    """Runs at owner(v): record the initial neighbor."""
    shard = shard_of(ctx)
    shard.heap(v_gid).checked_push(int(u_gid), float(d), True)
    ctx.charge_update()


# ---------------------------------------------------------------------------
# Reverse-matrix handlers (Section 4.2)
# ---------------------------------------------------------------------------


def h_reverse_new(ctx: RankContext, u_gid: int, v_gid: int) -> None:
    """Runs at owner(u): u gained a reversed *new* entry v."""
    shard = shard_of(ctx)
    shard.rev_new[shard.local(u_gid)].append(int(v_gid))


def h_reverse_old(ctx: RankContext, u_gid: int, v_gid: int) -> None:
    shard = shard_of(ctx)
    shard.rev_old[shard.local(u_gid)].append(int(v_gid))


# ---------------------------------------------------------------------------
# Neighbor-check handlers — unoptimized pattern (Figure 1a)
# ---------------------------------------------------------------------------


def h_check_request_unopt(ctx: RankContext, target_gid: int, other_gid: int) -> None:
    """Runs at owner(target): Type 1 received; ship target's feature
    (Type 2) to the other endpoint."""
    shard = shard_of(ctx)
    ctx.async_call(
        shard.owner(other_gid), "feature_unopt",
        other_gid, target_gid, shard.feature(target_gid),
        nbytes=2 * ID_BYTES + shard.feature_nbytes(target_gid), msg_type=T2,
    )


def h_feature_unopt(ctx: RankContext, recv_gid: int, sender_gid: int, feature) -> None:
    """Runs at owner(recv): Type 2 received; compute the distance and
    update recv's own heap (both directions happen symmetrically)."""
    shard = shard_of(ctx)
    d = shard.metric(shard.feature(recv_gid), feature)
    ctx.charge_distance(_dim_of(feature))
    shard.update_count += shard.heap(recv_gid).checked_push(int(sender_gid), float(d), True)
    ctx.charge_update()


# ---------------------------------------------------------------------------
# Neighbor-check handlers — optimized pattern (Figure 1b)
# ---------------------------------------------------------------------------


def h_check_request_opt(ctx: RankContext, u1_gid: int, u2_gid: int) -> None:
    """Runs at owner(u1): Type 1 received (one-sided, Section 4.3.1)."""
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    heap1 = shard.heap(u1_gid)
    if opts.redundancy_check and int(u2_gid) in heap1:
        # Section 4.3.2: the pair is already adjacent; the whole
        # Type 2+/Type 3 exchange would be wasted.
        return
    if opts.distance_pruning:
        bound = heap1.worst_distance()
        extra = DIST_BYTES  # the attached bound, "negligible in size"
        msg_type = T2P
    else:
        bound = np.inf
        extra = 0
        msg_type = T2
    ctx.async_call(
        shard.owner(u2_gid), "feature_opt",
        u2_gid, u1_gid, shard.feature(u1_gid), bound,
        nbytes=2 * ID_BYTES + shard.feature_nbytes(u1_gid) + extra,
        msg_type=msg_type,
    )


def h_feature_opt(ctx: RankContext, u2_gid: int, u1_gid: int, feature, bound: float) -> None:
    """Runs at owner(u2): Type 2+/2 received; compute once, update u2's
    heap locally, and reply (Type 3) only when useful."""
    shard = shard_of(ctx)
    opts = shard.config.comm_opts
    heap2 = shard.heap(u2_gid)
    if opts.redundancy_check and int(u1_gid) in heap2:
        # Section 4.3.2 applied on the u2 side before Type 3.
        return
    d = shard.metric(shard.feature(u2_gid), feature)
    ctx.charge_distance(_dim_of(feature))
    shard.update_count += heap2.checked_push(int(u1_gid), float(d), True)
    ctx.charge_update()
    if opts.distance_pruning and d >= bound:
        # Section 4.3.3: u1 could not accept this distance anyway.
        return
    ctx.async_call(
        shard.owner(u1_gid), "distance_reply", u1_gid, u2_gid, d,
        nbytes=2 * ID_BYTES + DIST_BYTES, msg_type=T3,
    )


def h_distance_reply(ctx: RankContext, u1_gid: int, u2_gid: int, d: float) -> None:
    """Runs at owner(u1): Type 3 received; update u1's heap."""
    shard = shard_of(ctx)
    shard.update_count += shard.heap(u1_gid).checked_push(int(u2_gid), float(d), True)
    ctx.charge_update()


# ---------------------------------------------------------------------------
# Graph-optimization handlers (Section 4.5)
# ---------------------------------------------------------------------------


def h_opt_reverse_edge(ctx: RankContext, u_gid: int, v_gid: int, d: float) -> None:
    """Runs at owner(u): merge the reversed edge u -> v."""
    shard = shard_of(ctx)
    bucket = shard.merged[shard.local(u_gid)]
    v = int(v_gid)
    prev = bucket.get(v)
    if prev is None or d < prev:
        bucket[v] = float(d)
    ctx.charge_update()


def register_dnnd_handlers(world: YGMWorld) -> None:
    """Register every DNND handler on a world (idempotent per world)."""
    world.register_handlers(
        init_req=h_init_request,
        init_resp=h_init_response,
        rev_new=h_reverse_new,
        rev_old=h_reverse_old,
        check_unopt=h_check_request_unopt,
        feature_unopt=h_feature_unopt,
        check_opt=h_check_request_opt,
        feature_opt=h_feature_opt,
        distance_reply=h_distance_reply,
        opt_rev_edge=h_opt_reverse_edge,
    )


def _dim_of(feature) -> int:
    shape = getattr(feature, "shape", None)
    if shape:
        return int(shape[0])
    return max(1, len(feature))
