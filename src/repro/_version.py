"""Version metadata for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Paper reproduced by this package.
PAPER = (
    "Iwabuchi, Steil, Priest, Pearce, Sanders. "
    "Towards A Massive-Scale Distributed Neighborhood Graph Construction. "
    "SC-W 2023. doi:10.1145/3624062.3625132"
)
