"""ANN-Benchmarks ``.fvecs`` / ``.ivecs`` / ``.bvecs`` formats.

Each record is ``int32 dim`` followed by ``dim`` elements (float32 for
fvecs, int32 for ivecs, uint8 for bvecs).  All records in one file share
the same dimension; we validate that on read.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import DatasetError


def _read_vecs(path, elem_dtype: np.dtype, elem_size: int) -> np.ndarray:
    raw = Path(path).read_bytes()
    if len(raw) == 0:
        raise DatasetError(f"empty vecs file: {path}")
    if len(raw) < 4:
        raise DatasetError(f"truncated vecs file: {path}")
    dim = int(np.frombuffer(raw, dtype="<i4", count=1)[0])
    if dim <= 0:
        raise DatasetError(f"invalid dimension {dim} in {path}")
    record_bytes = 4 + dim * elem_size
    if len(raw) % record_bytes != 0:
        raise DatasetError(
            f"file size {len(raw)} is not a multiple of record size "
            f"{record_bytes} (dim={dim}) in {path}"
        )
    n = len(raw) // record_bytes
    if elem_size == 4:
        # Homogeneous 4-byte elements: one view + slice.
        flat = np.frombuffer(raw, dtype="<i4").reshape(n, dim + 1)
        dims = flat[:, 0]
        if np.any(dims != dim):
            raise DatasetError(f"inconsistent record dimensions in {path}")
        body = flat[:, 1:]
        return body.view("<f4").copy() if elem_dtype == np.float32 else body.astype(np.int32)
    # uint8 payload with int32 headers: strided parse.
    out = np.empty((n, dim), dtype=np.uint8)
    buf = np.frombuffer(raw, dtype=np.uint8)
    for i in range(n):
        off = i * record_bytes
        d = int(np.frombuffer(raw, dtype="<i4", count=1, offset=off)[0])
        if d != dim:
            raise DatasetError(f"inconsistent record dimensions in {path}")
        out[i] = buf[off + 4: off + 4 + dim]
    return out


def read_fvecs(path) -> np.ndarray:
    """Read a ``.fvecs`` file -> ``(n, dim)`` float32."""
    return _read_vecs(path, np.float32, 4)


def read_ivecs(path) -> np.ndarray:
    """Read a ``.ivecs`` file -> ``(n, dim)`` int32 (ground-truth ids)."""
    return _read_vecs(path, np.int32, 4)


def read_bvecs(path) -> np.ndarray:
    """Read a ``.bvecs`` file -> ``(n, dim)`` uint8 (SIFT/BigANN style)."""
    return _read_vecs(path, np.uint8, 1)


def _write_vecs(path, data: np.ndarray, elem_dtype) -> None:
    arr = np.asarray(data)
    if arr.ndim != 2 or arr.size == 0:
        raise DatasetError("vecs writer needs a non-empty 2-D array")
    n, dim = arr.shape
    arr = arr.astype(elem_dtype)
    with Path(path).open("wb") as fh:
        header = np.full(1, dim, dtype="<i4").tobytes()
        for i in range(n):
            fh.write(header)
            fh.write(arr[i].tobytes())


def write_fvecs(path, data: np.ndarray) -> None:
    _write_vecs(path, data, "<f4")


def write_ivecs(path, data: np.ndarray) -> None:
    _write_vecs(path, data, "<i4")


def write_bvecs(path, data: np.ndarray) -> None:
    _write_vecs(path, data, np.uint8)
