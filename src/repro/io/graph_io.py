"""k-NN graph serialization (``.npz``-based)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.graph import AdjacencyGraph, KNNGraph
from ..errors import DatasetError


def save_graph(path, graph: KNNGraph) -> None:
    """Persist a fixed-degree k-NN graph."""
    np.savez_compressed(Path(path), kind="knn", **graph.to_arrays())


def load_graph(path) -> KNNGraph:
    with np.load(Path(path), allow_pickle=False) as z:
        if str(z.get("kind")) != "knn":
            raise DatasetError(f"{path} does not contain a k-NN graph")
        return KNNGraph(z["ids"], z["dists"])


def save_adjacency(path, graph: AdjacencyGraph) -> None:
    """Persist a CSR adjacency graph (the optimized/searchable form)."""
    np.savez_compressed(Path(path), kind="adjacency", **graph.to_arrays())


def load_adjacency(path) -> AdjacencyGraph:
    with np.load(Path(path), allow_pickle=False) as z:
        if str(z.get("kind")) != "adjacency":
            raise DatasetError(f"{path} does not contain an adjacency graph")
        return AdjacencyGraph(z["indptr"], z["indices"], z["dists"])
