"""Vector-file formats (S17).

The paper's datasets ship in the ANN-Benchmarks ``.fvecs``/``.ivecs``/
``.bvecs`` formats and the Big-ANN-Benchmarks ``.fbin``/``.u8bin``
formats; graphs are exchanged as flat binary (Section 2's size
accounting is the literal file size).  These readers/writers make the
repository interoperable with the real corpora when they are available.
"""

from .vecs import read_fvecs, read_ivecs, read_bvecs, write_fvecs, write_ivecs, write_bvecs
from .bigann import read_bin, write_bin, read_ground_truth, write_ground_truth
from .graph_io import save_graph, load_graph, save_adjacency, load_adjacency

__all__ = [
    "read_fvecs", "read_ivecs", "read_bvecs",
    "write_fvecs", "write_ivecs", "write_bvecs",
    "read_bin", "write_bin", "read_ground_truth", "write_ground_truth",
    "save_graph", "load_graph", "save_adjacency", "load_adjacency",
]
