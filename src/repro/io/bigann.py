"""Big-ANN-Benchmarks binary formats (Section 5.3.3's query bundles).

``.fbin`` / ``.u8bin`` / ``.i8bin``: ``uint32 n, uint32 dim`` header
followed by ``n * dim`` elements row-major.  Ground-truth files: the
same header, then ``n * dim`` int32 neighbor ids, then ``n * dim``
float32 distances.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import DatasetError

_DTYPES = {
    ".fbin": np.float32,
    ".u8bin": np.uint8,
    ".i8bin": np.int8,
}


def _dtype_for(path, dtype) -> np.dtype:
    if dtype is not None:
        return np.dtype(dtype)
    suffix = Path(path).suffix
    if suffix in _DTYPES:
        return np.dtype(_DTYPES[suffix])
    raise DatasetError(
        f"cannot infer element dtype from suffix {suffix!r}; pass dtype="
    )


def read_bin(path, dtype=None) -> np.ndarray:
    """Read a Big-ANN ``.*bin`` vector file -> ``(n, dim)`` array."""
    p = Path(path)
    raw = p.read_bytes()
    if len(raw) < 8:
        raise DatasetError(f"truncated bigann file: {p}")
    n, dim = (int(x) for x in np.frombuffer(raw, dtype="<u4", count=2))
    dt = _dtype_for(path, dtype)
    expected = 8 + n * dim * dt.itemsize
    if len(raw) != expected:
        raise DatasetError(
            f"size mismatch in {p}: header says {n}x{dim} {dt} "
            f"({expected} bytes), file has {len(raw)}"
        )
    return np.frombuffer(raw, dtype=dt, offset=8).reshape(n, dim).copy()


def write_bin(path, data: np.ndarray) -> None:
    arr = np.asarray(data)
    if arr.ndim != 2:
        raise DatasetError("bigann writer needs a 2-D array")
    with Path(path).open("wb") as fh:
        fh.write(np.array(arr.shape, dtype="<u4").tobytes())
        fh.write(np.ascontiguousarray(arr).tobytes())


def read_ground_truth(path):
    """Read a Big-ANN ground-truth file -> ``(ids, dists)`` arrays."""
    p = Path(path)
    raw = p.read_bytes()
    if len(raw) < 8:
        raise DatasetError(f"truncated ground-truth file: {p}")
    n, k = (int(x) for x in np.frombuffer(raw, dtype="<u4", count=2))
    expected = 8 + n * k * 4 * 2
    if len(raw) != expected:
        raise DatasetError(
            f"size mismatch in {p}: header says {n}x{k} "
            f"({expected} bytes), file has {len(raw)}"
        )
    ids = np.frombuffer(raw, dtype="<i4", count=n * k, offset=8).reshape(n, k).copy()
    dists = np.frombuffer(raw, dtype="<f4", offset=8 + n * k * 4).reshape(n, k).copy()
    return ids, dists


def write_ground_truth(path, ids: np.ndarray, dists: np.ndarray) -> None:
    ids = np.asarray(ids, dtype="<i4")
    dists = np.asarray(dists, dtype="<f4")
    if ids.shape != dists.shape or ids.ndim != 2:
        raise DatasetError("ids/dists must be matching 2-D arrays")
    with Path(path).open("wb") as fh:
        fh.write(np.array(ids.shape, dtype="<u4").tobytes())
        fh.write(np.ascontiguousarray(ids).tobytes())
        fh.write(np.ascontiguousarray(dists).tobytes())
