"""ASCII figure rendering.

The benchmark harness prints the paper's figures as terminal plots so
the *shape* claims (crossovers, flattening, trade-off fronts) are
visible directly in ``benchmarks/results/*.txt`` without a plotting
stack.  Pure text: a fixed-size character grid, linear or log axes,
one glyph per series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..errors import ReproError

GLYPHS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool) -> List[float]:
    out = []
    for v in values:
        if log:
            if v <= 0:
                raise ReproError(f"log axis requires positive values, got {v}")
            out.append(math.log10(v))
        else:
            out.append(float(v))
    return out


def ascii_plot(series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
               width: int = 64, height: int = 20,
               x_label: str = "x", y_label: str = "y",
               log_x: bool = False, log_y: bool = False,
               title: str | None = None) -> str:
    """Render ``{name: (xs, ys)}`` as a character-grid scatter/line plot.

    Each series gets one glyph; a legend maps glyphs to names; axis
    extremes are printed numerically.  Overlapping points keep the
    first-drawn glyph.
    """
    if not series:
        raise ReproError("ascii_plot needs at least one series")
    if width < 16 or height < 6:
        raise ReproError("plot must be at least 16x6 characters")

    all_x: List[float] = []
    all_y: List[float] = []
    transformed = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ReproError(f"series {name!r} has mismatched x/y lengths")
        if not len(xs):
            continue
        tx = _transform(xs, log_x)
        ty = _transform(ys, log_y)
        transformed[name] = (tx, ty)
        all_x.extend(tx)
        all_y.extend(ty)
    if not all_x:
        raise ReproError("all series are empty")

    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (tx, ty)) in enumerate(transformed.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for x, y in zip(tx, ty):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            r = height - 1 - row
            if grid[r][col] == " ":
                grid[r][col] = glyph

    def fmt(v: float, log: bool) -> str:
        raw = 10 ** v if log else v
        if raw != 0 and (abs(raw) >= 10_000 or abs(raw) < 0.01):
            return f"{raw:.2g}"
        return f"{raw:g}"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={fmt(y_hi, log_y)}, bottom={fmt(y_lo, log_y)})"
                 + ("  [log y]" if log_y else ""))
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {fmt(x_lo, log_x)} .. {fmt(x_hi, log_x)}"
                 + ("  [log x]" if log_x else ""))
    legend = "  ".join(f"{GLYPHS[i % len(GLYPHS)]}={name}"
                       for i, name in enumerate(transformed))
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def tradeoff_plot(points_by_series, width: int = 64, height: int = 18,
                  title: str | None = None) -> str:
    """Figure 2-style plot from ``{name: [TradeoffPoint, ...]}``:
    recall on x, distance evaluations per query on y (log)."""
    series = {
        name: ([p.recall for p in pts],
               [max(p.mean_distance_evals, 1e-9) for p in pts])
        for name, pts in points_by_series.items() if pts
    }
    return ascii_plot(series, width=width, height=height,
                      x_label="recall@k", y_label="dist evals/query",
                      log_y=True, title=title)


def scaling_plot(times_by_series, width: int = 56, height: int = 16,
                 title: str | None = None) -> str:
    """Figure 3-style plot from ``{name: {nodes: seconds}}``: nodes on
    x (log), time on y (log) — both axes logged, as in the paper."""
    series = {
        name: (list(vals.keys()), list(vals.values()))
        for name, vals in times_by_series.items() if vals
    }
    return ascii_plot(series, width=width, height=height,
                      x_label="nodes", y_label="construction time",
                      log_x=True, log_y=True, title=title)
