"""Thread-parallel batch query engine.

The paper's query program is "a shared memory query program using C++
and OpenMP ... 256 threads" that "submits all queries at once and
processes them in parallel" (Section 5.3.3).  This module provides the
Python analogue: a thread pool dispatching independent queries over one
shared (read-only) graph + dataset.

NumPy releases the GIL inside the distance kernels, so the pool gives
genuine speedups for higher-dimensional data, and — more importantly
for the reproduction — it exercises the same all-queries-at-once
workload shape used for Figure 2's throughput axis.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Tuple

import numpy as np

from ..errors import ConfigError
from ..core.search import KNNGraphSearcher


class ParallelQueryEngine:
    """Runs batches of ANN queries over a shared searcher with threads.

    Parameters
    ----------
    searcher:
        A :class:`KNNGraphSearcher` (treated as read-only).
    n_threads:
        Worker count; the paper uses 256 on Mammoth.
    chunk:
        Queries per task; larger chunks amortize dispatch overhead.
    """

    def __init__(self, searcher: KNNGraphSearcher, n_threads: int = 4,
                 chunk: int = 32) -> None:
        if n_threads < 1:
            raise ConfigError(f"n_threads must be >= 1, got {n_threads}")
        if chunk < 1:
            raise ConfigError(f"chunk must be >= 1, got {chunk}")
        self.searcher = searcher
        self.n_threads = int(n_threads)
        self.chunk = int(chunk)

    def query_batch(self, queries, l: int = 10,
                    epsilon: float = 0.0) -> Tuple[np.ndarray, np.ndarray, dict]:
        """All-queries-at-once parallel execution.

        Returns the same ``(ids, dists, stats)`` as
        :meth:`KNNGraphSearcher.query_batch`.
        """
        nq = len(queries)
        ids = np.full((nq, l), -1, dtype=np.int64)
        dists = np.full((nq, l), np.inf, dtype=np.float64)
        evals = np.zeros(nq, dtype=np.int64)
        visited = np.zeros(nq, dtype=np.int64)

        def run_span(span_idx: int, lo: int, hi: int) -> None:
            # Each span gets its own searcher clone: numpy Generators
            # (entry-point sampling) are not thread-safe to share.
            local = self.searcher.clone(seed=span_idx)
            for i in range(lo, hi):
                res = local.query(queries[i], l=l, epsilon=epsilon)
                found = len(res.ids)
                ids[i, :found] = res.ids[:l]
                dists[i, :found] = res.dists[:l]
                evals[i] = res.n_distance_evals
                visited[i] = res.n_visited

        spans = [(lo, min(lo + self.chunk, nq))
                 for lo in range(0, nq, self.chunk)]
        if self.n_threads == 1 or len(spans) <= 1:
            for idx, (lo, hi) in enumerate(spans):
                run_span(idx, lo, hi)
        else:
            with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
                futures = [pool.submit(run_span, idx, lo, hi)
                           for idx, (lo, hi) in enumerate(spans)]
                for f in futures:
                    f.result()  # propagate worker exceptions

        stats = {
            "n_queries": nq,
            "n_threads": self.n_threads,
            "mean_distance_evals": float(evals.mean()) if nq else 0.0,
            "mean_visited": float(visited.mean()) if nq else 0.0,
        }
        return ids, dists, stats
