"""Evaluation harness (S18, S21, S27): recall, throughput, comparison
runner, convergence diagnostics, plots, experiment registry."""

from .recall import graph_recall, recall_at_k, per_vertex_recall
from .qps import QueryBenchmark, TradeoffPoint, sweep_epsilon, sweep_ef
from .tables import ascii_table, format_series
from .experiments import EXPERIMENTS, get_experiment, list_experiments
from .ann_benchmark import AlgorithmResult, AnnBenchmarkRunner, BenchmarkReport
from .convergence import ConvergenceTrace, trace_convergence
from .parallel_query import ParallelQueryEngine
from .plots import ascii_plot, scaling_plot, tradeoff_plot

__all__ = [
    "graph_recall",
    "recall_at_k",
    "per_vertex_recall",
    "QueryBenchmark",
    "TradeoffPoint",
    "sweep_epsilon",
    "sweep_ef",
    "ascii_table",
    "format_series",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "AnnBenchmarkRunner",
    "AlgorithmResult",
    "BenchmarkReport",
    "ConvergenceTrace",
    "trace_convergence",
    "ParallelQueryEngine",
    "ascii_plot",
    "tradeoff_plot",
    "scaling_plot",
]
