"""Recall metrics.

Two notions from the paper:

- **graph recall** (Section 5.2): for each vertex, the fraction of its
  true k nearest neighbors present in its constructed neighbor list;
  report the mean over vertices.
- **recall@k** (Section 5.3.3): for each query, the fraction of the
  ground-truth k ids found among the returned k; report the mean over
  queries.

Both are set-based (order inside the list does not matter), matching
"the ratio of the neighbor IDs that exist in the corresponding ground
truth data".
"""

from __future__ import annotations

import numpy as np

from ..core.graph import EMPTY, KNNGraph
from ..errors import DatasetError


def per_vertex_recall(graph: KNNGraph, truth: KNNGraph) -> np.ndarray:
    """Per-vertex recall of ``graph`` against the exact ``truth`` graph."""
    if graph.n != truth.n:
        raise DatasetError(
            f"graph has {graph.n} vertices, ground truth has {truth.n}"
        )
    out = np.empty(graph.n, dtype=np.float64)
    for v in range(graph.n):
        true_ids = truth.ids[v][truth.ids[v] != EMPTY]
        got_ids = graph.ids[v][graph.ids[v] != EMPTY]
        if len(true_ids) == 0:
            out[v] = 1.0
            continue
        out[v] = len(np.intersect1d(true_ids, got_ids, assume_unique=True)) / len(true_ids)
    return out


def graph_recall(graph: KNNGraph, truth: KNNGraph) -> float:
    """Mean per-vertex recall — the Section 5.2 score."""
    return float(per_vertex_recall(graph, truth).mean())


def recall_at_k(found_ids: np.ndarray, gt_ids: np.ndarray) -> float:
    """Mean query recall@k.

    Parameters
    ----------
    found_ids:
        ``(nq, k)`` returned ids (``-1`` = empty slot).
    gt_ids:
        ``(nq, k_gt)`` ground-truth ids; recall denominators use
        ``k_gt`` per query.
    """
    found_ids = np.asarray(found_ids)
    gt_ids = np.asarray(gt_ids)
    if found_ids.shape[0] != gt_ids.shape[0]:
        raise DatasetError(
            f"query count mismatch: {found_ids.shape[0]} vs {gt_ids.shape[0]}"
        )
    nq = found_ids.shape[0]
    scores = np.empty(nq, dtype=np.float64)
    for i in range(nq):
        gt = gt_ids[i][gt_ids[i] >= 0]
        if len(gt) == 0:
            scores[i] = 1.0
            continue
        got = found_ids[i][found_ids[i] >= 0]
        scores[i] = len(np.intersect1d(gt, got)) / len(gt)
    return float(scores.mean())
