"""NN-Descent convergence diagnostics.

Section 3.1: the ``delta`` early-termination threshold trades graph
quality against construction cost.  These helpers make that trade-off
observable: they track, per NN-Descent iteration, the update counter
``c`` (Algorithm 1's convergence signal) and — when ground truth is
supplied — the true graph recall, so one run shows how recall climbs
while ``c`` decays and where a given ``delta`` would have stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.graph import KNNGraph
from ..core.nndescent import NNDescent, NNDescentResult
from .recall import graph_recall
from .tables import ascii_table


@dataclass
class ConvergenceTrace:
    """Per-iteration convergence record of one NN-Descent run."""

    update_counts: List[int] = field(default_factory=list)
    recalls: List[Optional[float]] = field(default_factory=list)
    n: int = 0
    k: int = 0

    @property
    def iterations(self) -> int:
        return len(self.update_counts)

    def update_rate(self, iteration: int) -> float:
        """``c / (k * N)`` — the quantity ``delta`` thresholds."""
        if self.n == 0 or self.k == 0:
            return 0.0
        return self.update_counts[iteration] / (self.k * self.n)

    def iterations_for_delta(self, delta: float) -> int:
        """How many iterations a given ``delta`` would have run."""
        for it in range(self.iterations):
            if self.update_rate(it) < delta:
                return it + 1
        return self.iterations

    def monotone_decay(self) -> bool:
        """Whether the update counter decays (weakly, allowing one bump —
        the sampling is stochastic)."""
        bumps = sum(1 for a, b in zip(self.update_counts,
                                      self.update_counts[1:]) if b > a)
        return bumps <= 1

    def report(self) -> str:
        rows = []
        for it in range(self.iterations):
            recall = self.recalls[it]
            rows.append([
                it + 1,
                self.update_counts[it],
                f"{self.update_rate(it):.4f}",
                "-" if recall is None else f"{recall:.4f}",
            ])
        return ascii_table(
            ["iteration", "updates (c)", "c / kN", "graph recall"],
            rows, title="NN-Descent convergence",
        )


def trace_convergence(builder: NNDescent,
                      truth: Optional[KNNGraph] = None
                      ) -> tuple[NNDescentResult, ConvergenceTrace]:
    """Run ``builder`` while recording a :class:`ConvergenceTrace`.

    Passing the exact graph as ``truth`` adds per-iteration recall
    (costs one recall computation per round).
    """
    trace = ConvergenceTrace(n=builder.n, k=builder.config.k)

    def callback(iteration: int, c: int, snapshot: KNNGraph) -> None:
        trace.update_counts.append(c)
        trace.recalls.append(
            graph_recall(snapshot, truth) if truth is not None else None)

    result = builder.build(iteration_callback=callback)
    return result, trace
