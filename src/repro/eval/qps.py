"""Query-throughput / recall trade-off measurement (Figure 2).

Figure 2 plots recall@10 (x) against queries-per-second (y); each point
on a line is one query-parameter setting — ``epsilon`` for DNND graphs
(0, then 0.1..0.4 step 0.025) and ``ef`` (20..1200) for HNSW.
:func:`sweep_epsilon` / :func:`sweep_ef` produce those series.

Wall-clock qps on this machine is not comparable to the paper's
256-thread Mammoth node, so each point also carries the *mean distance
evaluations per query*, a platform-independent inverse-throughput proxy
(the paper itself uses this measure to cross-validate its query program
against PyNNDescent, Section 5.3.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .recall import recall_at_k


@dataclass
class TradeoffPoint:
    """One point on a Figure 2 line."""

    label: str
    param: float
    recall: float
    qps: float
    mean_distance_evals: float

    def as_row(self) -> List:
        return [self.label, self.param, round(self.recall, 4),
                round(self.qps, 1), round(self.mean_distance_evals, 1)]


@dataclass
class QueryBenchmark:
    """Reusable query-set harness bound to ground truth."""

    queries: object
    gt_ids: np.ndarray
    k: int = 10

    def measure(self, run_batch, label: str, param: float) -> TradeoffPoint:
        """``run_batch(queries, k)`` -> ``(ids, dists, stats)``."""
        start = time.perf_counter()
        ids, _dists, stats = run_batch(self.queries, self.k)
        elapsed = time.perf_counter() - start
        nq = len(self.gt_ids)
        return TradeoffPoint(
            label=label,
            param=param,
            recall=recall_at_k(ids, self.gt_ids),
            qps=nq / max(elapsed, 1e-9),
            mean_distance_evals=float(stats.get("mean_distance_evals", 0.0)),
        )


def sweep_epsilon(searcher, bench: QueryBenchmark, label: str,
                  epsilons: Sequence[float] | None = None) -> List[TradeoffPoint]:
    """DNND-side Figure 2 series: one point per ``epsilon``.

    Default sweep matches Section 5.3.1: 0, then 0.1 to 0.4 step 0.025.
    """
    if epsilons is None:
        epsilons = [0.0] + list(np.arange(0.1, 0.401, 0.025))
    points = []
    for eps in epsilons:
        def run(queries, k, _eps=eps):
            return searcher.query_batch(queries, l=k, epsilon=_eps)
        points.append(bench.measure(run, label, float(eps)))
    return points


def sweep_ef(index, bench: QueryBenchmark, label: str,
             efs: Sequence[int] | None = None) -> List[TradeoffPoint]:
    """HNSW-side Figure 2 series: one point per ``ef`` (Table 2 sweeps
    20-1200 for DEEP, 20-1000 for BigANN)."""
    if efs is None:
        efs = [20, 40, 80, 160, 320, 640, 1200]
    points = []
    for ef in efs:
        def run(queries, k, _ef=ef):
            return index.query_batch(queries, k=k, ef=_ef)
        points.append(bench.measure(run, label, float(ef)))
    return points


def pareto_front(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """Non-dominated subset (higher recall, higher qps): the shape
    comparisons in Figure 2 are between these frontiers."""
    best: List[TradeoffPoint] = []
    for p in sorted(points, key=lambda t: (-t.recall, -t.qps)):
        if not best or p.qps > best[-1].qps:
            best.append(p)
    return sorted(best, key=lambda t: t.recall)


def dominates_at_recall(points_a: Sequence[TradeoffPoint],
                        points_b: Sequence[TradeoffPoint],
                        recall_floor: float) -> bool:
    """True if series A reaches ``recall_floor`` with fewer mean distance
    evaluations than series B (platform-independent "faster at equal
    quality", the Section 5.3.2 selection criterion)."""
    def best_cost(points):
        eligible = [p.mean_distance_evals for p in points if p.recall >= recall_floor]
        return min(eligible) if eligible else np.inf
    return best_cost(points_a) < best_cost(points_b)
