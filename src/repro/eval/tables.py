"""ASCII table / series rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence],
                title: str | None = None) -> str:
    """Fixed-width table with a header rule."""
    rows = [[_fmt(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure line as ``name: (x, y) (x, y) ...`` rows."""
    pairs = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name} [{x_label} -> {y_label}]: {pairs}"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10000 else str(value)
    return str(value)
