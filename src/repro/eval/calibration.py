"""Calibrating simulated times onto the paper's scale (Figure 3).

The cost model produces simulated seconds whose *ratios* are
meaningful; to compare against the paper's tables directly we map them
onto its hour scale with one global factor fixed at an anchor point
(DEEP-1B, DNND k=10, 4 nodes = 6.96 h in Table 3a).  This module keeps
that logic reusable and testable instead of inlined in the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ReproError

#: Table 3a's anchor: (series, nodes) -> hours.
PAPER_ANCHOR = ("DNND k10", 4, 6.96)

SeriesTimes = Dict[Tuple[str, int], float]


@dataclass(frozen=True)
class Calibration:
    """A fixed simulated-seconds -> calibrated-hours factor."""

    factor: float
    anchor_series: str
    anchor_nodes: int
    anchor_hours: float

    def hours(self, sim_seconds: float) -> float:
        return sim_seconds * self.factor

    def apply(self, times: SeriesTimes) -> Dict[Tuple[str, int], float]:
        return {key: self.hours(v) for key, v in times.items()}


def calibrate(times: SeriesTimes,
              anchor: Tuple[str, int, float] = PAPER_ANCHOR) -> Calibration:
    """Fit the single factor mapping ``times`` onto the paper's scale.

    Raises if the anchor configuration is missing from ``times``.
    """
    series, nodes, hours = anchor
    key = (series, nodes)
    if key not in times:
        raise ReproError(
            f"anchor {key} not present in measured times {sorted(times)}"
        )
    measured = times[key]
    if measured <= 0:
        raise ReproError(f"anchor time must be positive, got {measured}")
    return Calibration(factor=hours / measured, anchor_series=series,
                       anchor_nodes=nodes, anchor_hours=hours)


def scaling_factor(times: SeriesTimes, series: str,
                   from_nodes: int, to_nodes: int) -> float:
    """Speedup of ``series`` between two node counts (paper's 3.8x
    style numbers); calibration-independent."""
    try:
        return times[(series, from_nodes)] / times[(series, to_nodes)]
    except KeyError as missing:
        raise ReproError(f"missing configuration {missing} in times") from None
    except ZeroDivisionError:
        raise ReproError("target time is zero") from None


def efficiency(times: SeriesTimes, series: str,
               base_nodes: int, nodes: int) -> float:
    """Parallel efficiency relative to ``base_nodes`` (1.0 = ideal)."""
    speedup = scaling_factor(times, series, base_nodes, nodes)
    return speedup / (nodes / base_nodes)


def compare_with_paper(measured: SeriesTimes,
                       paper: Dict[str, Dict[int, float]],
                       calibration: Optional[Calibration] = None
                       ) -> Dict[Tuple[str, int], Tuple[float, float]]:
    """``{(series, nodes): (calibrated_hours, paper_hours)}`` for every
    configuration both sides report."""
    cal = calibration or calibrate(measured)
    out = {}
    for (series, nodes), sim in measured.items():
        paper_val = paper.get(series, {}).get(nodes)
        if paper_val is not None:
            out[(series, nodes)] = (cal.hours(sim), paper_val)
    return out
