"""Experiment registry: paper table/figure id -> reproduction metadata.

DESIGN.md's per-experiment index, in executable form: each entry maps a
paper artifact to the modules implementing it and the benchmark that
regenerates it, plus the paper's headline numbers for EXPERIMENTS.md's
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ReproError


@dataclass(frozen=True)
class Experiment:
    """One paper table or figure and how this repo reproduces it."""

    exp_id: str
    paper_ref: str
    description: str
    modules: List[str] = field(default_factory=list)
    bench: str = ""
    paper_numbers: Dict[str, object] = field(default_factory=dict)


EXPERIMENTS: Dict[str, Experiment] = {
    "table1": Experiment(
        exp_id="table1",
        paper_ref="Table 1",
        description="Dataset inventory: 8 datasets with dims/entries/metric",
        modules=["repro.datasets.ann_benchmarks"],
        bench="benchmarks/bench_table1_datasets.py",
        paper_numbers={
            "fashion-mnist": (784, 60_000, "L2"),
            "glove-25": (25, 1_183_514, "Cosine"),
            "kosarak": (27_983, 74_962, "Jaccard"),
            "mnist": (784, 60_000, "L2"),
            "nytimes": (256, 290_000, "Cosine"),
            "lastfm": (65, 292_385, "Cosine"),
            "deep1b": (96, 1_000_000_000, "L2"),
            "bigann": (128, 1_000_000_000, "L2"),
        },
    ),
    "sec5.2": Experiment(
        exp_id="sec5.2",
        paper_ref="Section 5.2 (text)",
        description="DNND k=100 graph recall vs brute force on 6 small datasets",
        modules=["repro.core.dnnd", "repro.baselines.bruteforce", "repro.eval.recall"],
        bench="benchmarks/bench_sec52_graph_quality.py",
        paper_numbers={"nytimes": 0.93, "lastfm": 0.98, "others_min": 0.99},
    ),
    "table2": Experiment(
        exp_id="table2",
        paper_ref="Table 2",
        description="Hnswlib parameter survey and selected configs A-D",
        modules=["repro.baselines.hnsw", "repro.eval.qps"],
        bench="benchmarks/bench_table2_hnsw_survey.py",
        paper_numbers={
            "Hnsw A": {"M": 64, "efc": 50},
            "Hnsw B": {"M": 64, "efc": 200},
            "Hnsw C": {"M": 32, "efc": 25},
            "Hnsw D": {"M": 64, "efc": 200},
            "ef_range_deep": (20, 1200),
            "ef_range_bigann": (20, 1000),
        },
    ),
    "fig2": Experiment(
        exp_id="fig2",
        paper_ref="Figure 2 (a-d)",
        description="Recall@10 vs query throughput trade-off, DNND k10/k20/k30 vs Hnsw",
        modules=["repro.core.search", "repro.baselines.hnsw", "repro.eval.qps"],
        bench="benchmarks/bench_fig2_recall_qps.py",
        paper_numbers={
            "claim": "DNND k20 matches Hnsw best; DNND k30 exceeds it",
            "epsilon_sweep": (0.0, 0.1, 0.4, 0.025),
        },
    ),
    "fig3": Experiment(
        exp_id="fig3",
        paper_ref="Figure 3 / Table 3 (a, b)",
        description="k-NNG construction time vs node count (strong scaling)",
        modules=["repro.core.dnnd", "repro.runtime.netmodel", "repro.baselines.hnsw"],
        bench="benchmarks/bench_fig3_scaling.py",
        paper_numbers={
            "deep": {"Hnsw A": {1: 5.90}, "Hnsw B": {1: 22.60},
                     "DNND k10": {4: 6.96, 8: 3.87, 16: 1.84, 32: 1.50},
                     "DNND k20": {8: 10.62, 16: 5.18, 32: 3.74},
                     "DNND k30": {16: 10.29, 32: 6.58}},
            "bigann": {"Hnsw C": {1: 1.70}, "Hnsw D": {1: 16.50},
                       "DNND k10": {4: 5.45, 8: 2.92, 16: 1.27, 32: 1.24},
                       "DNND k20": {8: 8.19, 16: 3.50, 32: 3.05},
                       "DNND k30": {16: 6.84, 32: 5.83}},
            "scaling_factor_deep_k10_4to16": 3.8,
            "speedup_vs_hnsw_16nodes": {"deep": 4.4, "bigann": 4.7},
        },
    ),
    "fig4": Experiment(
        exp_id="fig4",
        paper_ref="Figure 4 (a, b)",
        description="Neighbor-check message count & volume, unoptimized vs optimized",
        modules=["repro.core.dnnd_phases", "repro.runtime.instrumentation"],
        bench="benchmarks/bench_fig4_message_savings.py",
        paper_numbers={"reduction": 0.5, "k": 10, "nodes": 16},
    ),
    "ablation-comm": Experiment(
        exp_id="ablation-comm",
        paper_ref="Sections 4.3.1-4.3.3 (design choices)",
        description="Each communication-saving technique in isolation",
        modules=["repro.core.dnnd_phases"],
        bench="benchmarks/bench_ablation_comm_opts.py",
    ),
    "ablation-batch": Experiment(
        exp_id="ablation-batch",
        paper_ref="Section 4.4 (design choice)",
        description="Application-level batch-size sensitivity",
        modules=["repro.runtime.ygm"],
        bench="benchmarks/bench_ablation_batching.py",
    ),
    "ablation-flush": Experiment(
        exp_id="ablation-flush",
        paper_ref="Section 4.4 (YGM internal buffering)",
        description="YGM internal buffer byte-cap sweep",
        modules=["repro.runtime.ygm"],
        bench="benchmarks/bench_ablation_flush.py",
    ),
    "ext-taxonomy": Experiment(
        exp_id="ext-taxonomy",
        paper_ref="Extension (Section 1's ANN-family taxonomy)",
        description="Tree / hash / graph / exact methods head-to-head",
        modules=["repro.baselines.kdtree", "repro.baselines.lsh",
                 "repro.eval.ann_benchmark"],
        bench="benchmarks/bench_ext_taxonomy.py",
    ),
    "ext-dist-query": Experiment(
        exp_id="ext-dist-query",
        paper_ref="Extension (Sections 1 / 6: massive-scale framework, Pyramid)",
        description="Distributed query execution: network cost vs recall",
        modules=["repro.core.dist_search"],
        bench="benchmarks/bench_ext_dist_query.py",
    ),
    "ablation-nnd-params": Experiment(
        exp_id="ablation-nnd-params",
        paper_ref="Sections 3.1 / 5.1.3 (rho = 0.8, delta = 0.001)",
        description="NN-Descent rho/delta sweeps + convergence trace",
        modules=["repro.core.nndescent", "repro.eval.convergence"],
        bench="benchmarks/bench_ablation_nnd_params.py",
    ),
    "ablation-partition": Experiment(
        exp_id="ablation-partition",
        paper_ref="Section 4 (design choice: hash partitioning)",
        description="Hash vs block vertex partitioning on cluster-sorted ids",
        modules=["repro.runtime.partition"],
        bench="benchmarks/bench_ablation_partitioning.py",
    ),
    "ablation-graphopt": Experiment(
        exp_id="ablation-graphopt",
        paper_ref="Section 4.5 (design choice)",
        description="Reverse-edge merge on/off and pruning factor m sweep",
        modules=["repro.core.optimization", "repro.core.search"],
        bench="benchmarks/bench_ablation_graph_opt.py",
    ),
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)
