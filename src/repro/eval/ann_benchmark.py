"""A miniature ANN-Benchmarks runner.

The paper's datasets come from ANN-Benchmarks / Big-ANN-Benchmarks,
whose methodology is: build each algorithm's index on a train split,
sweep its query-time knob, and plot recall@k against throughput.  This
module packages that workflow over this library's algorithms so a user
can compare, on any registered dataset stand-in (or their own data):

- DNND (distributed construction) + epsilon-swept graph search,
- shared-memory NN-Descent + the same search,
- HNSW with an ef sweep,
- brute force as the exact reference.

Used by ``examples/ann_benchmark_runner.py`` and the Figure 2 bench's
sibling extension study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..baselines.bruteforce import brute_force_neighbors
from ..baselines.hnsw import HNSW, HNSWConfig
from ..config import ClusterConfig, DNNDConfig, NNDescentConfig
from ..core.dnnd import DNND
from ..core.nndescent import NNDescent
from ..core.optimization import optimize_graph
from ..core.search import KNNGraphSearcher
from ..errors import ConfigError
from .qps import QueryBenchmark, TradeoffPoint, sweep_ef, sweep_epsilon
from .tables import ascii_table


@dataclass
class AlgorithmResult:
    """One algorithm's build cost + trade-off curve."""

    name: str
    build_seconds: float
    build_distance_evals: int
    points: List[TradeoffPoint] = field(default_factory=list)

    def best_recall(self) -> float:
        return max((p.recall for p in self.points), default=0.0)

    def cost_at_recall(self, floor: float) -> Optional[float]:
        """Min distance evals/query reaching ``floor`` recall."""
        eligible = [p.mean_distance_evals for p in self.points
                    if p.recall >= floor]
        return min(eligible) if eligible else None


@dataclass
class BenchmarkReport:
    """All algorithms on one dataset."""

    dataset: str
    n: int
    k: int
    results: Dict[str, AlgorithmResult] = field(default_factory=dict)

    def winner_at_recall(self, floor: float) -> Optional[str]:
        """Algorithm answering queries cheapest at >= ``floor`` recall."""
        best_name, best_cost = None, None
        for name, res in self.results.items():
            cost = res.cost_at_recall(floor)
            if cost is not None and (best_cost is None or cost < best_cost):
                best_name, best_cost = name, cost
        return best_name

    def format(self) -> str:
        rows = []
        for name, res in sorted(self.results.items()):
            for p in res.points:
                rows.append([name, p.param, round(p.recall, 4),
                             round(p.qps, 0),
                             round(p.mean_distance_evals, 1)])
        summary = [[name, f"{res.build_seconds:.2f}",
                    res.build_distance_evals, round(res.best_recall(), 4)]
                   for name, res in sorted(self.results.items())]
        return "\n\n".join([
            ascii_table(["algorithm", "build sec (host)",
                         "build dist evals", "best recall@k"],
                        summary,
                        title=f"{self.dataset} (n={self.n}, k={self.k}): build"),
            ascii_table(["algorithm", "param", "recall@k", "qps (host)",
                         "dist evals/query"],
                        rows, title="query trade-off"),
        ])


class AnnBenchmarkRunner:
    """Runs the compare-everything workflow on one dataset.

    Parameters
    ----------
    train / queries:
        Dataset split (dense matrices or sparse records).
    k:
        Neighbors per query (recall@k denominator).
    metric:
        Registered metric name shared by every algorithm.
    """

    def __init__(self, train, queries, k: int = 10,
                 metric: str = "sqeuclidean", dataset_name: str = "dataset",
                 seed: int = 0) -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        self.train = train
        self.queries = queries
        self.k = k
        self.metric = metric
        self.dataset_name = dataset_name
        self.seed = seed
        gt_ids, _ = brute_force_neighbors(train, queries, k=k, metric=metric)
        self.bench = QueryBenchmark(queries=queries, gt_ids=gt_ids, k=k)
        self.report = BenchmarkReport(dataset_name, len(train), k)

    # -- algorithm entries --------------------------------------------------------

    def run_dnnd(self, graph_k: int = 20, nodes: int = 4,
                 procs_per_node: int = 2,
                 epsilons=(0.0, 0.1, 0.2, 0.3, 0.4)) -> AlgorithmResult:
        start = time.perf_counter()
        cfg = DNNDConfig(nnd=NNDescentConfig(k=graph_k, metric=self.metric,
                                             seed=self.seed))
        dnnd = DNND(self.train, cfg,
                    cluster=ClusterConfig(nodes=nodes,
                                          procs_per_node=procs_per_node))
        res = dnnd.build()
        adjacency = dnnd.optimize()
        elapsed = time.perf_counter() - start
        searcher = KNNGraphSearcher(adjacency, self.train,
                                    metric=self.metric, seed=self.seed)
        points = sweep_epsilon(searcher, self.bench, "dnnd",
                               epsilons=list(epsilons))
        out = AlgorithmResult("dnnd", elapsed, res.distance_evals, points)
        self.report.results["dnnd"] = out
        return out

    def run_nndescent(self, graph_k: int = 20,
                      epsilons=(0.0, 0.1, 0.2, 0.3, 0.4)) -> AlgorithmResult:
        start = time.perf_counter()
        cfg = NNDescentConfig(k=graph_k, metric=self.metric, seed=self.seed)
        res = NNDescent(self.train, cfg).build()
        adjacency = optimize_graph(res.graph, pruning_factor=1.5)
        elapsed = time.perf_counter() - start
        searcher = KNNGraphSearcher(adjacency, self.train,
                                    metric=self.metric, seed=self.seed)
        points = sweep_epsilon(searcher, self.bench, "nndescent",
                               epsilons=list(epsilons))
        out = AlgorithmResult("nndescent", elapsed, res.distance_evals, points)
        self.report.results["nndescent"] = out
        return out

    def run_hnsw(self, M: int = 16, ef_construction: int = 100,
                 efs=(20, 50, 100, 200)) -> AlgorithmResult:
        start = time.perf_counter()
        index = HNSW(self.train,
                     HNSWConfig(M=M, ef_construction=ef_construction,
                                seed=self.seed),
                     metric=self.metric).build()
        elapsed = time.perf_counter() - start
        points = sweep_ef(index, self.bench, "hnsw", efs=list(efs))
        out = AlgorithmResult("hnsw", elapsed, index.distance_evals, points)
        self.report.results["hnsw"] = out
        return out

    def run_kdtree(self, leaf_size: int = 16,
                   max_leaves_sweep=(1, 4, 16, None)) -> AlgorithmResult:
        """Tree-based ANN (Section 1's first category); L2 only."""
        from ..baselines.kdtree import KDTree

        if self.metric not in ("sqeuclidean", "euclidean"):
            raise ConfigError("kdtree baseline requires an L2-family metric")
        start = time.perf_counter()
        tree = KDTree(self.train, leaf_size=leaf_size, metric=self.metric)
        elapsed = time.perf_counter() - start
        points = []
        for max_leaves in max_leaves_sweep:
            def run(queries, k, _ml=max_leaves):
                return tree.query_batch(queries, k=k, max_leaves=_ml)
            param = float(max_leaves) if max_leaves is not None else float("inf")
            points.append(self.bench.measure(run, "kdtree", param))
        out = AlgorithmResult("kdtree", elapsed, tree.metric.count, points)
        self.report.results["kdtree"] = out
        return out

    def run_lsh(self, n_tables: int = 12, n_bits: int = 10,
                bucket_width="auto",
                multiprobe_sweep=(0, 1, 3)) -> AlgorithmResult:
        """Hash-based ANN (Section 1's second category)."""
        from ..baselines.lsh import LSHIndex

        metric = self.metric if self.metric in ("cosine", "sqeuclidean",
                                                "euclidean") else None
        if metric is None:
            raise ConfigError("lsh baseline requires cosine or L2 metrics")
        start = time.perf_counter()
        index = LSHIndex(self.train, metric=metric, n_tables=n_tables,
                         n_bits=n_bits, bucket_width=bucket_width,
                         seed=self.seed)
        elapsed = time.perf_counter() - start
        points = []
        for probes in multiprobe_sweep:
            def run(queries, k, _p=probes):
                return index.query_batch(queries, k=k, multiprobe=_p)
            points.append(self.bench.measure(run, "lsh", float(probes)))
        out = AlgorithmResult("lsh", elapsed, index.metric.count, points)
        self.report.results["lsh"] = out
        return out

    def run_pq(self, m: int = 8, n_centroids: int = 64,
               rerank_sweep=(10, 50, 200)) -> AlgorithmResult:
        """Quantization-based ANN (Section 1's third category; Faiss's
        family, Section 5.3.2); L2 only."""
        from ..baselines.pq import PQIndex

        if self.metric not in ("sqeuclidean", "euclidean"):
            raise ConfigError("pq baseline requires an L2-family metric")
        dim = np.asarray(self.train).shape[1] if hasattr(
            self.train, "shape") else len(self.train[0])
        while m > 1 and dim % m != 0:
            m -= 1
        start = time.perf_counter()
        index = PQIndex(self.train, m=m, n_centroids=n_centroids,
                        metric=self.metric, seed=self.seed)
        elapsed = time.perf_counter() - start
        points = []
        for rerank in rerank_sweep:
            def run(queries, k, _r=rerank):
                return index.query_batch(queries, k=k, rerank=_r)
            points.append(self.bench.measure(run, "pq", float(rerank)))
        out = AlgorithmResult("pq", elapsed, 0, points)
        self.report.results["pq"] = out
        return out

    def run_bruteforce(self) -> AlgorithmResult:
        """Exact search as the reference point (recall 1 by definition)."""
        n = len(self.train)

        def run_batch(queries, k):
            ids, dists = brute_force_neighbors(self.train, queries, k=k,
                                               metric=self.metric)
            return ids, dists, {"mean_distance_evals": float(n)}

        point = self.bench.measure(run_batch, "bruteforce", 0.0)
        out = AlgorithmResult("bruteforce", 0.0, 0, [point])
        self.report.results["bruteforce"] = out
        return out

    def run_all(self, graph_k: int = 20) -> BenchmarkReport:
        self.run_nndescent(graph_k=graph_k)
        self.run_dnnd(graph_k=graph_k)
        self.run_hnsw()
        self.run_bruteforce()
        return self.report
