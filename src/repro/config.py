"""Configuration dataclasses for NN-Descent, DNND, and the simulated cluster.

The defaults follow Section 5.1.3 of the paper: early-termination
``delta = 0.001``, sample rate ``rho = 0.8``, neighborhood-limit factor
``m = 1.5``, and an application-level communication batch threshold
(the paper uses 2^25–2^30 *global* requests at billion scale; our default
is scaled down proportionally to laptop-scale datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from .errors import ConfigError


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


@dataclass(frozen=True)
class NNDescentConfig:
    """Parameters of Algorithm 1 (shared-memory and distributed).

    Attributes
    ----------
    k:
        Number of neighbors per vertex in the output graph.
    rho:
        Sample rate: each iteration samples ``rho * k`` *new* entries per
        vertex (and the same number from each reversed matrix).
    delta:
        Early-termination threshold: stop when fewer than
        ``delta * k * N`` graph updates happened in an iteration.
    max_iters:
        Safety bound on the number of NN-Descent iterations.
    metric:
        Name of a metric registered in :mod:`repro.distances.registry`.
    seed:
        Seed for the random initialization and all sampling.
    """

    k: int = 10
    rho: float = 0.8
    delta: float = 0.001
    max_iters: int = 30
    metric: str = "sqeuclidean"
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.k >= 1, f"k must be >= 1, got {self.k}")
        _require(0.0 < self.rho <= 1.0, f"rho must be in (0, 1], got {self.rho}")
        _require(self.delta >= 0.0, f"delta must be >= 0, got {self.delta}")
        _require(self.max_iters >= 1, f"max_iters must be >= 1, got {self.max_iters}")

    @property
    def sample_size(self) -> int:
        """``rho * k`` rounded up to at least 1 (the per-vertex sample)."""
        return max(1, int(round(self.rho * self.k)))

    def with_(self, **kw) -> "NNDescentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


@dataclass(frozen=True)
class CommOptConfig:
    """Which of the Section 4.3 communication-saving techniques are active.

    The *unoptimized* pattern (Figure 1a) corresponds to all three flags
    off; the paper's *optimized* pattern (Figure 1b) to all three on.
    """

    one_sided: bool = True
    """4.3.1 — route the check v -> u1 -> u2 instead of v -> {u1, u2}."""

    redundancy_check: bool = True
    """4.3.2 — skip Type 2/3 messages when the pair is already adjacent."""

    distance_pruning: bool = True
    """4.3.3 — attach u1's worst-neighbor distance to Type 2+ and suppress
    the Type 3 reply when the computed distance cannot improve u1."""

    check_dedup: bool = True
    """4.3.2 applied to *compute*: remember which ``(u1, u2)`` pairs were
    already checked at this rank during the current iteration and skip
    repeats — the same pair is commonly proposed by many center vertices
    in one iteration.  Independent of ``one_sided`` (it also dedups the
    unoptimized pattern's feature shipments)."""

    @classmethod
    def unoptimized(cls) -> "CommOptConfig":
        return cls(one_sided=False, redundancy_check=False,
                   distance_pruning=False, check_dedup=False)

    @classmethod
    def optimized(cls) -> "CommOptConfig":
        return cls()

    def __post_init__(self) -> None:
        # 4.3.2/4.3.3 are defined on top of the one-sided message chain:
        # without one-sided routing there is no Type 2+/Type 3 to suppress.
        if (self.redundancy_check or self.distance_pruning) and not self.one_sided:
            raise ConfigError(
                "redundancy_check / distance_pruning require one_sided=True "
                "(they refine the Type 2+/Type 3 chain of Section 4.3.1)"
            )


@dataclass(frozen=True)
class DNNDConfig:
    """Full configuration of a distributed NN-Descent run.

    Combines the Algorithm 1 parameters with the distributed-specific
    knobs of Sections 4.3-4.5.
    """

    nnd: NNDescentConfig = field(default_factory=NNDescentConfig)
    comm_opts: CommOptConfig = field(default_factory=CommOptConfig)

    batch_size: int = 1 << 14
    """Section 4.4 — global async-request count between application-level
    barriers. The paper uses 2^25-2^30 at billion scale; default scaled to
    laptop-size datasets. ``0`` disables application-level batching."""

    pruning_factor: float = 1.5
    """``m`` of Section 4.5 — after the reverse-edge merge, a vertex keeps
    at most ``k * m`` closest neighbors."""

    shuffle_reverse_destinations: bool = True
    """Section 4.2 — shuffle destination order when shipping the reversed
    old/new matrices to avoid synchronized bursts at one rank."""

    batch_exec: bool = True
    """Vectorized batch execution engine: coalesced message delivery,
    rowwise distance kernels, and bulk heap updates in the hot path.
    Produces bit-identical results to the scalar path (``False``), which
    is kept as the regression oracle."""

    backend: str | None = None
    """Execution backend: ``"sim"`` (deterministic inline simulation
    with the cost model — the default), ``"parallel"`` (shared-memory
    executor running rank sections concurrently; no cost ledger /
    network fault injection), or ``"process"`` (per-rank worker
    processes with the dataset in shared memory; crash injection native,
    network fault plans / cost model / reliable delivery sim-only).
    ``None`` defers to the ``REPRO_BACKEND`` environment variable,
    falling back to ``"sim"``."""

    kernel: str | None = None
    """Batched distance-kernel implementation: ``"rowwise"`` (bit-exact
    per-row kernels, the default and the golden-trace oracle) or
    ``"blocked"`` (tiled-GEMM kernels of ``repro.distances.blocked``;
    recall-parity-gated rather than bit-identical for metrics whose
    blocked form reassociates reductions — see DESIGN.md section 17).
    ``None`` defers to the ``REPRO_KERNEL`` environment variable,
    falling back to ``"rowwise"``."""

    workers: int = 0
    """Thread count (parallel backend) or process count (process
    backend); ``0`` means auto (``REPRO_WORKERS`` if set, else the
    machine's core count), always capped at the cluster's world size.
    Ignored by the sim backend."""

    metrics: bool = True
    """Backend-agnostic observability (``repro.runtime.metrics``):
    counters synchronized from the runtime's aggregates at barriers,
    wall-clock phase spans, and JSON / Chrome-trace exporters.  Default
    on — synchronization is barrier-granular, so the overhead is below
    measurement noise (asserted by ``benchmarks/bench_wallclock.py``).
    ``False`` swaps in a shared no-op registry."""

    def __post_init__(self) -> None:
        _require(self.batch_size >= 0, "batch_size must be >= 0")
        _require(self.pruning_factor >= 1.0, "pruning_factor (m) must be >= 1.0")
        _require(self.backend in (None, "sim", "parallel", "process"),
                 f"backend must be None, 'sim', 'parallel', or "
                 f"'process', got {self.backend!r}")
        _require(self.kernel in (None, "rowwise", "blocked"),
                 f"kernel must be None, 'rowwise', or 'blocked', "
                 f"got {self.kernel!r}")
        _require(self.workers >= 0, "workers must be >= 0 (0 = auto)")

    @property
    def k(self) -> int:
        return self.nnd.k

    def with_(self, **kw) -> "DNNDConfig":
        """Copy with replacements; nested ``nnd.<field>`` keys supported."""
        nnd_kw = {}
        top_kw = {}
        nnd_fields = {f.name for f in fields(NNDescentConfig)}
        for key, val in kw.items():
            if key.startswith("nnd."):
                nnd_kw[key[4:]] = val
            elif key in nnd_fields:
                nnd_kw[key] = val
            else:
                top_kw[key] = val
        if nnd_kw:
            top_kw["nnd"] = self.nnd.with_(**nnd_kw)
        return replace(self, **top_kw)


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster (Section 5.1.2 analogue).

    The paper's Mammoth nodes run 128 MPI processes each; we keep the
    node/process distinction so the network model can charge intra-node
    and inter-node traffic differently.
    """

    nodes: int = 4
    procs_per_node: int = 4

    def __post_init__(self) -> None:
        _require(self.nodes >= 1, "nodes must be >= 1")
        _require(self.procs_per_node >= 1, "procs_per_node must be >= 1")

    @property
    def world_size(self) -> int:
        return self.nodes * self.procs_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` (block placement, as with MPI
        default mapping)."""
        if not 0 <= rank < self.world_size:
            raise ConfigError(f"rank {rank} out of range for {self}")
        return rank // self.procs_per_node
