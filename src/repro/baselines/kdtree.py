"""k-d tree nearest-neighbor baseline (the intro's tree-based category).

Section 1 lists four ANN families: tree-based (k-d trees), hash-based
(LSH), quantization, and graph-based.  This module implements the
tree-based representative from scratch: a median-split k-d tree with
exact branch-and-bound k-NN search and the classic *defeatist* /
bounded-leaf approximate mode (stop after inspecting ``max_leaves``
leaves — the standard way k-d trees trade recall for speed, and the
reason they lose to graph methods in high dimension, which the
comparison benchmarks make visible).

L2-family metrics only: the k-d tree's pruning rule requires
coordinate-aligned distance bounds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.search import SearchResult
from ..distances.counting import CountingMetric
from ..errors import ConfigError, SearchError


@dataclass
class _Node:
    """k-d tree node; leaf iff ``members is not None``."""

    members: Optional[np.ndarray] = None
    axis: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.members is not None


class KDTree:
    """Median-split k-d tree over dense data.

    Parameters
    ----------
    data:
        Dense ``(n, dim)`` matrix.
    leaf_size:
        Max points per leaf.
    metric:
        ``"sqeuclidean"`` or ``"euclidean"``; results are reported in
        the chosen metric (search internals use squared distances).
    """

    def __init__(self, data, leaf_size: int = 16,
                 metric: str = "sqeuclidean") -> None:
        if leaf_size < 1:
            raise ConfigError(f"leaf_size must be >= 1, got {leaf_size}")
        if metric not in ("sqeuclidean", "euclidean"):
            raise ConfigError(
                f"KDTree supports sqeuclidean/euclidean, got {metric!r}"
            )
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2 or len(self.data) == 0:
            raise ConfigError("KDTree needs a non-empty 2-D matrix")
        self.leaf_size = int(leaf_size)
        self.metric_name = metric
        self.metric = CountingMetric("sqeuclidean")
        self._root = self._build(np.arange(len(self.data), dtype=np.int64), 0)
        self.n_leaves = sum(1 for _ in self._leaves(self._root))

    # -- construction ----------------------------------------------------------

    def _build(self, members: np.ndarray, depth: int) -> _Node:
        if len(members) <= self.leaf_size:
            return _Node(members=members)
        # Split on the axis of largest spread (better than round-robin
        # for anisotropic data).
        block = self.data[members]
        axis = int(np.argmax(block.max(axis=0) - block.min(axis=0)))
        values = block[:, axis]
        threshold = float(np.median(values))
        left_mask = values <= threshold
        if left_mask.all() or not left_mask.any():
            # Degenerate axis (constant values): split evenly.
            half = len(members) // 2
            order = np.argsort(values, kind="stable")
            return _Node(axis=axis, threshold=threshold,
                         left=self._build(members[order[:half]], depth + 1),
                         right=self._build(members[order[half:]], depth + 1))
        return _Node(axis=axis, threshold=threshold,
                     left=self._build(members[left_mask], depth + 1),
                     right=self._build(members[~left_mask], depth + 1))

    def _leaves(self, node: _Node):
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.is_leaf:
                yield cur
            else:
                stack.append(cur.left)
                stack.append(cur.right)

    # -- queries ------------------------------------------------------------

    def query(self, q, k: int = 10,
              max_leaves: Optional[int] = None) -> SearchResult:
        """k nearest neighbors of ``q``.

        ``max_leaves=None`` gives the exact branch-and-bound search;
        a finite value caps the number of leaves inspected (defeatist
        mode), trading recall for time.
        """
        q = np.asarray(q, dtype=np.float64)
        if q.ndim != 1 or q.shape[0] != self.data.shape[1]:
            raise SearchError(
                f"query dim {q.shape} != data dim {self.data.shape[1]}"
            )
        if k < 1:
            raise SearchError(f"k must be >= 1, got {k}")
        k_eff = min(k, len(self.data))
        before = self.metric.count

        results: List[Tuple[float, int]] = []  # (-sqdist, id) max-heap
        leaves_seen = 0
        # Best-first traversal: (lower-bound sqdist to region, node).
        frontier: List[Tuple[float, int, _Node]] = [(0.0, 0, self._root)]
        counter = 1
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            worst = -results[0][0] if len(results) == k_eff else np.inf
            if bound > worst:
                break
            if node.is_leaf:
                leaves_seen += 1
                for vid in node.members:
                    d = self.metric(q, self.data[int(vid)])
                    if len(results) < k_eff:
                        heapq.heappush(results, (-d, int(vid)))
                    elif d < -results[0][0]:
                        heapq.heapreplace(results, (-d, int(vid)))
                if max_leaves is not None and leaves_seen >= max_leaves:
                    break
                continue
            diff = q[node.axis] - node.threshold
            near, far = ((node.left, node.right) if diff <= 0
                         else (node.right, node.left))
            heapq.heappush(frontier, (bound, counter, near))
            counter += 1
            far_bound = max(bound, diff * diff)
            heapq.heappush(frontier, (far_bound, counter, far))
            counter += 1

        out = sorted(((-nd, vid) for nd, vid in results),
                     key=lambda t: (t[0], t[1]))
        dists = np.array([d for d, _ in out], dtype=np.float64)
        if self.metric_name == "euclidean":
            dists = np.sqrt(dists)
        return SearchResult(
            ids=np.array([vid for _, vid in out], dtype=np.int64),
            dists=dists,
            n_distance_evals=self.metric.count - before,
            n_visited=leaves_seen,
        )

    def query_batch(self, queries, k: int = 10,
                    max_leaves: Optional[int] = None):
        """Batch interface matching the other searchers."""
        nq = len(queries)
        ids = np.full((nq, k), -1, dtype=np.int64)
        dists = np.full((nq, k), np.inf, dtype=np.float64)
        total = 0
        for i in range(nq):
            res = self.query(queries[i], k=k, max_leaves=max_leaves)
            found = len(res.ids)
            ids[i, :found] = res.ids
            dists[i, :found] = res.dists
            total += res.n_distance_evals
        return ids, dists, {"n_queries": nq,
                            "mean_distance_evals": total / max(1, nq)}

    def depth(self) -> int:
        def _d(node: _Node) -> int:
            return 0 if node.is_leaf else 1 + max(_d(node.left), _d(node.right))
        return _d(self._root)
