"""Baselines (S14-S15 plus the intro's ANN taxonomy).

- :mod:`.bruteforce` — exact k-NN graph construction (the Section 5.2
  ground truth),
- :mod:`.hnsw` — a from-scratch HNSW implementation standing in for
  Hnswlib (Sections 5.3.2-5.3.4),
- :mod:`.kdtree` — tree-based ANN (Section 1's first category),
- :mod:`.lsh` — hash-based ANN (Section 1's second category),
- :mod:`.pq` — product quantization (Section 1's third category; the
  Faiss reference point of Section 5.3.2).
"""

from .bruteforce import brute_force_knn_graph, brute_force_neighbors
from .hnsw import HNSW, HNSWConfig
from .kdtree import KDTree
from .lsh import LSHIndex
from .pq import PQIndex

__all__ = [
    "brute_force_knn_graph",
    "brute_force_neighbors",
    "HNSW",
    "HNSWConfig",
    "KDTree",
    "LSHIndex",
    "PQIndex",
]
