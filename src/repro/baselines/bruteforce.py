"""Exact k-NN by brute force — the Section 5.2 ground truth.

"The brute-force approach performs similarity comparisons between all
pairs in the datasets."  Dense metrics use blocked pairwise-distance
matrices (bounded peak memory, cache-friendly row blocks); sparse
metrics fall back to per-pair evaluation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.graph import KNNGraph
from ..distances.counting import CountingMetric
from ..errors import DatasetError
from ..utils.arrays import chunk_ranges


def brute_force_neighbors(data, queries, k: int, metric="sqeuclidean",
                          block: int = 512, exclude_self: bool = False,
                          kernel: str | None = None) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ``k`` nearest neighbors of each query row.

    Parameters
    ----------
    data:
        Indexed dataset (dense matrix or sparse records).
    queries:
        Query rows in the same representation.
    exclude_self:
        When queries *are* the dataset (graph ground truth), exclude the
        identity match ``i == j``.
    kernel:
        ``"rowwise"`` / ``"blocked"`` batched-kernel choice (``None``
        defers to ``REPRO_KERNEL``).  The result ids are kernel-invariant
        up to distance ties; distances may differ within the documented
        ulp bounds (DESIGN.md section 17).

    Returns
    -------
    ids, dists:
        ``(nq, k)`` arrays, ascending by distance; ties broken by id.
    """
    cm = CountingMetric(metric, kernel=kernel)
    m = cm.inner
    n = len(data)
    nq = len(queries)
    if k < 1:
        raise DatasetError(f"k must be >= 1, got {k}")
    if k > (n - 1 if exclude_self else n):
        raise DatasetError(f"k={k} too large for dataset of size {n}")
    ids = np.empty((nq, k), dtype=np.int64)
    dists = np.empty((nq, k), dtype=np.float64)
    for lo, hi in chunk_ranges(nq, block):
        if m.sparse_input:
            d_block = np.empty((hi - lo, n), dtype=np.float64)
            for qi in range(lo, hi):
                for j in range(n):
                    d_block[qi - lo, j] = m.scalar(queries[qi], data[j])
        else:
            d_block = cm.block(np.asarray(queries)[lo:hi], np.asarray(data))
        if exclude_self:
            for qi in range(lo, hi):
                if qi < n:
                    d_block[qi - lo, qi] = np.inf
        # argpartition then a stable (dist, id) sort of the top-k slice.
        part = np.argpartition(d_block, k - 1, axis=1)[:, :k]
        for row in range(hi - lo):
            cand = part[row]
            cand_d = d_block[row, cand]
            order = np.lexsort((cand, cand_d))
            ids[lo + row] = cand[order]
            dists[lo + row] = cand_d[order]
    return ids, dists


def brute_force_knn_graph(data, k: int, metric="sqeuclidean",
                          block: int = 512,
                          kernel: str | None = None) -> KNNGraph:
    """Exact k-NN *graph* of a dataset (self-matches excluded)."""
    ids, dists = brute_force_neighbors(
        data, data, k=k, metric=metric, block=block, exclude_self=True,
        kernel=kernel,
    )
    return KNNGraph(ids, dists)


def brute_force_distance_evals(n: int) -> int:
    """Number of distance evaluations brute force performs on ``n``
    points — the O(n^2) cost NN-Descent's ~O(n^1.14) beats (Section 3.1)."""
    return n * (n - 1) // 2


def counting_brute_force(data, k: int, metric="sqeuclidean",
                         kernel: str | None = None) -> Tuple[KNNGraph, int]:
    """Brute-force graph plus the exact distance-eval count, for the
    cost-comparison benchmarks."""
    counter = CountingMetric(metric, kernel=kernel)
    n = len(data)
    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    for i in range(n):
        row = counter.distances_to(data[i], data)
        row[i] = np.inf
        part = np.argpartition(row, k - 1)[:k]
        order = np.lexsort((part, row[part]))
        ids[i] = part[order]
        dists[i] = row[part][order]
    return KNNGraph(ids, dists), counter.count
