"""HNSW — Hierarchical Navigable Small World graphs (Malkov & Yashunin).

This is the from-scratch stand-in for Hnswlib, the paper's
shared-memory comparison baseline (Sections 5.3.2-5.3.4).  It
implements the full published algorithm:

- exponentially-distributed level assignment
  (``level = floor(-ln(U) * mL)``, ``mL = 1 / ln(M)``),
- greedy descent through upper layers with ``ef = 1``,
- ``SEARCH-LAYER`` beam search with a candidate min-heap and a bounded
  result max-heap,
- ``SELECT-NEIGHBORS-HEURISTIC`` (Algorithm 4 of the HNSW paper) for
  link selection and shrinking, with the ``keep_pruned`` extension,
- bidirectional link insertion with per-layer degree caps
  (``M`` above layer 0, ``2 M`` at layer 0 — hnswlib's ``M_max0``),
- query-time ``ef`` parameter (Table 2's ``ef`` sweep).

As in hnswlib, construction quality is governed by ``M`` and
``ef_construction`` (Table 2's ``efc``); larger values give better
graphs and longer construction — the trade-off Figure 3 measures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.search import SearchResult
from ..distances.counting import CountingMetric
from ..errors import ConfigError, SearchError
from ..utils.rng import derive_rng


@dataclass(frozen=True)
class HNSWConfig:
    """HNSW construction parameters (Table 2 columns).

    Attributes
    ----------
    M:
        Target out-degree per layer (layer 0 allows ``2 M``).
    ef_construction:
        Beam width used while inserting (paper's ``efc``).
    keep_pruned:
        Algorithm 4's ``keepPrunedConnections`` extension.
    """

    M: int = 16
    ef_construction: int = 200
    keep_pruned: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.M < 2:
            raise ConfigError(f"M must be >= 2, got {self.M}")
        if self.ef_construction < 1:
            raise ConfigError(
                f"ef_construction must be >= 1, got {self.ef_construction}"
            )

    @property
    def M_max0(self) -> int:
        return 2 * self.M

    @property
    def mL(self) -> float:
        return 1.0 / np.log(self.M)


class HNSW:
    """An HNSW index over a dense dataset.

    Usage::

        index = HNSW(data, HNSWConfig(M=16, ef_construction=100),
                     metric="sqeuclidean")
        index.build()
        result = index.query(q, k=10, ef=50)
    """

    def __init__(self, data, config: HNSWConfig | None = None,
                 metric: str = "sqeuclidean") -> None:
        self.config = config or HNSWConfig()
        self.metric = CountingMetric(metric)
        if self.metric.sparse_input:
            raise ConfigError("HNSW baseline supports dense metrics only")
        self.data = np.asarray(data)
        self.n = len(self.data)
        # _links[node] is a list of per-layer neighbor-id lists.
        self._links: List[List[List[int]]] = []
        self._levels: List[int] = []
        self._entry: Optional[int] = None
        self._max_level = -1
        self._built = False
        self._rng = derive_rng(self.config.seed, 0x4A5)

    # -- construction ----------------------------------------------------------

    def build(self) -> "HNSW":
        """Insert every dataset row (single pass, insertion order 0..n-1)."""
        for i in range(self.n):
            self._insert(i)
        self._built = True
        return self

    @property
    def distance_evals(self) -> int:
        return self.metric.count

    def _random_level(self) -> int:
        u = self._rng.random()
        # Guard the log against u == 0.
        u = max(u, 1e-12)
        return int(-np.log(u) * self.config.mL)

    def _dist(self, i: int, j: int) -> float:
        return self.metric(self.data[i], self.data[j])

    def _dist_q(self, q: np.ndarray, j: int) -> float:
        return self.metric(q, self.data[j])

    def _insert(self, q: int) -> None:
        level = self._random_level()
        self._levels.append(level)
        self._links.append([[] for _ in range(level + 1)])

        if self._entry is None:
            self._entry = q
            self._max_level = level
            return

        ep = self._entry
        ep_dist = self._dist(q, ep)

        # Phase 1: greedy descent through layers above the new node's top.
        for layer in range(self._max_level, level, -1):
            ep, ep_dist = self._greedy_closest(self.data[q], ep, ep_dist, layer)

        # Phase 2: beam search + link on each layer the node occupies.
        efc = self.config.ef_construction
        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(self.data[q], [(ep_dist, ep)], efc, layer)
            m_target = self.config.M
            selected = self._select_heuristic(q, candidates, m_target)
            cap = self.config.M_max0 if layer == 0 else self.config.M
            for d_e, e in selected:
                self._links[q][layer].append(e)
                self._links[e][layer].append(q)
                if len(self._links[e][layer]) > cap:
                    self._shrink(e, layer, cap)
            if candidates:
                ep_dist, ep = min(candidates)

        if level > self._max_level:
            self._max_level = level
            self._entry = q

    def _greedy_closest(self, q: np.ndarray, ep: int, ep_dist: float,
                        layer: int) -> Tuple[int, float]:
        """ef=1 greedy walk on one layer."""
        improved = True
        while improved:
            improved = False
            for e in self._links[ep][layer]:
                d = self._dist_q(q, e)
                if d < ep_dist:
                    ep, ep_dist = e, d
                    improved = True
        return ep, ep_dist

    def _search_layer(self, q: np.ndarray, entry: List[Tuple[float, int]],
                      ef: int, layer: int) -> List[Tuple[float, int]]:
        """SEARCH-LAYER: returns up to ``ef`` nearest ``(dist, id)``."""
        visited = set(e for _, e in entry)
        candidates = list(entry)  # min-heap on dist
        heapq.heapify(candidates)
        results = [(-d, e) for d, e in entry]  # max-heap via negation
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            d_c, c = heapq.heappop(candidates)
            worst = -results[0][0] if results else np.inf
            if d_c > worst and len(results) >= ef:
                break
            for e in self._links[c][layer]:
                if e in visited:
                    continue
                visited.add(e)
                d_e = self._dist_q(q, e)
                worst = -results[0][0] if results else np.inf
                if len(results) < ef or d_e < worst:
                    heapq.heappush(candidates, (d_e, e))
                    heapq.heappush(results, (-d_e, e))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-nd, e) for nd, e in results)

    def _select_heuristic(self, q: int, candidates: List[Tuple[float, int]],
                          m: int) -> List[Tuple[float, int]]:
        """SELECT-NEIGHBORS-HEURISTIC: prefer candidates closer to q than
        to any already-selected neighbor (diversifies link directions)."""
        selected: List[Tuple[float, int]] = []
        pruned: List[Tuple[float, int]] = []
        for d_e, e in sorted(candidates):
            if e == q:
                continue
            if len(selected) >= m:
                break
            keep = True
            for _, s in selected:
                if self._dist(e, s) < d_e:
                    keep = False
                    break
            if keep:
                selected.append((d_e, e))
            else:
                pruned.append((d_e, e))
        if self.config.keep_pruned:
            for d_e, e in pruned:
                if len(selected) >= m:
                    break
                selected.append((d_e, e))
        return selected

    def _shrink(self, node: int, layer: int, cap: int) -> None:
        """Re-select ``node``'s links on ``layer`` down to ``cap``."""
        cands = [(self._dist(node, e), e) for e in self._links[node][layer]]
        selected = self._select_heuristic(node, cands, cap)
        self._links[node][layer] = [e for _, e in selected]

    # -- queries ------------------------------------------------------------

    def query(self, q: np.ndarray, k: int = 10, ef: int = 50) -> SearchResult:
        """k-NN query with beam width ``ef`` (clamped to >= k)."""
        if not self._built:
            raise SearchError("query before build()")
        if self._entry is None:
            raise SearchError("index is empty")
        if k < 1:
            raise SearchError(f"k must be >= 1, got {k}")
        ef = max(ef, k)
        q = np.asarray(q)
        before = self.metric.count
        ep = self._entry
        ep_dist = self._dist_q(q, ep)
        for layer in range(self._max_level, 0, -1):
            ep, ep_dist = self._greedy_closest(q, ep, ep_dist, layer)
        found = self._search_layer(q, [(ep_dist, ep)], ef, 0)[:k]
        ids = np.array([e for _, e in found], dtype=np.int64)
        dists = np.array([d for d, _ in found], dtype=np.float64)
        return SearchResult(
            ids=ids, dists=dists,
            n_distance_evals=self.metric.count - before,
            n_visited=len(found),
        )

    def query_batch(self, queries, k: int = 10, ef: int = 50):
        """Batch interface matching :meth:`KNNGraphSearcher.query_batch`."""
        nq = len(queries)
        ids = np.full((nq, k), -1, dtype=np.int64)
        dists = np.full((nq, k), np.inf, dtype=np.float64)
        total_evals = 0
        for i in range(nq):
            res = self.query(queries[i], k=k, ef=ef)
            found = len(res.ids)
            ids[i, :found] = res.ids
            dists[i, :found] = res.dists
            total_evals += res.n_distance_evals
        return ids, dists, {"n_queries": nq,
                            "mean_distance_evals": total_evals / max(1, nq)}

    # -- introspection -------------------------------------------------------

    def level_histogram(self) -> List[int]:
        """Count of nodes whose top level is each value (diagnostic)."""
        if not self._levels:
            return []
        hist = [0] * (max(self._levels) + 1)
        for lv in self._levels:
            hist[lv] += 1
        return hist

    def degree_stats(self, layer: int = 0) -> dict:
        degs = [len(links[layer]) for links in self._links if len(links) > layer]
        if not degs:
            return {"mean": 0.0, "max": 0}
        return {"mean": float(np.mean(degs)), "max": int(max(degs))}
