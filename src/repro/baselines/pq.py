"""Product Quantization baseline (the intro's quantization category).

Section 1's fourth ANN family: "quantization-based methods that
quantize the data and utilize that information (e.g., Product
Quantization)"; the paper also compares Hnswlib against the PQ-based
Faiss (Section 5.3.2).  This module implements PQ from scratch
(Jegou-Douze-Schmid):

- split each vector into ``m`` subvectors,
- k-means (Lloyd's, seeded, pure numpy) each subspace into up to 256
  centroids, giving one byte per subvector — a ``dim*4 : m`` byte
  compression of the dataset,
- **ADC search**: per query, build an ``(m, n_centroids)`` table of
  subvector-to-centroid distances, score every code by ``m`` table
  lookups, and exactly re-rank the best ``rerank`` candidates.

Work accounting: scoring a code costs ``m`` lookups where a full
distance costs ``dim`` multiply-adds, so ADC scoring of all ``n`` codes
is charged as ``n * m / dim`` equivalent distance evaluations, plus the
table build (``n_centroids`` sub-distances per subspace = ``n_centroids``
full-distance equivalents) and the exact re-rank — making PQ's cost
comparable with every other searcher in the benchmarks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.search import SearchResult
from ..distances.counting import CountingMetric
from ..errors import ConfigError, SearchError
from ..utils.rng import derive_rng


def kmeans(X: np.ndarray, n_centroids: int, rng: np.random.Generator,
           n_iters: int = 12) -> np.ndarray:
    """Seeded Lloyd's k-means; returns ``(n_centroids, dim)`` centroids.

    k-means++ style initialization (distance-weighted), empty clusters
    re-seeded from the farthest points.
    """
    n = len(X)
    if n_centroids < 1:
        raise ConfigError("n_centroids must be >= 1")
    k = min(n_centroids, n)
    # -- init: k-means++ ----------------------------------------------------
    centroids = np.empty((k, X.shape[1]), dtype=np.float64)
    centroids[0] = X[rng.integers(0, n)]
    closest = ((X - centroids[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[c:] = X[rng.integers(0, n, size=k - c)]
            break
        probs = closest / total
        centroids[c] = X[rng.choice(n, p=probs)]
        d_new = ((X - centroids[c]) ** 2).sum(axis=1)
        np.minimum(closest, d_new, out=closest)
    # -- Lloyd iterations -----------------------------------------------------
    for _ in range(n_iters):
        d2 = (
            (X ** 2).sum(axis=1)[:, None]
            - 2.0 * X @ centroids.T
            + (centroids ** 2).sum(axis=1)[None, :]
        )
        assign = d2.argmin(axis=1)
        moved = False
        for c in range(k):
            members = X[assign == c]
            if len(members) == 0:
                # Re-seed an empty cluster at the farthest point.
                far = int(d2.min(axis=1).argmax())
                centroids[c] = X[far]
                moved = True
                continue
            new = members.mean(axis=0)
            if not np.allclose(new, centroids[c]):
                centroids[c] = new
                moved = True
        if not moved:
            break
    return centroids


class PQIndex:
    """Product-quantization index with ADC search + exact re-rank.

    Parameters
    ----------
    data:
        Dense ``(n, dim)`` matrix; ``dim`` must be divisible by ``m``
        (pad upstream if not).
    m:
        Number of subquantizers (bytes per encoded vector).
    n_centroids:
        Codebook size per subspace, <= 256.
    """

    def __init__(self, data, m: int = 8, n_centroids: int = 64,
                 metric: str = "sqeuclidean", seed: int = 0,
                 kmeans_iters: int = 12) -> None:
        if metric not in ("sqeuclidean", "euclidean"):
            raise ConfigError("PQIndex supports L2-family metrics only")
        if not 1 <= n_centroids <= 256:
            raise ConfigError("n_centroids must be in [1, 256]")
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2 or len(self.data) == 0:
            raise ConfigError("PQIndex needs a non-empty 2-D matrix")
        n, dim = self.data.shape
        if m < 1 or dim % m != 0:
            raise ConfigError(
                f"m={m} must divide the dimension {dim}"
            )
        self.m = int(m)
        self.dsub = dim // self.m
        self.n_centroids = int(n_centroids)
        self.metric_name = metric
        self.metric = CountingMetric("sqeuclidean")
        rng = derive_rng(seed, 0x90)
        self.codebooks = np.empty((self.m, min(self.n_centroids, n), self.dsub))
        codes = np.empty((n, self.m), dtype=np.uint8)
        for s in range(self.m):
            sub = self.data[:, s * self.dsub:(s + 1) * self.dsub]
            cb = kmeans(sub, self.n_centroids, rng, n_iters=kmeans_iters)
            self.codebooks[s, :len(cb)] = cb
            d2 = (
                (sub ** 2).sum(axis=1)[:, None]
                - 2.0 * sub @ cb.T
                + (cb ** 2).sum(axis=1)[None, :]
            )
            codes[:, s] = d2.argmin(axis=1).astype(np.uint8)
        self.codes = codes

    # -- size accounting -----------------------------------------------------

    @property
    def code_bytes(self) -> int:
        """Bytes per encoded vector (the PQ selling point)."""
        return self.m

    def compression_ratio(self) -> float:
        raw = self.data.shape[1] * 4  # float32 storage
        return raw / self.code_bytes

    # -- search ------------------------------------------------------------

    def _adc_scores(self, q: np.ndarray) -> Tuple[np.ndarray, float]:
        """Approximate squared distances to every code via table lookups;
        also returns the work charged in full-distance equivalents."""
        k = self.codebooks.shape[1]
        tables = np.empty((self.m, k))
        for s in range(self.m):
            sub_q = q[s * self.dsub:(s + 1) * self.dsub]
            diff = self.codebooks[s] - sub_q
            tables[s] = (diff ** 2).sum(axis=1)
        scores = np.zeros(len(self.codes))
        for s in range(self.m):
            scores += tables[s][self.codes[:, s]]
        work = float(k)  # table build: k sub-distances per subspace x m = k full
        work += len(self.codes) * self.m / self.data.shape[1]
        return scores, work

    def _adc_scores_subset(self, q: np.ndarray,
                           subset: np.ndarray) -> Tuple[np.ndarray, float]:
        """ADC scores for selected rows only (the IVF probing path)."""
        k = self.codebooks.shape[1]
        tables = np.empty((self.m, k))
        for s in range(self.m):
            sub_q = q[s * self.dsub:(s + 1) * self.dsub]
            diff = self.codebooks[s] - sub_q
            tables[s] = (diff ** 2).sum(axis=1)
        codes = self.codes[subset]
        scores = np.zeros(len(codes))
        for s in range(self.m):
            scores += tables[s][codes[:, s]]
        work = float(k) + len(codes) * self.m / self.data.shape[1]
        return scores, work

    def query(self, q, k: int = 10, rerank: int = 50) -> SearchResult:
        """ADC scan + exact re-rank of the best ``rerank`` candidates.

        ``rerank=0`` returns pure ADC results (quantized distances).
        """
        q = np.asarray(q, dtype=np.float64)
        if q.ndim != 1 or q.shape[0] != self.data.shape[1]:
            raise SearchError("query dimension mismatch")
        if k < 1:
            raise SearchError(f"k must be >= 1, got {k}")
        if rerank < 0:
            raise SearchError("rerank must be >= 0")
        n = len(self.data)
        k_eff = min(k, n)
        scores, work = self._adc_scores(q)
        if rerank:
            r = min(max(rerank, k_eff), n)
            cand = np.argpartition(scores, r - 1)[:r]
            exact = self.metric.distances_to(q, self.data[cand])
            order = np.lexsort((cand, exact))[:k_eff]
            ids = cand[order]
            dists = np.asarray(exact)[order]
            work += float(r)
        else:
            cand = np.argpartition(scores, k_eff - 1)[:k_eff]
            order = np.lexsort((cand, scores[cand]))
            ids = cand[order]
            dists = scores[cand][order]
        if self.metric_name == "euclidean":
            dists = np.sqrt(np.maximum(dists, 0.0))
        return SearchResult(
            ids=ids.astype(np.int64),
            dists=np.asarray(dists, dtype=np.float64),
            n_distance_evals=int(round(work)),
            n_visited=n,
        )

    def query_batch(self, queries, k: int = 10, rerank: int = 50):
        nq = len(queries)
        ids = np.full((nq, k), -1, dtype=np.int64)
        dists = np.full((nq, k), np.inf, dtype=np.float64)
        total = 0
        for i in range(nq):
            res = self.query(queries[i], k=k, rerank=rerank)
            found = len(res.ids)
            ids[i, :found] = res.ids
            dists[i, :found] = res.dists
            total += res.n_distance_evals
        return ids, dists, {"n_queries": nq,
                            "mean_distance_evals": total / max(1, nq)}


class IVFPQIndex:
    """IVF-PQ: a coarse inverted file in front of product quantization —
    the architecture of the Faiss ``IVFADC`` index the paper compares
    Hnswlib against (via [15]/[17], Section 5.3.2).

    A coarse k-means partitions the dataset into ``n_lists`` cells; each
    cell stores PQ codes of its members' *residuals* (vector minus cell
    centroid).  A query probes its ``n_probe`` nearest cells and runs
    ADC + exact re-rank over only those members, so query cost scales
    with ``n_probe / n_lists`` of the data instead of all of it.
    """

    def __init__(self, data, n_lists: int = 16, m: int = 8,
                 n_centroids: int = 64, metric: str = "sqeuclidean",
                 seed: int = 0) -> None:
        if metric not in ("sqeuclidean", "euclidean"):
            raise ConfigError("IVFPQIndex supports L2-family metrics only")
        if n_lists < 1:
            raise ConfigError("n_lists must be >= 1")
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2 or len(self.data) == 0:
            raise ConfigError("IVFPQIndex needs a non-empty 2-D matrix")
        n, dim = self.data.shape
        if m < 1 or dim % m != 0:
            raise ConfigError(f"m={m} must divide the dimension {dim}")
        self.metric_name = metric
        self.metric = CountingMetric("sqeuclidean")
        rng = derive_rng(seed, 0x1F0)
        self.n_lists = min(int(n_lists), n)
        self.coarse = kmeans(self.data, self.n_lists, rng)
        d2 = (
            (self.data ** 2).sum(axis=1)[:, None]
            - 2.0 * self.data @ self.coarse.T
            + (self.coarse ** 2).sum(axis=1)[None, :]
        )
        assign = d2.argmin(axis=1)
        self.lists = [np.flatnonzero(assign == c).astype(np.int64)
                      for c in range(len(self.coarse))]
        residuals = self.data - self.coarse[assign]
        self.pq = PQIndex(residuals, m=m, n_centroids=n_centroids,
                          metric="sqeuclidean", seed=seed + 1)
        self._assign = assign

    def query(self, q, k: int = 10, n_probe: int = 2,
              rerank: int = 50) -> SearchResult:
        """Probe the ``n_probe`` nearest cells; ADC + exact re-rank."""
        q = np.asarray(q, dtype=np.float64)
        if q.ndim != 1 or q.shape[0] != self.data.shape[1]:
            raise SearchError("query dimension mismatch")
        if k < 1 or n_probe < 1:
            raise SearchError("k and n_probe must be >= 1")
        coarse_d = ((self.coarse - q) ** 2).sum(axis=1)
        probe = np.argsort(coarse_d)[: min(n_probe, len(self.coarse))]
        work = float(len(self.coarse))  # coarse scan
        members = np.concatenate([self.lists[int(c)] for c in probe]) \
            if len(probe) else np.empty(0, dtype=np.int64)
        if members.size == 0:
            return SearchResult(ids=np.empty(0, dtype=np.int64),
                                dists=np.empty(0, dtype=np.float64),
                                n_distance_evals=int(work), n_visited=0)
        # ADC over probed members only, per-cell residual tables.
        scores = np.empty(members.size)
        pos = 0
        for c in probe:
            cell = self.lists[int(c)]
            if cell.size == 0:
                continue
            residual_q = q - self.coarse[int(c)]
            cell_scores, cell_work = self.pq._adc_scores_subset(
                residual_q, cell)
            scores[pos: pos + cell.size] = cell_scores
            work += cell_work
            pos += cell.size
        k_eff = min(k, members.size)
        r = min(max(rerank, k_eff), members.size)
        cand_local = np.argpartition(scores, r - 1)[:r]
        cand = members[cand_local]
        before = self.metric.count
        exact = self.metric.distances_to(q, self.data[cand])
        work += self.metric.count - before
        order = np.lexsort((cand, exact))[:k_eff]
        dists = np.asarray(exact)[order]
        if self.metric_name == "euclidean":
            dists = np.sqrt(np.maximum(dists, 0.0))
        return SearchResult(ids=cand[order].astype(np.int64), dists=dists,
                            n_distance_evals=int(round(work)),
                            n_visited=int(members.size))

    def query_batch(self, queries, k: int = 10, n_probe: int = 2,
                    rerank: int = 50):
        nq = len(queries)
        ids = np.full((nq, k), -1, dtype=np.int64)
        dists = np.full((nq, k), np.inf, dtype=np.float64)
        total = 0
        for i in range(nq):
            res = self.query(queries[i], k=k, n_probe=n_probe, rerank=rerank)
            found = len(res.ids)
            ids[i, :found] = res.ids
            dists[i, :found] = res.dists
            total += res.n_distance_evals
        return ids, dists, {"n_queries": nq,
                            "mean_distance_evals": total / max(1, nq)}
