"""Locality-Sensitive Hashing baseline (the intro's hash-based category).

Implements the two classic LSH families the paper's intro alludes to
(Gionis-Indyk-Motwani):

- **random-hyperplane (SimHash)** signatures for cosine distance,
- **p-stable random projections** with quantized offsets for L2.

An :class:`LSHIndex` builds ``n_tables`` hash tables of ``n_bits``-bit
keys; a query probes its bucket in every table (optionally with
1-bit multiprobe for SimHash), collects candidates, and re-ranks them
with exact distances.  Recall depends on how many candidates the
buckets yield — the classic LSH trade-off the comparison benchmarks put
next to graph methods.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from ..core.search import SearchResult
from ..distances.counting import CountingMetric
from ..errors import ConfigError, SearchError
from ..utils.rng import derive_rng


class LSHIndex:
    """Multi-table LSH index over dense data.

    Parameters
    ----------
    data:
        Dense ``(n, dim)`` matrix.
    metric:
        ``"cosine"`` (SimHash family) or ``"sqeuclidean"``/``"euclidean"``
        (p-stable family).
    n_tables:
        Independent hash tables; more tables -> higher recall.
    n_bits:
        Hash functions per table (key width); more bits -> smaller,
        purer buckets.
    bucket_width:
        p-stable quantization width (L2 family only), in *projection*
        units; the string ``"auto"`` (default) calibrates each hash
        function's width to one third of its projection range over the
        data, giving a few distinct buckets per hash — the practical
        tuning rule, since useful widths scale with ``||x|| ~ sqrt(dim)``.
    """

    def __init__(self, data, metric: str = "cosine", n_tables: int = 8,
                 n_bits: int = 12, bucket_width="auto",
                 seed: int = 0) -> None:
        if n_tables < 1 or n_bits < 1:
            raise ConfigError("n_tables and n_bits must be >= 1")
        if metric not in ("cosine", "sqeuclidean", "euclidean"):
            raise ConfigError(f"unsupported LSH metric {metric!r}")
        if bucket_width != "auto" and not (
                isinstance(bucket_width, (int, float)) and bucket_width > 0):
            raise ConfigError("bucket_width must be positive or 'auto'")
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2 or len(self.data) == 0:
            raise ConfigError("LSHIndex needs a non-empty 2-D matrix")
        self.metric_name = metric
        self.metric = CountingMetric(metric)
        self.n_tables = int(n_tables)
        self.n_bits = int(n_bits)
        rng = derive_rng(seed, 0x15A5)
        dim = self.data.shape[1]
        # Projection tensors: (tables, bits, dim) hyperplanes/directions.
        self._planes = rng.normal(size=(self.n_tables, self.n_bits, dim))
        if bucket_width == "auto":
            # Per-hash width = projection range / 3 -> a handful of
            # distinct buckets per hash function regardless of scale.
            widths = np.empty((self.n_tables, self.n_bits))
            for t in range(self.n_tables):
                proj = self.data @ self._planes[t].T
                span = proj.max(axis=0) - proj.min(axis=0)
                widths[t] = np.maximum(span / 3.0, 1e-9)
            self._widths = widths
        else:
            self._widths = np.full((self.n_tables, self.n_bits),
                                   float(bucket_width))
        self._offsets = rng.uniform(0.0, 1.0,
                                    size=(self.n_tables, self.n_bits)) * self._widths
        self._tables: List[Dict[Tuple, np.ndarray]] = []
        self._index_all()

    # -- hashing ------------------------------------------------------------

    def _keys_for(self, X: np.ndarray) -> List[np.ndarray]:
        """Per-table key component arrays for rows of ``X``."""
        keys = []
        for t in range(self.n_tables):
            proj = X @ self._planes[t].T  # (n, bits)
            if self.metric_name == "cosine":
                comp = (proj > 0).astype(np.int64)
            else:
                comp = np.floor(
                    (proj + self._offsets[t]) / self._widths[t]
                ).astype(np.int64)
            keys.append(comp)
        return keys

    def _index_all(self) -> None:
        key_components = self._keys_for(self.data)
        for t in range(self.n_tables):
            table: Dict[Tuple, list] = defaultdict(list)
            comp = key_components[t]
            for vid in range(len(self.data)):
                table[tuple(comp[vid])].append(vid)
            self._tables.append({k: np.array(v, dtype=np.int64)
                                 for k, v in table.items()})

    # -- stats ------------------------------------------------------------

    def bucket_stats(self) -> dict:
        sizes = [len(v) for table in self._tables for v in table.values()]
        return {
            "n_buckets": len(sizes),
            "mean_size": float(np.mean(sizes)) if sizes else 0.0,
            "max_size": int(max(sizes)) if sizes else 0,
        }

    # -- queries ------------------------------------------------------------

    def candidates(self, q: np.ndarray, multiprobe: int = 0) -> np.ndarray:
        """Union of bucket members across tables (plus ``multiprobe``
        1-bit-flip probes per table for the SimHash family)."""
        q = np.asarray(q, dtype=np.float64).reshape(1, -1)
        out = []
        comps = self._keys_for(q)
        for t in range(self.n_tables):
            base = comps[t][0]
            probes = [tuple(base)]
            if multiprobe and self.metric_name == "cosine":
                for b in range(min(multiprobe, self.n_bits)):
                    flipped = base.copy()
                    flipped[b] ^= 1
                    probes.append(tuple(flipped))
            for key in probes:
                hit = self._tables[t].get(key)
                if hit is not None:
                    out.append(hit)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(out))

    def query(self, q, k: int = 10, multiprobe: int = 0) -> SearchResult:
        """Bucket-probe + exact re-rank."""
        if k < 1:
            raise SearchError(f"k must be >= 1, got {k}")
        q = np.asarray(q, dtype=np.float64)
        if q.ndim != 1 or q.shape[0] != self.data.shape[1]:
            raise SearchError("query dimension mismatch")
        before = self.metric.count
        cand = self.candidates(q, multiprobe=multiprobe)
        if cand.size == 0:
            return SearchResult(ids=np.empty(0, dtype=np.int64),
                                dists=np.empty(0, dtype=np.float64),
                                n_distance_evals=0, n_visited=0)
        dists = self.metric.distances_to(q, self.data[cand])
        order = np.lexsort((cand, dists))[: min(k, cand.size)]
        return SearchResult(
            ids=cand[order].astype(np.int64),
            dists=np.asarray(dists)[order],
            n_distance_evals=self.metric.count - before,
            n_visited=int(cand.size),
        )

    def query_batch(self, queries, k: int = 10, multiprobe: int = 0):
        nq = len(queries)
        ids = np.full((nq, k), -1, dtype=np.int64)
        dists = np.full((nq, k), np.inf, dtype=np.float64)
        total = 0
        for i in range(nq):
            res = self.query(queries[i], k=k, multiprobe=multiprobe)
            found = len(res.ids)
            ids[i, :found] = res.ids
            dists[i, :found] = res.dists
            total += res.n_distance_evals
        return ids, dists, {"n_queries": nq,
                            "mean_distance_evals": total / max(1, nq)}
