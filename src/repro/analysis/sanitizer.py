"""Runtime ownership / race sanitizer (the dynamic half of
:mod:`repro.analysis`).

The simulated runtime is one process, so nothing *physically* stops a
handler running at rank A from reaching into rank B's shard — a bug
class that would be a segfault or silent corruption on a real MPI
cluster and that the static linter can only catch when the access is
syntactically obvious.  The sanitizer catches it dynamically:

- **Ownership**: rank-owned state is tagged with its owner rank
  (``RankContext.state`` becomes an :class:`OwnedState`, neighbor heaps
  carry an owner tag).  While a handler is being delivered at rank *r*,
  any read/write of state owned by a different rank raises
  :class:`~repro.errors.OwnershipViolationError`.  Driver code between
  barriers (the SPMD program counter) may optionally mark which rank it
  is acting as via :meth:`Sanitizer.rank_scope`; unscoped driver access
  (e.g. post-barrier gathers) is allowed.
- **Re-entrancy**: registered handlers are wrapped so that a handler
  synchronously invoking another handler (instead of ``async_call``)
  raises :class:`~repro.errors.HandlerReentrancyError`.
- **Mutation during iteration**: a heap mutated while its ``entries()``
  iterator is live raises
  :class:`~repro.errors.MutationDuringIterationError`.

Enable with ``REPRO_SANITIZE=1`` in the environment or an explicit
``sanitize=True`` on :class:`~repro.runtime.ygm.YGMWorld` /
:class:`~repro.core.dnnd.DNND`.  When off, the world keeps
``sanitizer = None``, ``RankContext.state`` stays a plain dict, handlers
stay unwrapped, and the only residual cost is a single ``is None`` test
on heap mutation — the same zero-overhead discipline as the fault
injector (regression-tested: a sanitized build is bit-identical to an
unsanitized one, including message stats and simulated time).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from ..errors import (
    HandlerReentrancyError,
    MutationDuringIterationError,
    OwnershipViolationError,
)

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitizer_requested(env: Optional[Dict[str, str]] = None) -> bool:
    """True when ``REPRO_SANITIZE`` asks for the sanitizer."""
    environ = os.environ if env is None else env
    return environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


class Sanitizer:
    """Per-world dynamic checker.  One instance is attached to a
    :class:`~repro.runtime.ygm.YGMWorld` when sanitizing; ``None``
    otherwise, so every guard is a single attribute test when off.

    Execution-context state (``active_rank`` / ``handler_depth`` /
    ``current_handler``) is thread-local: under the parallel executor
    each worker thread is delivering at one rank, and the context it
    checks against must be *that* thread's, not whichever rank another
    worker happens to be running.  The violation counters stay shared
    (they only matter when an error is already being raised)."""

    __slots__ = ("_tls", "violations", "reentrancy_detected")

    def __init__(self) -> None:
        self._tls = threading.local()
        #: Counters for introspection/tests.
        self.violations = 0
        self.reentrancy_detected = 0

    #: Rank the current code is executing *as*: set during handler
    #: delivery and inside :meth:`rank_scope` sections; ``None`` in
    #: plain driver context (where access is unrestricted).
    @property
    def active_rank(self) -> Optional[int]:
        return getattr(self._tls, "active_rank", None)

    @active_rank.setter
    def active_rank(self, value: Optional[int]) -> None:
        self._tls.active_rank = value

    @property
    def handler_depth(self) -> int:
        return getattr(self._tls, "handler_depth", 0)

    @handler_depth.setter
    def handler_depth(self, value: int) -> None:
        self._tls.handler_depth = value

    @property
    def current_handler(self) -> Optional[str]:
        return getattr(self._tls, "current_handler", None)

    @current_handler.setter
    def current_handler(self, value: Optional[str]) -> None:
        self._tls.current_handler = value

    # -- access checks -------------------------------------------------------

    def check_access(self, owner: int, what: str) -> None:
        """Raise unless the current execution context may touch state
        owned by ``owner``."""
        rank = self.active_rank
        if rank is not None and rank != owner:
            self.violations += 1
            where = (f"handler {self.current_handler!r}"
                     if self.current_handler is not None else "rank scope")
            raise OwnershipViolationError(
                f"{what} owned by rank {owner} accessed from {where} "
                f"executing at rank {rank}; cross-rank effects must go "
                "through async_call to the owner",
                owner=owner, accessor=rank)

    def check_iteration(self, live_iterators: int, what: str) -> None:
        if live_iterators:
            raise MutationDuringIterationError(
                f"{what} mutated while {live_iterators} live iterator(s) "
                "are walking it; finish (or materialize) the iteration "
                "before mutating")

    # -- execution contexts --------------------------------------------------

    @contextmanager
    def rank_scope(self, rank: int) -> Iterator[None]:
        """Mark driver code as executing *as* ``rank`` (an SPMD program
        section), so accidental cross-rank touches raise."""
        previous = self.active_rank
        self.active_rank = int(rank)
        try:
            yield
        finally:
            self.active_rank = previous

    def wrap_handler(self, name: str,
                     fn: Callable[..., None]) -> Callable[..., None]:
        """Wrap a registered handler with re-entrancy + rank tracking.
        ``ctx`` (the destination RankContext) is always the first
        argument at delivery time."""

        def sanitized_handler(ctx: Any, *args: Any) -> None:
            if self.handler_depth:
                self.reentrancy_detected += 1
                raise HandlerReentrancyError(
                    f"handler {name!r} invoked synchronously inside "
                    f"handler {self.current_handler!r}; handlers are "
                    "atomic delivery units — send an async_call instead")
            self.handler_depth = 1
            previous_rank = self.active_rank
            previous_name = self.current_handler
            self.active_rank = ctx.rank
            self.current_handler = name
            try:
                fn(ctx, *args)
            finally:
                self.handler_depth = 0
                self.active_rank = previous_rank
                self.current_handler = previous_name

        sanitized_handler.__name__ = getattr(fn, "__name__", name)
        sanitized_handler.__wrapped__ = fn  # type: ignore[attr-defined]
        return sanitized_handler


class OwnedState(dict):
    """Rank-local state namespace with an owner tag.

    Substituted for ``RankContext.state`` when sanitizing; every lookup
    and mutation consults the sanitizer.  (Plain ``dict`` is used when
    the sanitizer is off, so the hot path is untouched.)
    """

    __slots__ = ("_san", "_owner")

    def __init__(self, sanitizer: Sanitizer, owner: int) -> None:
        super().__init__()
        self._san = sanitizer
        self._owner = int(owner)

    def _check(self, key: Any) -> None:
        self._san.check_access(self._owner, f"state[{key!r}]")

    def __getitem__(self, key: Any) -> Any:
        self._check(key)
        return super().__getitem__(key)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check(key)
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._check(key)
        super().__delitem__(key)

    def get(self, key: Any, default: Any = None) -> Any:
        self._check(key)
        return super().get(key, default)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._check(key)
        return super().setdefault(key, default)

    def pop(self, key: Any, *default: Any) -> Any:
        self._check(key)
        return super().pop(key, *default)


def tag_heap(heap: Any, sanitizer: Sanitizer, owner: int) -> None:
    """Attach owner metadata to a :class:`~repro.core.heap.NeighborHeap`
    (or anything exposing the ``_san``/``_san_owner`` slots)."""
    heap._san = sanitizer
    heap._san_owner = int(owner)
