"""``python -m repro.analysis`` — the distributed-correctness linter CLI.

Usage::

    python -m repro.analysis                 # lint [tool.repro.analysis] paths
    python -m repro.analysis src tests       # lint explicit paths
    python -m repro.analysis --format json   # machine-readable findings
    python -m repro.analysis --select REP101,REP201
    python -m repro.analysis --list-rules

Exit status: 0 when no findings survive suppression, 1 otherwise
(2 on usage errors, argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .config import AnalysisConfig, load_config
from .engine import run_analysis
from .findings import to_sarif
from .registry import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="distributed-correctness linter (determinism + RPC "
                    "contract rules) for the DNND reproduction",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "[tool.repro.analysis] paths in pyproject.toml)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format; 'sarif' emits a SARIF 2.1.0 "
                             "log for GitHub code scanning")
    parser.add_argument("--select", default="",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--sim-paths", default=None,
                        help="comma-separated path fragments treated as "
                             "simulation code for REP102 (default from "
                             "pyproject)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RULES):
            fn = RULES[rule_id]
            print(f"{rule_id}  [{fn.severity}]  {fn.summary}")
        return 0
    config = load_config(Path.cwd())
    if args.sim_paths is not None:
        config = AnalysisConfig(
            paths=config.paths, exclude=config.exclude,
            sim_paths=tuple(s.strip() for s in args.sim_paths.split(",")
                            if s.strip()),
            select=config.select, lock_order=config.lock_order,
            root=config.root)
    select = tuple(s.strip().upper() for s in args.select.split(",")
                   if s.strip())
    unknown = [s for s in select if s not in RULES]
    if unknown:
        print(f"error: unknown rule id(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    paths = args.paths or list(config.paths)
    findings = run_analysis(paths, config, select=select)
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "sarif":
        rule_meta = {rule_id: {"severity": fn.severity, "summary": fn.summary}
                     for rule_id, fn in RULES.items()}
        print(json.dumps(to_sarif(findings, rules=rule_meta), indent=2))
    else:
        for f in findings:
            print(f.format())
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        if findings:
            print(f"{len(findings)} finding(s): {errors} error(s), "
                  f"{warnings} warning(s)")
        else:
            print(f"clean: no findings in {', '.join(paths)}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
