"""Barrier-epoch race sanitizer — the dynamic half of the REP4xx family.

The parallel backend's thread-safety story is *epoch discipline*, not
fine-grained locking: between two barrier dispatches every shared cell
(a mailbox, a metrics counter, a fault-injector consultation) must be
touched either by a single thread, or by several threads that share an
ordering lock.  The static REP4xx rules (:mod:`repro.analysis.
concurrency`) check the code shape; this module checks the actual
execution.

With ``REPRO_SANITIZE=race`` the runtime attaches a
:class:`RaceSanitizer` to the transport, the executor, and the metrics
registry.  Instrumented sites call :meth:`RaceSanitizer.access` with a
hashable *cell* key; the sanitizer stamps the access with the current
barrier epoch, the accessing thread, and the thread's lockset (the
:class:`TrackedLock` proxies it currently holds).  Two accesses to the
same cell conflict when they happen in the *same epoch* from *different
threads*, at least one is a write, and their locksets are disjoint —
the classic lockset-refined happens-before check, with the barrier
epoch standing in for the vector clock (the executor's dispatch
boundaries are the only ordering edges the runtime promises).

Crucially this does **not** require the two accesses to overlap in
wall-clock time: a same-epoch conflict is a discipline violation even
when the scheduler happened to serialize it this run, so seeded
true-positive races are caught deterministically.

When the mode is off no object carries a sanitizer (the hooks are a
single ``is None`` test, the same zero-overhead contract as the fault
injector and the ownership sanitizer) and builds are bit-identical.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Tuple

from ..errors import RaceConditionError

__all__ = [
    "Access",
    "RaceReport",
    "RaceSanitizer",
    "TrackedLock",
    "race_requested",
]

_RACE_VALUE = "race"


def race_requested(env: Optional[Mapping[str, str]] = None) -> bool:
    """True when ``REPRO_SANITIZE=race`` asks for the race sanitizer.

    The value ``race`` is deliberately *not* one of the truthy values
    the ownership sanitizer accepts (``1/true/yes/on``), so the two
    dynamic modes are independent: ``REPRO_SANITIZE=1`` enables
    ownership checks only, ``REPRO_SANITIZE=race`` enables race checks
    only.
    """
    environ = os.environ if env is None else env
    return environ.get("REPRO_SANITIZE", "").strip().lower() == _RACE_VALUE


@dataclass(frozen=True)
class Access:
    """One recorded touch of a shared cell."""

    cell: Hashable
    thread: int
    epoch: int
    write: bool
    lockset: FrozenSet[str]
    location: str

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        locks = ",".join(sorted(self.lockset)) if self.lockset else "-"
        return (f"{kind} at {self.location} "
                f"[thread={self.thread} epoch={self.epoch} locks={locks}]")


@dataclass(frozen=True)
class RaceReport:
    """A detected same-epoch conflict, with both access locations."""

    cell: Hashable
    first: Access
    second: Access

    def format(self) -> str:
        return (
            f"race on cell {self.cell!r} in barrier epoch "
            f"{self.second.epoch}: conflicting accesses from two threads "
            f"with no common lock\n"
            f"  first:  {self.first.describe()}\n"
            f"  second: {self.second.describe()}"
        )


class TrackedLock:
    """A drop-in ``threading.Lock`` proxy that maintains the owning
    sanitizer's per-thread lockset.

    Instrumented code swaps its real lock for a tracked one at attach
    time (see :meth:`RaceSanitizer.tracked_lock`); accesses made while
    the lock is held carry its name in their lockset, which is what
    lets two lock-ordered accesses to one cell *not* count as a race.
    """

    __slots__ = ("_sanitizer", "_lock", "name")

    def __init__(self, sanitizer: "RaceSanitizer", name: str,
                 lock: Optional[threading.Lock] = None) -> None:
        self._sanitizer = sanitizer
        self._lock = lock if lock is not None else threading.Lock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._push_lock(self.name)
        return acquired

    def release(self) -> None:
        self._sanitizer._pop_lock(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class RaceSanitizer:
    """Lockset + barrier-epoch conflict detector.

    The executor advances the epoch at *both* edges of every parallel
    dispatch (``begin_dispatch``/``end_dispatch``), so driver-only code
    running between dispatches can never share an epoch with task code
    — exactly the ordering the barrier provides.  Within one dispatch,
    ranks chunked onto the same worker thread run sequentially and
    share a thread id, so their accesses do not conflict either; only
    genuinely unordered cross-thread sharing is reported.

    ``raise_on_race`` (default True) raises
    :class:`~repro.errors.RaceConditionError` at the second access;
    either way every conflict is appended to :attr:`races` so test
    harnesses can run in collect mode and assert on the reports.
    """

    def __init__(self, *, raise_on_race: bool = True,
                 capture_stacks: bool = True) -> None:
        self.raise_on_race = raise_on_race
        self.capture_stacks = capture_stacks
        self.races: List[RaceReport] = []
        self.epoch = 0
        self._lock = threading.Lock()
        self._tls = threading.local()
        # cell -> (epoch, accesses recorded in that epoch)
        self._cells: Dict[Hashable, Tuple[int, List[Access]]] = {}

    # -- lockset bookkeeping (called by TrackedLock) --------------------

    def _push_lock(self, name: str) -> None:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        held.append(name)

    def _pop_lock(self, name: str) -> None:
        held = getattr(self._tls, "held", None)
        if held and name in held:
            held.remove(name)

    def lockset(self) -> FrozenSet[str]:
        """The set of tracked locks held by the calling thread."""
        held = getattr(self._tls, "held", None)
        return frozenset(held) if held else frozenset()

    def tracked_lock(self, name: str,
                     lock: Optional[threading.Lock] = None) -> TrackedLock:
        """Wrap ``lock`` (or a fresh one) so acquisitions feed the
        calling thread's lockset."""
        return TrackedLock(self, name, lock)

    # -- epoch edges (called by the executor at dispatch boundaries) ----

    def begin_dispatch(self) -> None:
        self._advance()

    def end_dispatch(self) -> None:
        self._advance()

    def _advance(self) -> None:
        with self._lock:
            self.epoch += 1
            self._cells.clear()

    # -- the instrumented-site entry point ------------------------------

    def access(self, cell: Hashable, *, write: bool = True) -> None:
        """Record one touch of ``cell`` and report a conflict if another
        thread touched it in the same epoch without a common lock."""
        thread = threading.get_ident()
        lockset = self.lockset()
        conflict: Optional[RaceReport] = None
        with self._lock:
            epoch = self.epoch
            entry = self._cells.get(cell)
            if entry is None or entry[0] != epoch:
                accesses: List[Access] = []
                self._cells[cell] = (epoch, accesses)
            else:
                accesses = entry[1]
            other_side: Optional[Access] = None
            for prior in accesses:
                if (prior.thread == thread and prior.write == write
                        and prior.lockset == lockset):
                    # This thread already recorded an equivalent access
                    # this epoch; any conflict was detected then (or
                    # will be, at the other thread's first record).
                    return
                if (other_side is None and prior.thread != thread
                        and (write or prior.write)
                        and not (lockset & prior.lockset)):
                    other_side = prior
            record = Access(
                cell=cell, thread=thread, epoch=epoch, write=write,
                lockset=lockset, location=self._location(),
            )
            accesses.append(record)
            if other_side is not None:
                conflict = RaceReport(cell=cell, first=other_side,
                                      second=record)
                self.races.append(conflict)
        if conflict is not None and self.raise_on_race:
            raise RaceConditionError(
                conflict.format(), cell=cell,
                first=conflict.first, second=conflict.second,
            )

    def _location(self) -> str:
        if not self.capture_stacks:
            return "<stacks off>"
        here = __file__
        for frame in reversed(traceback.extract_stack(limit=12)):
            if frame.filename != here:
                return f"{frame.filename}:{frame.lineno} in {frame.name}"
        return "<unknown>"
