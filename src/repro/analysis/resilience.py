"""Resilience rules (REP3xx).

The fault-tolerance layer surfaces rank failures as
:class:`~repro.errors.RankFailureError` from any barrier, on any
backend.  The whole design rests on the supervisor *acting* on that
signal: recovering from a checkpoint, excluding the dead ranks, or
letting the failure propagate to the caller.  An ``except`` clause that
catches the error and does none of those silently converts a dead rank
into a corrupted build — the graph completes, with whole shards missing.

REP301  swallowed-rank-failure       an ``except`` handler naming
                                     ``RankFailureError`` whose body
                                     neither re-raises nor calls any
                                     recovery/exclusion machinery.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .config import AnalysisConfig
from .findings import ERROR, Finding
from .registry import ProjectContext, call_method_name, rule

#: Method-name fragments that count as "handling" a rank failure: the
#: supervisor's recovery entry points and the comm layer's exclusion/
#: re-admission API.  Substring match on purpose — ``_recover``,
#: ``recover_from_checkpoint``, ``exclude_ranks`` all qualify.
_RECOVERY_FRAGMENTS = ("recover", "exclude", "readmit", "repair",
                      "mark_failed", "abort")


def _names_rank_failure(exc_type: ast.expr | None) -> bool:
    """True when the except clause's type expression mentions
    ``RankFailureError`` (bare name, attribute, or inside a tuple)."""
    if exc_type is None:
        return False
    if isinstance(exc_type, ast.Tuple):
        return any(_names_rank_failure(elt) for elt in exc_type.elts)
    if isinstance(exc_type, ast.Name):
        return exc_type.id == "RankFailureError"
    if isinstance(exc_type, ast.Attribute):
        return exc_type.attr == "RankFailureError"
    return False


def _handles_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or invokes recovery code."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = call_method_name(node)
            if name is not None:
                lowered = name.lower()
                if any(frag in lowered for frag in _RECOVERY_FRAGMENTS):
                    return True
    return False


@rule("REP301", ERROR,
      "except RankFailureError must recover, exclude, or re-raise")
def swallowed_rank_failure(project: ProjectContext,
                           config: AnalysisConfig) -> Iterator[Finding]:
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _names_rank_failure(node.type):
                continue
            if _handles_failure(node):
                continue
            yield Finding(
                path=module.path, line=node.lineno, col=node.col_offset + 1,
                rule="REP301", severity=ERROR,
                message="RankFailureError caught but neither re-raised nor "
                        "handled (no recover/exclude/readmit/repair call): "
                        "a dead rank would silently become a corrupted "
                        "build")
