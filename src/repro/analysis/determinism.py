"""Determinism rules (REP1xx).

Crash recovery (DESIGN.md section 8) replays a build from a checkpoint
and must reconstruct the *bit-identical* graph; the ablation benchmarks
compare runs that must differ only in the knob under study.  Both break
the moment any code on a simulated rank consumes nondeterministic
input: process-global RNG state, the wall clock, unordered-set
iteration order, or CPython object addresses.  These rules flag the
syntactic shapes of those inputs.

REP101  unseeded-global-rng          ``random.random()``-style global
                                     state and legacy ``np.random.*``
                                     calls; also zero-argument
                                     ``default_rng()`` / ``SeedSequence()``
                                     / ``random.Random()``.
REP102  wall-clock-in-sim            ``time.time()`` and friends inside
                                     the simulation paths (``runtime/``,
                                     ``core/``), where the cost ledger
                                     owns time.
REP103  set-iteration-in-emit        iterating a ``set`` in a function
                                     that emits messages — message order
                                     becomes hash-seed dependent.
REP104  id-based-ordering            ``sorted(..., key=id)`` and
                                     ``id(...)`` inside ordering keys —
                                     object addresses vary run to run.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple, Union

from .config import AnalysisConfig, in_sim_path
from .findings import ERROR, Finding
from .registry import (
    EMIT_METHODS,
    ImportMap,
    ProjectContext,
    SourceModule,
    call_method_name,
    rule,
)

#: ``random`` module functions that mutate/consume the hidden global state.
_GLOBAL_RANDOM = frozenset(
    f"random.{name}" for name in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "seed", "getrandbits", "gauss", "normalvariate",
        "betavariate", "expovariate", "triangular", "vonmisesvariate",
    )
)

#: Legacy numpy global-state API (the ``np.random.seed`` / ``np.random.rand``
#: family); ``numpy.random.Generator`` methods are fine.
_NUMPY_LEGACY = frozenset(
    f"numpy.random.{name}" for name in (
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "get_state",
        "set_state", "bytes", "normal", "uniform", "standard_normal",
        "exponential", "poisson", "beta", "gamma", "binomial", "geometric",
    )
)

#: Constructors that are deterministic only when given an explicit seed.
_SEED_REQUIRED = frozenset({
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "random.Random",
})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _finding(module: SourceModule, node: ast.AST, rule_id: str,
             message: str, severity: str = ERROR) -> Finding:
    return Finding(path=module.path, line=node.lineno,
                   col=node.col_offset + 1, rule=rule_id,
                   severity=severity, message=message)


@rule("REP101", ERROR, "unseeded global-state RNG call")
def check_unseeded_rng(project: ProjectContext,
                       config: AnalysisConfig) -> Iterator[Finding]:
    for module in project.modules:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.resolve_call(node)
            if qualified is None:
                continue
            if qualified in _GLOBAL_RANDOM or qualified in _NUMPY_LEGACY:
                yield _finding(
                    module, node, "REP101",
                    f"{qualified}() consumes process-global RNG state; "
                    "derive a keyed stream via repro.utils.rng.derive_rng "
                    "so fault replay stays bit-identical")
            elif qualified in _SEED_REQUIRED and not node.args:
                yield _finding(
                    module, node, "REP101",
                    f"{qualified}() without a seed draws entropy from the "
                    "OS; pass an explicit seed (or use "
                    "repro.utils.rng.derive_rng)")


@rule("REP102", ERROR, "wall-clock read inside simulation code")
def check_wall_clock(project: ProjectContext,
                     config: AnalysisConfig) -> Iterator[Finding]:
    for module in project.modules:
        if not in_sim_path(module.path, config):
            continue
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.resolve_call(node)
            if qualified in _WALL_CLOCK:
                yield _finding(
                    module, node, "REP102",
                    f"{qualified}() reads the wall clock inside simulation "
                    "code; simulated time lives on the cost ledger "
                    "(cluster.ledger) — wall-clock reads make replay "
                    "timing-dependent")


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_method_name(node)
        if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
            return True
        # s.union(t) / s.intersection(t) / ... keep set-ness.
        if (isinstance(node.func, ast.Attribute)
                and name in ("union", "intersection", "difference",
                             "symmetric_difference")
                and _is_set_expr(node.func.value, set_names)):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _set_annotated(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _set_annotated(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet")
    return False


_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _function_scopes(tree: ast.Module) -> Iterator[_FuncNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@rule("REP103", ERROR, "set iteration in message-emitting code")
def check_set_iteration(project: ProjectContext,
                        config: AnalysisConfig) -> Iterator[Finding]:
    for module in project.modules:
        for fn in _function_scopes(module.tree):
            emits = any(
                isinstance(node, ast.Call)
                and call_method_name(node) in EMIT_METHODS
                for node in ast.walk(fn)
            )
            if not emits:
                continue
            # One-pass local dataflow: names bound to set expressions or
            # annotated as sets inside this function.
            set_names: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and _is_set_expr(node.value, set_names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and _set_annotated(node.annotation):
                    if isinstance(node.target, ast.Name):
                        set_names.add(node.target.id)
                elif isinstance(node, ast.arg) and node.annotation is not None:
                    if _set_annotated(node.annotation):
                        set_names.add(node.arg)
            iter_exprs: List[Tuple[ast.AST, ast.expr]] = []
            for node in ast.walk(fn):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iter_exprs.append((node, node.iter))
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    for gen in node.generators:
                        iter_exprs.append((node, gen.iter))
            for holder, expr in iter_exprs:
                if _is_set_expr(expr, set_names):
                    yield _finding(
                        module, expr, "REP103",
                        f"iteration over a set in message-emitting function "
                        f"{fn.name!r}: set order is hash-seed dependent, so "
                        "emitted message order (and replay) varies between "
                        "runs — iterate sorted(...) instead")


def _lambda_uses_id(lam: ast.Lambda) -> bool:
    return any(
        isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        for node in ast.walk(lam)
    )


@rule("REP104", ERROR, "ordering keyed on id() object addresses")
def check_id_ordering(project: ProjectContext,
                      config: AnalysisConfig) -> Iterator[Finding]:
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_method_name(node)
            if name not in ("sorted", "sort", "min", "max"):
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                bad = (isinstance(kw.value, ast.Name) and kw.value.id == "id") \
                    or (isinstance(kw.value, ast.Lambda) and _lambda_uses_id(kw.value))
                if bad:
                    yield _finding(
                        module, kw.value, "REP104",
                        f"{name}(..., key=id) orders by CPython object "
                        "address, which differs every run; key on a stable "
                        "field (vertex id, distance) instead")
