"""Project model + rule registry for the linter.

The engine parses every file once into a :class:`SourceModule`, then
builds a :class:`ProjectContext` — the cross-file facts the RPC rules
need (which handler names are registered anywhere in the analyzed file
set, what arity each handler function accepts, which ``async_call``
sites name which handler).  Rules are plain functions registered with
the :func:`rule` decorator; each receives the whole project and yields
:class:`~repro.analysis.findings.Finding` objects.
"""

from __future__ import annotations

import ast
import math
import symtable
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .config import AnalysisConfig
from .findings import Finding

#: Methods whose call counts as "emitting a message" for the rules that
#: scope themselves to message-emitting code (REP103, REP204).
#: ``emit_run`` is the batch execution engine's bulk emitter — it sends
#: a whole run of messages in one call and must count like async_call.
EMIT_METHODS = frozenset({"async_call", "async_visit", "async_insert",
                          "async_add", "emit_run"})


@dataclass
class SourceModule:
    """One parsed file."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    table: Optional[symtable.SymbolTable] = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@dataclass
class FunctionInfo:
    """Callable facts needed for arity and closure checks.

    ``min_args``/``max_args`` count *all* positional parameters
    (including the leading ``ctx``); ``max_args`` is ``inf`` for
    ``*args`` signatures.
    """

    name: str
    path: str
    line: int
    min_args: int
    max_args: float
    free_vars: Tuple[str, ...] = ()
    is_lambda: bool = False
    #: The def/lambda AST node and its module — populated by the engine
    #: so body-analyzing rules (the REP4xx concurrency family) can run
    #: intra-function dataflow without re-locating the definition.
    node: Optional[ast.AST] = None
    module: Optional["SourceModule"] = None


@dataclass
class HandlerInfo:
    """One ``register_handler(s)`` / ``register_visitor`` /
    ``register_batch_handler(s)`` binding."""

    name: str
    path: str
    line: int
    func_name: Optional[str] = None  # None when bound to a lambda
    func: Optional[FunctionInfo] = None


@dataclass
class CallSite:
    """An ``async_call``/``async_visit`` with a literal target name."""

    kind: str  # "handler" | "visitor"
    name: str
    payload_args: Optional[int]  # None when *args makes the count unknown
    module: SourceModule
    node: ast.Call
    arg_nodes: Tuple[ast.expr, ...] = ()


@dataclass
class ProjectContext:
    """Cross-file facts shared by every rule."""

    modules: List[SourceModule]
    handlers: Dict[str, List[HandlerInfo]] = field(default_factory=dict)
    visitors: Dict[str, List[HandlerInfo]] = field(default_factory=dict)
    #: Batch variants registered via ``register_batch_handler(s)``.
    #: Kept separate from ``handlers`` on purpose: a batch handler's
    #: signature is ``(ctx, args_list)`` regardless of the scalar
    #: payload shape, so folding them into ``handlers`` would make
    #: REP202's arity check false-positive at every call site that has
    #: a batch variant.  REP203's purity check covers both registries.
    batch_handlers: Dict[str, List[HandlerInfo]] = field(default_factory=dict)
    functions: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    call_sites: List[CallSite] = field(default_factory=list)
    #: Functions handed to an executor — ``submit``/``map_ranks``/
    #: ``run_ranks``/``run_on_all`` first arguments and
    #: ``Thread(target=...)`` — i.e. code that may run concurrently with
    #: the driver and with other ranks.  The REP4xx concurrency rules
    #: treat these exactly like registered handlers ("concurrent scope").
    executor_tasks: Dict[str, List[HandlerInfo]] = field(default_factory=dict)
    #: Worker *process* entry points — ``Process(target=...)`` first-class
    #: targets (``multiprocessing`` / a start-method context).  Kept out
    #: of ``executor_tasks`` on purpose: a process target runs in its own
    #: address space (forked copy or spawn re-import), so the REP4xx
    #: thread-interleaving rules do not apply to it — module/class state
    #: it mutates is private to the worker, and the only cross-process
    #: channels are pickled pipes/queues.  Determinism rules still see
    #: these functions through ``functions``/``handlers``.
    process_tasks: Dict[str, List[HandlerInfo]] = field(default_factory=dict)
    #: Distance-kernel helpers registered via ``register_kernel`` (the
    #: blocked kernel layer, DESIGN.md section 17).  Kept out of
    #: ``batch_handlers`` on purpose: kernel helpers are pure batch
    #: variants built by a *factory*, so REP202's arity model does not
    #: apply, and REP203 audits them under a relaxed contract — they may
    #: capture their factory's parameters (attach-time kernel state,
    #: identical on every rank) but nothing else.
    kernel_helpers: Dict[str, List[HandlerInfo]] = field(default_factory=dict)


RuleFn = Callable[[ProjectContext, AnalysisConfig], Iterator[Finding]]

#: rule id -> rule function; populated by the :func:`rule` decorator.
RULES: Dict[str, RuleFn] = {}


def rule(rule_id: str, severity: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule function under ``rule_id``."""

    def decorate(fn: RuleFn) -> RuleFn:
        fn.rule_id = rule_id          # type: ignore[attr-defined]
        fn.severity = severity        # type: ignore[attr-defined]
        fn.summary = summary          # type: ignore[attr-defined]
        RULES[rule_id] = fn
        return fn

    return decorate


def arity_of(args: ast.arguments) -> Tuple[int, float]:
    """(required, maximum) positional-argument counts of a signature."""
    positional = len(args.posonlyargs) + len(args.args)
    required = positional - len(args.defaults)
    maximum = math.inf if args.vararg is not None else float(positional)
    return required, maximum


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chains as a string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def call_method_name(call: ast.Call) -> Optional[str]:
    """The method/function name being called (last attribute segment)."""
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return None


class ImportMap:
    """Resolve names in one module back to fully-qualified import paths."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}   # local name -> module path
        self.members: Dict[str, str] = {}   # local name -> qualified name
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        self.aliases[a.asname] = a.name
                    else:
                        head = a.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for a in node.names:
                    self.members[a.asname or a.name] = f"{node.module}.{a.name}"

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Fully-qualified dotted path of ``call.func`` or None."""
        parts: List[str] = []
        node = call.func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.members:
            prefix = self.members[base]
        elif base in self.aliases:
            prefix = self.aliases[base]
        else:
            return None
        return ".".join([prefix, *reversed(parts)]) if parts else prefix


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def free_variables(module: SourceModule, name: str, line: int) -> Tuple[str, ...]:
    """Free variables of the function block ``name`` defined at ``line``
    (per the symbol table); empty when the block cannot be located."""
    if module.table is None:
        return ()
    stack = [module.table]
    while stack:
        table = stack.pop()
        if (table.get_type() == "function" and table.get_name() == name
                and table.get_lineno() == line):
            return tuple(sorted(table.get_frees()))
        stack.extend(table.get_children())
    return ()
