"""Linter engine: file collection, project building, rule dispatch.

Two passes:

1. Parse every file (syntax errors become ``REP000`` findings) and build
   the :class:`~repro.analysis.registry.ProjectContext`: handler and
   visitor registrations, function signatures, and literal-named
   ``async_call`` / ``async_visit`` sites across the whole file set.
2. Run every registered rule over the project and filter out findings
   suppressed by a same-line ``# repro: ignore[RULE,...]`` comment
   (bare ``# repro: ignore`` suppresses every rule on that line).
"""

from __future__ import annotations

import ast
import re
import symtable
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import AnalysisConfig, matches_exclude
from .findings import ERROR, Finding
from .registry import (
    RULES,
    CallSite,
    FunctionInfo,
    HandlerInfo,
    ProjectContext,
    SourceModule,
    arity_of,
    call_method_name,
    free_variables,
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")

#: Positional slots where the handler-name string may sit in an
#: ``async_call``: index 1 for ``ctx.async_call(dest, "h", ...)``,
#: index 2 for ``world.async_call(src, dest, "h", ...)``.
_HANDLER_NAME_SLOTS = (1, 2)
#: ``async_visit(src_rank, key, "visitor", *args)`` — the visitor name
#: is always the third positional argument (the key may be a string).
_VISITOR_NAME_SLOT = 2

#: Executor entry points whose first positional argument is a function
#: that will run in task scope (concurrently with the driver and with
#: other ranks) — collected into ``ProjectContext.executor_tasks``.
_TASK_METHODS = frozenset({"submit", "map_ranks", "run_ranks", "run_on_all"})


def collect_files(paths: Sequence[str],
                  config: AnalysisConfig) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Exclude patterns apply to files discovered by walking directories;
    a file named explicitly on the command line is always linted.
    """
    out: List[Path] = []
    seen: set = set()
    for raw in paths:
        p = Path(raw)
        candidates: Iterable[Path]
        explicit = not p.is_dir()
        candidates = [p] if explicit else sorted(p.rglob("*.py"))
        for f in candidates:
            posix = f.as_posix()
            if posix in seen or (not explicit
                                 and matches_exclude(posix, config)):
                continue
            seen.add(posix)
            out.append(f)
    return out


def parse_modules(files: Sequence[Path]) -> Tuple[List[SourceModule], List[Finding]]:
    modules: List[SourceModule] = []
    findings: List[Finding] = []
    for f in files:
        try:
            source = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(path=str(f), line=1, col=1, rule="REP000",
                                    severity=ERROR,
                                    message=f"cannot read file: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=str(f))
        except SyntaxError as exc:
            findings.append(Finding(path=str(f), line=exc.lineno or 1,
                                    col=(exc.offset or 1), rule="REP000",
                                    severity=ERROR,
                                    message=f"syntax error: {exc.msg}"))
            continue
        try:
            table = symtable.symtable(source, str(f), "exec")
        except (SyntaxError, ValueError):  # pragma: no cover - parse passed
            table = None
        modules.append(SourceModule(path=str(f), source=source, tree=tree,
                                    table=table))
    return modules, findings


def _function_info(module: SourceModule, node: ast.AST,
                   name: str) -> Optional[FunctionInfo]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        required, maximum = arity_of(node.args)
        return FunctionInfo(
            name=node.name, path=module.path, line=node.lineno,
            min_args=required, max_args=maximum,
            free_vars=free_variables(module, node.name, node.lineno),
            node=node, module=module)
    if isinstance(node, ast.Lambda):
        required, maximum = arity_of(node.args)
        return FunctionInfo(
            name=name, path=module.path, line=node.lineno,
            min_args=required, max_args=maximum,
            free_vars=free_variables(module, "lambda", node.lineno),
            is_lambda=True, node=node, module=module)
    return None


def _collect_registrations(module: SourceModule,
                           project: ProjectContext) -> None:
    # All function definitions, keyed by simple name (cross-file handler
    # references are resolved by name; multiple defs keep every candidate
    # so arity checks do not false-positive on name reuse).
    defs: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(module, node, node.name)
            if info is not None:
                project.functions.setdefault(node.name, []).append(info)
            defs.setdefault(node.name, []).append(node)

    # One-hop method aliases (``collect = self._drain_rank``): lets a
    # task submitted through a local name resolve to the method it was
    # bound from.
    attr_aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)):
            attr_aliases[node.targets[0].id] = node.value.attr

    def bind(registry: Dict[str, List[HandlerInfo]], name: str,
             value: ast.expr, call: ast.Call) -> None:
        info = HandlerInfo(name=name, path=module.path, line=call.lineno)
        if isinstance(value, ast.Lambda):
            info.func = _function_info(module, value, name)
            info.line = value.lineno
        elif isinstance(value, ast.Name):
            info.func_name = value.id
            local = [
                _function_info(module, d, value.id)
                for d in defs.get(value.id, [])
            ]
            locals_found = [i for i in local if i is not None]
            if len(locals_found) == 1:
                info.func = locals_found[0]
                info.line = locals_found[0].line
            elif not locals_found and value.id in attr_aliases:
                info.func_name = attr_aliases[value.id]
        elif isinstance(value, ast.Attribute):
            info.func_name = value.attr
        registry.setdefault(name, []).append(info)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        method = call_method_name(node)
        if method == "register_handler" and len(node.args) >= 2:
            target = node.args[0]
            if isinstance(target, ast.Constant) and isinstance(target.value, str):
                bind(project.handlers, target.value, node.args[1], node)
        elif method == "register_handlers":
            for kw in node.keywords:
                if kw.arg is not None:
                    bind(project.handlers, kw.arg, kw.value, node)
        elif method == "register_batch_handler" and len(node.args) >= 2:
            target = node.args[0]
            if isinstance(target, ast.Constant) and isinstance(target.value, str):
                bind(project.batch_handlers, target.value, node.args[1], node)
        elif method == "register_batch_handlers":
            for kw in node.keywords:
                if kw.arg is not None:
                    bind(project.batch_handlers, kw.arg, kw.value, node)
        elif method == "register_visitor" and len(node.args) >= 2:
            target = node.args[0]
            if isinstance(target, ast.Constant) and isinstance(target.value, str):
                bind(project.visitors, target.value, node.args[1], node)
        elif method == "register_kernel":
            # Blocked distance-kernel declarations (DESIGN.md section
            # 17).  Only the callable slots are helper bindings; the
            # attach-time state keywords (ops/cache/stats) are data, not
            # code, and indexing them would make REP203 audit non-
            # functions.  Kernel helpers go into their own registry so
            # REP202's handler arity model never sees them.
            metric = None
            if (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                metric = node.args[0].value
            for kw in node.keywords:
                if kw.arg in ("pairwise", "rowwise", "one_to_many"):
                    label = (f"{metric}.{kw.arg}" if metric is not None
                             else kw.arg)
                    bind(project.kernel_helpers, label, kw.value, node)
        elif method in _TASK_METHODS and node.args:
            target = node.args[0]
            label = (target.id if isinstance(target, ast.Name)
                     else target.attr if isinstance(target, ast.Attribute)
                     else "<lambda>")
            bind(project.executor_tasks, label, target, node)
        elif method in ("Thread", "Process"):
            # Thread targets share the driver's address space and join
            # ``executor_tasks`` (REP4xx concurrent scope).  Process
            # targets run in their own address space — forked copy or
            # spawn re-import — so the thread-interleaving rules do not
            # apply; they are collected separately into
            # ``process_tasks`` so rules can still reason about worker
            # entry points.
            registry = (project.executor_tasks if method == "Thread"
                        else project.process_tasks)
            for kw in node.keywords:
                if kw.arg == "target":
                    label = (kw.value.id if isinstance(kw.value, ast.Name)
                             else kw.value.attr
                             if isinstance(kw.value, ast.Attribute)
                             else "<lambda>")
                    bind(registry, label, kw.value, node)


def _collect_call_sites(module: SourceModule,
                        project: ProjectContext) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        method = call_method_name(node)
        if method == "async_call":
            for slot in _HANDLER_NAME_SLOTS:
                if slot >= len(node.args):
                    break
                arg = node.args[slot]
                if isinstance(arg, ast.Starred):
                    break  # positions beyond a *args expansion are unknown
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    payload = node.args[slot + 1:]
                    starred = any(isinstance(a, ast.Starred) for a in payload)
                    project.call_sites.append(CallSite(
                        kind="handler", name=arg.value,
                        payload_args=None if starred else len(payload),
                        module=module, node=node,
                        arg_nodes=tuple(payload)))
                    break
        elif method == "async_visit":
            if _VISITOR_NAME_SLOT >= len(node.args):
                continue
            arg = node.args[_VISITOR_NAME_SLOT]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                payload = node.args[_VISITOR_NAME_SLOT + 1:]
                starred = any(isinstance(a, ast.Starred) for a in payload)
                project.call_sites.append(CallSite(
                    kind="visitor", name=arg.value,
                    payload_args=None if starred else len(payload),
                    module=module, node=node,
                    arg_nodes=tuple(payload)))


def build_project(modules: List[SourceModule]) -> ProjectContext:
    project = ProjectContext(modules=modules)
    for module in modules:
        _collect_registrations(module, project)
    for module in modules:
        _collect_call_sites(module, project)
    # Late-bind cross-module handler functions (registered by bare name
    # whose def lives in another analyzed file).
    for registry in (project.handlers, project.visitors,
                     project.batch_handlers, project.executor_tasks,
                     project.process_tasks, project.kernel_helpers):
        for infos in registry.values():
            for info in infos:
                if info.func is None and info.func_name is not None:
                    candidates = project.functions.get(info.func_name, [])
                    if len(candidates) == 1:
                        info.func = candidates[0]
    return project


# -- light intra-function dataflow (shared by the REP4xx rules) -------------
#
# The concurrency rules need three approximate facts about a function
# body: which names reach *shared* state (module/class-level bindings,
# ``global`` declarations, and one-hop local aliases of either), which
# statements execute under a lock, and what the leftmost base of an
# attribute/subscript chain is.  All three are deliberately syntactic —
# no type inference — tuned so the repo's sanctioned idioms (rank-indexed
# instance state, driver-side absolute-assignment folds) stay silent.


def base_of(expr: ast.expr) -> Optional[ast.expr]:
    """The leftmost base of an attribute/subscript chain
    (``a.b[k].c`` -> the ``a`` node); None for non-chain expressions."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr


def bound_names(target: ast.expr) -> Iterator[str]:
    """Names a target expression *binds* — descends tuple/list/starred
    destructuring but stops at attribute/subscript targets, which mutate
    an object without rebinding any name (``self.x = v`` binds nothing,
    ``a, (b, c) = v`` binds a/b/c)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from bound_names(target.value)


def is_class_state(expr: ast.expr) -> bool:
    """True when a chain is rooted at the *class* rather than the
    instance: ``cls.x``, ``type(self).x``, ``self.__class__.x``."""
    seen_class_attr = False
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        if isinstance(expr, ast.Attribute) and expr.attr == "__class__":
            seen_class_attr = True
        expr = expr.value
    if isinstance(expr, ast.Name) and expr.id == "cls":
        return True
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id == "type"):
        return True
    return seen_class_attr


def module_bindings(module: SourceModule) -> frozenset:
    """Names bound at module top level — assignments, imports, and class
    definitions.  These are the objects every thread in the process can
    reach, i.e. the linter's notion of shared state.  Function defs are
    excluded: mutating attributes hung off a function object is not an
    idiom this repo uses."""
    names: set = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(bound_names(target))
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                            ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(stmt, ast.ClassDef):
            names.add(stmt.name)
    return frozenset(names)


def own_scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes:
    names bound inside a nested def/lambda belong to *that* scope, so
    scope-sensitive facts (local bindings, driver mutations) must not
    see them."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def global_declarations(fn: ast.AST) -> frozenset:
    """Names the function declares ``global`` (writes go to module scope)."""
    names: set = set()
    for node in own_scope_walk(fn):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return frozenset(names)


def local_bindings(fn: ast.AST) -> frozenset:
    """Names bound inside the function — parameters, assignment/loop/
    with targets — which therefore *shadow* same-named module bindings
    (unless declared global)."""
    names: set = set()
    args = fn.args if isinstance(
        fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)) else None
    if args is not None:
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            names.add(a.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
    for node in own_scope_walk(fn):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign,
                               ast.NamedExpr)):
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            targets = [item.optional_vars for item in node.items
                       if item.optional_vars is not None]
        for target in targets:
            names.update(bound_names(target))
    return frozenset(names - global_declarations(fn))


def shared_name_resolver(fn: ast.AST, module: SourceModule):
    """Build a predicate ``shared(expr) -> bool``: does this chain's base
    resolve to shared state?

    Resolution is assignment-tracking with one-hop attribute aliasing:
    module-level bindings and ``global`` names are shared unless locally
    shadowed; a local assigned *from* a shared chain (``d = TABLE`` or
    ``d = STATS.cells``) becomes shared itself; class-rooted chains
    (``cls.x``, ``type(self).x``) are always shared.
    """
    mod_names = module_bindings(module)
    globals_ = global_declarations(fn)
    locals_ = local_bindings(fn)

    aliases: set = set()

    def base_shared(expr: ast.expr) -> bool:
        if is_class_state(expr):
            return True
        base = base_of(expr)
        if not isinstance(base, ast.Name):
            return False
        name = base.id
        if name in globals_ or name in aliases:
            return True
        return name in mod_names and name not in locals_

    # Fixed-point over one-hop aliases, in syntactic order; two passes
    # catch alias-of-alias chains without a full worklist.
    for _ in range(2):
        changed = False
        for node in own_scope_walk(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value,
                                   (ast.Name, ast.Attribute, ast.Subscript))
                    and base_shared(node.value)):
                if node.targets[0].id not in aliases:
                    aliases.add(node.targets[0].id)
                    changed = True
        if not changed:
            break

    return base_shared


def is_lockish(expr: ast.expr, config: AnalysisConfig) -> Optional[str]:
    """The lock name when ``expr`` looks like a lock acquisition context
    (``with self._lock:``, ``with LOCK:``, ``with lock_for(k):``) —
    the last dotted segment either contains "lock" or appears in the
    declared ``lock-order`` hierarchy.  None otherwise."""
    node = expr
    if isinstance(node, ast.Call):
        node = node.func
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return None
    if "lock" in name.lower() or name in config.lock_order:
        return name
    return None


def lock_guarded(fn: ast.AST, config: AnalysisConfig) -> frozenset:
    """``id()`` of every AST node lexically inside a ``with <lock>:``
    block — the lock-context set the mutation rules consult before
    reporting."""
    guarded: set = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(is_lockish(item.context_expr, config)
                   for item in node.items):
                for stmt in node.body:
                    guarded.update(id(sub) for sub in ast.walk(stmt))
    return frozenset(guarded)


def _suppressed(finding: Finding, modules: Dict[str, SourceModule]) -> bool:
    module = modules.get(finding.path)
    if module is None or not 1 <= finding.line <= len(module.lines):
        return False
    match = _SUPPRESS_RE.search(module.lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True  # bare "# repro: ignore" silences the whole line
    wanted = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return finding.rule.upper() in wanted


def run_analysis(paths: Sequence[str], config: Optional[AnalysisConfig] = None,
                 select: Sequence[str] = ()) -> List[Finding]:
    """Lint ``paths`` and return sorted, suppression-filtered findings."""
    config = config or AnalysisConfig()
    files = collect_files(paths, config)
    modules, findings = parse_modules(files)
    project = build_project(modules)
    chosen = tuple(select) or config.select
    for rule_id in sorted(RULES):
        if chosen and rule_id not in chosen:
            continue
        findings.extend(RULES[rule_id](project, config))
    by_path = {m.path: m for m in modules}
    findings = [f for f in findings if not _suppressed(f, by_path)]
    findings.sort(key=lambda f: f.sort_key)
    return findings


# Rule modules self-register on import.  Imported at the bottom because
# the concurrency module imports this module's dataflow helpers.
from . import concurrency as _concurrency  # noqa: E402,F401
from . import determinism as _determinism  # noqa: E402,F401
from . import resilience as _resilience  # noqa: E402,F401
from . import rpc as _rpc  # noqa: E402,F401
