"""Linter engine: file collection, project building, rule dispatch.

Two passes:

1. Parse every file (syntax errors become ``REP000`` findings) and build
   the :class:`~repro.analysis.registry.ProjectContext`: handler and
   visitor registrations, function signatures, and literal-named
   ``async_call`` / ``async_visit`` sites across the whole file set.
2. Run every registered rule over the project and filter out findings
   suppressed by a same-line ``# repro: ignore[RULE,...]`` comment
   (bare ``# repro: ignore`` suppresses every rule on that line).
"""

from __future__ import annotations

import ast
import re
import symtable
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import AnalysisConfig, matches_exclude
from .findings import ERROR, Finding
from .registry import (
    RULES,
    CallSite,
    FunctionInfo,
    HandlerInfo,
    ProjectContext,
    SourceModule,
    arity_of,
    call_method_name,
    free_variables,
)

# Rule modules self-register on import.
from . import determinism as _determinism  # noqa: F401
from . import resilience as _resilience  # noqa: F401
from . import rpc as _rpc  # noqa: F401

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")

#: Positional slots where the handler-name string may sit in an
#: ``async_call``: index 1 for ``ctx.async_call(dest, "h", ...)``,
#: index 2 for ``world.async_call(src, dest, "h", ...)``.
_HANDLER_NAME_SLOTS = (1, 2)
#: ``async_visit(src_rank, key, "visitor", *args)`` — the visitor name
#: is always the third positional argument (the key may be a string).
_VISITOR_NAME_SLOT = 2


def collect_files(paths: Sequence[str],
                  config: AnalysisConfig) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Exclude patterns apply to files discovered by walking directories;
    a file named explicitly on the command line is always linted.
    """
    out: List[Path] = []
    seen: set = set()
    for raw in paths:
        p = Path(raw)
        candidates: Iterable[Path]
        explicit = not p.is_dir()
        candidates = [p] if explicit else sorted(p.rglob("*.py"))
        for f in candidates:
            posix = f.as_posix()
            if posix in seen or (not explicit
                                 and matches_exclude(posix, config)):
                continue
            seen.add(posix)
            out.append(f)
    return out


def parse_modules(files: Sequence[Path]) -> Tuple[List[SourceModule], List[Finding]]:
    modules: List[SourceModule] = []
    findings: List[Finding] = []
    for f in files:
        try:
            source = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(path=str(f), line=1, col=1, rule="REP000",
                                    severity=ERROR,
                                    message=f"cannot read file: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=str(f))
        except SyntaxError as exc:
            findings.append(Finding(path=str(f), line=exc.lineno or 1,
                                    col=(exc.offset or 1), rule="REP000",
                                    severity=ERROR,
                                    message=f"syntax error: {exc.msg}"))
            continue
        try:
            table = symtable.symtable(source, str(f), "exec")
        except (SyntaxError, ValueError):  # pragma: no cover - parse passed
            table = None
        modules.append(SourceModule(path=str(f), source=source, tree=tree,
                                    table=table))
    return modules, findings


def _function_info(module: SourceModule, node: ast.AST,
                   name: str) -> Optional[FunctionInfo]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        required, maximum = arity_of(node.args)
        return FunctionInfo(
            name=node.name, path=module.path, line=node.lineno,
            min_args=required, max_args=maximum,
            free_vars=free_variables(module, node.name, node.lineno))
    if isinstance(node, ast.Lambda):
        required, maximum = arity_of(node.args)
        return FunctionInfo(
            name=name, path=module.path, line=node.lineno,
            min_args=required, max_args=maximum,
            free_vars=free_variables(module, "lambda", node.lineno),
            is_lambda=True)
    return None


def _collect_registrations(module: SourceModule,
                           project: ProjectContext) -> None:
    # All function definitions, keyed by simple name (cross-file handler
    # references are resolved by name; multiple defs keep every candidate
    # so arity checks do not false-positive on name reuse).
    defs: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(module, node, node.name)
            if info is not None:
                project.functions.setdefault(node.name, []).append(info)
            defs.setdefault(node.name, []).append(node)

    def bind(registry: Dict[str, List[HandlerInfo]], name: str,
             value: ast.expr, call: ast.Call) -> None:
        info = HandlerInfo(name=name, path=module.path, line=call.lineno)
        if isinstance(value, ast.Lambda):
            info.func = _function_info(module, value, name)
            info.line = value.lineno
        elif isinstance(value, ast.Name):
            info.func_name = value.id
            local = [
                _function_info(module, d, value.id)
                for d in defs.get(value.id, [])
            ]
            locals_found = [i for i in local if i is not None]
            if len(locals_found) == 1:
                info.func = locals_found[0]
                info.line = locals_found[0].line
        elif isinstance(value, ast.Attribute):
            info.func_name = value.attr
        registry.setdefault(name, []).append(info)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        method = call_method_name(node)
        if method == "register_handler" and len(node.args) >= 2:
            target = node.args[0]
            if isinstance(target, ast.Constant) and isinstance(target.value, str):
                bind(project.handlers, target.value, node.args[1], node)
        elif method == "register_handlers":
            for kw in node.keywords:
                if kw.arg is not None:
                    bind(project.handlers, kw.arg, kw.value, node)
        elif method == "register_batch_handler" and len(node.args) >= 2:
            target = node.args[0]
            if isinstance(target, ast.Constant) and isinstance(target.value, str):
                bind(project.batch_handlers, target.value, node.args[1], node)
        elif method == "register_batch_handlers":
            for kw in node.keywords:
                if kw.arg is not None:
                    bind(project.batch_handlers, kw.arg, kw.value, node)
        elif method == "register_visitor" and len(node.args) >= 2:
            target = node.args[0]
            if isinstance(target, ast.Constant) and isinstance(target.value, str):
                bind(project.visitors, target.value, node.args[1], node)


def _collect_call_sites(module: SourceModule,
                        project: ProjectContext) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        method = call_method_name(node)
        if method == "async_call":
            for slot in _HANDLER_NAME_SLOTS:
                if slot >= len(node.args):
                    break
                arg = node.args[slot]
                if isinstance(arg, ast.Starred):
                    break  # positions beyond a *args expansion are unknown
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    payload = node.args[slot + 1:]
                    starred = any(isinstance(a, ast.Starred) for a in payload)
                    project.call_sites.append(CallSite(
                        kind="handler", name=arg.value,
                        payload_args=None if starred else len(payload),
                        module=module, node=node,
                        arg_nodes=tuple(payload)))
                    break
        elif method == "async_visit":
            if _VISITOR_NAME_SLOT >= len(node.args):
                continue
            arg = node.args[_VISITOR_NAME_SLOT]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                payload = node.args[_VISITOR_NAME_SLOT + 1:]
                starred = any(isinstance(a, ast.Starred) for a in payload)
                project.call_sites.append(CallSite(
                    kind="visitor", name=arg.value,
                    payload_args=None if starred else len(payload),
                    module=module, node=node,
                    arg_nodes=tuple(payload)))


def build_project(modules: List[SourceModule]) -> ProjectContext:
    project = ProjectContext(modules=modules)
    for module in modules:
        _collect_registrations(module, project)
    for module in modules:
        _collect_call_sites(module, project)
    # Late-bind cross-module handler functions (registered by bare name
    # whose def lives in another analyzed file).
    for registry in (project.handlers, project.visitors,
                     project.batch_handlers):
        for infos in registry.values():
            for info in infos:
                if info.func is None and info.func_name is not None:
                    candidates = project.functions.get(info.func_name, [])
                    if len(candidates) == 1:
                        info.func = candidates[0]
    return project


def _suppressed(finding: Finding, modules: Dict[str, SourceModule]) -> bool:
    module = modules.get(finding.path)
    if module is None or not 1 <= finding.line <= len(module.lines):
        return False
    match = _SUPPRESS_RE.search(module.lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True  # bare "# repro: ignore" silences the whole line
    wanted = {r.strip().upper() for r in rules.split(",") if r.strip()}
    return finding.rule.upper() in wanted


def run_analysis(paths: Sequence[str], config: Optional[AnalysisConfig] = None,
                 select: Sequence[str] = ()) -> List[Finding]:
    """Lint ``paths`` and return sorted, suppression-filtered findings."""
    config = config or AnalysisConfig()
    files = collect_files(paths, config)
    modules, findings = parse_modules(files)
    project = build_project(modules)
    chosen = tuple(select) or config.select
    for rule_id in sorted(RULES):
        if chosen and rule_id not in chosen:
            continue
        findings.extend(RULES[rule_id](project, config))
    by_path = {m.path: m for m in modules}
    findings = [f for f in findings if not _suppressed(f, by_path)]
    findings.sort(key=lambda f: f.sort_key)
    return findings
