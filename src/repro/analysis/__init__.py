"""Distributed-correctness static analysis + runtime sanitizer.

The simulated DNND runtime makes two promises the rest of the repo leans
on:

1. **Determinism** — a build is a pure function of (dataset, config,
   seed).  Crash recovery (PR 1) replays from a checkpoint and must land
   on a bit-identical graph; the ablation tables compare runs that must
   differ only in the knob under study.  One unseeded ``np.random`` call
   or one iteration over an unordered ``set`` in message-emitting code
   silently breaks both.
2. **Ownership** — rank state (feature shards, neighbor heaps, container
   slots) is touched only by its owner rank; the sanctioned channel for
   cross-rank effects is an ``async_call`` handler *delivered at* the
   owner (Section 4's vertex/neighbor-list co-location).

This package enforces both:

- :mod:`repro.analysis.engine` + the rule modules implement an AST
  linter (``python -m repro.analysis [paths]``) with a determinism rule
  set (REP1xx), an RPC-contract rule set (REP2xx), and a thread-safety
  rule set (REP4xx) for the parallel execution backend, machine-readable
  findings (``--format json`` / ``--format sarif``), and per-line
  ``# repro: ignore[RULE]`` suppressions,
- :mod:`repro.analysis.sanitizer` implements the runtime half: with
  ``REPRO_SANITIZE=1`` (or an explicit ``sanitize=True``), rank-owned
  state is tagged with its owner and cross-rank access from handler
  context raises :class:`~repro.errors.OwnershipViolationError`;
  handler re-entrancy and heap mutation-during-iteration are detected
  too.  When off, none of the machinery is installed (zero overhead,
  regression-tested like the fault injector).
- :mod:`repro.analysis.race` is the concurrency companion: with
  ``REPRO_SANITIZE=race`` (or ``YGMWorld(..., race=True)``), executor
  dispatch boundaries advance a barrier epoch and instrumented shared
  cells (transport mailboxes, fault-injector state, metrics
  publication) record (thread, epoch, lockset) stamps; two accesses to
  one cell in the same epoch from different threads with at least one
  write and no common lock raise
  :class:`~repro.errors.RaceConditionError`.  Same zero-overhead-off
  contract as the ownership sanitizer.
"""

from __future__ import annotations

from .config import AnalysisConfig, load_config
from .engine import run_analysis
from .findings import ERROR, WARNING, Finding, to_sarif
from .race import RaceReport, RaceSanitizer, TrackedLock, race_requested
from .registry import RULES
from .sanitizer import OwnedState, Sanitizer, sanitizer_requested

__all__ = [
    "AnalysisConfig",
    "ERROR",
    "Finding",
    "OwnedState",
    "RULES",
    "RaceReport",
    "RaceSanitizer",
    "Sanitizer",
    "TrackedLock",
    "WARNING",
    "load_config",
    "race_requested",
    "run_analysis",
    "sanitizer_requested",
    "to_sarif",
]
