"""Linter configuration, read from ``[tool.repro.analysis]`` in pyproject.

ruff, mypy, and ``repro.analysis`` all read from the same
``pyproject.toml`` so the repo has exactly one tool-config surface.
``tomllib`` ships with Python >= 3.11; on 3.10 (no tomllib, and the
container may not carry ``tomli``) we fall back to the built-in defaults,
which mirror the committed pyproject section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

_DEFAULT_PATHS = ("src",)
_DEFAULT_EXCLUDE = ("*/lint_fixtures/*", "*.egg-info/*", "*/__pycache__/*")
# Wall-clock reads (REP102) are only an error inside the simulation
# paths: the cost model owns time there.  eval/ and cli timing is real
# wall-clock by design.
_DEFAULT_SIM_PATHS = ("repro/runtime", "repro/core")
# Declared lock hierarchy for REP404 (outermost first): the transport's
# fault lock is acquired before any registry/metrics lock, never after.
# Mirrors the committed pyproject's ``lock-order``.
_DEFAULT_LOCK_ORDER = ("_fault_lock", "_lock")


@dataclass(frozen=True)
class AnalysisConfig:
    """Effective linter configuration."""

    paths: Tuple[str, ...] = _DEFAULT_PATHS
    exclude: Tuple[str, ...] = _DEFAULT_EXCLUDE
    sim_paths: Tuple[str, ...] = _DEFAULT_SIM_PATHS
    select: Tuple[str, ...] = ()
    """Rule ids to run; empty means all registered rules."""

    lock_order: Tuple[str, ...] = _DEFAULT_LOCK_ORDER
    """Declared lock hierarchy, outermost first (REP404): nested
    acquisitions must follow this order, and no listed lock may be
    re-acquired while already held.  Lock names match on the last dotted
    segment of the ``with`` context expression."""

    root: Optional[Path] = field(default=None, compare=False)
    """Directory holding the pyproject this config came from (None when
    built from defaults)."""


def _find_pyproject(start: Path) -> Optional[Path]:
    for candidate in [start, *start.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def load_config(start: Optional[Path] = None) -> AnalysisConfig:
    """Load ``[tool.repro.analysis]`` from the nearest pyproject.toml at
    or above ``start`` (default: cwd); missing file/section/parser all
    degrade to the defaults."""
    start = (start or Path.cwd()).resolve()
    pyproject = _find_pyproject(start if start.is_dir() else start.parent)
    if pyproject is None:
        return AnalysisConfig()
    try:
        import tomllib
    except ImportError:  # Python 3.10 without tomli: defaults mirror pyproject
        return AnalysisConfig(root=pyproject.parent)
    try:
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError):
        return AnalysisConfig(root=pyproject.parent)
    section = data.get("tool", {}).get("repro", {}).get("analysis", {})

    def _strings(key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        value = section.get(key, section.get(key.replace("_", "-")))
        if not isinstance(value, list):
            return default
        return tuple(str(v) for v in value)

    return AnalysisConfig(
        paths=_strings("paths", _DEFAULT_PATHS),
        exclude=_strings("exclude", _DEFAULT_EXCLUDE),
        sim_paths=_strings("sim_paths", _DEFAULT_SIM_PATHS),
        select=_strings("select", ()),
        lock_order=_strings("lock_order", _DEFAULT_LOCK_ORDER),
        root=pyproject.parent,
    )


def in_sim_path(path: str, config: AnalysisConfig) -> bool:
    """True when ``path`` falls under one of the simulation trees."""
    posix = Path(path).as_posix()
    return any(fragment in posix for fragment in config.sim_paths)


def matches_exclude(path: str, config: AnalysisConfig) -> bool:
    from fnmatch import fnmatch

    posix = Path(path).as_posix()
    return any(fnmatch(posix, pat) for pat in config.exclude)


__all__: List[str] = ["AnalysisConfig", "load_config", "in_sim_path",
                      "matches_exclude"]
