"""RPC contract rules (REP2xx).

The YGM layer names handlers by *string* at every ``async_call`` site
and resolves them at delivery time — a typo'd name or a drifted
signature is invisible until a message actually flows down that path
(possibly only in a fault-injection run).  These rules check the
contract statically, project-wide:

REP201  unknown-handler          every literal ``async_call(...,
                                 "name")`` / ``async_visit(..., "name")``
                                 must resolve to a ``register_handler`` /
                                 ``register_handlers`` /
                                 ``register_visitor`` binding somewhere
                                 in the analyzed files.
REP202  handler-arity            the payload argument count at the call
                                 site must fit the handler's signature
                                 (handlers receive ``(ctx, *payload)``,
                                 visitors ``(ctx, state, key, *args)``;
                                 batch variants always receive exactly
                                 ``(ctx, args_list)``).
REP203  handler-closure-capture  a handler registered from inside a
                                 function closes over rank-local
                                 mutable state — handler behaviour must
                                 be a pure function of its arguments
                                 plus owner-rank state.  Blocked-kernel
                                 helpers (``register_kernel``) are pure
                                 *batch variants* built by a factory:
                                 they may capture the factory's own
                                 parameters (attach-time kernel state,
                                 identical on every rank) but nothing
                                 else.
REP204  stats-read-before-barrier  reading ``.stats`` after emitting
                                 async messages with no intervening
                                 ``barrier()`` in the same scope:
                                 in-flight messages make the numbers
                                 meaningless.  (Heuristic: reported as a
                                 warning.)
REP205  unserializable-rpc-arg   lambdas / generator expressions passed
                                 as RPC payload cannot cross a process
                                 boundary on a real cluster.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Union

from .config import AnalysisConfig
from .findings import ERROR, WARNING, Finding
from .registry import (
    EMIT_METHODS,
    CallSite,
    FunctionInfo,
    HandlerInfo,
    ProjectContext,
    SourceModule,
    call_method_name,
    rule,
)

#: Handler names handed to RPC visitors/handlers at delivery: handlers
#: get the destination RankContext prepended, visitors additionally get
#: (local_map, key).
_HANDLER_IMPLICIT_ARGS = 1
_VISITOR_IMPLICIT_ARGS = 3


def _finding(module: SourceModule, node: ast.AST, rule_id: str,
             message: str, severity: str = ERROR) -> Finding:
    return Finding(path=module.path, line=node.lineno,
                   col=node.col_offset + 1, rule=rule_id,
                   severity=severity, message=message)


def _lookup(site: CallSite, project: ProjectContext) -> List[HandlerInfo]:
    registry = project.visitors if site.kind == "visitor" else project.handlers
    return registry.get(site.name, [])


@rule("REP201", ERROR, "async_call names an unregistered handler")
def check_unknown_handler(project: ProjectContext,
                          config: AnalysisConfig) -> Iterator[Finding]:
    for site in project.call_sites:
        if _lookup(site, project):
            continue
        what = "visitor" if site.kind == "visitor" else "handler"
        register = ("register_visitor" if site.kind == "visitor"
                    else "register_handler/register_handlers")
        yield _finding(
            site.module, site.node, "REP201",
            f"{what} {site.name!r} is not registered anywhere in the "
            f"analyzed files ({register}); the call would raise only when "
            "a message actually flows down this path")


def _candidate_functions(info: HandlerInfo,
                         project: ProjectContext) -> List[FunctionInfo]:
    if info.func is not None:
        return [info.func]
    if info.func_name is not None:
        return project.functions.get(info.func_name, [])
    return []


@rule("REP202", ERROR, "call-site payload does not fit handler signature")
def check_handler_arity(project: ProjectContext,
                        config: AnalysisConfig) -> Iterator[Finding]:
    for site in project.call_sites:
        if site.payload_args is None:  # *args at the call site
            continue
        implicit = (_VISITOR_IMPLICIT_ARGS if site.kind == "visitor"
                    else _HANDLER_IMPLICIT_ARGS)
        supplied = implicit + site.payload_args
        candidates: List[FunctionInfo] = []
        for info in _lookup(site, project):
            candidates.extend(_candidate_functions(info, project))
        if not candidates:
            continue  # registration found but target unresolvable: skip
        if any(fn.min_args <= supplied <= fn.max_args for fn in candidates):
            continue
        shapes = ", ".join(
            f"{fn.name}({fn.min_args}"
            + (f"..{'*' if fn.max_args == float('inf') else int(fn.max_args)}"
               if fn.max_args != fn.min_args else "")
            + ")"
            for fn in candidates)
        yield _finding(
            site.module, site.node, "REP202",
            f"{site.kind} {site.name!r} would be delivered "
            f"{supplied} positional argument(s) "
            f"({implicit} implicit + {site.payload_args} payload), but its "
            f"registered implementation accepts {shapes}")
    # Batch variants have a fixed delivery contract: the runtime always
    # invokes them as ``fn(ctx, args_list)`` regardless of the scalar
    # payload shape, so their signature must admit exactly 2 positionals.
    for name, infos in project.batch_handlers.items():
        for info in infos:
            candidates = _candidate_functions(info, project)
            if not candidates:
                continue
            if any(fn.min_args <= 2 <= fn.max_args for fn in candidates):
                continue
            yield Finding(
                path=info.path, line=info.line, col=1, rule="REP202",
                severity=ERROR,
                message=(
                    f"batch handler {name!r} is delivered exactly 2 "
                    "positional arguments (ctx, args_list), but its "
                    "registered implementation does not accept that shape"))


def _enclosing_parameters(fn: FunctionInfo) -> frozenset:
    """Parameter names of the innermost function *enclosing* ``fn``'s
    definition (empty for a top-level def).  Used by REP203's kernel-
    helper audit: a blocked-kernel closure may capture exactly these."""
    if fn.node is None or fn.module is None:
        return frozenset()
    enclosing = None
    for node in ast.walk(fn.module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node is fn.node:
            continue
        if any(child is fn.node for child in ast.walk(node)):
            # Innermost wins: among all defs containing fn, the one
            # starting last is the nearest enclosing scope.
            if enclosing is None or node.lineno > enclosing.lineno:
                enclosing = node
    if enclosing is None:
        return frozenset()
    spec = enclosing.args
    names = [p.arg for p in (*spec.posonlyargs, *spec.args,
                             *spec.kwonlyargs)]
    if spec.vararg is not None:
        names.append(spec.vararg.arg)
    if spec.kwarg is not None:
        names.append(spec.kwarg.arg)
    return frozenset(names)


@rule("REP203", ERROR, "handler closes over rank-local mutable state")
def check_closure_capture(project: ProjectContext,
                          config: AnalysisConfig) -> Iterator[Finding]:
    # Batch variants are held to the same purity contract as scalar
    # handlers: a batch handler must be a function of (ctx, args_list)
    # + owner-rank state only, or the batched and scalar paths diverge.
    seen: set = set()
    for registry in (project.handlers, project.visitors,
                     project.batch_handlers):
        for name, infos in registry.items():
            for info in infos:
                fn = info.func
                if fn is None or not fn.free_vars:
                    continue
                key = (info.path, info.line, name)
                if key in seen:
                    continue
                seen.add(key)
                captured = ", ".join(fn.free_vars)
                yield Finding(
                    path=info.path, line=info.line, col=1, rule="REP203",
                    severity=ERROR,
                    message=(
                        f"handler {name!r} captures enclosing-scope "
                        f"variable(s) {captured} in a closure; handlers must "
                        "be pure functions of (ctx, *args) + owner-rank "
                        "state — captured locals are rank-local on a real "
                        "cluster and silently diverge"))
    # Kernel helpers (register_kernel, DESIGN.md section 17) are pure
    # batch variants declared by a factory, so the contract relaxes by
    # exactly one scope: the closure may bind its factory's parameters
    # — attach-time kernel state (array module, norm cache, FLOP tally,
    # tile override) replicated identically on every rank — but any
    # other free variable is still rank-local mutable state.
    for name, infos in project.kernel_helpers.items():
        for info in infos:
            fn = info.func
            if fn is None or not fn.free_vars:
                continue
            allowed = _enclosing_parameters(fn)
            illegal = tuple(v for v in fn.free_vars if v not in allowed)
            if not illegal:
                continue
            key = (info.path, info.line, name)
            if key in seen:
                continue
            seen.add(key)
            captured = ", ".join(illegal)
            yield Finding(
                path=info.path, line=info.line, col=1, rule="REP203",
                severity=ERROR,
                message=(
                    f"kernel helper {name!r} captures {captured} from "
                    "outside its factory's parameter list; blocked-kernel "
                    "closures are pure batch variants and may bind only "
                    "attach-time factory parameters — anything else is "
                    "rank-local mutable state that silently diverges"))


_STATS_READS = ("stats", "stats_for")


def _walk_positions(stmt: ast.stmt) -> List[ast.AST]:
    nodes = [n for n in ast.walk(stmt) if hasattr(n, "lineno")]
    nodes.sort(key=lambda n: (n.lineno, n.col_offset))
    return nodes


@rule("REP204", WARNING, "stats read after async sends with no barrier")
def check_stats_before_barrier(project: ProjectContext,
                               config: AnalysisConfig) -> Iterator[Finding]:
    for module in project.modules:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            pending: Optional[ast.AST] = None
            for stmt in fn.body:
                for node in _walk_positions(stmt):
                    if isinstance(node, ast.Call):
                        name = call_method_name(node)
                        if name in EMIT_METHODS:
                            pending = node
                        elif name == "barrier":
                            pending = None
                        elif name in _STATS_READS and pending is not None:
                            yield _finding(
                                module, node, "REP204",
                                "message statistics read while async "
                                "messages may still be buffered/in flight "
                                "(no barrier() since the last emit in this "
                                "scope); counts are incomplete",
                                severity=WARNING)
                            pending = None
                    elif (isinstance(node, ast.Attribute)
                          and node.attr == "stats"
                          and isinstance(node.ctx, ast.Load)
                          and pending is not None):
                        yield _finding(
                            module, node, "REP204",
                            "'.stats' read while async messages may still "
                            "be buffered/in flight (no barrier() since the "
                            "last emit in this scope); counts are incomplete",
                            severity=WARNING)
                        pending = None


@rule("REP205", ERROR, "RPC payload argument is not wire-serializable")
def check_serializable_args(project: ProjectContext,
                            config: AnalysisConfig) -> Iterator[Finding]:
    for site in project.call_sites:
        for arg in site.arg_nodes:
            label: Optional[str] = None
            if isinstance(arg, ast.Lambda):
                label = "a lambda"
            elif isinstance(arg, ast.GeneratorExp):
                label = "a generator expression"
            if label is None:
                continue
            yield _finding(
                site.module, arg, "REP205",
                f"{label} is passed as RPC payload to {site.name!r}; "
                "payloads must be plain data (ids, floats, arrays) — "
                "callables and generators cannot cross a rank boundary on "
                "a real cluster (register a named handler/visitor instead)")
