"""Finding records emitted by the distributed-correctness linter.

A finding is machine-readable (rule id, path, line, column, severity,
message) so CI and editors can consume ``--format json`` output; the
text format is the usual ``path:line:col: RULE [severity] message``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

#: Severity levels.  Both fail the lint run (the repo must be clean);
#: the distinction tells a reader whether the rule is exact (``error``)
#: or a heuristic worth a look (``warning``).
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)
